// Using the public API to build a *custom* sizing policy and benchmark it
// against the library's: allocate buffer space proportional to each site's
// measured mean occupancy (a simple profiling-driven heuristic), then
// compare with uniform and CTMDP sizing on the Figure 1 system.
//
//   $ ./custom_policy
#include "arch/presets.hpp"
#include "core/allocation.hpp"
#include "core/engine.hpp"
#include "sim/simulator.hpp"
#include "split/splitter.hpp"
#include "util/numeric.hpp"

#include <cstdio>

namespace {

/// A user-defined policy: profile once under uniform sizing, then give
/// each site space proportional to its observed mean occupancy.
socbuf::core::Allocation occupancy_profiled_allocation(
    const socbuf::arch::TestSystem& system,
    const socbuf::split::SplitResult& split, long budget,
    const socbuf::sim::SimConfig& config) {
    const auto uniform = socbuf::core::uniform_allocation(split, budget);
    const auto profile = socbuf::sim::simulate(system, uniform, config);

    std::vector<socbuf::arch::SiteId> active;
    std::vector<double> weights;
    for (const auto& sub : split.subsystems) {
        for (const auto& f : sub.flows) {
            active.push_back(f.site);
            weights.push_back(profile.site_mean_occupancy[f.site] + 0.05);
        }
    }
    const auto shares =
        socbuf::util::apportion_largest_remainder(budget, weights, 1);
    socbuf::core::Allocation alloc(split.sites.size(), 0);
    for (std::size_t i = 0; i < active.size(); ++i)
        alloc[active[i]] = shares[i];
    return alloc;
}

}  // namespace

int main() {
    using namespace socbuf;
    const auto system = arch::figure1_system();
    const auto split = split::split_architecture(system);
    const long budget = 36;

    sim::SimConfig config;
    config.horizon = 6000.0;
    config.warmup = 600.0;
    config.seed = 21;

    const auto uniform = core::uniform_allocation(split, budget);
    const auto custom =
        occupancy_profiled_allocation(system, split, budget, config);

    core::SizingOptions options;
    options.total_budget = budget;
    options.sim = config;
    const auto ctmdp_report = core::BufferSizingEngine(options).run(system);

    std::printf("%-28s %s\n", "policy", "total loss");
    auto evaluate = [&](const char* name, const core::Allocation& alloc) {
        const auto r = sim::simulate(system, alloc, config);
        std::printf("%-28s %llu\n", name,
                    static_cast<unsigned long long>(r.total_lost()));
    };
    evaluate("uniform (constant)", uniform);
    evaluate("custom occupancy-profiled", custom);
    evaluate("CTMDP sizing (library)", ctmdp_report.best);
    return 0;
}
