// Scenarios as data, end to end: build a spec with the fluent
// ScenarioBuilder, serialize it to JSON, load it back through a
// registry, and run both through one socbuf::Session — proving the file
// trip changes nothing.
//
//   $ ./scenario_catalog
#include "scenario/builder.hpp"
#include "scenario/scenario_io.hpp"
#include "session/session.hpp"

#include <cstdio>

int main() {
    using namespace socbuf;

    // 1. Define a small load sweep fluently — build() validates, so a
    //    malformed chain fails here, not mid-batch.
    arch::NetworkProcessorParams light;
    light.load_scale = 0.8;
    arch::NetworkProcessorParams heavy;
    heavy.load_scale = 1.15;
    scenario::ScenarioSpec sweep =
        scenario::ScenarioBuilder("example-load-sweep")
            .description("80%/115% offered load on the network processor")
            .testbench(scenario::Testbench::kNetworkProcessor)
            .variant("load=0.80", light)
            .variant("load=1.15", heavy)
            .budgets({160})
            .replications(2)
            .sizing_iterations(3)
            .horizon(600.0, 60.0)
            .seed(7)
            .build();

    // 2. The spec is data: dump it, parse it back, and verify the round
    //    trip is exact (the scenario_io contract).
    const util::JsonValue json = scenario::to_json(sweep);
    const scenario::ScenarioSpec reloaded =
        scenario::spec_from_json(util::JsonValue::parse(json.dump()));
    std::printf("round trip exact: %s\n",
                reloaded == sweep ? "yes" : "NO");

    // 3. One Session runs everything: the ad-hoc spec, the reloaded
    //    twin, and a built-in preset by name.
    Session session({0});  // 0 = hardware concurrency
    const auto direct = session.run(sweep);
    const auto via_json = session.run(reloaded);
    std::printf("file trip changes nothing: %s\n",
                direct.to_json() == via_json.to_json() ? "yes" : "NO");

    std::printf("\n%s", direct.summary_table().to_string().c_str());
    std::printf("workers: %zu · cache: %zu hits / %zu misses\n",
                direct.workers, direct.cache.hits, direct.cache.misses);

    // 4. The whole built-in catalog is exportable the same way
    //    (socbuf_cli export --all writes scenarios/*.json from this).
    const auto catalog = session.export_catalog();
    std::printf("\nexportable catalog: %zu presets, %zu bytes of JSON\n",
                catalog.at("scenarios").size(), catalog.dump(2).size());
    return 0;
}
