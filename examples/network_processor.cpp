// The network-processor testbench behind Figure 3 and Table 1, walked
// through step by step: topology, subsystems, sizing, and the paper's
// before/after/timeout comparison at a chosen budget.
//
//   $ ./network_processor [budget]        (default budget: 320)
#include "arch/presets.hpp"
#include "core/experiments.hpp"
#include "split/splitter.hpp"

#include <cstdio>
#include <cstdlib>

int main(int argc, char** argv) {
    using namespace socbuf;
    const long budget = argc > 1 ? std::atol(argv[1]) : 320;

    const auto system = arch::network_processor_system();
    std::printf("network processor: %zu processors on %zu buses, %zu "
                "bridges\n",
                system.architecture.processor_count(),
                system.architecture.bus_count(),
                system.architecture.bridge_count());
    const auto split = split::split_architecture(system);
    for (const auto& sub : split.subsystems)
        std::printf("  bus %-9s rho=%.2f (%zu queues)\n",
                    sub.bus_name.c_str(), sub.utilization(),
                    sub.flows.size());

    core::Figure3Params params;
    params.total_budget = budget;
    params.replications = 5;
    const auto r = core::run_figure3(params);

    std::printf("\nper-processor loss at budget %ld "
                "(constant | resized | timeout):\n",
                budget);
    for (std::size_t p = 0; p < r.constant_loss.size(); ++p) {
        std::printf("  proc %2zu: %7.1f | %7.1f | %7.1f", p + 1,
                    r.constant_loss[p], r.resized_loss[p],
                    r.timeout_loss[p]);
        if (r.resized_loss[p] > r.constant_loss[p] + 0.5)
            std::printf("   <- worse after resizing (tight budget)");
        std::printf("\n");
    }
    std::printf("totals: %.0f | %.0f | %.0f\n", r.constant_total,
                r.resized_total, r.timeout_total);
    std::printf("resizing vs constant: %.1f%% less loss\n",
                100.0 * r.gain_vs_constant());
    std::printf("resizing vs timeout:  %.1f%% less loss\n",
                100.0 * r.gain_vs_timeout());
    return 0;
}
