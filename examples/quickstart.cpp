// Quickstart: build a tiny two-bus SoC, run the CTMDP buffer-sizing
// pipeline, and print where the buffer space went.
//
//   $ ./quickstart
#include "arch/architecture.hpp"
#include "arch/presets.hpp"
#include "core/engine.hpp"

#include <cstdio>

int main() {
    using namespace socbuf;

    // 1. Describe the architecture: two buses joined by a bridge, three
    //    processors, and who talks to whom (rates are packets per unit
    //    time; the last two numbers make a flow bursty: mean ON / OFF
    //    phase lengths).
    arch::TestSystem system;
    system.name = "quickstart";
    const auto cpu_bus = system.architecture.add_bus("cpu", 3.0);
    const auto io_bus = system.architecture.add_bus("io", 2.0);
    system.architecture.add_bridge("cpu-io", cpu_bus, io_bus);
    const auto cpu0 = system.architecture.add_processor("cpu0", cpu_bus);
    const auto cpu1 = system.architecture.add_processor("cpu1", cpu_bus);
    const auto dma = system.architecture.add_processor("dma", io_bus);
    system.flows.push_back({cpu0, cpu1, 0.8, 1.0, 0.0, 0.0});
    system.flows.push_back({cpu1, dma, 0.7, 1.0, 0.0, 0.0});
    system.flows.push_back({dma, cpu0, 0.9, 1.0, 2.0, 2.0});  // bursty

    // 2. Size 24 units of buffer space with the paper's methodology.
    core::SizingOptions options;
    options.total_budget = 24;
    options.sim.horizon = 5000.0;
    options.sim.warmup = 500.0;
    options.sim.seed = 42;
    const core::BufferSizingEngine engine(options);
    const core::SizingReport report = engine.run(system);

    // 3. Inspect the result.
    std::printf("losses: %llu before -> %llu after (%.0f%% improvement)\n",
                static_cast<unsigned long long>(report.before.total_lost()),
                static_cast<unsigned long long>(report.after.total_lost()),
                100.0 * report.improvement());
    std::printf("%-12s %8s %8s\n", "buffer site", "uniform", "resized");
    for (std::size_t s = 0; s < report.split.sites.size(); ++s) {
        if (report.initial[s] == 0 && report.best[s] == 0) continue;
        std::printf("%-12s %8ld %8ld\n", report.split.sites[s].name.c_str(),
                    report.initial[s], report.best[s]);
    }
    return 0;
}
