// The paper's Figure 1 architecture end to end: split it into the four
// linear subsystems of Figure 2, show the quadratic coupling of the
// monolithic model, solve both ways, then size the buffers.
//
//   $ ./bridged_soc
#include "arch/presets.hpp"
#include "core/engine.hpp"
#include "nonlinear/coupled_model.hpp"
#include "nonlinear/newton.hpp"
#include "split/splitter.hpp"

#include <cstdio>

int main() {
    using namespace socbuf;
    const auto system = arch::figure1_system();

    // --- the split (Figure 2) -------------------------------------------
    const auto split = split::split_architecture(system);
    split::verify_linearity(system, split);
    std::printf("Figure 1 architecture: %zu processors, %zu buses, %zu "
                "bridges\n",
                system.architecture.processor_count(),
                system.architecture.bus_count(),
                system.architecture.bridge_count());
    std::printf("split into %zu linear subsystems, inserting %zu bridge "
                "buffers (b1..b4 of Figure 2):\n",
                split.subsystems.size(), split.inserted_buffer_count);
    for (const auto& sub : split.subsystems) {
        std::printf("  bus %-2s (mu=%.1f): ", sub.bus_name.c_str(),
                    sub.service_rate);
        for (const auto& f : sub.flows)
            std::printf("%s%s ", split.sites[f.site].name.c_str(),
                        f.inserted ? "*" : "");
        std::printf("\n");
    }
    std::printf("  (* = buffer inserted by the split)\n\n");

    // --- the quadratic monolithic model ---------------------------------
    const nonlinear::CoupledBusModel monolithic(system, split);
    std::printf("monolithic model: %zu unknowns, %zu bilinear terms "
                "(the quadratic equations of Section 2)\n",
                monolithic.unknown_count(),
                monolithic.bilinear_term_count());
    const auto fp = monolithic.solve_fixed_point();
    std::printf("split-style fixed point: %s in %zu rounds, loss rate "
                "%.4f\n",
                fp.converged ? "converged" : "FAILED", fp.iterations,
                fp.solution.total_loss_rate);
    const auto newton = nonlinear::solve_newton(
        monolithic, monolithic.initial_uniform());
    std::printf("monolithic Newton:       %s in %zu iterations\n\n",
                nonlinear::to_string(newton.outcome), newton.iterations);

    // --- buffer sizing ---------------------------------------------------
    core::SizingOptions options;
    options.total_budget = 45;  // 5 units per traffic-carrying site
    options.sim.horizon = 5000.0;
    options.sim.warmup = 500.0;
    options.sim.seed = 7;
    const auto report = core::BufferSizingEngine(options).run(system);
    std::printf("buffer sizing at budget %ld: loss %llu -> %llu\n",
                options.total_budget,
                static_cast<unsigned long long>(report.before.total_lost()),
                static_cast<unsigned long long>(report.after.total_lost()));
    for (std::size_t s = 0; s < split.sites.size(); ++s)
        if (report.initial[s] + report.best[s] > 0)
            std::printf("  %-8s %2ld -> %2ld units\n",
                        split.sites[s].name.c_str(), report.initial[s],
                        report.best[s]);
    return 0;
}
