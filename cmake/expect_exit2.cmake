# CTest helper: run ${CMD} with ${ARGS} (a ;-list) and require the usage
# error contract — exit code 2 plus a diagnostic on stderr. Used to pin
# socbuf_cli's handling of malformed flag values (which once escaped as an
# uncaught std::stoul exception, i.e. std::terminate) and of malformed
# scenario files (which must name the offending JSON path or file).
#
#   cmake -DCMD=<exe> "-DARGS=run;figure1;--threads;abc" -P expect_exit2.cmake
#
# Optional: -DMATCH=<regex> additionally requires the diagnostic to match
# (e.g. the JSON path "$.budgetz" a malformed scenario file must be blamed
# on).
execute_process(COMMAND ${CMD} ${ARGS}
                RESULT_VARIABLE exit_code
                OUTPUT_VARIABLE out
                ERROR_VARIABLE err)
if(NOT exit_code EQUAL 2)
    message(FATAL_ERROR
            "expected exit code 2 from '${CMD} ${ARGS}', got '${exit_code}'"
            " (stderr: ${err})")
endif()
if(NOT err MATCHES "invalid|needs")
    message(FATAL_ERROR
            "expected a diagnostic naming the bad flag on stderr, got:"
            " ${err}")
endif()
if(DEFINED MATCH AND NOT err MATCHES "${MATCH}")
    message(FATAL_ERROR
            "expected the diagnostic to match '${MATCH}', got: ${err}")
endif()
