// B2 — the buffer-insertion placement search, measured. Four claims:
//
//   1. quality — the searched placement's best weighted loss never
//      exceeds the all-selected preset's at the same total budget (the
//      preset plan is always evaluated, so searched <= preset by
//      construction; the table shows by how much the search wins),
//   2. pruning — on the network-processor testbench (8 candidate bridge
//      sites, a 256-plan space) the staged dominance-pruned search
//      evaluates a small fraction of the space, while the Figure 1
//      sample (4 candidates) sweeps all 16 plans exhaustively — both
//      plan counts are reported against the full space,
//   3. cache sharing — every plan evaluation is a full sizing run
//      through ONE batch-wide SolveCache, so plans that agree on a
//      subsystem's model re-use its solve (hit rate reported),
//   4. determinism — the searched placement and the whole report are
//      bit-identical at threads 1/2/4 (plan evaluations fan through the
//      shared executor at Priority::kSizing, folded in mask order).
//
// `--json <file>` writes the structured measurement for the
// perf-trajectory format under BENCH_*.json and skips the
// google-benchmark loop.
#include "scenario/scenario.hpp"
#include "session/session.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace {

using socbuf::Session;
using socbuf::SessionOptions;
using socbuf::scenario::BatchReport;
using socbuf::scenario::InsertionRunReport;
using socbuf::scenario::ScenarioSpec;

/// The two insertion presets at a bench-friendly horizon: the Figure 1
/// sample takes the exhaustive path, the network-processor testbench
/// the pruned one.
ScenarioSpec search_spec(const std::string& name) {
    const socbuf::scenario::ScenarioRegistry registry;
    ScenarioSpec spec = registry.get(name);
    spec.sim.horizon = 1000.0;
    spec.sim.warmup = 100.0;
    spec.replications = 2;
    spec.sizing_iterations = 3;
    return spec;
}

double seconds_of(const std::function<void()>& body) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/// The run's searched-vs-preset gain: 1 - searched/preset (0 when the
/// preset is already optimal).
double search_gain(const InsertionRunReport& insertion) {
    if (!(insertion.preset_loss > 0.0)) return 0.0;
    return 1.0 - insertion.searched_loss / insertion.preset_loss;
}

std::size_t plan_space(const InsertionRunReport& insertion) {
    const std::size_t candidates =
        insertion.selected_sites.size() + insertion.deselected_sites.size();
    return std::size_t{1} << candidates;
}

bool identical_reports(const BatchReport& a, const BatchReport& b) {
    BatchReport normalized = b;
    normalized.workers = a.workers;
    return normalized.to_json() == a.to_json();
}

void print_search_table() {
    std::printf("\n=== B2: buffer-insertion placement search (searched vs "
                "all-selected preset, equal budget) ===\n");
    socbuf::util::Table table({"scenario", "mode", "plans", "space",
                               "pruned", "searched loss", "preset loss",
                               "gain", "cache hit", "wall [s]",
                               "identical @1/2/4"});
    for (const char* name : {"insertion-figure1", "insertion-np-search"}) {
        const ScenarioSpec spec = search_spec(name);
        Session reference_session({1});
        BatchReport reference;
        const double s =
            seconds_of([&] { reference = reference_session.run(spec); });
        bool identical = true;
        for (const std::size_t threads : {2UL, 4UL}) {
            Session session({threads});
            identical =
                identical && identical_reports(reference, session.run(spec));
        }
        const auto& run = reference.runs.front();
        table.add_row(
            {name, run.insertion.exhaustive ? "exhaustive" : "pruned",
             std::to_string(run.insertion.plans_evaluated),
             std::to_string(plan_space(run.insertion)),
             std::to_string(run.insertion.plans_pruned),
             socbuf::util::format_fixed(run.insertion.searched_loss, 4),
             socbuf::util::format_fixed(run.insertion.preset_loss, 4),
             socbuf::util::format_fixed(100.0 * search_gain(run.insertion),
                                        1) +
                 "%",
             socbuf::util::format_fixed(
                 100.0 * reference.cache.hit_rate(), 0) +
                 "%",
             socbuf::util::format_fixed(s, 3), identical ? "yes" : "NO"});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "plans = unique sizing-engine evaluations the search spent; space "
        "= 2^candidates; pruned = children dropped by dominance\n");
}

void write_json_report(const std::string& path) {
    namespace sj = socbuf::util;
    auto scenarios = sj::JsonValue::array();
    for (const char* name : {"insertion-figure1", "insertion-np-search"}) {
        const ScenarioSpec spec = search_spec(name);
        Session session({1});
        BatchReport report;
        const double s = seconds_of([&] { report = session.run(spec); });
        bool identical = true;
        for (const std::size_t threads : {2UL, 4UL}) {
            Session wide({threads});
            identical = identical && identical_reports(report, wide.run(spec));
        }
        const auto& run = report.runs.front();
        auto row = sj::JsonValue::object();
        row.set("scenario", std::string(name));
        row.set("exhaustive", run.insertion.exhaustive);
        row.set("plans_evaluated", run.insertion.plans_evaluated);
        row.set("plans_pruned", run.insertion.plans_pruned);
        row.set("plan_space", plan_space(run.insertion));
        row.set("searched_loss", run.insertion.searched_loss);
        row.set("preset_loss", run.insertion.preset_loss);
        row.set("search_gain", search_gain(run.insertion));
        auto deselected = sj::JsonValue::array();
        for (const auto& site : run.insertion.deselected_sites)
            deselected.push_back(site);
        row.set("deselected_sites", std::move(deselected));
        row.set("cache_hit_rate", report.cache.hit_rate());
        row.set("wall_s", s);
        row.set("identical_across_threads", identical);
        scenarios.push_back(std::move(row));
        std::printf("%s: %zu/%zu plans (%zu pruned), searched %.4f vs "
                    "preset %.4f (gain %.1f%%), cache hit %.0f%%, %.3fs, "
                    "threads 1/2/4 %s\n",
                    name, run.insertion.plans_evaluated,
                    plan_space(run.insertion), run.insertion.plans_pruned,
                    run.insertion.searched_loss, run.insertion.preset_loss,
                    100.0 * search_gain(run.insertion),
                    100.0 * report.cache.hit_rate(), s,
                    identical ? "identical" : "DIFFER");
    }
    auto root = sj::JsonValue::object();
    root.set("bench", std::string("insertion_search"));
    root.set("scenarios", std::move(scenarios));
    std::ofstream out(path);
    out << root.dump(2) << "\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_InsertionSearchFigure1(benchmark::State& state) {
    const ScenarioSpec spec = search_spec("insertion-figure1");
    const auto threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        Session session({threads});
        auto report = session.run(spec);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_InsertionSearchFigure1)->Arg(1)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
    if (!json_path.empty()) {
        write_json_report(json_path);
        return 0;
    }
    print_search_table();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
