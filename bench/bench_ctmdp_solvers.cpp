// A1 — CTMDP solver cross-validation and scaling, driven through the
// unified solver registry (ctmdp/solver.hpp): the Feinberg LP, relative
// value iteration and Howard policy iteration must agree on the optimal
// average cost; their runtimes scale very differently with the state
// space, which is why the registry's kAuto dispatch escalates
// LP -> PI -> VI by model size.
//
// `--json <file>` switches to the structure-exploitation measurement:
// dense vs banded policy-iteration evaluation per cap, and cold vs
// warm-seeded re-solves through the SolveCache, written as one JSON
// document (the perf-trajectory format under BENCH_*.json) — the
// google-benchmark loop is skipped in that mode.
#include "arch/presets.hpp"
#include "core/allocation.hpp"
#include "core/subsystem_model.hpp"
#include "ctmdp/solve_cache.hpp"
#include "ctmdp/solver.hpp"
#include "exec/executor.hpp"
#include "split/splitter.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace {

/// A bus-b style subsystem model at a given per-flow cap; rate_scale
/// rescales every arrival rate (structure-identical cost/rate variants
/// for the warm-start measurement).
socbuf::core::SubsystemCtmdp make_model(long cap, double rate_scale = 1.0) {
    static const auto sys = socbuf::arch::figure1_system();
    static const auto split = socbuf::split::split_architecture(sys);
    const socbuf::split::Subsystem* bus_b = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "b") bus_b = &sub;
    std::vector<long> caps(bus_b->flows.size(), cap);
    std::vector<double> rates;
    for (const auto& f : bus_b->flows)
        rates.push_back(f.arrival_rate * rate_scale);
    return socbuf::core::SubsystemCtmdp(*bus_b, caps, rates);
}

/// An np-cluster-scaling ingress-bus subsystem model: pe PEs per cluster,
/// every flow capped at `cap` — the wide-band family whose state count
/// grows as (cap + 1)^(pe + 1), i.e. the VI-rung frontier. Returns the
/// CTMDP by value (the split it was built from is a local).
socbuf::ctmdp::CtmdpModel make_np_cluster_model(std::size_t pe, long cap) {
    socbuf::arch::NetworkProcessorParams params;
    params.pe_per_cluster = pe;
    const auto sys = socbuf::arch::network_processor_system(params);
    const auto split = socbuf::split::split_architecture(sys);
    const socbuf::split::Subsystem* bus = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "ingress") bus = &sub;
    std::vector<long> caps(bus->flows.size(), cap);
    std::vector<double> rates;
    for (const auto& f : bus->flows) rates.push_back(f.arrival_rate);
    return socbuf::core::SubsystemCtmdp(*bus, caps, rates).model();
}

socbuf::ctmdp::DispatchOptions forced(socbuf::ctmdp::SolverChoice choice) {
    socbuf::ctmdp::DispatchOptions d;
    d.choice = choice;
    return d;
}

void print_agreement() {
    using socbuf::ctmdp::SolverChoice;
    std::printf("\n=== A1: LP vs value iteration vs policy iteration"
                " (via SolverRegistry) ===\n");
    socbuf::ctmdp::SolverRegistry registry;
    socbuf::util::Table t({"cap", "states", "pairs", "LP gain", "VI gain",
                           "PI gain", "auto picks"});
    for (const long cap : {1L, 2L, 3L, 4L}) {
        const auto model = make_model(cap);
        const auto lp =
            registry.solve(model.model(), forced(SolverChoice::kLp));
        const auto vi = registry.solve(model.model(),
                                       forced(SolverChoice::kValueIteration));
        const auto pi = registry.solve(
            model.model(), forced(SolverChoice::kPolicyIteration));
        const auto picked = registry.select(model.model(), {});
        t.add_row({std::to_string(cap),
                   std::to_string(model.model().state_count()),
                   std::to_string(model.model().pair_count()),
                   socbuf::util::format_fixed(lp.gain, 6),
                   socbuf::util::format_fixed(vi.gain, 6),
                   socbuf::util::format_fixed(pi.gain, 6),
                   socbuf::ctmdp::to_string(picked)});
    }
    std::printf("%s", t.to_string().c_str());
    const auto stats = registry.stats();
    std::printf("registry stats: %zu lp / %zu vi / %zu pi solves, "
                "%zu switching states\n",
                stats.lp_solves, stats.vi_solves, stats.pi_solves,
                stats.switching_states);
}

/// Best-of-k wall-clock of one registry solve.
double best_solve_seconds(const socbuf::ctmdp::CtmdpModel& model,
                          const socbuf::ctmdp::DispatchOptions& dispatch,
                          int reps) {
    socbuf::ctmdp::SolverRegistry registry;
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        auto solution = registry.solve(model, dispatch);
        const auto stop = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(solution);
        const double s = std::chrono::duration<double>(stop - start).count();
        if (r == 0 || s < best) best = s;
    }
    return best;
}

/// The --json measurement: dense vs banded PI evaluation per cap (the
/// structural speedup behind kAuto's widened pi_state_limit), then cold
/// vs warm-seeded re-solves of a structure-identical, rate-shifted
/// model through a warm SolveCache.
void write_json_report(const std::string& path) {
    using socbuf::ctmdp::SolverChoice;
    namespace sj = socbuf::util;

    auto dense_vs_banded = sj::JsonValue::array();
    for (const long cap : {2L, 3L, 4L, 6L}) {
        const auto model = make_model(cap);
        const int reps = model.model().state_count() > 200 ? 3 : 5;
        auto dense = forced(SolverChoice::kPolicyIteration);
        dense.solver.pi.banded_evaluation = false;
        auto banded = forced(SolverChoice::kPolicyIteration);
        banded.solver.pi.banded_evaluation = true;
        const double dense_s = best_solve_seconds(model.model(), dense, reps);
        const double banded_s =
            best_solve_seconds(model.model(), banded, reps);
        auto row = sj::JsonValue::object();
        row.set("cap", cap);
        row.set("states", model.model().state_count());
        row.set("bandwidth", model.model().bandwidth());
        row.set("dense_pi_s", dense_s);
        row.set("banded_pi_s", banded_s);
        row.set("speedup", banded_s > 0.0 ? dense_s / banded_s : 0.0);
        dense_vs_banded.push_back(std::move(row));
        std::printf("cap %ld (%zu states, bw %zu): dense PI %.6fs, banded "
                    "PI %.6fs (%.2fx)\n",
                    cap, model.model().state_count(),
                    model.model().bandwidth(), dense_s, banded_s,
                    banded_s > 0.0 ? dense_s / banded_s : 0.0);
    }

    // Cold vs warm: the second solve sees a structure-identical model
    // with every rate shifted 5% — a budget-sweep-style neighbour — and
    // is seeded from the first solve's converged policy/bias.
    auto cold_vs_warm = sj::JsonValue::object();
    {
        const long cap = 4;
        const auto base = make_model(cap);
        const auto shifted = make_model(cap, 1.05);
        const auto pi = forced(SolverChoice::kPolicyIteration);

        socbuf::ctmdp::SolverRegistry reference;
        const auto start = std::chrono::steady_clock::now();
        const auto cold = reference.solve(shifted.model(), pi);
        const auto stop = std::chrono::steady_clock::now();
        const double cold_s =
            std::chrono::duration<double>(stop - start).count();

        socbuf::ctmdp::SolverRegistry registry;
        socbuf::ctmdp::SolveCache cache(0, /*warm_start=*/true);
        (void)cache.solve(registry, base.model(), pi);
        const auto warm_start = std::chrono::steady_clock::now();
        const auto warm = cache.solve(registry, shifted.model(), pi);
        const auto warm_stop = std::chrono::steady_clock::now();
        const double warm_s =
            std::chrono::duration<double>(warm_stop - warm_start).count();

        cold_vs_warm.set("cap", cap);
        cold_vs_warm.set("cold_iterations", cold.iterations);
        cold_vs_warm.set("warm_iterations", warm.iterations);
        cold_vs_warm.set("warm_hits", cache.stats().warm_hits);
        cold_vs_warm.set("iterations_saved", cache.stats().iterations_saved);
        cold_vs_warm.set("cold_s", cold_s);
        cold_vs_warm.set("warm_s", warm_s);
        cold_vs_warm.set("gain_delta", warm.gain - cold.gain);
        std::printf("cold vs warm (cap %ld, rates x1.05): %zu -> %zu PI "
                    "updates (%zu saved), %.6fs -> %.6fs\n",
                    cap, cold.iterations, warm.iterations,
                    cache.stats().iterations_saved, cold_s, warm_s);
    }

    // VI at scale: serial Jacobi vs the executor-fanned sweep at four
    // workers (bit-identical by contract — the `identical` flag verifies
    // it) vs the opt-in Gauss–Seidel sweep, at the engine's VI-rung
    // tolerance. Models: the figure-1 bus-b family (narrow band) and the
    // np-cluster-scaling ingress buses at pe 6 and 8 (wide band). The
    // pe-8 cap-3 model (262144 states, ~45 s serial) and pe >= 10 are
    // beyond the CI budget and deliberately not measured here — the cap
    // is the pe-8 cap-2 model at 19683 states (see bench/README.md).
    auto vi_scaling = sj::JsonValue::array();
    {
        struct ViCase {
            const char* label;
            socbuf::ctmdp::CtmdpModel model;
        };
        std::vector<ViCase> cases;
        cases.push_back({"figure1-bus-b cap=6", make_model(6).model()});
        cases.push_back({"figure1-bus-b cap=8", make_model(8).model()});
        cases.push_back({"np-ingress pe=6 cap=2", make_np_cluster_model(6, 2)});
        cases.push_back({"np-ingress pe=6 cap=3", make_np_cluster_model(6, 3)});
        cases.push_back({"np-ingress pe=8 cap=2", make_np_cluster_model(8, 2)});
        socbuf::exec::Executor four(4);
        for (auto& c : cases) {
            const auto& model = c.model;
            const int reps = model.state_count() > 4096 ? 1 : 3;
            auto jacobi = forced(SolverChoice::kValueIteration);
            jacobi.solver.vi.tolerance = 1e-7;       // the engine's VI rung
            jacobi.solver.vi.max_iterations = 50000;
            auto fanned = jacobi;
            fanned.solver.vi.executor = &four;
            fanned.solver.vi.parallel_min_states = 1;  // fan even small rows
            auto gs = jacobi;
            gs.solver.vi.sweep = socbuf::ctmdp::ViSweep::kGaussSeidel;

            socbuf::ctmdp::SolverRegistry registry;
            const auto serial_sol = registry.solve(model, jacobi);
            const auto fanned_sol = registry.solve(model, fanned);
            const auto gs_sol = registry.solve(model, gs);
            const bool identical = serial_sol.gain == fanned_sol.gain &&
                                   serial_sol.bias == fanned_sol.bias;
            const double serial_s = best_solve_seconds(model, jacobi, reps);
            const double fanned_s = best_solve_seconds(model, fanned, reps);
            const double gs_s = best_solve_seconds(model, gs, reps);

            auto row = sj::JsonValue::object();
            row.set("label", std::string(c.label));
            row.set("states", model.state_count());
            row.set("bandwidth", model.bandwidth());
            row.set("jacobi_s", serial_s);
            row.set("jacobi_iterations", serial_sol.iterations);
            row.set("parallel4_s", fanned_s);
            row.set("parallel4_speedup",
                    fanned_s > 0.0 ? serial_s / fanned_s : 0.0);
            row.set("parallel4_identical", identical);
            row.set("gs_s", gs_s);
            row.set("gs_iterations", gs_sol.iterations);
            row.set("gs_speedup", gs_s > 0.0 ? serial_s / gs_s : 0.0);
            row.set("gs_iteration_ratio",
                    gs_sol.iterations > 0
                        ? static_cast<double>(serial_sol.iterations) /
                              static_cast<double>(gs_sol.iterations)
                        : 0.0);
            row.set("gs_gain_delta", gs_sol.gain - serial_sol.gain);
            vi_scaling.push_back(std::move(row));
            std::printf(
                "%s (%zu states): jacobi %.3fs/%zu it, parallel4 %.3fs "
                "(identical %s), gs %.3fs/%zu it (%.2fx fewer sweeps)\n",
                c.label, model.state_count(), serial_s,
                serial_sol.iterations, fanned_s, identical ? "yes" : "NO",
                gs_s, gs_sol.iterations,
                gs_sol.iterations > 0
                    ? static_cast<double>(serial_sol.iterations) /
                          static_cast<double>(gs_sol.iterations)
                    : 0.0);
        }
    }

    auto root = sj::JsonValue::object();
    root.set("bench", std::string("ctmdp_solvers"));
    root.set("dense_vs_banded_pi", std::move(dense_vs_banded));
    root.set("cold_vs_warm", std::move(cold_vs_warm));
    root.set("vi_scaling", std::move(vi_scaling));
    std::ofstream out(path);
    out << root.dump(2) << "\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_LpSolver(benchmark::State& state) {
    const auto model = make_model(state.range(0));
    socbuf::ctmdp::SolverRegistry registry;
    const auto dispatch = forced(socbuf::ctmdp::SolverChoice::kLp);
    for (auto _ : state) {
        auto r = registry.solve(model.model(), dispatch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_LpSolver)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

void BM_ValueIteration(benchmark::State& state) {
    const auto model = make_model(state.range(0));
    socbuf::ctmdp::SolverRegistry registry;
    const auto dispatch =
        forced(socbuf::ctmdp::SolverChoice::kValueIteration);
    for (auto _ : state) {
        auto r = registry.solve(model.model(), dispatch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ValueIteration)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Unit(
    benchmark::kMillisecond);

void BM_PolicyIteration(benchmark::State& state) {
    const auto model = make_model(state.range(0));
    socbuf::ctmdp::SolverRegistry registry;
    const auto dispatch =
        forced(socbuf::ctmdp::SolverChoice::kPolicyIteration);
    for (auto _ : state) {
        auto r = registry.solve(model.model(), dispatch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_PolicyIteration)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
    print_agreement();
    if (!json_path.empty()) {
        // JSON mode is the CI/perf-trajectory entry point: one
        // structured measurement, no google-benchmark loop.
        write_json_report(json_path);
        return 0;
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
