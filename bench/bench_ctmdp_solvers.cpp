// A1 — CTMDP solver cross-validation and scaling: the Feinberg LP,
// relative value iteration and policy iteration must agree on the optimal
// average cost; their runtimes scale very differently with the state
// space, which is why the sizing engine picks per model size.
#include "arch/presets.hpp"
#include "core/allocation.hpp"
#include "core/subsystem_model.hpp"
#include "ctmdp/lp_solver.hpp"
#include "ctmdp/policy_iteration.hpp"
#include "ctmdp/value_iteration.hpp"
#include "split/splitter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

/// A bus-b style subsystem model at a given per-flow cap.
socbuf::core::SubsystemCtmdp make_model(long cap) {
    static const auto sys = socbuf::arch::figure1_system();
    static const auto split = socbuf::split::split_architecture(sys);
    const socbuf::split::Subsystem* bus_b = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "b") bus_b = &sub;
    std::vector<long> caps(bus_b->flows.size(), cap);
    std::vector<double> rates;
    for (const auto& f : bus_b->flows) rates.push_back(f.arrival_rate);
    return socbuf::core::SubsystemCtmdp(*bus_b, caps, rates);
}

void print_agreement() {
    std::printf("\n=== A1: LP vs value iteration vs policy iteration ===\n");
    socbuf::util::Table t({"cap", "states", "pairs", "LP gain", "VI gain",
                           "PI gain", "LP pivots"});
    for (const long cap : {1L, 2L, 3L, 4L}) {
        const auto model = make_model(cap);
        const auto lp = socbuf::ctmdp::solve_average_cost_lp(model.model());
        const auto vi =
            socbuf::ctmdp::relative_value_iteration(model.model());
        const auto pi = socbuf::ctmdp::policy_iteration(model.model());
        t.add_row({std::to_string(cap),
                   std::to_string(model.model().state_count()),
                   std::to_string(model.model().pair_count()),
                   socbuf::util::format_fixed(lp.average_cost, 6),
                   socbuf::util::format_fixed(vi.gain, 6),
                   socbuf::util::format_fixed(pi.gain, 6),
                   std::to_string(lp.simplex_iterations)});
    }
    std::printf("%s", t.to_string().c_str());
}

void BM_LpSolver(benchmark::State& state) {
    const auto model = make_model(state.range(0));
    for (auto _ : state) {
        auto r = socbuf::ctmdp::solve_average_cost_lp(model.model());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_LpSolver)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

void BM_ValueIteration(benchmark::State& state) {
    const auto model = make_model(state.range(0));
    for (auto _ : state) {
        auto r = socbuf::ctmdp::relative_value_iteration(model.model());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ValueIteration)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Unit(
    benchmark::kMillisecond);

void BM_PolicyIteration(benchmark::State& state) {
    const auto model = make_model(state.range(0));
    for (auto _ : state) {
        auto r = socbuf::ctmdp::policy_iteration(model.model());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_PolicyIteration)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_agreement();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
