// A1 — CTMDP solver cross-validation and scaling, driven through the
// unified solver registry (ctmdp/solver.hpp): the Feinberg LP, relative
// value iteration and Howard policy iteration must agree on the optimal
// average cost; their runtimes scale very differently with the state
// space, which is why the registry's kAuto dispatch escalates
// LP -> PI -> VI by model size.
#include "arch/presets.hpp"
#include "core/allocation.hpp"
#include "core/subsystem_model.hpp"
#include "ctmdp/solver.hpp"
#include "split/splitter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

/// A bus-b style subsystem model at a given per-flow cap.
socbuf::core::SubsystemCtmdp make_model(long cap) {
    static const auto sys = socbuf::arch::figure1_system();
    static const auto split = socbuf::split::split_architecture(sys);
    const socbuf::split::Subsystem* bus_b = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "b") bus_b = &sub;
    std::vector<long> caps(bus_b->flows.size(), cap);
    std::vector<double> rates;
    for (const auto& f : bus_b->flows) rates.push_back(f.arrival_rate);
    return socbuf::core::SubsystemCtmdp(*bus_b, caps, rates);
}

socbuf::ctmdp::DispatchOptions forced(socbuf::ctmdp::SolverChoice choice) {
    socbuf::ctmdp::DispatchOptions d;
    d.choice = choice;
    return d;
}

void print_agreement() {
    using socbuf::ctmdp::SolverChoice;
    std::printf("\n=== A1: LP vs value iteration vs policy iteration"
                " (via SolverRegistry) ===\n");
    socbuf::ctmdp::SolverRegistry registry;
    socbuf::util::Table t({"cap", "states", "pairs", "LP gain", "VI gain",
                           "PI gain", "auto picks"});
    for (const long cap : {1L, 2L, 3L, 4L}) {
        const auto model = make_model(cap);
        const auto lp =
            registry.solve(model.model(), forced(SolverChoice::kLp));
        const auto vi = registry.solve(model.model(),
                                       forced(SolverChoice::kValueIteration));
        const auto pi = registry.solve(
            model.model(), forced(SolverChoice::kPolicyIteration));
        const auto picked = registry.select(model.model(), {});
        t.add_row({std::to_string(cap),
                   std::to_string(model.model().state_count()),
                   std::to_string(model.model().pair_count()),
                   socbuf::util::format_fixed(lp.gain, 6),
                   socbuf::util::format_fixed(vi.gain, 6),
                   socbuf::util::format_fixed(pi.gain, 6),
                   socbuf::ctmdp::to_string(picked)});
    }
    std::printf("%s", t.to_string().c_str());
    const auto stats = registry.stats();
    std::printf("registry stats: %zu lp / %zu vi / %zu pi solves, "
                "%zu switching states\n",
                stats.lp_solves, stats.vi_solves, stats.pi_solves,
                stats.switching_states);
}

void BM_LpSolver(benchmark::State& state) {
    const auto model = make_model(state.range(0));
    socbuf::ctmdp::SolverRegistry registry;
    const auto dispatch = forced(socbuf::ctmdp::SolverChoice::kLp);
    for (auto _ : state) {
        auto r = registry.solve(model.model(), dispatch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_LpSolver)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

void BM_ValueIteration(benchmark::State& state) {
    const auto model = make_model(state.range(0));
    socbuf::ctmdp::SolverRegistry registry;
    const auto dispatch =
        forced(socbuf::ctmdp::SolverChoice::kValueIteration);
    for (auto _ : state) {
        auto r = registry.solve(model.model(), dispatch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ValueIteration)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Unit(
    benchmark::kMillisecond);

void BM_PolicyIteration(benchmark::State& state) {
    const auto model = make_model(state.range(0));
    socbuf::ctmdp::SolverRegistry registry;
    const auto dispatch =
        forced(socbuf::ctmdp::SolverChoice::kPolicyIteration);
    for (auto _ : state) {
        auto r = registry.solve(model.model(), dispatch);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_PolicyIteration)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_agreement();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
