// E3 — Figure 3: per-processor loss under (1) constant sizing, (2) CTMDP
// resizing, (3) the timeout policy, on the network-processor testbench at
// total budget 320, averaged over 10 replications as in the paper.
#include "core/experiments.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

void print_figure3() {
    socbuf::core::Figure3Params params;  // paper-scale defaults
    const auto r = socbuf::core::run_figure3(params);

    std::printf("\n=== Figure 3: loss per processor (budget %ld, %zu "
                "replications) ===\n",
                params.total_budget, params.replications);
    socbuf::util::Table t({"processor", "constant", "resized", "timeout",
                           "alloc pre", "alloc post"});
    for (std::size_t p = 0; p < r.constant_loss.size(); ++p) {
        t.add_row({std::to_string(p + 1),
                   socbuf::util::format_fixed(r.constant_loss[p], 1),
                   socbuf::util::format_fixed(r.resized_loss[p], 1),
                   socbuf::util::format_fixed(r.timeout_loss[p], 1),
                   std::to_string(r.constant_alloc[p]),
                   std::to_string(r.resized_alloc[p])});
    }
    t.add_row({"TOTAL", socbuf::util::format_fixed(r.constant_total, 1),
               socbuf::util::format_fixed(r.resized_total, 1),
               socbuf::util::format_fixed(r.timeout_total, 1), "-", "-"});
    std::printf("%s", t.to_string().c_str());
    std::printf("timeout threshold (scaled mean wait): %.3f\n",
                r.timeout_threshold);
    std::printf("loss reduction of resizing vs constant: %.1f%%  "
                "(paper: ~20%%)\n",
                100.0 * r.gain_vs_constant());
    std::printf("loss reduction of resizing vs timeout:  %.1f%%  "
                "(paper: ~50%%)\n",
                100.0 * r.gain_vs_timeout());
}

void BM_Figure3Pipeline(benchmark::State& state) {
    socbuf::core::Figure3Params params;
    params.horizon = 1200.0;
    params.warmup = 120.0;
    params.replications = 2;
    params.sizing_iterations = 3;
    for (auto _ : state) {
        auto r = socbuf::core::run_figure3(params);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Figure3Pipeline)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
    print_figure3();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
