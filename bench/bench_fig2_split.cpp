// E2 — Figure 2: splitting a bridged architecture into linear subsystems.
// Prints the subsystem decomposition of the paper's Figure 1 sample (four
// subsystems, four inserted bridge buffers) and of the network-processor
// testbench, then times the splitter.
#include "arch/presets.hpp"
#include "nonlinear/coupled_model.hpp"
#include "split/splitter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

void print_split(const socbuf::arch::TestSystem& system) {
    const auto split = socbuf::split::split_architecture(system);
    socbuf::split::verify_linearity(system, split);
    std::printf("\n=== Figure 2 split of '%s' ===\n", system.name.c_str());
    std::printf("subsystems: %zu, inserted bridge buffers: %zu\n",
                split.subsystems.size(), split.inserted_buffer_count);
    socbuf::util::Table t({"subsystem(bus)", "mu", "flows", "inserted",
                           "offered", "utilization"});
    for (const auto& sub : split.subsystems) {
        std::size_t inserted = 0;
        for (const auto& f : sub.flows)
            if (f.inserted) ++inserted;
        t.add_row({sub.bus_name, socbuf::util::format_fixed(sub.service_rate, 1),
                   std::to_string(sub.flows.size()), std::to_string(inserted),
                   socbuf::util::format_fixed(sub.offered_rate(), 2),
                   socbuf::util::format_fixed(sub.utilization(), 2)});
    }
    std::printf("%s", t.to_string().c_str());

    const socbuf::nonlinear::CoupledBusModel monolithic(system, split);
    std::printf(
        "monolithic (unsplit) model: %zu unknowns, %zu bilinear terms — "
        "the quadratic coupling the split removes\n",
        monolithic.unknown_count(), monolithic.bilinear_term_count());
}

void BM_SplitFigure1(benchmark::State& state) {
    const auto sys = socbuf::arch::figure1_system();
    for (auto _ : state) {
        auto split = socbuf::split::split_architecture(sys);
        benchmark::DoNotOptimize(split);
    }
}
BENCHMARK(BM_SplitFigure1);

void BM_SplitNetworkProcessor(benchmark::State& state) {
    const auto sys = socbuf::arch::network_processor_system();
    for (auto _ : state) {
        auto split = socbuf::split::split_architecture(sys);
        benchmark::DoNotOptimize(split);
    }
}
BENCHMARK(BM_SplitNetworkProcessor);

}  // namespace

int main(int argc, char** argv) {
    print_split(socbuf::arch::figure1_system());
    print_split(socbuf::arch::network_processor_system());
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
