// Extension ablation — Poisson subsystem models (paper baseline, with the
// measured-occupancy profiling term) vs burst-aware MMPP-modulated models:
// per-model predicted loss on the hot bus, end-to-end sizing quality on
// the network processor, and the state-space cost of the richer model.
#include "arch/presets.hpp"
#include "core/engine.hpp"
#include "core/modulated_model.hpp"
#include "core/subsystem_model.hpp"
#include "ctmdp/lp_solver.hpp"
#include "sim/simulator.hpp"
#include "split/splitter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

void print_model_comparison() {
    const auto sys = socbuf::arch::figure1_system();
    const auto split = socbuf::split::split_architecture(sys);
    std::printf("\n=== Extension: Poisson vs burst-aware (MMPP) models ===\n");
    socbuf::util::Table t({"bus", "cap", "poisson states",
                           "modulated states", "poisson loss",
                           "modulated loss"});
    for (const auto& sub : split.subsystems) {
        std::vector<long> caps(sub.flows.size(), 2);
        std::vector<double> rates;
        for (const auto& f : sub.flows) rates.push_back(f.arrival_rate);
        const socbuf::core::SubsystemCtmdp poisson(sub, caps, rates);
        const socbuf::core::ModulatedSubsystemCtmdp modulated(sub, caps,
                                                              rates);
        const auto lp_p =
            socbuf::ctmdp::solve_average_cost_lp(poisson.model());
        const auto lp_m =
            socbuf::ctmdp::solve_average_cost_lp(modulated.model());
        t.add_row({sub.bus_name, "2",
                   std::to_string(poisson.model().state_count()),
                   std::to_string(modulated.model().state_count()),
                   socbuf::util::format_fixed(lp_p.average_cost, 4),
                   socbuf::util::format_fixed(lp_m.average_cost, 4)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("the modulated model predicts higher loss on buses with "
                "bursty flows — the demand signal Poisson models miss.\n");
}

void print_sizing_comparison() {
    const auto sys = socbuf::arch::network_processor_system();
    std::printf("\n=== Extension: end-to-end sizing, model family x "
                "profiling ===\n");
    socbuf::util::Table t({"models", "occupancy profiling", "total loss"});
    for (const bool modulated : {false, true}) {
        for (const double occ_weight : {0.0, 2.5}) {
            socbuf::core::SizingOptions opts;
            opts.total_budget = 320;
            opts.use_modulated_models = modulated;
            opts.measured_occupancy_weight = occ_weight;
            opts.model_cap = modulated ? 2 : 3;
            opts.sim.horizon = 4000.0;
            opts.sim.warmup = 400.0;
            opts.sim.seed = 2005;
            const auto report =
                socbuf::core::BufferSizingEngine(opts).run(sys);
            socbuf::sim::SimConfig cfg = opts.sim;
            const auto eval = socbuf::sim::replicate_losses(
                sys, report.best, cfg, 5);
            t.add_row({modulated ? "MMPP" : "Poisson",
                       occ_weight > 0.0 ? "on" : "off",
                       socbuf::util::format_fixed(eval.mean_total_lost, 1)});
        }
    }
    std::printf("%s", t.to_string().c_str());
}

void BM_ModulatedLp(benchmark::State& state) {
    const auto sys = socbuf::arch::figure1_system();
    const auto split = socbuf::split::split_architecture(sys);
    const socbuf::split::Subsystem* bus_b = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "b") bus_b = &sub;
    std::vector<long> caps(bus_b->flows.size(), state.range(0));
    std::vector<double> rates;
    for (const auto& f : bus_b->flows) rates.push_back(f.arrival_rate);
    const socbuf::core::ModulatedSubsystemCtmdp m(*bus_b, caps, rates);
    for (auto _ : state) {
        auto r = socbuf::ctmdp::solve_average_cost_lp(m.model());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ModulatedLp)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_model_comparison();
    print_sizing_comparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
