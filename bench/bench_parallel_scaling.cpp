// A9 — parallel execution backbone: wall-clock scaling and determinism of
// the exec layer on the Figure 3 workload. Two claims are measured:
//
//   1. determinism — run_figure3 with threads = 1, 2, 4 produces
//      bit-identical totals (each replication owns its RNG substream and
//      results are folded in index order), and the fanned timeout
//      calibration produces bit-identical thresholds at every width,
//   2. speedup — the replication sweep, the timeout-calibration fan-out
//      (calibrate x8: eight independent no-timeout sims averaged into
//      the per-site thresholds) and the full driver get faster with more
//      workers (on multi-core hardware; a 1-core container shows ~1x,
//      which the table makes obvious rather than hiding).
#include "arch/presets.hpp"
#include "core/experiments.hpp"
#include "exec/executor.hpp"
#include "exec/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <functional>

namespace {

socbuf::core::Figure3Params scaled_params(std::size_t threads) {
    socbuf::core::Figure3Params p;
    p.horizon = 2000.0;
    p.warmup = 200.0;
    p.replications = 10;  // the paper's 10 repetitions
    p.sizing_iterations = 6;
    p.threads = threads;
    return p;
}

double seconds_of(const std::function<void()>& body) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

void print_scaling() {
    std::printf("\n=== A9: parallel scaling on the Figure 3 workload "
                "(hardware threads: %zu) ===\n",
                socbuf::exec::resolve_thread_count(0));

    // Replication sweep in isolation: the embarrassingly parallel part.
    const auto system = socbuf::arch::network_processor_system();
    socbuf::sim::SimConfig cfg;
    cfg.horizon = 2000.0;
    cfg.warmup = 200.0;
    cfg.seed = 2005;
    const std::vector<long> alloc(
        socbuf::arch::enumerate_buffer_sites(system.architecture).size(),
        10);

    socbuf::util::Table t({"threads", "replicate_losses [s]",
                           "calibrate x8 [s]", "run_figure3 [s]",
                           "resized total", "identical"});
    double rep_base = 0.0;
    double cal_base = 0.0;
    double fig_base = 0.0;
    double reference_total = 0.0;
    socbuf::sim::TimeoutCalibration reference_calibration;
    bool first = true;
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        socbuf::sim::ReplicatedLosses rep;
        const double rep_s = seconds_of([&] {
            rep = socbuf::sim::replicate_losses(system, alloc, cfg, 10,
                                                threads);
        });
        // The in-job timeout-calibration fan-out: eight independent
        // no-timeout sims averaged into the per-site thresholds, fanned
        // on the executor exactly as a sizing job does it.
        socbuf::exec::Executor executor(threads);
        socbuf::sim::TimeoutCalibration calibration;
        const double cal_s = seconds_of([&] {
            calibration = socbuf::sim::calibrate_timeout(system, alloc, cfg,
                                                         4.0, executor, 8);
        });
        socbuf::core::Figure3Result fig;
        const double fig_s = seconds_of(
            [&] { fig = socbuf::core::run_figure3(scaled_params(threads)); });
        if (first) {
            rep_base = rep_s;
            cal_base = cal_s;
            fig_base = fig_s;
            reference_total = fig.resized_total;
            reference_calibration = calibration;
            first = false;
        }
        const bool identical =
            fig.resized_total == reference_total &&
            calibration.global_threshold ==
                reference_calibration.global_threshold &&
            calibration.site_thresholds ==
                reference_calibration.site_thresholds;
        t.add_row({std::to_string(threads),
                   socbuf::util::format_fixed(rep_s, 3) + " (" +
                       socbuf::util::format_fixed(rep_base / rep_s, 2) + "x)",
                   socbuf::util::format_fixed(cal_s, 3) + " (" +
                       socbuf::util::format_fixed(cal_base / cal_s, 2) + "x)",
                   socbuf::util::format_fixed(fig_s, 3) + " (" +
                       socbuf::util::format_fixed(fig_base / fig_s, 2) + "x)",
                   socbuf::util::format_fixed(fig.resized_total, 6),
                   identical ? "yes" : "NO"});
    }
    std::printf("%s", t.to_string().c_str());
}

void BM_ReplicateLosses(benchmark::State& state) {
    const auto system = socbuf::arch::network_processor_system();
    socbuf::sim::SimConfig cfg;
    cfg.horizon = 1000.0;
    cfg.warmup = 100.0;
    cfg.seed = 2005;
    const std::vector<long> alloc(
        socbuf::arch::enumerate_buffer_sites(system.architecture).size(),
        10);
    const auto threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto r = socbuf::sim::replicate_losses(system, alloc, cfg, 10,
                                               threads);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ReplicateLosses)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_scaling();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
