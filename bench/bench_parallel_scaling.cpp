// A9 — parallel execution backbone: wall-clock scaling and determinism of
// the exec layer on the Figure 3 workload. Two claims are measured:
//
//   1. determinism — run_figure3 with threads = 1, 2, 4 produces
//      bit-identical totals (each replication owns its RNG substream and
//      results are folded in index order), and the fanned timeout
//      calibration produces bit-identical thresholds at every width,
//   2. speedup — the replication sweep, the timeout-calibration fan-out
//      (calibrate x8: eight independent no-timeout sims averaged into
//      the per-site thresholds) and the full driver get faster with more
//      workers (on multi-core hardware; a 1-core container shows ~1x,
//      which the table makes obvious rather than hiding).
//
// `--json <file>` writes the same measurements as one JSON document (the
// perf-trajectory format), adding a VI-sweep thread-scaling column: the
// executor-fanned Jacobi sweep on a 16384-state np ingress-bus model at
// threads 1/2/4, with a per-row bit-identity flag against the one-thread
// solve. The google-benchmark loop is skipped in that mode.
#include "arch/presets.hpp"
#include "core/experiments.hpp"
#include "core/subsystem_model.hpp"
#include "ctmdp/solver.hpp"
#include "exec/executor.hpp"
#include "exec/thread_pool.hpp"
#include "sim/simulator.hpp"
#include "split/splitter.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

namespace {

socbuf::core::Figure3Params scaled_params(std::size_t threads) {
    socbuf::core::Figure3Params p;
    p.horizon = 2000.0;
    p.warmup = 200.0;
    p.replications = 10;  // the paper's 10 repetitions
    p.sizing_iterations = 6;
    p.threads = threads;
    return p;
}

double seconds_of(const std::function<void()>& body) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

/// Run the figure-3 scaling measurements; print the table and, when
/// `json_rows` is non-null, append one JSON row per thread count.
void print_scaling(socbuf::util::JsonValue* json_rows) {
    std::printf("\n=== A9: parallel scaling on the Figure 3 workload "
                "(hardware threads: %zu) ===\n",
                socbuf::exec::resolve_thread_count(0));

    // Replication sweep in isolation: the embarrassingly parallel part.
    const auto system = socbuf::arch::network_processor_system();
    socbuf::sim::SimConfig cfg;
    cfg.horizon = 2000.0;
    cfg.warmup = 200.0;
    cfg.seed = 2005;
    const std::vector<long> alloc(
        socbuf::arch::enumerate_buffer_sites(system.architecture).size(),
        10);

    socbuf::util::Table t({"threads", "replicate_losses [s]",
                           "calibrate x8 [s]", "run_figure3 [s]",
                           "resized total", "identical"});
    double rep_base = 0.0;
    double cal_base = 0.0;
    double fig_base = 0.0;
    double reference_total = 0.0;
    socbuf::sim::TimeoutCalibration reference_calibration;
    bool first = true;
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        socbuf::sim::ReplicatedLosses rep;
        const double rep_s = seconds_of([&] {
            rep = socbuf::sim::replicate_losses(system, alloc, cfg, 10,
                                                threads);
        });
        // The in-job timeout-calibration fan-out: eight independent
        // no-timeout sims averaged into the per-site thresholds, fanned
        // on the executor exactly as a sizing job does it.
        socbuf::exec::Executor executor(threads);
        socbuf::sim::TimeoutCalibration calibration;
        const double cal_s = seconds_of([&] {
            calibration = socbuf::sim::calibrate_timeout(system, alloc, cfg,
                                                         4.0, executor, 8);
        });
        socbuf::core::Figure3Result fig;
        const double fig_s = seconds_of(
            [&] { fig = socbuf::core::run_figure3(scaled_params(threads)); });
        if (first) {
            rep_base = rep_s;
            cal_base = cal_s;
            fig_base = fig_s;
            reference_total = fig.resized_total;
            reference_calibration = calibration;
            first = false;
        }
        const bool identical =
            fig.resized_total == reference_total &&
            calibration.global_threshold ==
                reference_calibration.global_threshold &&
            calibration.site_thresholds ==
                reference_calibration.site_thresholds;
        t.add_row({std::to_string(threads),
                   socbuf::util::format_fixed(rep_s, 3) + " (" +
                       socbuf::util::format_fixed(rep_base / rep_s, 2) + "x)",
                   socbuf::util::format_fixed(cal_s, 3) + " (" +
                       socbuf::util::format_fixed(cal_base / cal_s, 2) + "x)",
                   socbuf::util::format_fixed(fig_s, 3) + " (" +
                       socbuf::util::format_fixed(fig_base / fig_s, 2) + "x)",
                   socbuf::util::format_fixed(fig.resized_total, 6),
                   identical ? "yes" : "NO"});
        if (json_rows != nullptr) {
            auto row = socbuf::util::JsonValue::object();
            row.set("threads", threads);
            row.set("replicate_losses_s", rep_s);
            row.set("calibrate_s", cal_s);
            row.set("run_figure3_s", fig_s);
            row.set("resized_total", fig.resized_total);
            row.set("identical", identical);
            json_rows->push_back(std::move(row));
        }
    }
    std::printf("%s", t.to_string().c_str());
}

/// The VI-sweep thread-scaling measurement: the executor-fanned Jacobi
/// sweep on the 16384-state np-cluster-scaling ingress bus (pe = 6,
/// cap = 3) at one, two and four workers. Results must be bit-identical
/// at every width (chunk boundaries depend only on the state count);
/// `identical` verifies gain and bias against the one-thread solve.
socbuf::util::JsonValue vi_sweep_scaling() {
    namespace sj = socbuf::util;
    socbuf::arch::NetworkProcessorParams params;
    params.pe_per_cluster = 6;
    const auto sys = socbuf::arch::network_processor_system(params);
    const auto split = socbuf::split::split_architecture(sys);
    const socbuf::split::Subsystem* bus = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "ingress") bus = &sub;
    std::vector<long> caps(bus->flows.size(), 3);
    std::vector<double> rates;
    for (const auto& f : bus->flows) rates.push_back(f.arrival_rate);
    const socbuf::core::SubsystemCtmdp model(*bus, caps, rates);

    auto rows = sj::JsonValue::array();
    socbuf::ctmdp::SubsystemSolution reference;
    double base_s = 0.0;
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        socbuf::exec::Executor executor(threads);
        socbuf::ctmdp::DispatchOptions d;
        d.choice = socbuf::ctmdp::SolverChoice::kValueIteration;
        d.solver.vi.tolerance = 1e-7;  // the engine's VI rung
        d.solver.vi.max_iterations = 50000;
        d.solver.vi.executor = &executor;
        socbuf::ctmdp::SolverRegistry registry;
        socbuf::ctmdp::SubsystemSolution solution;
        const double s = seconds_of(
            [&] { solution = registry.solve(model.model(), d); });
        if (threads == 1) {
            reference = solution;
            base_s = s;
        }
        const bool identical = solution.gain == reference.gain &&
                               solution.bias == reference.bias;
        auto row = sj::JsonValue::object();
        row.set("threads", threads);
        row.set("states", model.model().state_count());
        row.set("vi_solve_s", s);
        row.set("speedup", s > 0.0 ? base_s / s : 0.0);
        row.set("identical", identical);
        rows.push_back(std::move(row));
        std::printf("vi sweep (16384 states, %zu threads): %.3fs (%.2fx, "
                    "identical %s)\n",
                    threads, s, s > 0.0 ? base_s / s : 0.0,
                    identical ? "yes" : "NO");
    }
    return rows;
}

void write_json_report(const std::string& path) {
    namespace sj = socbuf::util;
    auto figure3 = sj::JsonValue::array();
    print_scaling(&figure3);
    auto root = sj::JsonValue::object();
    root.set("bench", std::string("parallel_scaling"));
    root.set("hardware_threads", socbuf::exec::resolve_thread_count(0));
    root.set("figure3_scaling", std::move(figure3));
    root.set("vi_sweep_scaling", vi_sweep_scaling());
    std::ofstream out(path);
    out << root.dump(2) << "\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_ReplicateLosses(benchmark::State& state) {
    const auto system = socbuf::arch::network_processor_system();
    socbuf::sim::SimConfig cfg;
    cfg.horizon = 1000.0;
    cfg.warmup = 100.0;
    cfg.seed = 2005;
    const std::vector<long> alloc(
        socbuf::arch::enumerate_buffer_sites(system.architecture).size(),
        10);
    const auto threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        auto r = socbuf::sim::replicate_losses(system, alloc, cfg, 10,
                                               threads);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_ReplicateLosses)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
    if (!json_path.empty()) {
        // JSON mode is the CI/perf-trajectory entry point: the scaling
        // measurements once, no google-benchmark loop.
        write_json_report(json_path);
        return 0;
    }
    print_scaling(nullptr);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
