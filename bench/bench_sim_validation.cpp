// A2 — simulator validation: measured M/M/1/K blocking against the closed
// form across loads and capacities, plus raw event throughput of the DES
// on the network-processor testbench.
#include "arch/presets.hpp"
#include "queueing/mm1k.hpp"
#include "sim/simulator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

socbuf::arch::TestSystem single_queue(double lambda, double mu) {
    socbuf::arch::TestSystem sys;
    sys.name = "mm1k";
    const auto bus = sys.architecture.add_bus("bus", mu);
    const auto src = sys.architecture.add_processor("src", bus);
    const auto dst = sys.architecture.add_processor("dst", bus);
    sys.flows.push_back({src, dst, lambda, 1.0, 0.0, 0.0});
    return sys;
}

void print_validation() {
    std::printf("\n=== A2: simulated vs analytic M/M/1/K blocking ===\n");
    socbuf::util::Table t(
        {"rho", "K", "analytic", "simulated", "abs err"});
    for (const double rho : {0.5, 0.8, 0.95, 1.2}) {
        for (const long k : {3L, 6L, 12L}) {
            const auto sys = single_queue(rho, 1.0);
            socbuf::sim::SimConfig cfg;
            cfg.horizon = 80000.0;
            cfg.warmup = 2000.0;
            cfg.seed = 7;
            const auto r = socbuf::sim::simulate(sys, {k, 1}, cfg);
            const double measured = static_cast<double>(r.lost[0]) /
                                    static_cast<double>(r.offered[0]);
            const double exact =
                socbuf::queueing::analyze_mm1k(rho, 1.0,
                                               static_cast<std::size_t>(k))
                    .blocking_probability;
            t.add_row({socbuf::util::format_fixed(rho, 2),
                       std::to_string(k),
                       socbuf::util::format_fixed(exact, 4),
                       socbuf::util::format_fixed(measured, 4),
                       socbuf::util::format_fixed(std::abs(measured - exact),
                                                  4)});
        }
    }
    std::printf("%s", t.to_string().c_str());
}

void BM_NetworkProcessorSim(benchmark::State& state) {
    const auto sys = socbuf::arch::network_processor_system();
    const std::vector<long> caps(25, 13);
    socbuf::sim::SimConfig cfg;
    cfg.horizon = static_cast<double>(state.range(0));
    cfg.warmup = cfg.horizon * 0.1;
    std::uint64_t events = 0;
    for (auto _ : state) {
        auto r = socbuf::sim::simulate(sys, caps, cfg);
        events += r.total_offered();
        benchmark::DoNotOptimize(r);
    }
    state.counters["packets/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetworkProcessorSim)
    ->Arg(1000)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_validation();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
