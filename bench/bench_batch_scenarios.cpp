// B1 — the scenario & batch-execution layer, measured. Five claims:
//
//   1. cache — a Table 1-style budget sweep re-solves identical subsystem
//      CTMDPs (the round-0 models coincide across budgets once caps clamp
//      to model_cap, and sweep scenarios overlap); the batch-wide
//      SolveCache turns those into hits, reported as a hit rate,
//   2. scaling — the same batch gets faster with more workers on one
//      shared pool (threads = 1/2/4 wall-clock and speedup),
//   3. pipelining — there is no stage barrier: the "overlap" column
//      counts evaluation jobs that started while another job's sizing
//      run was still in flight (0 serially, > 0 once workers pipeline),
//   4. latency — the "first eval" column is the wall-clock until the
//      first evaluation job *completed*: under priority scheduling a
//      finished sizing job's evaluations are claimed ahead of still-
//      queued sizing work (exec::Priority::kEvaluation > kSizing), so
//      the first usable result lands earlier than under FIFO claims —
//      measured head-to-head on the paper-suite batch,
//   5. determinism — every thread count *and both schedules* produce
//      bit-identical batch reports (the exec-layer contract lifted to
//      whole batches), shown in the table rather than assumed.
//
// Everything runs through the socbuf::Session facade (one object owning
// the executor, the batch-wide solve cache and the registry) — the same
// entry point socbuf_cli and the experiment drivers use.
// `--json <file>` switches to the structure-exploitation measurement:
// cold vs warm-started solves and FIFO vs longest-first submission on
// the Table 1 budget sweep, written as one JSON document (the
// perf-trajectory format under BENCH_*.json) — the google-benchmark
// loop is skipped in that mode.
#include "exec/executor.hpp"
#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"
#include "session/session.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

namespace {

using socbuf::Session;
using socbuf::SessionOptions;
using socbuf::scenario::BatchReport;
using socbuf::scenario::ScenarioBuilder;
using socbuf::scenario::ScenarioSpec;

/// The np-baseline budget sweep (Table 1's rows) at a bench-friendly
/// horizon: 3 sizing jobs + 3 x reps evaluation jobs per run.
ScenarioSpec sweep_spec() {
    return ScenarioBuilder("np-budget-sweep")
        .budgets({160, 320, 640})
        .replications(5)
        .sizing_iterations(6)
        .horizon(2000.0, 200.0)
        .seed(2005)
        .build();
}

double seconds_of(const std::function<void()>& body) {
    const auto start = std::chrono::steady_clock::now();
    body();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(stop - start).count();
}

bool identical_runs(const BatchReport& a, const BatchReport& b) {
    if (a.runs.size() != b.runs.size()) return false;
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        if (a.runs[i].pre_loss != b.runs[i].pre_loss) return false;
        if (a.runs[i].post_loss != b.runs[i].post_loss) return false;
        if (a.runs[i].pre_total != b.runs[i].pre_total) return false;
        if (a.runs[i].post_total != b.runs[i].post_total) return false;
        if (a.runs[i].resized_alloc != b.runs[i].resized_alloc) return false;
    }
    return true;
}

void print_batch_scaling() {
    std::printf("\n=== B1: batch scenario execution (hardware threads: %zu) "
                "===\n",
                socbuf::exec::resolve_thread_count(0));
    const ScenarioSpec spec = sweep_spec();

    // Cache effect at fixed threads: the same sweep with and without the
    // session's batch-wide solve cache.
    double cached_s = 0.0;
    BatchReport cached_report;
    {
        Session session({1});
        cached_s = seconds_of([&] { cached_report = session.run(spec); });
    }
    double uncached_s = 0.0;
    {
        SessionOptions options;
        options.threads = 1;
        options.use_solve_cache = false;
        Session session(options);
        uncached_s = seconds_of([&] { (void)session.run(spec); });
    }
    std::printf(
        "budget sweep %ld/%ld/%ld: solve cache %zu hits / %zu misses "
        "(%.0f%% hit rate); serial wall-clock %.3fs cached vs %.3fs "
        "uncached\n",
        spec.budgets[0], spec.budgets[1], spec.budgets[2],
        cached_report.cache.hits, cached_report.cache.misses,
        100.0 * cached_report.cache.hit_rate(), cached_s, uncached_s);

    socbuf::util::Table table({"threads", "batch [s]", "speedup",
                               "cache hit rate", "overlap", "first eval [s]",
                               "identical"});
    double base_s = 0.0;
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        Session session({threads});
        BatchReport report;
        const double s = seconds_of([&] { report = session.run(spec); });
        if (threads == 1) base_s = s;
        table.add_row(
            {std::to_string(threads), socbuf::util::format_fixed(s, 3),
             socbuf::util::format_fixed(base_s / s, 2) + "x",
             socbuf::util::format_fixed(100.0 * report.cache.hit_rate(), 0) +
                 "%",
             std::to_string(report.eval_overlap),
             socbuf::util::format_fixed(report.first_eval_latency_s, 3),
             identical_runs(report, cached_report) ? "yes" : "NO"});
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "overlap = evaluation jobs started while another sizing run was "
        "still in flight (pipelined task graph; 0 in serial execution)\n");
}

/// The paper-suite batch (both testbenches) at a bench-friendly horizon —
/// the workload the latency claim is stated on: 5 sizing jobs whose
/// evaluation replications compete with still-queued sizing work.
std::vector<ScenarioSpec> paper_suite_specs() {
    const socbuf::scenario::ScenarioRegistry registry;
    std::vector<ScenarioSpec> specs = registry.expand("paper-suite");
    for (ScenarioSpec& spec : specs) {
        spec.sim.horizon = 1500.0;
        spec.sim.warmup = 150.0;
        spec.replications = 3;
        spec.sizing_iterations = 4;
    }
    return specs;
}

void print_first_eval_latency() {
    std::printf("\n--- first-evaluation-completion latency: priority vs "
                "FIFO claims (paper-suite) ---\n");
    const std::vector<ScenarioSpec> specs = paper_suite_specs();

    // The serial run doubles as the bit-identity reference (scheduling is
    // moot on a serial executor — tasks run inline at submission — so one
    // row covers both schedules at threads = 1).
    BatchReport reference;
    bool have_reference = false;

    socbuf::util::Table table({"threads", "schedule", "batch [s]",
                               "first eval [s]", "overlap", "identical"});
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        for (const bool prioritized : {false, true}) {
            if (threads == 1 && prioritized) continue;
            SessionOptions options;
            options.threads = threads;
            options.priority_scheduling = prioritized;
            Session session(options);
            BatchReport report;
            const double s = seconds_of([&] { report = session.run(specs); });
            if (!have_reference) {
                reference = report;
                have_reference = true;
            }
            table.add_row(
                {std::to_string(threads),
                 threads == 1      ? "(serial)"
                 : prioritized     ? "priority"
                                   : "fifo",
                 socbuf::util::format_fixed(s, 3),
                 socbuf::util::format_fixed(report.first_eval_latency_s, 3),
                 std::to_string(report.eval_overlap),
                 identical_runs(report, reference) ? "yes" : "NO"});
        }
    }
    std::printf("%s", table.to_string().c_str());
    std::printf(
        "first eval = wall-clock until the first evaluation job completed "
        "(priority claims evaluations ahead of queued sizing jobs; reports "
        "are bit-identical either way)\n");
}

/// The --json measurement: warm starts and longest-first submission on
/// the Table 1 budget sweep. Warm starts trade bit-identity for fewer
/// PI/VI iterations (counted); longest-first moves only the schedule.
void write_json_report(const std::string& path) {
    namespace sj = socbuf::util;
    const ScenarioSpec spec = sweep_spec();

    auto cold_vs_warm = sj::JsonValue::object();
    {
        SessionOptions cold_options;
        cold_options.threads = 1;
        Session cold_session(cold_options);
        BatchReport cold;
        const double cold_s =
            seconds_of([&] { cold = cold_session.run(spec); });

        SessionOptions warm_options;
        warm_options.threads = 1;
        warm_options.warm_start = true;
        Session warm_session(warm_options);
        BatchReport warm;
        const double warm_s =
            seconds_of([&] { warm = warm_session.run(spec); });

        cold_vs_warm.set("cold_s", cold_s);
        cold_vs_warm.set("warm_s", warm_s);
        cold_vs_warm.set("warm_hits", warm.cache.warm_hits);
        cold_vs_warm.set("iterations_saved", warm.cache.iterations_saved);
        cold_vs_warm.set("bytes_resident", warm.cache.bytes_resident);
        cold_vs_warm.set("identical_results", identical_runs(warm, cold));
        std::printf("cold vs warm (budgets %ld/%ld/%ld): %.3fs -> %.3fs, "
                    "%zu warm hits, %zu solver iterations saved, results "
                    "%s\n",
                    spec.budgets[0], spec.budgets[1], spec.budgets[2],
                    cold_s, warm_s, warm.cache.warm_hits,
                    warm.cache.iterations_saved,
                    identical_runs(warm, cold) ? "identical" : "DIFFER");
    }

    auto orderings = sj::JsonValue::array();
    for (const std::size_t threads : {2UL, 4UL}) {
        SessionOptions fifo_options;
        fifo_options.threads = threads;
        fifo_options.longest_first = false;
        Session fifo_session(fifo_options);
        BatchReport fifo;
        const double fifo_s =
            seconds_of([&] { fifo = fifo_session.run(spec); });

        SessionOptions longest_options;
        longest_options.threads = threads;
        longest_options.longest_first = true;
        Session longest_session(longest_options);
        BatchReport longest;
        const double longest_s =
            seconds_of([&] { longest = longest_session.run(spec); });

        auto row = sj::JsonValue::object();
        row.set("threads", threads);
        row.set("fifo_s", fifo_s);
        row.set("longest_first_s", longest_s);
        row.set("identical_results", identical_runs(longest, fifo));
        orderings.push_back(std::move(row));
        std::printf("threads %zu: fifo %.3fs vs longest-first %.3fs, "
                    "results %s\n",
                    threads, fifo_s, longest_s,
                    identical_runs(longest, fifo) ? "identical" : "DIFFER");
    }

    auto root = sj::JsonValue::object();
    root.set("bench", std::string("batch_scenarios"));
    auto budgets = sj::JsonValue::array();
    for (const long b : spec.budgets) budgets.push_back(b);
    root.set("budgets", std::move(budgets));
    root.set("cold_vs_warm", std::move(cold_vs_warm));
    root.set("fifo_vs_longest_first", std::move(orderings));
    std::ofstream out(path);
    out << root.dump(2) << "\n";
    std::printf("wrote %s\n", path.c_str());
}

void BM_BatchBudgetSweep(benchmark::State& state) {
    ScenarioSpec spec = sweep_spec();
    spec.replications = 3;
    spec.sim.horizon = 1000.0;
    spec.sim.warmup = 100.0;
    const auto threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        Session session({threads});
        auto report = session.run(spec);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_BatchBudgetSweep)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_SolveCacheOnOff(benchmark::State& state) {
    ScenarioSpec spec = sweep_spec();
    spec.replications = 1;
    spec.sim.horizon = 1000.0;
    spec.sim.warmup = 100.0;
    const bool use_cache = state.range(0) != 0;
    for (auto _ : state) {
        SessionOptions options;
        options.threads = 1;
        options.use_solve_cache = use_cache;
        Session session(options);
        auto report = session.run(spec);
        benchmark::DoNotOptimize(report);
    }
}
BENCHMARK(BM_SolveCacheOnOff)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    std::string json_path;
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--json") json_path = argv[i + 1];
    if (!json_path.empty()) {
        // JSON mode is the CI/perf-trajectory entry point: one
        // structured measurement, no google-benchmark loop.
        write_json_report(json_path);
        return 0;
    }
    print_batch_scaling();
    print_first_eval_latency();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
