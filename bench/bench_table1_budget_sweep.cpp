// E4 — Table 1: loss before/after CTMDP resizing under total buffer
// budgets 160, 320 and 640. The paper highlights processors 1, 4, 15 and
// 16; we print those rows in the paper's layout plus the full per-budget
// totals.
#include "core/experiments.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

void print_table1() {
    socbuf::core::Table1Params params;  // paper-scale defaults
    const auto r = socbuf::core::run_table1(params);

    std::printf("\n=== Table 1: loss under varying total buffer size "
                "(%zu replications) ===\n",
                params.replications);
    std::vector<std::string> headers{"PROCESSOR"};
    for (const auto& row : r.rows) {
        headers.push_back("Buf" + std::to_string(row.budget) + " pre");
        headers.push_back("Buf" + std::to_string(row.budget) + " post");
    }
    socbuf::util::Table t(headers);
    for (const std::size_t display : r.highlighted) {
        std::vector<std::string> cells{std::to_string(display)};
        for (const auto& row : r.rows) {
            cells.push_back(
                socbuf::util::format_fixed(row.pre[display - 1], 0));
            cells.push_back(
                socbuf::util::format_fixed(row.post[display - 1], 0));
        }
        t.add_row(std::move(cells));
    }
    {
        std::vector<std::string> cells{"TOTAL(all)"};
        for (const auto& row : r.rows) {
            cells.push_back(socbuf::util::format_fixed(row.pre_total, 0));
            cells.push_back(socbuf::util::format_fixed(row.post_total, 0));
        }
        t.add_row(std::move(cells));
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("shape checks: post-loss decreases with budget, reaches "
                "~0 at 640 for the highlighted processors, and individual "
                "processors may worsen at 160 (see EXPERIMENTS.md).\n");
}

void BM_Table1SingleBudget(benchmark::State& state) {
    socbuf::core::Table1Params params;
    params.budgets = {state.range(0)};
    params.horizon = 1200.0;
    params.warmup = 120.0;
    params.replications = 2;
    params.sizing_iterations = 3;
    for (auto _ : state) {
        auto r = socbuf::core::run_table1(params);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Table1SingleBudget)
    ->Arg(160)
    ->Arg(320)
    ->Arg(640)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
    print_table1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
