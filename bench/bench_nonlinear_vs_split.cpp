// E5 — the Section 2 motivation: the monolithic model of a bridged
// architecture is quadratic; the paper could not solve it with a generic
// nonlinear solver and proposes the split. We report, honestly:
//   * the size and bilinear-term count of the monolithic system,
//   * the success rate of plain and damped Newton over random starts,
//   * wall-clock of monolithic Newton vs the split fixed point,
//   * agreement of the two solutions where both converge.
// (In our reconstruction Newton is more robust than the paper's Matlab 6.1
// experience — see EXPERIMENTS.md for the discussion.)
#include "arch/presets.hpp"
#include "exec/executor.hpp"
#include "nonlinear/coupled_model.hpp"
#include "nonlinear/newton.hpp"
#include "split/splitter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <utility>

namespace {

const socbuf::arch::TestSystem& figure1() {
    static const auto sys = socbuf::arch::figure1_system();
    return sys;
}

const socbuf::split::SplitResult& figure1_split() {
    static const auto split = socbuf::split::split_architecture(figure1());
    return split;
}

void print_robustness() {
    std::printf("\n=== E5: monolithic quadratic system vs split ===\n");
    socbuf::util::Table t({"site cap", "unknowns", "bilinear terms",
                           "newton(full) ok/20", "newton(damped) ok/20",
                           "fixed point", "loss (split)"});
    // One shared executor for every cap's trial sweep; the random starts
    // are drawn serially (one RNG stream, same draws as the serial bench)
    // and the independent Newton solves fan out, folded in trial order.
    socbuf::exec::Executor executor(0);
    for (const long cap : {2L, 3L, 4L}) {
        socbuf::nonlinear::CoupledModelOptions mo;
        mo.site_cap = cap;
        const socbuf::nonlinear::CoupledBusModel model(figure1(),
                                                       figure1_split(), mo);
        socbuf::rng::RandomEngine eng(17);
        std::vector<socbuf::linalg::Vector> starts;
        starts.reserve(20);
        for (int trial = 0; trial < 20; ++trial)
            starts.push_back(model.initial_random(eng));
        const auto outcomes =
            executor.map(starts.size(), [&](std::size_t trial) {
                socbuf::nonlinear::NewtonOptions plain;
                plain.line_search = false;
                const bool full =
                    socbuf::nonlinear::solve_newton(model, starts[trial],
                                                    plain)
                        .usable();
                const bool damped =
                    socbuf::nonlinear::solve_newton(model, starts[trial])
                        .usable();
                return std::make_pair(full, damped);
            });
        int full_ok = 0;
        int damped_ok = 0;
        for (const auto& [full, damped] : outcomes) {
            full_ok += full ? 1 : 0;
            damped_ok += damped ? 1 : 0;
        }
        const auto fp = model.solve_fixed_point();
        t.add_row({std::to_string(cap), std::to_string(model.unknown_count()),
                   std::to_string(model.bilinear_term_count()),
                   std::to_string(full_ok), std::to_string(damped_ok),
                   fp.converged ? "converged" : "FAILED",
                   socbuf::util::format_fixed(fp.solution.total_loss_rate,
                                              4)});
    }
    std::printf("%s", t.to_string().c_str());
}

void BM_MonolithicNewton(benchmark::State& state) {
    socbuf::nonlinear::CoupledModelOptions mo;
    mo.site_cap = state.range(0);
    const socbuf::nonlinear::CoupledBusModel model(figure1(),
                                                   figure1_split(), mo);
    for (auto _ : state) {
        auto r = socbuf::nonlinear::solve_newton(model,
                                                 model.initial_uniform());
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_MonolithicNewton)->Arg(2)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_SplitFixedPoint(benchmark::State& state) {
    socbuf::nonlinear::CoupledModelOptions mo;
    mo.site_cap = state.range(0);
    const socbuf::nonlinear::CoupledBusModel model(figure1(),
                                                   figure1_split(), mo);
    for (auto _ : state) {
        auto r = model.solve_fixed_point();
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_SplitFixedPoint)->Arg(2)->Arg(3)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_robustness();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
