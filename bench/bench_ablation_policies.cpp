// E6 / ablation — sizing-policy comparison on the network processor:
// uniform (constant), traffic-ratio proportional (the strawman the paper's
// introduction dismisses), analytic demand-based, and the CTMDP engine.
// Also sweeps the timeout policy's threshold scale, documenting why a
// mean-level threshold is catastrophic.
#include "arch/presets.hpp"
#include "core/allocation.hpp"
#include "core/engine.hpp"
#include "sim/simulator.hpp"
#include "split/splitter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

constexpr long kBudget = 320;
constexpr double kHorizon = 4000.0;
constexpr double kWarmup = 400.0;

double total_loss(const socbuf::arch::TestSystem& system,
                  const socbuf::core::Allocation& alloc,
                  std::size_t reps = 5) {
    socbuf::sim::SimConfig cfg;
    cfg.horizon = kHorizon;
    cfg.warmup = kWarmup;
    cfg.seed = 2005;
    const auto r = socbuf::sim::replicate_losses(system, alloc, cfg, reps);
    return r.mean_total_lost;
}

void print_policy_comparison() {
    const auto system = socbuf::arch::network_processor_system();
    const auto split = socbuf::split::split_architecture(system);

    const auto uniform = socbuf::core::uniform_allocation(split, kBudget);
    const auto proportional =
        socbuf::core::proportional_allocation(split, kBudget);
    const auto demand = socbuf::core::demand_allocation(split, kBudget);

    socbuf::core::SizingOptions opts;
    opts.total_budget = kBudget;
    opts.sim.horizon = kHorizon;
    opts.sim.warmup = kWarmup;
    opts.sim.seed = 2005;
    const auto report = socbuf::core::BufferSizingEngine(opts).run(system);

    std::printf("\n=== Ablation: sizing policies at budget %ld ===\n",
                kBudget);
    socbuf::util::Table t({"policy", "total loss", "vs uniform"});
    const double base = total_loss(system, uniform);
    auto row = [&](const char* name, double loss) {
        t.add_row({name, socbuf::util::format_fixed(loss, 1),
                   socbuf::util::format_fixed(100.0 * (1.0 - loss / base),
                                              1) +
                       "%"});
    };
    row("uniform (constant)", base);
    row("proportional (traffic ratios)", total_loss(system, proportional));
    row("demand-based (analytic)", total_loss(system, demand));
    row("CTMDP sizing (this paper)", total_loss(system, report.best));
    std::printf("%s", t.to_string().c_str());
    std::printf("the CTMDP allocation differs from the traffic-ratio "
                "split — the paper's Section 1 observation.\n");

    // Timeout threshold-scale sensitivity (why scale=1, the literal paper
    // reading, buries every other effect).
    std::printf("\n=== Ablation: timeout threshold scale ===\n");
    socbuf::util::Table ts({"scale x mean wait", "total loss"});
    for (const double scale : {1.0, 2.0, 4.0, 8.0}) {
        socbuf::sim::SimConfig cfg;
        cfg.horizon = kHorizon;
        cfg.warmup = kWarmup;
        cfg.seed = 2005;
        cfg.site_timeout_thresholds =
            socbuf::sim::calibrate_site_timeout_thresholds(system, uniform,
                                                           cfg, scale);
        cfg.timeout_enabled = true;
        const auto r = socbuf::sim::simulate(system, uniform, cfg);
        ts.add_row({socbuf::util::format_fixed(scale, 1),
                    std::to_string(r.total_lost())});
    }
    std::printf("%s", ts.to_string().c_str());
}

void BM_CtmdpSizing(benchmark::State& state) {
    const auto system = socbuf::arch::network_processor_system();
    socbuf::core::SizingOptions opts;
    opts.total_budget = kBudget;
    opts.iterations = 3;
    opts.sim.horizon = 1200.0;
    opts.sim.warmup = 120.0;
    for (auto _ : state) {
        auto r = socbuf::core::BufferSizingEngine(opts).run(system);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CtmdpSizing)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
    print_policy_comparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
