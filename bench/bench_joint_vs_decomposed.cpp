// A3 — "solved in one go": the explicit joint LP over all subsystems with
// the shared occupancy-budget row, versus the Lagrangian price
// decomposition that solves per-subsystem LPs inside a bisection. They
// must agree on the optimal loss; their runtime scaling differs.
#include "arch/presets.hpp"
#include "core/allocation.hpp"
#include "core/joint.hpp"
#include "core/subsystem_model.hpp"
#include "split/splitter.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <benchmark/benchmark.h>

#include <cstdio>

namespace {

std::vector<socbuf::core::SubsystemCtmdp> make_models(long cap) {
    static const auto sys = socbuf::arch::figure1_system();
    static const auto split = socbuf::split::split_architecture(sys);
    const auto alloc = socbuf::core::uniform_allocation(split, 9 * cap);
    return socbuf::core::build_subsystem_models(split, alloc, cap);
}

void print_agreement() {
    std::printf("\n=== A3: joint LP vs price decomposition ===\n");
    socbuf::util::Table t({"cap", "budget", "joint loss", "decomposed loss",
                           "joint occ", "decomposed occ", "price"});
    for (const long cap : {2L, 3L}) {
        const auto models = make_models(cap);
        const auto free_run = socbuf::core::solve_unconstrained(models);
        const auto squeezed = socbuf::core::solve_price_decomposed(
            models, 1e-6, 64.0, 0);
        const double budget = 0.5 * (squeezed.total_expected_occupancy +
                                     free_run.total_expected_occupancy);
        const auto joint = socbuf::core::solve_joint_lp(models, budget);
        const auto priced =
            socbuf::core::solve_price_decomposed(models, budget);
        t.add_row({std::to_string(cap),
                   socbuf::util::format_fixed(budget, 3),
                   socbuf::util::format_fixed(joint.total_loss_rate, 5),
                   socbuf::util::format_fixed(priced.total_loss_rate, 5),
                   socbuf::util::format_fixed(
                       joint.total_expected_occupancy, 3),
                   socbuf::util::format_fixed(
                       priced.total_expected_occupancy, 3),
                   socbuf::util::format_fixed(priced.occupancy_price, 3)});
    }
    std::printf("%s", t.to_string().c_str());
}

void BM_JointLp(benchmark::State& state) {
    const auto models = make_models(state.range(0));
    const auto free_run = socbuf::core::solve_unconstrained(models);
    const double budget = 0.85 * free_run.total_expected_occupancy;
    for (auto _ : state) {
        auto r = socbuf::core::solve_joint_lp(models, budget);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_JointLp)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

void BM_PriceDecomposed(benchmark::State& state) {
    const auto models = make_models(state.range(0));
    const auto free_run = socbuf::core::solve_unconstrained(models);
    const double budget = 0.85 * free_run.total_expected_occupancy;
    for (auto _ : state) {
        auto r = socbuf::core::solve_price_decomposed(models, budget);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_PriceDecomposed)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    print_agreement();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
