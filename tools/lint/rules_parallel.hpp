#pragma once
/// The cross-file worker-context rule families — socbuf_lint's pass 2½:
/// given the call graph from callgraph::build, compute worker
/// reachability and enforce
///
///   * static-mutable     — function-local `static` non-const, or uses of
///                          mutable namespace-scope globals, in any
///                          function reachable from worker context;
///   * nonreentrant-call  — calls to a curated list of non-reentrant
///                          libc functions (strtok, setenv, localtime,
///                          rand, ...) from worker context;
///   * shared-capture     — a by-reference lambda capture mutated inside
///                          a worker-submitted body without an
///                          index-addressed slot or atomic;
///   * fold-order         — accumulation (`+=` family) into shared state
///                          from a worker-submitted body: the fold order
///                          is the schedule's, not the index order the
///                          determinism contract requires.
///
/// Only files whose virtual path is under src/ are in scope — bench/,
/// tools/ and examples/ fan work out too, but their output is not part
/// of the bit-identical report contract. Suppressions are applied by the
/// caller (analyze_files), which owns the per-file annotation scans.

#include <vector>

#include "callgraph.hpp"
#include "lint.hpp"

namespace socbuf::lint {

/// Run the four worker-context rule families over the graph. Diagnostics
/// come back unsorted and unsuppressed; `file` is the owning file's
/// display path.
std::vector<Diagnostic> check_worker_rules(const callgraph::Graph& graph);

}  // namespace socbuf::lint
