#include "rules_parallel.hpp"

#include <set>
#include <string>

#include "text_views.hpp"

namespace socbuf::lint {

namespace {

using callgraph::Function;
using callgraph::Graph;
using callgraph::MutationSite;

/// Non-reentrant libc functions: hidden static state (strtok's cursor,
/// localtime's tm, rand's LCG word) or process-global tables (environ,
/// locale) that make any worker-context call a race and a determinism
/// leak. Member calls named like these (`obj.rand()`) do not count.
const std::set<std::string>& nonreentrant_functions() {
    static const std::set<std::string> names = {
        "strtok",    "strerror", "asctime",  "ctime",     "gmtime",
        "localtime", "rand",     "srand",    "random",    "srandom",
        "drand48",   "lrand48",  "mrand48",  "setenv",    "putenv",
        "unsetenv",  "tmpnam",   "setlocale", "readdir",
        "gethostbyname"};
    return names;
}

std::string base_name(const std::string& qualified) {
    const std::size_t pos = qualified.rfind("::");
    return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

/// Worker-submitted body: a lambda handed directly to a sanctioned entry
/// point, or one bound to a name that is passed to an entry point.
bool worker_body(const Graph& graph, const Function& fn) {
    if (!fn.is_lambda) return false;
    return fn.worker_entry_arg ||
           graph.root_names.count(base_name(fn.name)) != 0;
}

}  // namespace

std::vector<Diagnostic> check_worker_rules(const Graph& graph) {
    const std::vector<bool> reachable = callgraph::worker_reachable(graph);

    std::set<std::string> mutable_globals;
    for (const callgraph::GlobalVar& global : graph.globals)
        if (!global.atomic) mutable_globals.insert(global.name);

    std::vector<Diagnostic> out;
    for (std::size_t i = 0; i < graph.functions.size(); ++i) {
        if (!reachable[i]) continue;
        const Function& fn = graph.functions[i];
        const callgraph::FileInfo& file = graph.files[fn.file];
        if (!starts_with(file.virtual_path, "src/")) continue;

        for (const auto& [name, line] : fn.local_statics)
            out.push_back(
                {file.display_path, line, "static-mutable",
                 "function-local static '" + name +
                     "' in worker context ('" + fn.name +
                     "' is reachable from a sanctioned fan-out entry); "
                     "initialization and mutation race across workers — "
                     "make it const, atomic, or per-task state"});

        for (const auto& [name, line] : fn.global_uses)
            out.push_back(
                {file.display_path, line, "static-mutable",
                 "mutable global '" + name + "' used in worker context ('" +
                     fn.name +
                     "' is reachable from a sanctioned fan-out entry); "
                     "make it const, atomic, or thread it through "
                     "per-task state"});

        for (const callgraph::CallSite& call : fn.calls) {
            if (call.member) continue;
            if (nonreentrant_functions().count(call.name) == 0) continue;
            out.push_back(
                {file.display_path, call.line, "nonreentrant-call",
                 "call to non-reentrant '" + call.name +
                     "' from worker context ('" + fn.name +
                     "' is reachable from a sanctioned fan-out entry); it "
                     "reads or writes hidden process-global state"});
        }

        if (!worker_body(graph, fn)) continue;
        for (const MutationSite& mutation : fn.mutations) {
            if (mutation.subscripted) continue;  // index-addressed slot
            if (fn.locals.count(mutation.name) != 0) continue;
            if (fn.captures_by_copy.count(mutation.name) != 0) continue;
            if (graph.atomic_names.count(mutation.name) != 0) continue;
            // Globals race too, but static-mutable already owns them.
            if (mutable_globals.count(mutation.name) != 0) continue;
            const bool shared = fn.captures_default_ref ||
                                fn.captures_by_ref.count(mutation.name) !=
                                    0 ||
                                fn.captures_this;
            if (!shared) continue;
            if (fn.captures_default_copy &&
                fn.captures_by_ref.count(mutation.name) == 0 &&
                !fn.captures_this)
                continue;  // [=] copies; mutation stays task-local
            if (mutation.kind == MutationSite::Kind::kAccumulate)
                out.push_back(
                    {file.display_path, mutation.line, "fold-order",
                     "accumulation into shared '" + mutation.name +
                         "' inside a worker body folds in schedule order; "
                         "write each task's contribution to an "
                         "index-addressed slot and reduce in index order "
                         "on the submitting thread"});
            else
                out.push_back(
                    {file.display_path, mutation.line, "shared-capture",
                     "by-reference captured '" + mutation.name +
                         "' mutated inside a worker body; give each task "
                         "an index-addressed slot, use an atomic, or "
                         "justify with a suppression"});
        }
    }
    return out;
}

}  // namespace socbuf::lint
