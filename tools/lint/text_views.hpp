#pragma once
/// Shared text-shape utilities for socbuf_lint's passes.
///
/// Pattern rules (lint.cpp) and the call-graph extractor (callgraph.cpp)
/// both need to see *code* without comment or string-literal text — the
/// linter's own sources spell every banned token inside string literals —
/// while the suppression scanner needs the *comments* alone. split_views
/// produces both as same-shape strings (newlines survive, everything else
/// is blanked out of the view it does not belong to), so byte offsets and
/// line numbers stay aligned across views.

#include <string>
#include <vector>

namespace socbuf::lint {

struct Views {
    std::string code;      ///< comments and literal contents blanked
    std::string comments;  ///< everything that is not comment text blanked
};

/// Split one file's text into the two same-shape views. Handles //, block
/// comments, string/char literals (escapes included) and raw strings.
Views split_views(const std::string& text);

/// Split on '\n' keeping empty lines; a trailing newline does not add an
/// extra empty line beyond the one it terminates.
std::vector<std::string> split_lines(const std::string& text);

/// True when the line is empty or all-whitespace.
bool blank_line(const std::string& line);

/// Strip leading and trailing whitespace.
std::string trim(const std::string& text);

/// [A-Za-z0-9_] — the identifier alphabet.
bool ident_char(char c);

/// True when `text` begins with `prefix`.
bool starts_with(const std::string& text, const char* prefix);

}  // namespace socbuf::lint
