#include "text_views.hpp"

#include <algorithm>
#include <cctype>

namespace socbuf::lint {

bool starts_with(const std::string& text, const char* prefix) {
    return text.rfind(prefix, 0) == 0;
}

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Views split_views(const std::string& text) {
    Views views;
    views.code.assign(text.size(), ' ');
    views.comments.assign(text.size(), ' ');
    enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
    State state = State::kCode;
    std::string raw_delim;
    std::size_t i = 0;
    while (i < text.size()) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            views.code[i] = '\n';
            views.comments[i] = '\n';
            if (state == State::kLine) state = State::kCode;
            ++i;
            continue;
        }
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLine;
                    i += 2;
                } else if (c == '/' && next == '*') {
                    state = State::kBlock;
                    i += 2;
                } else if (c == '"') {
                    const bool raw =
                        i > 0 && text[i - 1] == 'R' &&
                        (i < 2 || !ident_char(text[i - 2]));
                    views.code[i] = '"';
                    ++i;
                    if (raw) {
                        raw_delim.clear();
                        while (i < text.size() && text[i] != '(')
                            raw_delim.push_back(text[i++]);
                        if (i < text.size()) ++i;  // consume '('
                        state = State::kRaw;
                    } else {
                        state = State::kString;
                    }
                } else if (c == '\'') {
                    ++i;
                    state = State::kChar;
                } else {
                    views.code[i] = c;
                    ++i;
                }
                break;
            case State::kLine:
                views.comments[i] = c;
                ++i;
                break;
            case State::kBlock:
                if (c == '*' && next == '/') {
                    state = State::kCode;
                    i += 2;
                } else {
                    views.comments[i] = c;
                    ++i;
                }
                break;
            case State::kString:
                if (c == '\\') {
                    i += 2;
                } else if (c == '"') {
                    views.code[i] = '"';
                    ++i;
                    state = State::kCode;
                } else {
                    ++i;
                }
                break;
            case State::kChar:
                if (c == '\\') {
                    i += 2;
                } else if (c == '\'') {
                    ++i;
                    state = State::kCode;
                } else {
                    ++i;
                }
                break;
            case State::kRaw:
                if (c == ')' &&
                    text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
                    i + 1 + raw_delim.size() < text.size() &&
                    text[i + 1 + raw_delim.size()] == '"') {
                    i += 2 + raw_delim.size();
                    state = State::kCode;
                } else {
                    ++i;
                }
                break;
        }
    }
    return views;
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t end = text.find('\n', begin);
        if (end == std::string::npos) {
            lines.push_back(text.substr(begin));
            break;
        }
        lines.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return lines;
}

bool blank_line(const std::string& line) {
    return std::all_of(line.begin(), line.end(), [](char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
    });
}

std::string trim(const std::string& text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])) != 0)
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])) != 0)
        --end;
    return text.substr(begin, end - begin);
}

}  // namespace socbuf::lint
