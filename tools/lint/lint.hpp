#pragma once
/// socbuf_lint — the project-specific static analyzer behind the two
/// load-bearing contracts no off-the-shelf tool knows about:
///
///   * **Layering** — "each layer only reaches downward" (ROADMAP
///     architecture layers). Every `#include "module/..."` is checked
///     against a rank table of the source modules; an upward or
///     sideways include is a diagnostic, not a review comment.
///   * **Determinism** — "reports are bit-identical for any thread
///     count and schedule". Unordered-container iteration, ambient
///     randomness, wall-clock reads and raw threading primitives are
///     banned outside the layers whose job they are.
///   * **Hygiene** — `#pragma once` in every header, no
///     `using namespace` at header scope.
///
/// Rules are suppressible inline, one line at a time, with a comment of
/// the form `socbuf-lint: allow(<rule-id>) — <why this use is safe>` on
/// the offending line, or alone on the line above it. A suppression with
/// no justification text after the rule list is itself a diagnostic —
/// the analyzer enforces that every exception is argued. (Rule lists
/// spelled with angle-bracket placeholders, as here, are documentation
/// and ignored.)
///
/// The engine is a library so `lint_test` can assert exact rule
/// firings; `tools/lint/main.cpp` wraps it as the `socbuf_lint`
/// binary. See `tools/README.md` for the full rule and layer tables.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace socbuf::lint {

struct Diagnostic {
    std::string file;     ///< Path as reported to the user.
    std::size_t line = 0; ///< 1-based line number.
    std::string rule;     ///< Stable rule identifier (kebab-case).
    std::string message;
};

/// Every rule identifier, in documentation order.
const std::vector<std::string>& rule_ids();

/// One-line description of a rule ("" for an unknown id).
std::string rule_description(const std::string& rule);

/// Rank of the module a repo-relative path belongs to, or -1 when the
/// path is outside the layered tree (tools/, bench/, examples/ and
/// tests/ sit above every layer and may include anything).
int layer_rank(const std::string& virtual_path);

/// Lint one file's text. `display_path` is what diagnostics report;
/// `virtual_path` is the repo-relative location that layer and scope
/// decisions use (they differ only under the fixture-testing `--as`
/// flag). `paired_header`, when non-null, is the text of the sibling
/// .hpp whose member declarations extend the .cpp's set of known
/// unordered containers.
std::vector<Diagnostic> lint_text(const std::string& display_path,
                                  const std::string& virtual_path,
                                  const std::string& text,
                                  const std::string* paired_header);

struct RunOptions {
    /// Base directory that repo-relative virtual paths are computed
    /// against; empty = the current working directory.
    std::string root;
    /// Lint the (single) input as if it lived at this repo-relative
    /// path; empty = derive from the real path. Fixture tests use this
    /// to place known-bad snippets inside determinism-scoped layers.
    std::string as;
    /// Files or directories (scanned recursively for .hpp/.cpp).
    std::vector<std::string> paths;
};

/// Scan, lint, and print one `file:line: [rule] message` line per
/// diagnostic to `out`. Returns the process exit code: 0 clean, 1 when
/// any diagnostic fired, 2 on usage or I/O errors (reported on `err`).
int run(const RunOptions& options, std::ostream& out, std::ostream& err);

}  // namespace socbuf::lint
