#pragma once
/// socbuf_lint — the project-specific static analyzer behind the two
/// load-bearing contracts no off-the-shelf tool knows about:
///
///   * **Layering** — "each layer only reaches downward" (ROADMAP
///     architecture layers). Every `#include "module/..."` is checked
///     against a rank table of the source modules; an upward or
///     sideways include is a diagnostic, not a review comment.
///   * **Determinism** — "reports are bit-identical for any thread
///     count and schedule". Per file: unordered-container iteration,
///     ambient randomness, wall-clock reads and raw threading
///     primitives are banned outside the layers whose job they are.
///     Across files: a call-graph pass (callgraph.hpp) computes the
///     functions reachable from the sanctioned exec fan-out entry
///     points and enforces the worker-context rule families
///     (static-mutable, nonreentrant-call, shared-capture, fold-order;
///     rules_parallel.hpp).
///   * **Hygiene** — `#pragma once` in every header, no
///     `using namespace` at header scope.
///
/// Rules are suppressible inline, one line at a time, with a comment of
/// the form `socbuf-lint: allow(<rule-id>) — <why this use is safe>` on
/// the offending line, or alone on the line above it; a whole file opts
/// out of one rule with `socbuf-lint: allow-file(<rule-id>) — <why>`
/// within its first 10 lines. A suppression with no justification text
/// after the rule list is itself a diagnostic — the analyzer enforces
/// that every exception is argued. (Rule lists spelled with
/// angle-bracket placeholders, as here, are documentation and ignored.)
///
/// The engine is a library so `lint_test` can assert exact rule
/// firings; `tools/lint/main.cpp` wraps it as the `socbuf_lint`
/// binary. See `tools/README.md` for the full rule and layer tables,
/// the worker-context reachability model and the baseline workflow.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace socbuf::lint {

struct Diagnostic {
    std::string file;     ///< Path as reported to the user.
    std::size_t line = 0; ///< 1-based line number.
    std::string rule;     ///< Stable rule identifier (kebab-case).
    std::string message;
};

/// Where a rule's evidence lives: one file at a time, or the whole-tree
/// call graph.
enum class RuleScope { kPerFile, kCallGraph };

/// Every rule identifier, in documentation order.
const std::vector<std::string>& rule_ids();

/// One-line description of a rule ("" for an unknown id).
std::string rule_description(const std::string& rule);

/// Scope of a known rule (kPerFile for an unknown id — callers check
/// rule_description first).
RuleScope rule_scope(const std::string& rule);

/// The known rule id nearest to `rule` by edit distance, or "" when
/// nothing is plausibly close. Powers the unknown-rule diagnostics.
std::string nearest_rule(const std::string& rule);

/// Rank of the module a repo-relative path belongs to, or -1 when the
/// path is outside the layered tree (tools/, bench/, examples/ and
/// tests/ sit above every layer and may include anything).
int layer_rank(const std::string& virtual_path);

/// Lint one file's text with the per-file rules only (no call-graph
/// pass). `display_path` is what diagnostics report; `virtual_path` is
/// the repo-relative location that layer and scope decisions use (they
/// differ only under the fixture-testing `--as` flag). `paired_header`,
/// when non-null, is the text of the sibling .hpp whose member
/// declarations extend the .cpp's set of known unordered containers.
std::vector<Diagnostic> lint_text(const std::string& display_path,
                                  const std::string& virtual_path,
                                  const std::string& text,
                                  const std::string* paired_header);

/// One file of a whole-tree analysis set.
struct SourceFile {
    std::string display_path;
    std::string virtual_path;
    std::string text;
    std::string paired_header;  ///< sibling .hpp text (see lint_text)
    bool has_paired_header = false;
};

/// The full analysis: per-file rules on every file plus the cross-file
/// call-graph pass over all of them together, with line- and file-level
/// suppressions applied and the result sorted by (file, line, rule).
std::vector<Diagnostic> analyze_files(const std::vector<SourceFile>& files);

/// analyze_files over a single in-memory file — the fixture-test entry
/// point for the call-graph rule families.
std::vector<Diagnostic> analyze_text(const std::string& display_path,
                                     const std::string& virtual_path,
                                     const std::string& text);

/// Diagnostic output shape: plain `file:line: [rule] message` lines, a
/// socbuf JSON report, or a SARIF 2.1.0-shaped log.
enum class Format { kText, kJson, kSarif };

struct RunOptions {
    /// Base directory that repo-relative virtual paths are computed
    /// against; empty = the current working directory.
    std::string root;
    /// Lint the (single) input as if it lived at this repo-relative
    /// path; empty = derive from the real path. Fixture tests use this
    /// to place known-bad snippets inside determinism-scoped layers.
    std::string as;
    /// Files or directories (scanned recursively for .hpp/.cpp).
    std::vector<std::string> paths;
    Format format = Format::kText;
    /// Baseline file of tolerated findings (see tools/README.md): a
    /// finding whose (file, rule, message) matches an unconsumed
    /// baseline entry is dropped, so CI fails only on *new* findings.
    std::string baseline;
    /// Instead of reporting, rewrite this baseline file from the run's
    /// findings and exit 0.
    std::string write_baseline;
};

/// Scan, lint (per-file and call-graph passes), and print diagnostics
/// to `out` in the requested format. Returns the process exit code:
/// 0 clean, 1 when any non-baselined diagnostic fired, 2 on usage or
/// I/O errors (reported on `err`).
int run(const RunOptions& options, std::ostream& out, std::ostream& err);

}  // namespace socbuf::lint
