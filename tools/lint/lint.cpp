#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

#include "callgraph.hpp"
#include "rules_parallel.hpp"
#include "text_views.hpp"
#include "util/json.hpp"

namespace socbuf::lint {

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------ layers
//
// The ROADMAP's architecture layers as a *dependency* rank table: a file
// may include only modules of strictly lower rank (its own module is
// always fine). Ranks order the real dependency DAG of the tree — note
// that `exec` sits low (it depends on nothing but util; everything else
// fans work through it), even though the ROADMAP's pipeline narrative
// lists it mid-stack. Same-rank modules are mutually independent:
// a sideways include is as much a violation as an upward one.

struct LayerEntry {
    const char* module;
    int rank;
};

constexpr LayerEntry kLayerTable[] = {
    {"util", 0},
    {"arch", 1},
    {"des", 1},
    {"exec", 1},
    {"linalg", 1},
    {"lp", 1},
    {"rng", 1},
    {"ctmc", 2},
    {"traffic", 2},
    {"ctmdp", 3},
    {"queueing", 3},
    {"sim", 3},
    {"split", 3},
    {"insertion", 4},
    {"nonlinear", 4},
    {"core", 5},
    {"scenario", 6},
    {"session", 7},
    {"experiments", 8},
};

/// src/core/experiments.* is the ROADMAP's topmost layer (thin presets
/// over scenario/session) living in the core directory; mapping it above
/// session keeps its downward reach legal and bans everything below the
/// scenario stack from including it.
const char* file_module_override(const std::string& virtual_path) {
    if (virtual_path == "src/core/experiments.hpp" ||
        virtual_path == "src/core/experiments.cpp")
        return "experiments";
    return nullptr;
}

int module_rank(const std::string& module) {
    for (const LayerEntry& entry : kLayerTable)
        if (module == entry.module) return entry.rank;
    return -1;
}

/// Module a repo-relative path belongs to ("" when outside src/ or in an
/// unknown src/ subdirectory).
std::string module_of(const std::string& virtual_path) {
    if (const char* override_module = file_module_override(virtual_path))
        return override_module;
    if (!starts_with(virtual_path, "src/")) return "";
    const std::size_t begin = 4;
    const std::size_t end = virtual_path.find('/', begin);
    if (end == std::string::npos) return "";
    const std::string module = virtual_path.substr(begin, end - begin);
    return module_rank(module) >= 0 ? module : "";
}

// ----------------------------------------------------------- suppressions

constexpr const char* kMarker = "socbuf-lint:";

/// File-level suppressions must sit in the file's first lines — an
/// opt-out buried mid-file is invisible to a reviewer reading the top.
constexpr std::size_t kAllowFileWindow = 10;

struct SuppressionScan {
    /// Rules suppressed per 1-based target line.
    std::map<std::size_t, std::set<std::string>> by_line;
    /// Rules suppressed for the whole file (allow-file form).
    std::set<std::string> file_rules;
    /// Malformed-annotation diagnostics (rule "suppression").
    std::vector<Diagnostic> malformed;
};

bool known_rule(const std::string& rule) {
    const std::vector<std::string>& ids = rule_ids();
    return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

std::string unknown_rule_message(const std::string& rule) {
    std::string message = "unknown rule '" + rule + "'";
    const std::string nearest = nearest_rule(rule);
    if (!nearest.empty()) message += "; did you mean '" + nearest + "'?";
    return message;
}

/// Parse one comment line for a suppression annotation. Grammar (the
/// marker word, then): allow(rule[, rule...]) <justification> for one
/// line, or allow-file(rule[, rule...]) <justification> — within the
/// first kAllowFileWindow lines — for the whole file. The justification
/// must contain at least one alphanumeric character — an exception
/// nobody argued for is itself a diagnostic. Rule lists with
/// angle-bracket placeholders are documentation examples and ignored.
void scan_suppressions(const std::vector<std::string>& comment_lines,
                       const std::vector<std::string>& code_lines,
                       SuppressionScan& scan) {
    for (std::size_t index = 0; index < comment_lines.size(); ++index) {
        const std::string& comment = comment_lines[index];
        const std::size_t marker = comment.find(kMarker);
        if (marker == std::string::npos) continue;
        const std::size_t line = index + 1;
        std::size_t pos = marker + std::string(kMarker).size();
        while (pos < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[pos])) != 0)
            ++pos;
        const std::string file_form = "allow-file(";
        const std::string line_form = "allow(";
        bool whole_file = false;
        if (comment.compare(pos, file_form.size(), file_form) == 0) {
            whole_file = true;
            pos += file_form.size();
        } else if (comment.compare(pos, line_form.size(), line_form) == 0) {
            pos += line_form.size();
        } else {
            scan.malformed.push_back(
                {"", line, "suppression",
                 "malformed annotation: expected "
                 "'allow(rule[, rule...]) <justification>' or "
                 "'allow-file(rule[, rule...]) <justification>' after the "
                 "marker"});
            continue;
        }
        const std::size_t close = comment.find(')', pos);
        if (close == std::string::npos) {
            scan.malformed.push_back({"", line, "suppression",
                                      "malformed annotation: missing ')'"});
            continue;
        }
        const std::string list = comment.substr(pos, close - pos);
        if (list.find('<') != std::string::npos ||
            list.find('>') != std::string::npos)
            continue;  // documentation example, not an annotation
        std::set<std::string> rules;
        bool ok = true;
        std::stringstream stream(list);
        std::string item;
        while (std::getline(stream, item, ',')) {
            const std::string rule = trim(item);
            if (rule.empty() || !known_rule(rule) || rule == "suppression") {
                scan.malformed.push_back({"", line, "suppression",
                                          unknown_rule_message(rule)});
                ok = false;
                continue;
            }
            rules.insert(rule);
        }
        if (!ok || rules.empty()) continue;
        const std::string justification = comment.substr(close + 1);
        const bool justified =
            std::any_of(justification.begin(), justification.end(),
                        [](char c) {
                            return std::isalnum(
                                       static_cast<unsigned char>(c)) != 0;
                        });
        if (!justified) {
            scan.malformed.push_back(
                {"", line, "suppression",
                 "suppression needs a justification after the rule list"});
            continue;
        }
        if (whole_file) {
            if (line > kAllowFileWindow) {
                scan.malformed.push_back(
                    {"", line, "suppression",
                     "allow-file must appear within the first " +
                         std::to_string(kAllowFileWindow) +
                         " lines of the file"});
                continue;
            }
            scan.file_rules.insert(rules.begin(), rules.end());
            continue;
        }
        // A comment-only line annotates the line below it; an end-of-line
        // comment annotates its own line.
        const bool own_code = index < code_lines.size() &&
                              !blank_line(code_lines[index]);
        const std::size_t target = own_code ? line : line + 1;
        scan.by_line[target].insert(rules.begin(), rules.end());
    }
}

bool suppressed(const SuppressionScan& scan, const std::string& rule,
                std::size_t line) {
    if (scan.file_rules.count(rule) != 0) return true;
    const auto found = scan.by_line.find(line);
    return found != scan.by_line.end() && found->second.count(rule) != 0;
}

// ------------------------------------------------------------ rule scopes

bool is_header(const std::string& virtual_path) {
    const auto dot = virtual_path.rfind('.');
    if (dot == std::string::npos) return false;
    const std::string ext = virtual_path.substr(dot);
    return ext == ".hpp" || ext == ".h";
}

/// Determinism rules cover everything that feeds results or reports:
/// src/ (minus the exec layer, whose whole job is threads and claims),
/// tools/ and examples/. bench/ is measurement code — clocks are its
/// purpose — and tests/ is not scanned at all.
bool determinism_scope(const std::string& virtual_path) {
    if (starts_with(virtual_path, "src/"))
        return module_of(virtual_path) != "exec";
    return starts_with(virtual_path, "tools/") ||
           starts_with(virtual_path, "examples/");
}

/// The one sanctioned home for raw threading primitives outside exec:
/// the solve cache's slot locking (ROADMAP layer 5).
bool raw_thread_exempt(const std::string& virtual_path) {
    return virtual_path == "src/ctmdp/solve_cache.hpp" ||
           virtual_path == "src/ctmdp/solve_cache.cpp";
}

// ---------------------------------------------------------- rule patterns

const std::regex& include_prefix_re() {
    static const std::regex re(R"re(^\s*#\s*include\s*")re");
    return re;
}

const std::regex& include_path_re() {
    static const std::regex re(R"re(^\s*#\s*include\s*"([^"]+)")re");
    return re;
}

const std::regex& include_any_re() {
    static const std::regex re(R"re(^\s*#\s*include\b)re");
    return re;
}

const std::regex& random_re() {
    static const std::regex re(R"re(\b(srand|rand)\s*\(|\brandom_device\b)re");
    return re;
}

const std::regex& wall_clock_re() {
    static const std::regex re(
        R"re(_clock\s*::\s*now\b|\bgettimeofday\b|\bclock_gettime\b|\bclock\s*\(|\btime\s*\()re");
    return re;
}

const std::regex& raw_thread_re() {
    static const std::regex re(
        R"re(\bstd\s*::\s*(jthread|thread|async|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|mutex|condition_variable_any|condition_variable)\b)re");
    return re;
}

const std::regex& pointer_key_re() {
    static const std::regex re(
        R"re(\bstd\s*::\s*(multimap|multiset|map|set)\s*<\s*[^,<>]*\*)re");
    return re;
}

const std::regex& unordered_re() {
    static const std::regex re(
        R"re(\bunordered_(map|set|multimap|multiset)\b)re");
    return re;
}

const std::regex& unordered_decl_re() {
    static const std::regex re(
        R"re(\bunordered_(?:map|set|multimap|multiset)\s*<)re");
    return re;
}

const std::regex& begin_call_re() {
    static const std::regex re(
        R"re(\b([A-Za-z_]\w*)\s*\.\s*(?:c|r|cr)?begin\s*\()re");
    return re;
}

const std::regex& range_for_re() {
    static const std::regex re(R"re(\bfor\s*\(([^;(){}]*)\))re");
    return re;
}

const std::regex& pragma_once_re() {
    static const std::regex re(R"re(^\s*#\s*pragma\s+once\b)re");
    return re;
}

const std::regex& using_namespace_re() {
    static const std::regex re(R"re(\busing\s+namespace\b)re");
    return re;
}

/// Names of unordered containers declared in the given blanked code
/// (variables, members and parameters of a direct unordered_* type;
/// aliases are out of reach of a text-level scan and documented so).
std::set<std::string> unordered_names(const std::string& code) {
    std::set<std::string> names;
    const auto end = std::sregex_iterator();
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        unordered_decl_re());
         it != end; ++it) {
        std::size_t pos =
            static_cast<std::size_t>(it->position() + it->length());
        int depth = 1;
        while (pos < code.size() && depth > 0) {
            if (code[pos] == '<') ++depth;
            if (code[pos] == '>') --depth;
            ++pos;
        }
        while (pos < code.size() &&
               (std::isspace(static_cast<unsigned char>(code[pos])) != 0 ||
                code[pos] == '*' || code[pos] == '&'))
            ++pos;
        std::string name;
        while (pos < code.size() && ident_char(code[pos]))
            name.push_back(code[pos++]);
        if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])))
            continue;
        while (pos < code.size() &&
               std::isspace(static_cast<unsigned char>(code[pos])) != 0)
            ++pos;
        const char next = pos < code.size() ? code[pos] : ';';
        if (next == ';' || next == ',' || next == '=' || next == '{' ||
            next == '(' || next == ')' || next == '[')
            names.insert(name);
    }
    return names;
}

/// Identifiers appearing in a range-for's range expression.
std::vector<std::string> range_identifiers(const std::string& expr) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < expr.size()) {
        if (std::isalpha(static_cast<unsigned char>(expr[i])) != 0 ||
            expr[i] == '_') {
            std::string name;
            while (i < expr.size() && ident_char(expr[i]))
                name.push_back(expr[i++]);
            out.push_back(name);
        } else {
            ++i;
        }
    }
    return out;
}

/// The range expression of a range-based for capture, or "" for a
/// classic for. The separating ':' is the first one not part of '::'.
std::string range_expression(const std::string& capture) {
    for (std::size_t i = 0; i < capture.size(); ++i) {
        if (capture[i] != ':') continue;
        if (i + 1 < capture.size() && capture[i + 1] == ':') {
            ++i;
            continue;
        }
        if (i > 0 && capture[i - 1] == ':') continue;
        return capture.substr(i + 1);
    }
    return "";
}

// ------------------------------------------------------------- rule table

struct RuleInfo {
    const char* id;
    const char* description;
    RuleScope scope;
};

constexpr RuleInfo kRules[] = {
    {"layering",
     "an upward or sideways #include between source layers (each layer "
     "only reaches downward; see tools/README.md for the rank table)",
     RuleScope::kPerFile},
    {"unordered-container",
     "std::unordered_map/set declared in determinism-scoped code; "
     "iteration order is unspecified, so justify order-safety with a "
     "suppression or use an ordered container",
     RuleScope::kPerFile},
    {"unordered-iteration",
     "iteration over an unordered container in determinism-scoped code "
     "(range-for or begin()); the visit order may differ across runs "
     "and library versions",
     RuleScope::kPerFile},
    {"random-source",
     "ambient randomness (rand, srand, std::random_device) — all "
     "stochastic behavior must flow from the seeded rng layer",
     RuleScope::kPerFile},
    {"wall-clock",
     "wall-clock read (chrono ::now, time, clock_gettime, ...) outside "
     "bench/; timing diagnostics need an explicit justification",
     RuleScope::kPerFile},
    {"raw-thread",
     "raw threading primitive (std::thread/async/mutex/...) outside "
     "src/exec/ and the solve cache; fan out through exec::Executor",
     RuleScope::kPerFile},
    {"pointer-key",
     "ordered container keyed by a pointer; address order changes from "
     "run to run, so iteration feeds nondeterminism into folds",
     RuleScope::kPerFile},
    {"static-mutable",
     "function-local static non-const, or use of a mutable "
     "namespace-scope global, in code reachable from a sanctioned "
     "fan-out entry point; shared writes race across workers",
     RuleScope::kCallGraph},
    {"nonreentrant-call",
     "call to a non-reentrant libc function (strtok, setenv, localtime, "
     "rand, ...) from code reachable from a sanctioned fan-out entry "
     "point; hidden process-global state races",
     RuleScope::kCallGraph},
    {"shared-capture",
     "by-reference lambda capture mutated inside a worker-submitted "
     "body without an index-addressed slot or atomic",
     RuleScope::kCallGraph},
    {"fold-order",
     "accumulation into shared state inside a worker-submitted body; "
     "the fold happens in schedule order — reduce worker results in "
     "index order on the submitting thread",
     RuleScope::kCallGraph},
    {"pragma-once", "header without #pragma once", RuleScope::kPerFile},
    {"using-namespace-header", "using namespace at header scope",
     RuleScope::kPerFile},
    {"suppression",
     "malformed or unjustified suppression annotation (not itself "
     "suppressible)",
     RuleScope::kPerFile},
};

// ------------------------------------------------------------ file linting

struct FileLint {
    const std::string& display_path;
    const std::string& virtual_path;
    const std::vector<std::string>& raw_lines;
    const std::vector<std::string>& code_lines;
    const SuppressionScan& suppressions;
    std::vector<Diagnostic> output;

    void emit(const char* rule, std::size_t line, std::string message) {
        if (suppressed(suppressions, rule, line)) return;
        output.push_back({display_path, line, rule, std::move(message)});
    }
};

void check_layering(FileLint& file) {
    const std::string includer_module = module_of(file.virtual_path);
    const int includer_rank =
        includer_module.empty() ? -1 : module_rank(includer_module);
    if (includer_rank < 0) return;  // tools/bench/examples sit on top
    for (std::size_t index = 0; index < file.code_lines.size(); ++index) {
        if (!std::regex_search(file.code_lines[index], include_prefix_re()))
            continue;
        std::smatch match;
        if (!std::regex_search(file.raw_lines[index], match,
                               include_path_re()))
            continue;
        const std::string target_path = "src/" + match[1].str();
        const std::string target_module = module_of(target_path);
        if (target_module.empty() || target_module == includer_module)
            continue;
        const int target_rank = module_rank(target_module);
        if (target_rank < includer_rank) continue;
        const char* relation = target_rank == includer_rank
                                   ? "same-rank modules stay independent"
                                   : "layers reach only downward";
        file.emit("layering", index + 1,
                  "layer " + includer_module + " (rank " +
                      std::to_string(includer_rank) +
                      ") may not include layer " + target_module + " (rank " +
                      std::to_string(target_rank) + "): " + relation);
    }
}

void check_patterns(FileLint& file) {
    const bool determinism = determinism_scope(file.virtual_path);
    const bool header = is_header(file.virtual_path);
    const bool thread_ok = !determinism ||
                           raw_thread_exempt(file.virtual_path);
    for (std::size_t index = 0; index < file.code_lines.size(); ++index) {
        const std::string& line = file.code_lines[index];
        const std::size_t number = index + 1;
        if (header && std::regex_search(line, using_namespace_re()))
            file.emit("using-namespace-header", number,
                      "using namespace at header scope leaks into every "
                      "includer");
        if (!determinism) continue;
        if (std::regex_search(line, random_re()))
            file.emit("random-source", number,
                      "ambient randomness; derive all stochastic behavior "
                      "from the seeded rng layer");
        if (std::regex_search(line, wall_clock_re()))
            file.emit("wall-clock", number,
                      "wall-clock read outside bench/; results must not "
                      "depend on when or how fast the code runs");
        if (!thread_ok && std::regex_search(line, raw_thread_re()))
            file.emit("raw-thread", number,
                      "raw threading primitive outside src/exec/ (and the "
                      "solve cache); fan out through exec::Executor so "
                      "claims stay deterministic");
        if (std::regex_search(line, pointer_key_re()))
            file.emit("pointer-key", number,
                      "ordered container keyed by a pointer; address order "
                      "varies run to run");
        if (std::regex_search(line, unordered_re()) &&
            !std::regex_search(line, include_any_re()))
            file.emit("unordered-container", number,
                      "unordered container in determinism-scoped code; "
                      "justify that its order never feeds results or "
                      "reports (or use an ordered container)");
    }
}

void check_unordered_iteration(FileLint& file,
                               const std::set<std::string>& names) {
    if (!determinism_scope(file.virtual_path) || names.empty()) return;
    const auto end = std::sregex_iterator();
    for (std::size_t index = 0; index < file.code_lines.size(); ++index) {
        const std::string& line = file.code_lines[index];
        const std::size_t number = index + 1;
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            begin_call_re());
             it != end; ++it) {
            if (names.count((*it)[1].str()) != 0)
                file.emit("unordered-iteration", number,
                          "iteration over unordered container '" +
                              (*it)[1].str() +
                              "': the visit order is unspecified");
        }
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            range_for_re());
             it != end; ++it) {
            const std::string range = range_expression((*it)[1].str());
            for (const std::string& name : range_identifiers(range)) {
                if (names.count(name) != 0)
                    file.emit("unordered-iteration", number,
                              "range-for over unordered container '" + name +
                                  "': the visit order is unspecified");
            }
        }
    }
}

void check_pragma_once(FileLint& file) {
    if (!is_header(file.virtual_path)) return;
    for (const std::string& line : file.code_lines)
        if (std::regex_search(line, pragma_once_re())) return;
    file.emit("pragma-once", 1, "header is missing #pragma once");
}

// ------------------------------------------------------- whole-set driver

/// One file, split and scanned once, shared by the per-file checks and
/// the call-graph pass.
struct PreparedFile {
    std::string display_path;
    std::string virtual_path;
    Views views;
    std::vector<std::string> raw_lines;
    std::vector<std::string> code_lines;
    SuppressionScan suppressions;
};

PreparedFile prepare_file(const std::string& display_path,
                          const std::string& virtual_path,
                          const std::string& text) {
    PreparedFile prepared;
    prepared.display_path = display_path;
    prepared.virtual_path = virtual_path;
    prepared.views = split_views(text);
    prepared.raw_lines = split_lines(text);
    prepared.code_lines = split_lines(prepared.views.code);
    scan_suppressions(split_lines(prepared.views.comments),
                      prepared.code_lines, prepared.suppressions);
    return prepared;
}

/// All per-file rules over one prepared file, malformed-suppression
/// diagnostics included, unsorted.
std::vector<Diagnostic> per_file_pass(const PreparedFile& prepared,
                                      const std::string* paired_header) {
    FileLint file{prepared.display_path, prepared.virtual_path,
                  prepared.raw_lines,    prepared.code_lines,
                  prepared.suppressions, {}};
    check_layering(file);
    check_patterns(file);
    std::set<std::string> names = unordered_names(prepared.views.code);
    if (paired_header != nullptr) {
        const std::set<std::string> header_names =
            unordered_names(split_views(*paired_header).code);
        names.insert(header_names.begin(), header_names.end());
    }
    check_unordered_iteration(file, names);
    check_pragma_once(file);
    for (const Diagnostic& diagnostic : prepared.suppressions.malformed) {
        Diagnostic copy = diagnostic;
        copy.file = prepared.display_path;
        file.output.push_back(std::move(copy));
    }
    return file.output;
}

void sort_diagnostics(std::vector<Diagnostic>& diagnostics) {
    std::sort(diagnostics.begin(), diagnostics.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                  return std::tie(a.file, a.line, a.rule, a.message) <
                         std::tie(b.file, b.line, b.rule, b.message);
              });
    diagnostics.erase(
        std::unique(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& a, const Diagnostic& b) {
                        return std::tie(a.file, a.line, a.rule, a.message) ==
                               std::tie(b.file, b.line, b.rule, b.message);
                    }),
        diagnostics.end());
}

}  // namespace

const std::vector<std::string>& rule_ids() {
    static const std::vector<std::string> ids = [] {
        std::vector<std::string> out;
        for (const RuleInfo& rule : kRules) out.emplace_back(rule.id);
        return out;
    }();
    return ids;
}

std::string rule_description(const std::string& rule) {
    for (const RuleInfo& info : kRules)
        if (rule == info.id) return info.description;
    return "";
}

RuleScope rule_scope(const std::string& rule) {
    for (const RuleInfo& info : kRules)
        if (rule == info.id) return info.scope;
    return RuleScope::kPerFile;
}

std::string nearest_rule(const std::string& rule) {
    // Plain Levenshtein distance; the rule table is tiny.
    const auto distance = [](const std::string& a, const std::string& b) {
        std::vector<std::size_t> row(b.size() + 1);
        for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
        for (std::size_t i = 1; i <= a.size(); ++i) {
            std::size_t diagonal = row[0];
            row[0] = i;
            for (std::size_t j = 1; j <= b.size(); ++j) {
                const std::size_t previous = row[j];
                const std::size_t substitute =
                    diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
                row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
                diagonal = previous;
            }
        }
        return row[b.size()];
    };
    std::string best;
    std::size_t best_distance = static_cast<std::size_t>(-1);
    for (const std::string& id : rule_ids()) {
        if (id == "suppression") continue;  // never a valid allow target
        const std::size_t d = distance(rule, id);
        if (d < best_distance) {
            best_distance = d;
            best = id;
        }
    }
    // Only suggest plausible typos, not arbitrary words.
    const std::size_t threshold = std::max<std::size_t>(3, rule.size() / 2);
    return best_distance <= threshold ? best : "";
}

int layer_rank(const std::string& virtual_path) {
    const std::string module = module_of(virtual_path);
    return module.empty() ? -1 : module_rank(module);
}

std::vector<Diagnostic> lint_text(const std::string& display_path,
                                  const std::string& virtual_path,
                                  const std::string& text,
                                  const std::string* paired_header) {
    const PreparedFile prepared =
        prepare_file(display_path, virtual_path, text);
    std::vector<Diagnostic> output = per_file_pass(prepared, paired_header);
    sort_diagnostics(output);
    return output;
}

std::vector<Diagnostic> analyze_files(const std::vector<SourceFile>& files) {
    std::vector<PreparedFile> prepared;
    prepared.reserve(files.size());
    std::vector<Diagnostic> all;
    for (const SourceFile& file : files) {
        prepared.push_back(prepare_file(file.display_path,
                                        file.virtual_path, file.text));
        const std::string* paired =
            file.has_paired_header ? &file.paired_header : nullptr;
        std::vector<Diagnostic> output =
            per_file_pass(prepared.back(), paired);
        all.insert(all.end(), std::make_move_iterator(output.begin()),
                   std::make_move_iterator(output.end()));
    }

    std::vector<callgraph::SourceInput> inputs;
    inputs.reserve(prepared.size());
    for (const PreparedFile& file : prepared)
        inputs.push_back(
            {file.display_path, file.virtual_path, file.views.code});
    const callgraph::Graph graph = callgraph::build(inputs);

    std::map<std::string, const SuppressionScan*> scans;
    for (const PreparedFile& file : prepared)
        scans[file.display_path] = &file.suppressions;
    for (Diagnostic& diagnostic : check_worker_rules(graph)) {
        const auto found = scans.find(diagnostic.file);
        if (found != scans.end() &&
            suppressed(*found->second, diagnostic.rule, diagnostic.line))
            continue;
        all.push_back(std::move(diagnostic));
    }
    sort_diagnostics(all);
    return all;
}

std::vector<Diagnostic> analyze_text(const std::string& display_path,
                                     const std::string& virtual_path,
                                     const std::string& text) {
    SourceFile file;
    file.display_path = display_path;
    file.virtual_path = virtual_path;
    file.text = text;
    return analyze_files({file});
}

namespace {

// ---------------------------------------------------------------- formats

util::JsonValue json_report(const std::vector<Diagnostic>& diagnostics) {
    util::JsonValue report = util::JsonValue::object();
    report.set("tool", "socbuf_lint");
    report.set("count", diagnostics.size());
    util::JsonValue list = util::JsonValue::array();
    for (const Diagnostic& diagnostic : diagnostics) {
        util::JsonValue entry = util::JsonValue::object();
        entry.set("file", diagnostic.file);
        entry.set("line", diagnostic.line);
        entry.set("rule", diagnostic.rule);
        entry.set("message", diagnostic.message);
        list.push_back(std::move(entry));
    }
    report.set("diagnostics", std::move(list));
    return report;
}

util::JsonValue sarif_report(const std::vector<Diagnostic>& diagnostics) {
    util::JsonValue rules = util::JsonValue::array();
    for (const std::string& id : rule_ids()) {
        util::JsonValue rule = util::JsonValue::object();
        rule.set("id", id);
        util::JsonValue text = util::JsonValue::object();
        text.set("text", rule_description(id));
        rule.set("shortDescription", std::move(text));
        rules.push_back(std::move(rule));
    }
    util::JsonValue driver = util::JsonValue::object();
    driver.set("name", "socbuf_lint");
    driver.set("rules", std::move(rules));
    util::JsonValue tool = util::JsonValue::object();
    tool.set("driver", std::move(driver));

    util::JsonValue results = util::JsonValue::array();
    for (const Diagnostic& diagnostic : diagnostics) {
        util::JsonValue message = util::JsonValue::object();
        message.set("text", diagnostic.message);
        util::JsonValue artifact = util::JsonValue::object();
        artifact.set("uri", diagnostic.file);
        util::JsonValue region = util::JsonValue::object();
        region.set("startLine", diagnostic.line);
        util::JsonValue physical = util::JsonValue::object();
        physical.set("artifactLocation", std::move(artifact));
        physical.set("region", std::move(region));
        util::JsonValue location = util::JsonValue::object();
        location.set("physicalLocation", std::move(physical));
        util::JsonValue locations = util::JsonValue::array();
        locations.push_back(std::move(location));
        util::JsonValue result = util::JsonValue::object();
        result.set("ruleId", diagnostic.rule);
        result.set("level", "error");
        result.set("message", std::move(message));
        result.set("locations", std::move(locations));
        results.push_back(std::move(result));
    }
    util::JsonValue run = util::JsonValue::object();
    run.set("tool", std::move(tool));
    run.set("results", std::move(results));
    util::JsonValue runs = util::JsonValue::array();
    runs.push_back(std::move(run));
    util::JsonValue log = util::JsonValue::object();
    log.set("version", "2.1.0");
    log.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
    log.set("runs", std::move(runs));
    return log;
}

// --------------------------------------------------------------- baseline
//
// One tolerated finding per line, tab-separated: file, rule, message.
// Line numbers are deliberately absent so unrelated edits above a
// finding do not invalidate the whole baseline; '#' lines are comments.

std::string baseline_key(const Diagnostic& diagnostic) {
    return diagnostic.file + "\t" + diagnostic.rule + "\t" +
           diagnostic.message;
}

bool load_baseline(const std::string& path,
                   std::multiset<std::string>& entries, std::ostream& err) {
    std::ifstream in(path);
    if (!in) {
        err << "socbuf_lint: cannot read baseline '" << path << "'\n";
        return false;
    }
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (blank_line(line) || line[0] == '#') continue;
        entries.insert(line);
    }
    return true;
}

bool write_baseline_file(const std::string& path,
                         const std::vector<Diagnostic>& diagnostics,
                         std::ostream& err) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        err << "socbuf_lint: cannot write baseline '" << path << "'\n";
        return false;
    }
    out << "# socbuf_lint baseline — tolerated findings, one per line:\n"
           "#   file<TAB>rule<TAB>message\n"
           "# Regenerate with: socbuf_lint --write-baseline <this file> "
           "<paths>\n";
    std::vector<std::string> keys;
    keys.reserve(diagnostics.size());
    for (const Diagnostic& diagnostic : diagnostics)
        keys.push_back(baseline_key(diagnostic));
    std::sort(keys.begin(), keys.end());
    for (const std::string& key : keys) out << key << "\n";
    return out.good();
}

bool lintable_extension(const fs::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

bool read_file(const fs::path& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return false;
    out = buffer.str();
    return true;
}

}  // namespace

int run(const RunOptions& options, std::ostream& out, std::ostream& err) {
    const fs::path root =
        options.root.empty() ? fs::current_path() : fs::path(options.root);

    std::vector<fs::path> files;
    bool scanned_directory = false;
    for (const std::string& input : options.paths) {
        const fs::path path(input);
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            scanned_directory = true;
            for (fs::recursive_directory_iterator it(path, ec), done;
                 it != done; it.increment(ec)) {
                if (ec) break;
                if (it->is_regular_file() && lintable_extension(it->path()))
                    files.push_back(it->path());
            }
        } else if (fs::is_regular_file(path, ec)) {
            files.push_back(path);
        } else {
            err << "socbuf_lint: cannot read '" << input << "'\n";
            return 2;
        }
    }
    if (files.empty()) {
        err << "socbuf_lint: no .hpp/.cpp inputs\n";
        return 2;
    }
    if (!options.as.empty() && (files.size() != 1 || scanned_directory)) {
        err << "socbuf_lint: --as needs exactly one input file\n";
        return 2;
    }
    // Directory iteration order is unspecified; sort so the report (and
    // therefore the tool itself) is deterministic.
    std::sort(files.begin(), files.end(),
              [](const fs::path& a, const fs::path& b) {
                  return a.generic_string() < b.generic_string();
              });

    std::vector<SourceFile> sources;
    sources.reserve(files.size());
    for (const fs::path& path : files) {
        SourceFile source;
        if (!read_file(path, source.text)) {
            err << "socbuf_lint: cannot read '" << path.generic_string()
                << "'\n";
            return 2;
        }
        source.virtual_path = options.as;
        if (source.virtual_path.empty()) {
            const fs::path relative =
                fs::absolute(path).lexically_normal().lexically_relative(
                    fs::absolute(root).lexically_normal());
            source.virtual_path = relative.generic_string();
            if (source.virtual_path.empty() ||
                starts_with(source.virtual_path, "../"))
                source.virtual_path = path.generic_string();
        }
        if (path.extension() == ".cpp") {
            fs::path header = path;
            header.replace_extension(".hpp");
            if (fs::exists(header) &&
                read_file(header, source.paired_header))
                source.has_paired_header = true;
        }
        source.display_path = path.generic_string();
        sources.push_back(std::move(source));
    }

    std::vector<Diagnostic> diagnostics = analyze_files(sources);

    if (!options.write_baseline.empty()) {
        if (!write_baseline_file(options.write_baseline, diagnostics, err))
            return 2;
        err << "socbuf_lint: wrote " << diagnostics.size()
            << " baseline entr" << (diagnostics.size() == 1 ? "y" : "ies")
            << " to '" << options.write_baseline << "'\n";
        return 0;
    }

    if (!options.baseline.empty()) {
        std::multiset<std::string> baseline;
        if (!load_baseline(options.baseline, baseline, err)) return 2;
        std::size_t matched = 0;
        std::vector<Diagnostic> fresh;
        for (Diagnostic& diagnostic : diagnostics) {
            const auto found = baseline.find(baseline_key(diagnostic));
            if (found != baseline.end()) {
                baseline.erase(found);
                ++matched;
                continue;
            }
            fresh.push_back(std::move(diagnostic));
        }
        diagnostics = std::move(fresh);
        if (matched != 0)
            err << "socbuf_lint: " << matched << " finding"
                << (matched == 1 ? "" : "s") << " matched the baseline\n";
    }

    switch (options.format) {
        case Format::kText:
            for (const Diagnostic& diagnostic : diagnostics)
                out << diagnostic.file << ":" << diagnostic.line << ": ["
                    << diagnostic.rule << "] " << diagnostic.message << "\n";
            break;
        case Format::kJson:
            out << json_report(diagnostics).dump(2) << "\n";
            break;
        case Format::kSarif:
            out << sarif_report(diagnostics).dump(2) << "\n";
            break;
    }
    if (!diagnostics.empty()) {
        err << "socbuf_lint: " << diagnostics.size() << " diagnostic"
            << (diagnostics.size() == 1 ? "" : "s") << "\n";
        return 1;
    }
    return 0;
}

}  // namespace socbuf::lint
