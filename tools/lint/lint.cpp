#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <utility>

namespace socbuf::lint {

namespace {

namespace fs = std::filesystem;

bool starts_with(const std::string& text, const char* prefix) {
    return text.rfind(prefix, 0) == 0;
}

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// ------------------------------------------------------------------ layers
//
// The ROADMAP's architecture layers as a *dependency* rank table: a file
// may include only modules of strictly lower rank (its own module is
// always fine). Ranks order the real dependency DAG of the tree — note
// that `exec` sits low (it depends on nothing but util; everything else
// fans work through it), even though the ROADMAP's pipeline narrative
// lists it mid-stack. Same-rank modules are mutually independent:
// a sideways include is as much a violation as an upward one.

struct LayerEntry {
    const char* module;
    int rank;
};

constexpr LayerEntry kLayerTable[] = {
    {"util", 0},
    {"arch", 1},
    {"des", 1},
    {"exec", 1},
    {"linalg", 1},
    {"lp", 1},
    {"rng", 1},
    {"ctmc", 2},
    {"traffic", 2},
    {"ctmdp", 3},
    {"queueing", 3},
    {"sim", 3},
    {"split", 3},
    {"nonlinear", 4},
    {"core", 5},
    {"scenario", 6},
    {"session", 7},
    {"experiments", 8},
};

/// src/core/experiments.* is the ROADMAP's topmost layer (thin presets
/// over scenario/session) living in the core directory; mapping it above
/// session keeps its downward reach legal and bans everything below the
/// scenario stack from including it.
const char* file_module_override(const std::string& virtual_path) {
    if (virtual_path == "src/core/experiments.hpp" ||
        virtual_path == "src/core/experiments.cpp")
        return "experiments";
    return nullptr;
}

int module_rank(const std::string& module) {
    for (const LayerEntry& entry : kLayerTable)
        if (module == entry.module) return entry.rank;
    return -1;
}

/// Module a repo-relative path belongs to ("" when outside src/ or in an
/// unknown src/ subdirectory).
std::string module_of(const std::string& virtual_path) {
    if (const char* override_module = file_module_override(virtual_path))
        return override_module;
    if (!starts_with(virtual_path, "src/")) return "";
    const std::size_t begin = 4;
    const std::size_t end = virtual_path.find('/', begin);
    if (end == std::string::npos) return "";
    const std::string module = virtual_path.substr(begin, end - begin);
    return module_rank(module) >= 0 ? module : "";
}

// ------------------------------------------------------------- text views
//
// Pattern rules must not fire on comment or string-literal text (the
// linter's own sources spell every banned token inside string literals),
// and suppression markers must be read from comments *only* (a marker
// inside a string literal is data, not an annotation). So each file is
// split into two same-shape views: `code` with comments and literals
// blanked, `comments` with everything else blanked. Newlines survive in
// both so line numbers stay aligned.

struct Views {
    std::string code;
    std::string comments;
};

Views split_views(const std::string& text) {
    Views views;
    views.code.assign(text.size(), ' ');
    views.comments.assign(text.size(), ' ');
    enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
    State state = State::kCode;
    std::string raw_delim;
    std::size_t i = 0;
    while (i < text.size()) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        if (c == '\n') {
            views.code[i] = '\n';
            views.comments[i] = '\n';
            if (state == State::kLine) state = State::kCode;
            ++i;
            continue;
        }
        switch (state) {
            case State::kCode:
                if (c == '/' && next == '/') {
                    state = State::kLine;
                    i += 2;
                } else if (c == '/' && next == '*') {
                    state = State::kBlock;
                    i += 2;
                } else if (c == '"') {
                    const bool raw =
                        i > 0 && text[i - 1] == 'R' &&
                        (i < 2 || !ident_char(text[i - 2]));
                    views.code[i] = '"';
                    ++i;
                    if (raw) {
                        raw_delim.clear();
                        while (i < text.size() && text[i] != '(')
                            raw_delim.push_back(text[i++]);
                        if (i < text.size()) ++i;  // consume '('
                        state = State::kRaw;
                    } else {
                        state = State::kString;
                    }
                } else if (c == '\'') {
                    ++i;
                    state = State::kChar;
                } else {
                    views.code[i] = c;
                    ++i;
                }
                break;
            case State::kLine:
                views.comments[i] = c;
                ++i;
                break;
            case State::kBlock:
                if (c == '*' && next == '/') {
                    state = State::kCode;
                    i += 2;
                } else {
                    views.comments[i] = c;
                    ++i;
                }
                break;
            case State::kString:
                if (c == '\\') {
                    i += 2;
                } else if (c == '"') {
                    views.code[i] = '"';
                    ++i;
                    state = State::kCode;
                } else {
                    ++i;
                }
                break;
            case State::kChar:
                if (c == '\\') {
                    i += 2;
                } else if (c == '\'') {
                    ++i;
                    state = State::kCode;
                } else {
                    ++i;
                }
                break;
            case State::kRaw:
                if (c == ')' &&
                    text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
                    i + 1 + raw_delim.size() < text.size() &&
                    text[i + 1 + raw_delim.size()] == '"') {
                    i += 2 + raw_delim.size();
                    state = State::kCode;
                } else {
                    ++i;
                }
                break;
        }
    }
    return views;
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::size_t begin = 0;
    while (begin <= text.size()) {
        const std::size_t end = text.find('\n', begin);
        if (end == std::string::npos) {
            lines.push_back(text.substr(begin));
            break;
        }
        lines.push_back(text.substr(begin, end - begin));
        begin = end + 1;
    }
    return lines;
}

bool blank_line(const std::string& line) {
    return std::all_of(line.begin(), line.end(), [](char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
    });
}

std::string trim(const std::string& text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])) != 0)
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])) != 0)
        --end;
    return text.substr(begin, end - begin);
}

// ----------------------------------------------------------- suppressions

constexpr const char* kMarker = "socbuf-lint:";

struct SuppressionScan {
    /// Rules suppressed per 1-based target line.
    std::map<std::size_t, std::set<std::string>> by_line;
    /// Malformed-annotation diagnostics (rule "suppression").
    std::vector<Diagnostic> malformed;
};

bool known_rule(const std::string& rule) {
    const std::vector<std::string>& ids = rule_ids();
    return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

/// Parse one comment line for a suppression annotation. Grammar (the
/// marker word, then): allow(rule[, rule...]) <justification>. The
/// justification must contain at least one alphanumeric character — an
/// exception nobody argued for is itself a diagnostic. Rule lists with
/// angle-bracket placeholders are documentation examples and ignored.
void scan_suppressions(const std::vector<std::string>& comment_lines,
                       const std::vector<std::string>& code_lines,
                       SuppressionScan& scan) {
    for (std::size_t index = 0; index < comment_lines.size(); ++index) {
        const std::string& comment = comment_lines[index];
        const std::size_t marker = comment.find(kMarker);
        if (marker == std::string::npos) continue;
        const std::size_t line = index + 1;
        std::size_t pos = marker + std::string(kMarker).size();
        while (pos < comment.size() &&
               std::isspace(static_cast<unsigned char>(comment[pos])) != 0)
            ++pos;
        const std::string expect = "allow(";
        if (comment.compare(pos, expect.size(), expect) != 0) {
            scan.malformed.push_back(
                {"", line, "suppression",
                 "malformed annotation: expected "
                 "'allow(rule[, rule...]) <justification>' after the "
                 "marker"});
            continue;
        }
        pos += expect.size();
        const std::size_t close = comment.find(')', pos);
        if (close == std::string::npos) {
            scan.malformed.push_back({"", line, "suppression",
                                      "malformed annotation: missing ')'"});
            continue;
        }
        const std::string list = comment.substr(pos, close - pos);
        if (list.find('<') != std::string::npos ||
            list.find('>') != std::string::npos)
            continue;  // documentation example, not an annotation
        std::set<std::string> rules;
        bool ok = true;
        std::stringstream stream(list);
        std::string item;
        while (std::getline(stream, item, ',')) {
            const std::string rule = trim(item);
            if (rule.empty() || !known_rule(rule) || rule == "suppression") {
                scan.malformed.push_back({"", line, "suppression",
                                          "unknown rule '" + rule + "'"});
                ok = false;
                continue;
            }
            rules.insert(rule);
        }
        if (!ok || rules.empty()) continue;
        const std::string justification = comment.substr(close + 1);
        const bool justified =
            std::any_of(justification.begin(), justification.end(),
                        [](char c) {
                            return std::isalnum(
                                       static_cast<unsigned char>(c)) != 0;
                        });
        if (!justified) {
            scan.malformed.push_back(
                {"", line, "suppression",
                 "suppression needs a justification after the rule list"});
            continue;
        }
        // A comment-only line annotates the line below it; an end-of-line
        // comment annotates its own line.
        const bool own_code = index < code_lines.size() &&
                              !blank_line(code_lines[index]);
        const std::size_t target = own_code ? line : line + 1;
        scan.by_line[target].insert(rules.begin(), rules.end());
    }
}

// ------------------------------------------------------------ rule scopes

bool is_header(const std::string& virtual_path) {
    const auto dot = virtual_path.rfind('.');
    if (dot == std::string::npos) return false;
    const std::string ext = virtual_path.substr(dot);
    return ext == ".hpp" || ext == ".h";
}

/// Determinism rules cover everything that feeds results or reports:
/// src/ (minus the exec layer, whose whole job is threads and claims),
/// tools/ and examples/. bench/ is measurement code — clocks are its
/// purpose — and tests/ is not scanned at all.
bool determinism_scope(const std::string& virtual_path) {
    if (starts_with(virtual_path, "src/"))
        return module_of(virtual_path) != "exec";
    return starts_with(virtual_path, "tools/") ||
           starts_with(virtual_path, "examples/");
}

/// The one sanctioned home for raw threading primitives outside exec:
/// the solve cache's slot locking (ROADMAP layer 5).
bool raw_thread_exempt(const std::string& virtual_path) {
    return virtual_path == "src/ctmdp/solve_cache.hpp" ||
           virtual_path == "src/ctmdp/solve_cache.cpp";
}

// ---------------------------------------------------------- rule patterns

const std::regex& include_prefix_re() {
    static const std::regex re(R"re(^\s*#\s*include\s*")re");
    return re;
}

const std::regex& include_path_re() {
    static const std::regex re(R"re(^\s*#\s*include\s*"([^"]+)")re");
    return re;
}

const std::regex& include_any_re() {
    static const std::regex re(R"re(^\s*#\s*include\b)re");
    return re;
}

const std::regex& random_re() {
    static const std::regex re(R"re(\b(srand|rand)\s*\(|\brandom_device\b)re");
    return re;
}

const std::regex& wall_clock_re() {
    static const std::regex re(
        R"re(_clock\s*::\s*now\b|\bgettimeofday\b|\bclock_gettime\b|\bclock\s*\(|\btime\s*\()re");
    return re;
}

const std::regex& raw_thread_re() {
    static const std::regex re(
        R"re(\bstd\s*::\s*(jthread|thread|async|timed_mutex|recursive_mutex|recursive_timed_mutex|shared_mutex|shared_timed_mutex|mutex|condition_variable_any|condition_variable)\b)re");
    return re;
}

const std::regex& pointer_key_re() {
    static const std::regex re(
        R"re(\bstd\s*::\s*(multimap|multiset|map|set)\s*<\s*[^,<>]*\*)re");
    return re;
}

const std::regex& unordered_re() {
    static const std::regex re(
        R"re(\bunordered_(map|set|multimap|multiset)\b)re");
    return re;
}

const std::regex& unordered_decl_re() {
    static const std::regex re(
        R"re(\bunordered_(?:map|set|multimap|multiset)\s*<)re");
    return re;
}

const std::regex& begin_call_re() {
    static const std::regex re(
        R"re(\b([A-Za-z_]\w*)\s*\.\s*(?:c|r|cr)?begin\s*\()re");
    return re;
}

const std::regex& range_for_re() {
    static const std::regex re(R"re(\bfor\s*\(([^;(){}]*)\))re");
    return re;
}

const std::regex& pragma_once_re() {
    static const std::regex re(R"re(^\s*#\s*pragma\s+once\b)re");
    return re;
}

const std::regex& using_namespace_re() {
    static const std::regex re(R"re(\busing\s+namespace\b)re");
    return re;
}

/// Names of unordered containers declared in the given blanked code
/// (variables, members and parameters of a direct unordered_* type;
/// aliases are out of reach of a text-level scan and documented so).
std::set<std::string> unordered_names(const std::string& code) {
    std::set<std::string> names;
    const auto end = std::sregex_iterator();
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        unordered_decl_re());
         it != end; ++it) {
        std::size_t pos =
            static_cast<std::size_t>(it->position() + it->length());
        int depth = 1;
        while (pos < code.size() && depth > 0) {
            if (code[pos] == '<') ++depth;
            if (code[pos] == '>') --depth;
            ++pos;
        }
        while (pos < code.size() &&
               (std::isspace(static_cast<unsigned char>(code[pos])) != 0 ||
                code[pos] == '*' || code[pos] == '&'))
            ++pos;
        std::string name;
        while (pos < code.size() && ident_char(code[pos]))
            name.push_back(code[pos++]);
        if (name.empty() || std::isdigit(static_cast<unsigned char>(name[0])))
            continue;
        while (pos < code.size() &&
               std::isspace(static_cast<unsigned char>(code[pos])) != 0)
            ++pos;
        const char next = pos < code.size() ? code[pos] : ';';
        if (next == ';' || next == ',' || next == '=' || next == '{' ||
            next == '(' || next == ')' || next == '[')
            names.insert(name);
    }
    return names;
}

/// Identifiers appearing in a range-for's range expression.
std::vector<std::string> range_identifiers(const std::string& expr) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < expr.size()) {
        if (std::isalpha(static_cast<unsigned char>(expr[i])) != 0 ||
            expr[i] == '_') {
            std::string name;
            while (i < expr.size() && ident_char(expr[i]))
                name.push_back(expr[i++]);
            out.push_back(name);
        } else {
            ++i;
        }
    }
    return out;
}

/// The range expression of a range-based for capture, or "" for a
/// classic for. The separating ':' is the first one not part of '::'.
std::string range_expression(const std::string& capture) {
    for (std::size_t i = 0; i < capture.size(); ++i) {
        if (capture[i] != ':') continue;
        if (i + 1 < capture.size() && capture[i + 1] == ':') {
            ++i;
            continue;
        }
        if (i > 0 && capture[i - 1] == ':') continue;
        return capture.substr(i + 1);
    }
    return "";
}

// ------------------------------------------------------------- rule table

struct RuleInfo {
    const char* id;
    const char* description;
};

constexpr RuleInfo kRules[] = {
    {"layering",
     "an upward or sideways #include between source layers (each layer "
     "only reaches downward; see tools/README.md for the rank table)"},
    {"unordered-container",
     "std::unordered_map/set declared in determinism-scoped code; "
     "iteration order is unspecified, so justify order-safety with a "
     "suppression or use an ordered container"},
    {"unordered-iteration",
     "iteration over an unordered container in determinism-scoped code "
     "(range-for or begin()); the visit order may differ across runs "
     "and library versions"},
    {"random-source",
     "ambient randomness (rand, srand, std::random_device) — all "
     "stochastic behavior must flow from the seeded rng layer"},
    {"wall-clock",
     "wall-clock read (chrono ::now, time, clock_gettime, ...) outside "
     "bench/; timing diagnostics need an explicit justification"},
    {"raw-thread",
     "raw threading primitive (std::thread/async/mutex/...) outside "
     "src/exec/ and the solve cache; fan out through exec::Executor"},
    {"pointer-key",
     "ordered container keyed by a pointer; address order changes from "
     "run to run, so iteration feeds nondeterminism into folds"},
    {"pragma-once", "header without #pragma once"},
    {"using-namespace-header", "using namespace at header scope"},
    {"suppression",
     "malformed or unjustified suppression annotation (not itself "
     "suppressible)"},
};

// ------------------------------------------------------------ file linting

struct FileLint {
    const std::string& display_path;
    const std::string& virtual_path;
    std::vector<std::string> raw_lines;
    std::vector<std::string> code_lines;
    SuppressionScan suppressions;
    std::vector<Diagnostic> output;

    void emit(const char* rule, std::size_t line, std::string message) {
        const auto found = suppressions.by_line.find(line);
        if (found != suppressions.by_line.end() &&
            found->second.count(rule) != 0)
            return;
        output.push_back({display_path, line, rule, std::move(message)});
    }
};

void check_layering(FileLint& file) {
    const std::string includer_module = module_of(file.virtual_path);
    const int includer_rank =
        includer_module.empty() ? -1 : module_rank(includer_module);
    if (includer_rank < 0) return;  // tools/bench/examples sit on top
    for (std::size_t index = 0; index < file.code_lines.size(); ++index) {
        if (!std::regex_search(file.code_lines[index], include_prefix_re()))
            continue;
        std::smatch match;
        if (!std::regex_search(file.raw_lines[index], match,
                               include_path_re()))
            continue;
        const std::string target_path = "src/" + match[1].str();
        const std::string target_module = module_of(target_path);
        if (target_module.empty() || target_module == includer_module)
            continue;
        const int target_rank = module_rank(target_module);
        if (target_rank < includer_rank) continue;
        const char* relation = target_rank == includer_rank
                                   ? "same-rank modules stay independent"
                                   : "layers reach only downward";
        file.emit("layering", index + 1,
                  "layer " + includer_module + " (rank " +
                      std::to_string(includer_rank) +
                      ") may not include layer " + target_module + " (rank " +
                      std::to_string(target_rank) + "): " + relation);
    }
}

void check_patterns(FileLint& file) {
    const bool determinism = determinism_scope(file.virtual_path);
    const bool header = is_header(file.virtual_path);
    const bool thread_ok = !determinism ||
                           raw_thread_exempt(file.virtual_path);
    for (std::size_t index = 0; index < file.code_lines.size(); ++index) {
        const std::string& line = file.code_lines[index];
        const std::size_t number = index + 1;
        if (header && std::regex_search(line, using_namespace_re()))
            file.emit("using-namespace-header", number,
                      "using namespace at header scope leaks into every "
                      "includer");
        if (!determinism) continue;
        if (std::regex_search(line, random_re()))
            file.emit("random-source", number,
                      "ambient randomness; derive all stochastic behavior "
                      "from the seeded rng layer");
        if (std::regex_search(line, wall_clock_re()))
            file.emit("wall-clock", number,
                      "wall-clock read outside bench/; results must not "
                      "depend on when or how fast the code runs");
        if (!thread_ok && std::regex_search(line, raw_thread_re()))
            file.emit("raw-thread", number,
                      "raw threading primitive outside src/exec/ (and the "
                      "solve cache); fan out through exec::Executor so "
                      "claims stay deterministic");
        if (std::regex_search(line, pointer_key_re()))
            file.emit("pointer-key", number,
                      "ordered container keyed by a pointer; address order "
                      "varies run to run");
        if (std::regex_search(line, unordered_re()) &&
            !std::regex_search(line, include_any_re()))
            file.emit("unordered-container", number,
                      "unordered container in determinism-scoped code; "
                      "justify that its order never feeds results or "
                      "reports (or use an ordered container)");
    }
}

void check_unordered_iteration(FileLint& file,
                               const std::set<std::string>& names) {
    if (!determinism_scope(file.virtual_path) || names.empty()) return;
    const auto end = std::sregex_iterator();
    for (std::size_t index = 0; index < file.code_lines.size(); ++index) {
        const std::string& line = file.code_lines[index];
        const std::size_t number = index + 1;
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            begin_call_re());
             it != end; ++it) {
            if (names.count((*it)[1].str()) != 0)
                file.emit("unordered-iteration", number,
                          "iteration over unordered container '" +
                              (*it)[1].str() +
                              "': the visit order is unspecified");
        }
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            range_for_re());
             it != end; ++it) {
            const std::string range = range_expression((*it)[1].str());
            for (const std::string& name : range_identifiers(range)) {
                if (names.count(name) != 0)
                    file.emit("unordered-iteration", number,
                              "range-for over unordered container '" + name +
                                  "': the visit order is unspecified");
            }
        }
    }
}

void check_pragma_once(FileLint& file) {
    if (!is_header(file.virtual_path)) return;
    for (const std::string& line : file.code_lines)
        if (std::regex_search(line, pragma_once_re())) return;
    file.emit("pragma-once", 1, "header is missing #pragma once");
}

}  // namespace

const std::vector<std::string>& rule_ids() {
    static const std::vector<std::string> ids = [] {
        std::vector<std::string> out;
        for (const RuleInfo& rule : kRules) out.emplace_back(rule.id);
        return out;
    }();
    return ids;
}

std::string rule_description(const std::string& rule) {
    for (const RuleInfo& info : kRules)
        if (rule == info.id) return info.description;
    return "";
}

int layer_rank(const std::string& virtual_path) {
    const std::string module = module_of(virtual_path);
    return module.empty() ? -1 : module_rank(module);
}

std::vector<Diagnostic> lint_text(const std::string& display_path,
                                  const std::string& virtual_path,
                                  const std::string& text,
                                  const std::string* paired_header) {
    const Views views = split_views(text);
    FileLint file{display_path, virtual_path, split_lines(text),
                  split_lines(views.code), SuppressionScan{}, {}};
    scan_suppressions(split_lines(views.comments), file.code_lines,
                      file.suppressions);

    check_layering(file);
    check_patterns(file);
    std::set<std::string> names = unordered_names(views.code);
    if (paired_header != nullptr) {
        const std::set<std::string> header_names =
            unordered_names(split_views(*paired_header).code);
        names.insert(header_names.begin(), header_names.end());
    }
    check_unordered_iteration(file, names);
    check_pragma_once(file);

    for (Diagnostic& diagnostic : file.suppressions.malformed) {
        diagnostic.file = display_path;
        file.output.push_back(std::move(diagnostic));
    }
    std::sort(file.output.begin(), file.output.end(),
              [](const Diagnostic& a, const Diagnostic& b) {
                  return std::tie(a.line, a.rule, a.message) <
                         std::tie(b.line, b.rule, b.message);
              });
    return file.output;
}

namespace {

bool lintable_extension(const fs::path& path) {
    const std::string ext = path.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

bool read_file(const fs::path& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) return false;
    out = buffer.str();
    return true;
}

}  // namespace

int run(const RunOptions& options, std::ostream& out, std::ostream& err) {
    const fs::path root =
        options.root.empty() ? fs::current_path() : fs::path(options.root);

    std::vector<fs::path> files;
    bool scanned_directory = false;
    for (const std::string& input : options.paths) {
        const fs::path path(input);
        std::error_code ec;
        if (fs::is_directory(path, ec)) {
            scanned_directory = true;
            for (fs::recursive_directory_iterator it(path, ec), done;
                 it != done; it.increment(ec)) {
                if (ec) break;
                if (it->is_regular_file() && lintable_extension(it->path()))
                    files.push_back(it->path());
            }
        } else if (fs::is_regular_file(path, ec)) {
            files.push_back(path);
        } else {
            err << "socbuf_lint: cannot read '" << input << "'\n";
            return 2;
        }
    }
    if (files.empty()) {
        err << "socbuf_lint: no .hpp/.cpp inputs\n";
        return 2;
    }
    if (!options.as.empty() && (files.size() != 1 || scanned_directory)) {
        err << "socbuf_lint: --as needs exactly one input file\n";
        return 2;
    }
    // Directory iteration order is unspecified; sort so the report (and
    // therefore the tool itself) is deterministic.
    std::sort(files.begin(), files.end(),
              [](const fs::path& a, const fs::path& b) {
                  return a.generic_string() < b.generic_string();
              });

    std::size_t count = 0;
    for (const fs::path& path : files) {
        std::string text;
        if (!read_file(path, text)) {
            err << "socbuf_lint: cannot read '" << path.generic_string()
                << "'\n";
            return 2;
        }
        std::string virtual_path = options.as;
        if (virtual_path.empty()) {
            const fs::path relative =
                fs::absolute(path).lexically_normal().lexically_relative(
                    fs::absolute(root).lexically_normal());
            virtual_path = relative.generic_string();
            if (virtual_path.empty() || starts_with(virtual_path, "../"))
                virtual_path = path.generic_string();
        }
        std::string header_text;
        const std::string* paired_header = nullptr;
        if (path.extension() == ".cpp") {
            fs::path header = path;
            header.replace_extension(".hpp");
            if (fs::exists(header) && read_file(header, header_text))
                paired_header = &header_text;
        }
        const std::string display = path.generic_string();
        for (const Diagnostic& diagnostic :
             lint_text(display, virtual_path, text, paired_header)) {
            out << diagnostic.file << ":" << diagnostic.line << ": ["
                << diagnostic.rule << "] " << diagnostic.message << "\n";
            ++count;
        }
    }
    if (count != 0) {
        err << "socbuf_lint: " << count << " diagnostic"
            << (count == 1 ? "" : "s") << "\n";
        return 1;
    }
    return 0;
}

}  // namespace socbuf::lint
