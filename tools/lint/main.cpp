// socbuf_lint — project-specific static analysis for the socbuf tree:
// layering (each layer only reaches downward), determinism (no unordered
// iteration, ambient randomness, wall clocks or raw threads where results
// are folded) and header hygiene, with argued inline suppressions.
//
//   socbuf_lint [--root DIR] src tools bench examples
//       Scan directories (or single files) and print one
//       `file:line: [rule] message` diagnostic per finding. Exit 0 when
//       clean, 1 when anything fired, 2 on usage errors.
//   socbuf_lint --as src/arch/x.cpp tests/data/lint/fixture.cpp
//       Lint one file as if it lived at the given repo-relative path —
//       how the fixture suite places known-bad snippets inside
//       determinism-scoped layers.
//   socbuf_lint --list-rules
//       Print every rule id with its one-line description.
//
// The rule and layer tables are documented in tools/README.md.
#include "lint.hpp"

#include <cstring>
#include <iostream>
#include <string>

namespace {

int usage() {
    std::cerr << "usage:\n"
                 "  socbuf_lint [--root DIR] [--as VPATH] <path>...\n"
                 "  socbuf_lint --list-rules\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    socbuf::lint::RunOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string& rule : socbuf::lint::rule_ids())
                std::cout << rule << " — "
                          << socbuf::lint::rule_description(rule) << "\n";
            return 0;
        }
        if (arg == "--root" || arg == "--as") {
            if (i + 1 >= argc) return usage();
            (arg == "--root" ? options.root : options.as) = argv[++i];
            continue;
        }
        if (arg == "-h" || arg == "--help") return usage();
        if (!arg.empty() && arg[0] == '-') return usage();
        options.paths.push_back(arg);
    }
    if (options.paths.empty()) return usage();
    return socbuf::lint::run(options, std::cout, std::cerr);
}
