// socbuf_lint — project-specific static analysis for the socbuf tree:
// layering (each layer only reaches downward), determinism (no unordered
// iteration, ambient randomness, wall clocks or raw threads where results
// are folded, and — via a whole-tree call-graph pass — no shared-state
// mutation, non-reentrant calls or schedule-ordered folds in code
// reachable from the exec fan-out entry points) and header hygiene, with
// argued inline suppressions.
//
//   socbuf_lint [--root DIR] src tools bench examples
//       Scan directories (or single files) and print one
//       `file:line: [rule] message` diagnostic per finding. Exit 0 when
//       clean, 1 when anything fired, 2 on usage errors.
//   socbuf_lint --format=json src            (also: --format=sarif)
//       Machine-readable diagnostics: a socbuf JSON report or a SARIF
//       2.1.0-shaped log, on stdout.
//   socbuf_lint --baseline tools/lint/baseline.txt src
//       Drop findings matching the committed baseline; only *new*
//       findings fail the run. --write-baseline PATH regenerates it.
//   socbuf_lint --as src/arch/x.cpp tests/data/lint/fixture.cpp
//       Lint one file as if it lived at the given repo-relative path —
//       how the fixture suite places known-bad snippets inside
//       determinism-scoped layers.
//   socbuf_lint --list-rules
//       Print every rule id with its scope ([per-file] or [call-graph])
//       and one-line description.
//
// The rule and layer tables, the worker-context reachability model and
// the baseline workflow are documented in tools/README.md.
#include "lint.hpp"

#include <cstring>
#include <iostream>
#include <string>

namespace {

int usage() {
    std::cerr << "usage:\n"
                 "  socbuf_lint [--root DIR] [--as VPATH] "
                 "[--format=text|json|sarif]\n"
                 "              [--baseline FILE | --write-baseline FILE] "
                 "<path>...\n"
                 "  socbuf_lint --list-rules\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    socbuf::lint::RunOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string& rule : socbuf::lint::rule_ids()) {
                const char* scope =
                    socbuf::lint::rule_scope(rule) ==
                            socbuf::lint::RuleScope::kCallGraph
                        ? "[call-graph]"
                        : "[per-file]";
                std::cout << rule << " " << scope << " — "
                          << socbuf::lint::rule_description(rule) << "\n";
            }
            return 0;
        }
        if (arg == "--root" || arg == "--as" || arg == "--baseline" ||
            arg == "--write-baseline") {
            if (i + 1 >= argc) return usage();
            const char* value = argv[++i];
            if (arg == "--root") options.root = value;
            else if (arg == "--as") options.as = value;
            else if (arg == "--baseline") options.baseline = value;
            else options.write_baseline = value;
            continue;
        }
        if (arg.rfind("--format=", 0) == 0) {
            const std::string format = arg.substr(std::strlen("--format="));
            if (format == "text")
                options.format = socbuf::lint::Format::kText;
            else if (format == "json")
                options.format = socbuf::lint::Format::kJson;
            else if (format == "sarif")
                options.format = socbuf::lint::Format::kSarif;
            else
                return usage();
            continue;
        }
        if (arg == "-h" || arg == "--help") return usage();
        if (!arg.empty() && arg[0] == '-') return usage();
        options.paths.push_back(arg);
    }
    if (options.paths.empty()) return usage();
    if (!options.baseline.empty() && !options.write_baseline.empty())
        return usage();
    return socbuf::lint::run(options, std::cout, std::cerr);
}
