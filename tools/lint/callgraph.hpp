#pragma once
/// Pass 1 of the whole-tree analysis: a lightweight symbol table and call
/// graph over the blanked code views — function/method/lambda
/// definitions, call sites, lambda captures, body-local declarations,
/// mutation sites and namespace-scope mutable globals — extracted by a
/// pragmatic token-level parser, not a C++ front end. Pass 2
/// (worker_reachable) computes the set of functions reachable from the
/// sanctioned fan-out entry points:
///
///     exec::parallel_map / parallel_for_index / parallel_for_ranges
///     Executor::map / for_each / for_ranges   (member calls)
///     TaskGraph::submit / ThreadPool::submit  (member calls)
///
/// A lambda passed directly to one of these (or a function/lambda named
/// as a plain-identifier argument of one, e.g. `executor.map(n,
/// solve_one)`) is a *worker root*; everything its calls can reach — by
/// base-name matching, deliberately over-approximate — is *worker
/// context*, the scope rules_parallel.cpp enforces the cross-file
/// determinism rules in.
///
/// Known approximations (all conservative — they widen worker context or
/// keep a finding, never hide a hazard): calls resolve by base name, so
/// every `run` definition is reachable once any `run` is called from a
/// worker; a lambda nested inside a reachable function is itself
/// reachable (it exists to be called there); aliases and function
/// pointers are out of reach of a text-level scan.

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace socbuf::lint::callgraph {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// One `name(...)` site inside a function body.
struct CallSite {
    std::string name;       ///< base name of the callee ("simulate")
    std::string qualifier;  ///< "sim" for sim::simulate, "" if unqualified
    bool member = false;    ///< obj.name(...) or obj->name(...)
    std::size_t line = 0;
};

/// One write to a named object inside a lambda body.
struct MutationSite {
    enum class Kind {
        kAssign,        ///< name = ..., name.member = ...
        kAccumulate,    ///< name += / -= / *= / /= ...
        kIncrement,     ///< ++name / name++ / --name / name--
        kMutatingCall,  ///< name.push_back(...) and friends
    };
    std::string name;  ///< base object (the `out` of out.total += x)
    Kind kind = Kind::kAssign;
    bool subscripted = false;  ///< target is name[...]: an indexed slot
    std::size_t line = 0;
};

/// One function, method or lambda definition.
struct Function {
    std::string name;     ///< "run", "BufferSizingEngine::run", the bound
                          ///< variable of `auto f = [..]{..}`, or
                          ///< "<lambda:LINE>" for an unbound lambda
    std::size_t file = 0;  ///< index into Graph::files
    std::size_t line = 0;  ///< line of the definition's opening brace
    bool is_lambda = false;
    std::size_t parent = npos;  ///< lexically enclosing function

    /// Lambda passed directly to a sanctioned fan-out entry point; the
    /// entry's base name ("submit", "map", ...) when set.
    bool worker_entry_arg = false;
    std::string entry_name;

    // Capture list (lambdas only).
    bool captures_default_ref = false;   ///< [&]
    bool captures_default_copy = false;  ///< [=]
    bool captures_this = false;          ///< [this] / [*this]
    std::set<std::string> captures_by_ref;
    std::set<std::string> captures_by_copy;

    /// Parameter names plus names declared inside the body.
    std::set<std::string> locals;

    std::vector<CallSite> calls;
    std::vector<MutationSite> mutations;
    /// Non-const function-local `static` declarations: (name, line).
    std::vector<std::pair<std::string, std::size_t>> local_statics;
    /// Uses of known mutable namespace-scope globals: (name, line).
    std::vector<std::pair<std::string, std::size_t>> global_uses;
    /// Functions/lambdas defined lexically inside this one.
    std::vector<std::size_t> nested;
};

/// A namespace-scope (or static class-scope) mutable variable.
struct GlobalVar {
    std::string name;
    std::size_t file = 0;
    std::size_t line = 0;
    bool atomic = false;  ///< declared std::atomic — the sanctioned form
};

struct FileInfo {
    std::string display_path;
    std::string virtual_path;
};

/// Input to build(): one file's *code view* (comments and literals
/// already blanked by split_views).
struct SourceInput {
    std::string display_path;
    std::string virtual_path;
    std::string code;
};

struct Graph {
    std::vector<FileInfo> files;
    std::vector<Function> functions;
    std::vector<GlobalVar> globals;
    /// Names declared std::atomic anywhere in the analyzed set (members
    /// included); atomic mutations are the sanctioned shared-state form.
    std::set<std::string> atomic_names;
    /// Plain-identifier arguments of sanctioned entry calls — named
    /// callables like `executor.map(n, solve_one)`; resolved to worker
    /// roots by base name.
    std::set<std::string> root_names;
};

/// Pass 1: extract the symbol table and call graph from every input.
Graph build(const std::vector<SourceInput>& inputs);

/// Pass 2: reachable[i] is true when functions[i] is reachable from a
/// sanctioned worker entry point (worker roots, their callees by base
/// name, and lambdas nested in reachable functions).
std::vector<bool> worker_reachable(const Graph& graph);

}  // namespace socbuf::lint::callgraph
