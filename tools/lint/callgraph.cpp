#include "callgraph.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace socbuf::lint::callgraph {

namespace {

// ---------------------------------------------------------------- tokens

struct Token {
    enum class Kind { kIdent, kNumber, kPunct };
    Kind kind = Kind::kPunct;
    std::string text;
    std::size_t line = 0;
};

bool ident_start(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

bool space_char(char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// Multi-character punctuators the passes care about (assignment and
/// increment operators must not be split into single chars; '::' and
/// '->' carry name-chain structure). Longest match first.
const char* const kPuncts3[] = {"<<=", ">>=", "->*", "..."};
const char* const kPuncts2[] = {"::", "->", "++", "--", "+=", "-=", "*=",
                                "/=", "%=", "&=", "|=", "^=", "==", "!=",
                                "<=", ">=", "&&", "||", "<<", ">>"};

/// Tokenize one blanked code view. Preprocessor lines (first
/// non-whitespace char '#') are skipped wholesale — a #define with
/// unbalanced braces must not derail brace tracking — honoring '\'
/// continuations.
std::vector<Token> tokenize(const std::string& code) {
    std::vector<Token> out;
    std::size_t line = 1;
    bool at_line_start = true;
    std::size_t i = 0;
    while (i < code.size()) {
        const char c = code[i];
        if (c == '\n') {
            ++line;
            at_line_start = true;
            ++i;
            continue;
        }
        if (space_char(c)) {
            ++i;
            continue;
        }
        if (at_line_start && c == '#') {
            while (i < code.size() && code[i] != '\n') {
                if (code[i] == '\\' && i + 1 < code.size() &&
                    code[i + 1] == '\n') {
                    ++line;
                    i += 2;
                    continue;
                }
                ++i;
            }
            continue;
        }
        at_line_start = false;
        if (ident_start(c)) {
            std::size_t j = i;
            while (j < code.size() && ident_char(code[j])) ++j;
            out.push_back({Token::Kind::kIdent, code.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (c >= '0' && c <= '9') {
            std::size_t j = i;
            while (j < code.size() &&
                   (ident_char(code[j]) || code[j] == '.' || code[j] == '\''))
                ++j;
            out.push_back({Token::Kind::kNumber, code.substr(i, j - i),
                           line});
            i = j;
            continue;
        }
        bool matched = false;
        for (const char* punct : kPuncts3) {
            if (code.compare(i, 3, punct) == 0) {
                out.push_back({Token::Kind::kPunct, punct, line});
                i += 3;
                matched = true;
                break;
            }
        }
        if (matched) continue;
        for (const char* punct : kPuncts2) {
            if (code.compare(i, 2, punct) == 0) {
                out.push_back({Token::Kind::kPunct, punct, line});
                i += 2;
                matched = true;
                break;
            }
        }
        if (matched) continue;
        out.push_back({Token::Kind::kPunct, std::string(1, c), line});
        ++i;
    }
    return out;
}

// -------------------------------------------------------------- keywords

bool in_list(const std::string& s, const char* const* list, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
        if (s == list[i]) return true;
    return false;
}

/// Keywords that can precede a '(' without the '(' being a call.
const char* const kNonCallKeywords[] = {
    "if",       "for",      "while",        "switch",   "catch",
    "return",   "sizeof",   "alignof",      "decltype", "noexcept",
    "typeid",   "throw",    "new",          "delete",   "alignas",
    "co_await", "co_return"};

bool non_call_keyword(const std::string& s) {
    return in_list(s, kNonCallKeywords,
                   sizeof(kNonCallKeywords) / sizeof(kNonCallKeywords[0]));
}

const char* const kControlKeywords[] = {"if", "for", "while", "switch",
                                        "catch"};

bool control_keyword(const std::string& s) {
    return in_list(s, kControlKeywords,
                   sizeof(kControlKeywords) / sizeof(kControlKeywords[0]));
}

/// Trailing qualifiers between a signature's ')' and the body's '{'.
const char* const kSigQualifiers[] = {"const", "noexcept", "override",
                                      "final", "mutable", "constexpr",
                                      "try"};

bool sig_qualifier(const std::string& s) {
    return in_list(s, kSigQualifiers,
                   sizeof(kSigQualifiers) / sizeof(kSigQualifiers[0]));
}

/// Statement keywords that disqualify a namespace/class-scope statement
/// from being a variable definition.
const char* const kNonVarKeywords[] = {
    "using",  "typedef", "static_assert", "extern",   "template",
    "friend", "struct",  "class",         "enum",     "union",
    "return", "throw",   "namespace",     "operator", "if",
    "for",    "while",   "switch",        "case",     "goto"};

bool non_var_keyword(const std::string& s) {
    return in_list(s, kNonVarKeywords,
                   sizeof(kNonVarKeywords) / sizeof(kNonVarKeywords[0]));
}

/// Member calls that mutate their object.
const char* const kMutatingMembers[] = {
    "push_back", "push_front", "pop_back",     "pop_front", "insert",
    "emplace",   "emplace_back", "emplace_front", "clear",  "erase",
    "resize",    "assign",      "append"};

bool mutating_member(const std::string& s) {
    return in_list(s, kMutatingMembers,
                   sizeof(kMutatingMembers) / sizeof(kMutatingMembers[0]));
}

std::string base_name(const std::string& qualified) {
    const std::size_t pos = qualified.rfind("::");
    return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

/// The sanctioned fan-out entry points. Free functions must be
/// unqualified or exec-qualified (std::for_each must not count); the
/// executor/pool/graph surface is member calls only.
bool entry_point(const std::string& callee, const std::string& qualifier,
                 bool member) {
    if (callee == "parallel_map" || callee == "parallel_for_index" ||
        callee == "parallel_for_ranges") {
        return qualifier.empty() || qualifier == "exec" ||
               qualifier == "socbuf::exec";
    }
    if (!member) return false;
    return callee == "map" || callee == "for_each" ||
           callee == "for_ranges" || callee == "submit";
}

// ------------------------------------------------------------ the parser

struct BraceCtx {
    enum class Kind { kNamespace, kType, kFunction, kLambda, kOther };
    Kind kind = Kind::kOther;
    std::size_t fn = npos;        ///< innermost enclosing function def
    std::vector<Token> stmt;      ///< statement tokens at this level
};

struct ParenCtx {
    bool call = false;
    bool entry = false;
    std::string callee;
    std::size_t brace_depth = 0;    ///< braces.size() at open
    std::size_t bracket_depth = 0;  ///< '[' nesting at open
    // Entry frames track whether the current argument is one bare
    // identifier (a named callable: a worker root by name).
    std::size_t seg_tokens = 0;
    std::string seg_ident;
};

class FileParser {
public:
    FileParser(Graph& graph, std::size_t file_index,
               const std::string& code,
               std::vector<std::vector<std::pair<std::string, std::size_t>>>&
                   ident_uses)
        : graph_(graph), file_(file_index), tokens_(tokenize(code)),
          ident_uses_(ident_uses) {}

    void parse();

private:
    // ------------------------------------------------- backward helpers

    /// Index of the '(' / '[' / '{' matching the closer at `close`,
    /// or npos.
    std::size_t match_back(std::size_t close) const {
        const std::string& c = tokens_[close].text;
        std::string open;
        if (c == ")") open = "(";
        else if (c == "]") open = "[";
        else if (c == "}") open = "{";
        else return npos;
        int depth = 1;
        std::size_t i = close;
        while (i > 0) {
            --i;
            if (tokens_[i].text == c) ++depth;
            else if (tokens_[i].text == open && --depth == 0) return i;
        }
        return npos;
    }

    /// Read a qualified name chain `A::B::name` ending at token `last`
    /// (an identifier). Returns the chain's first token index; fills
    /// `name` with the joined chain.
    std::size_t read_chain_back(std::size_t last, std::string& name) const {
        name = tokens_[last].text;
        std::size_t first = last;
        while (first >= 2 && tokens_[first - 1].text == "::" &&
               tokens_[first - 2].kind == Token::Kind::kIdent) {
            first -= 2;
            name = tokens_[first].text + "::" + name;
        }
        return first;
    }

    // -------------------------------------------------- classification

    struct BraceClass {
        BraceCtx::Kind kind = BraceCtx::Kind::kOther;
        std::string name;              // function name
        std::size_t sig_open = npos;   // '(' of the signature, if any
        std::size_t capture_open = npos;  // '[' of a lambda capture list
    };

    BraceClass classify_brace(std::size_t i) const;
    void parse_captures(Function& fn, std::size_t lb, std::size_t rb) const;
    void parse_params(Function& fn, std::size_t open) const;

    // --------------------------------------------------------- actions

    void open_function(std::size_t brace, const BraceClass& cls);
    void handle_open_paren(std::size_t i);
    void handle_statement(BraceCtx& ctx);
    void record_assignment(std::size_t i, MutationSite::Kind kind);
    void record_increment(std::size_t i);
    void note_local_decl(std::size_t i);

    /// Resolve the object chain ending at `last` (Ident or ']') to its
    /// base identifier; true on success.
    bool resolve_chain_back(std::size_t last, std::string& name,
                            bool& subscripted) const;

    Function* current() {
        return current_fn_ == npos ? nullptr : &graph_.functions[current_fn_];
    }

    Graph& graph_;
    std::size_t file_;
    std::vector<Token> tokens_;
    std::vector<std::vector<std::pair<std::string, std::size_t>>>&
        ident_uses_;

    std::vector<BraceCtx> braces_;
    std::vector<ParenCtx> parens_;
    std::size_t bracket_depth_ = 0;
    std::size_t current_fn_ = npos;
};

FileParser::BraceClass FileParser::classify_brace(std::size_t i) const {
    BraceClass out;
    if (i == 0) return out;
    std::size_t k = i - 1;

    // Skip trailing signature qualifiers (const, noexcept, try, ...).
    while (k > 0 && tokens_[k].kind == Token::Kind::kIdent &&
           sig_qualifier(tokens_[k].text))
        --k;
    if (tokens_[k].kind == Token::Kind::kIdent &&
        sig_qualifier(tokens_[k].text))
        return out;  // ran out of tokens

    // Trailing return type: walk back over type-ish tokens to '->' and
    // take the ')' before it as the signature's closer. Bounded; gives
    // up harmlessly on anything weirder.
    if (tokens_[k].text != ")" && tokens_[k].text != "]") {
        std::size_t probe = k;
        std::size_t steps = 0;
        while (probe > 0 && steps++ < 60) {
            const std::string& t = tokens_[probe].text;
            if (t == "->") {
                if (probe > 0 && tokens_[probe - 1].text == ")") k = probe - 1;
                break;
            }
            const bool type_ish =
                tokens_[probe].kind != Token::Kind::kPunct || t == "::" ||
                t == "<" || t == ">" || t == ">>" || t == "*" || t == "&" ||
                t == "&&" || t == "," || t == "(" || t == ")" || t == "{" ||
                t == "}" || t == "[" || t == "]";
            if (!type_ish) break;
            --probe;
        }
    }

    if (tokens_[k].text == "]") {
        // Lambda without a parameter list: `[&, j] {`.
        const std::size_t lb = match_back(k);
        if (lb == npos) return out;
        // A subscript or array declarator is not a capture list.
        if (lb > 0 && (tokens_[lb - 1].kind == Token::Kind::kIdent ||
                       tokens_[lb - 1].text == "]" ||
                       tokens_[lb - 1].text == ")"))
            return out;
        out.kind = BraceCtx::Kind::kLambda;
        out.capture_open = lb;
        return out;
    }

    if (tokens_[k].text == ")") {
        std::size_t close = k;
        std::size_t open = match_back(close);
        if (open == npos) return out;
        while (true) {
            if (open == 0) return out;
            const Token& before = tokens_[open - 1];
            if (before.text == "]") {
                const std::size_t lb = match_back(open - 1);
                if (lb == npos) return out;
                if (lb > 0 && (tokens_[lb - 1].kind == Token::Kind::kIdent ||
                               tokens_[lb - 1].text == "]" ||
                               tokens_[lb - 1].text == ")"))
                    return out;
                out.kind = BraceCtx::Kind::kLambda;
                out.capture_open = lb;
                out.sig_open = open;
                return out;
            }
            if (before.kind != Token::Kind::kIdent) return out;
            if (control_keyword(before.text) || non_call_keyword(before.text))
                return out;
            std::string name;
            const std::size_t first = read_chain_back(open - 1, name);
            if (first == 0) {
                out.kind = BraceCtx::Kind::kFunction;
                out.name = name;
                out.sig_open = open;
                return out;
            }
            const Token& lead = tokens_[first - 1];
            if (lead.text == ":" || lead.text == ",") {
                // Constructor init-list item: the real signature is the
                // ')' (or '}') group before the ':'/','.
                if (first < 2) return out;
                const Token& group = tokens_[first - 2];
                if (group.text != ")" && group.text != "}") return out;
                const std::size_t g = match_back(first - 2);
                if (g == npos || g == 0) return out;
                if (group.text == "}" &&
                    tokens_[g - 1].kind != Token::Kind::kIdent)
                    return out;
                if (group.text == "}") {
                    // brace-init member: keep walking from its name
                    open = g;  // reuse loop: treat '}' group like '(' group
                    close = first - 2;
                    continue;
                }
                open = g;
                close = first - 2;
                continue;
            }
            out.kind = BraceCtx::Kind::kFunction;
            out.name = name;
            out.sig_open = open;
            return out;
        }
    }

    // No ')' form: namespace, type, do/else/try, or an initializer.
    if (tokens_[k].kind == Token::Kind::kIdent &&
        (tokens_[k].text == "do" || tokens_[k].text == "else" ||
         tokens_[k].text == "try"))
        return out;
    // Scan back to the statement head looking for namespace / type
    // keywords (`namespace a::b {`, `struct X : Base<T> {`).
    std::size_t probe = k;
    std::size_t steps = 0;
    while (steps++ < 40) {
        const std::string& t = tokens_[probe].text;
        if (t == ";" || t == "{" || t == "}" || t == ")") break;
        if (tokens_[probe].kind == Token::Kind::kIdent) {
            if (t == "namespace") {
                out.kind = BraceCtx::Kind::kNamespace;
                return out;
            }
            if (t == "class" || t == "struct" || t == "union" ||
                t == "enum") {
                out.kind = BraceCtx::Kind::kType;
                return out;
            }
        }
        if (probe == 0) break;
        --probe;
    }
    return out;
}

void FileParser::parse_captures(Function& fn, std::size_t lb,
                                std::size_t rb) const {
    std::vector<std::vector<const Token*>> segments(1);
    int depth = 0;
    for (std::size_t i = lb + 1; i < rb; ++i) {
        const std::string& t = tokens_[i].text;
        if (t == "(" || t == "[" || t == "{") ++depth;
        else if (t == ")" || t == "]" || t == "}") --depth;
        else if (t == "," && depth == 0) {
            segments.emplace_back();
            continue;
        }
        segments.back().push_back(&tokens_[i]);
    }
    for (const auto& seg : segments) {
        if (seg.empty()) continue;
        if (seg.size() == 1 && seg[0]->text == "&") {
            fn.captures_default_ref = true;
            continue;
        }
        if (seg.size() == 1 && seg[0]->text == "=") {
            fn.captures_default_copy = true;
            continue;
        }
        if (seg[0]->text == "this" ||
            (seg.size() >= 2 && seg[0]->text == "*" &&
             seg[1]->text == "this")) {
            fn.captures_this = true;
            continue;
        }
        if (seg[0]->text == "&") {
            if (seg.size() >= 2 && seg[1]->kind == Token::Kind::kIdent)
                fn.captures_by_ref.insert(seg[1]->text);
            continue;
        }
        if (seg[0]->kind == Token::Kind::kIdent)
            fn.captures_by_copy.insert(seg[0]->text);
    }
}

void FileParser::parse_params(Function& fn, std::size_t open) const {
    const std::size_t close = [&] {
        int depth = 1;
        std::size_t i = open;
        while (++i < tokens_.size()) {
            if (tokens_[i].text == "(") ++depth;
            else if (tokens_[i].text == ")" && --depth == 0) return i;
        }
        return tokens_.size();
    }();
    // Per comma-separated segment (depth 1 only): the parameter name is
    // the last identifier before a default '=' (or the segment's end).
    std::string last_ident;
    bool saw_default = false;
    int depth = 1;
    for (std::size_t i = open + 1; i < close; ++i) {
        const Token& t = tokens_[i];
        if (t.text == "(" || t.text == "[" || t.text == "{" || t.text == "<")
            ++depth;
        else if (t.text == ")" || t.text == "]" || t.text == "}" ||
                 t.text == ">")
            --depth;
        else if (t.text == "," && depth == 1) {
            if (!last_ident.empty()) fn.locals.insert(last_ident);
            last_ident.clear();
            saw_default = false;
        } else if (t.text == "=" && depth == 1) {
            saw_default = true;
        } else if (t.kind == Token::Kind::kIdent && depth == 1 &&
                   !saw_default) {
            last_ident = t.text;
        }
    }
    if (!last_ident.empty()) fn.locals.insert(last_ident);
}

void FileParser::open_function(std::size_t brace, const BraceClass& cls) {
    Function fn;
    fn.file = file_;
    fn.line = tokens_[brace].line;
    fn.parent = current_fn_;
    if (cls.kind == BraceCtx::Kind::kLambda) {
        fn.is_lambda = true;
        parse_captures(fn, cls.capture_open,
                       cls.sig_open == npos
                           ? [&] {  // `] {` form: ']' right before quals
                                 int depth = 1;
                                 std::size_t i = cls.capture_open;
                                 while (++i < tokens_.size()) {
                                     if (tokens_[i].text == "[") ++depth;
                                     else if (tokens_[i].text == "]" &&
                                              --depth == 0)
                                         return i;
                                 }
                                 return tokens_.size();
                             }()
                           : cls.sig_open - 1);
        // Bound lambda: `auto name = [..](..) {` — the variable is how
        // call sites and entry arguments name this body.
        if (cls.capture_open >= 2 &&
            tokens_[cls.capture_open - 1].text == "=" &&
            tokens_[cls.capture_open - 2].kind == Token::Kind::kIdent)
            fn.name = tokens_[cls.capture_open - 2].text;
        else
            fn.name = "<lambda:" + std::to_string(fn.line) + ">";
        if (!parens_.empty() && parens_.back().entry) {
            fn.worker_entry_arg = true;
            fn.entry_name = parens_.back().callee;
        }
    } else {
        fn.name = cls.name;
    }
    if (cls.sig_open != npos) parse_params(fn, cls.sig_open);

    const std::size_t index = graph_.functions.size();
    graph_.functions.push_back(std::move(fn));
    ident_uses_.emplace_back();
    if (current_fn_ != npos)
        graph_.functions[current_fn_].nested.push_back(index);
    current_fn_ = index;
}

bool FileParser::resolve_chain_back(std::size_t last, std::string& name,
                                    bool& subscripted) const {
    std::size_t k = last;
    subscripted = false;
    std::size_t steps = 0;
    while (steps++ < 40) {
        if (tokens_[k].text == "]") {
            const std::size_t lb = match_back(k);
            if (lb == npos || lb == 0) return false;
            subscripted = true;
            k = lb - 1;
            continue;
        }
        if (tokens_[k].kind != Token::Kind::kIdent) return false;
        if (k >= 2 && (tokens_[k - 1].text == "." ||
                       tokens_[k - 1].text == "->" ||
                       tokens_[k - 1].text == "::")) {
            k -= 2;
            continue;
        }
        name = tokens_[k].text;
        return true;
    }
    return false;
}

void FileParser::note_local_decl(std::size_t i) {
    // `Type name =`, `Type& name;`, `auto name :` — the token before the
    // name decides: an identifier / '>' / '&' / '*' marks a declaration.
    Function* fn = current();
    if (fn == nullptr || i < 2) return;
    const Token& name = tokens_[i - 1];
    if (name.kind != Token::Kind::kIdent) return;
    const Token& before = tokens_[i - 2];
    const bool decl = before.kind == Token::Kind::kIdent ||
                      before.text == ">" || before.text == "&" ||
                      before.text == "*" || before.text == "&&";
    if (decl && !non_var_keyword(name.text)) fn->locals.insert(name.text);
}

void FileParser::record_assignment(std::size_t i, MutationSite::Kind kind) {
    Function* fn = current();
    if (i == 0) return;
    // Declarations with initializers are locals, not mutations.
    if (kind == MutationSite::Kind::kAssign) {
        note_local_decl(i);
        if (fn != nullptr && i >= 2 &&
            tokens_[i - 1].kind == Token::Kind::kIdent &&
            fn->locals.count(tokens_[i - 1].text) != 0 &&
            (tokens_[i - 2].kind == Token::Kind::kIdent ||
             tokens_[i - 2].text == ">" || tokens_[i - 2].text == "&" ||
             tokens_[i - 2].text == "*" || tokens_[i - 2].text == "&&"))
            return;
    }
    if (fn == nullptr || !fn->is_lambda) return;
    std::string name;
    bool subscripted = false;
    if (!resolve_chain_back(i - 1, name, subscripted)) return;
    fn->mutations.push_back({name, kind, subscripted, tokens_[i].line});
}

void FileParser::record_increment(std::size_t i) {
    Function* fn = current();
    if (fn == nullptr || !fn->is_lambda) return;
    std::string name;
    bool subscripted = false;
    // Prefix: `++chain`; the chain reads forward, so resolve its base
    // directly. Postfix: `chain++` resolves backward.
    if (i + 1 < tokens_.size() &&
        tokens_[i + 1].kind == Token::Kind::kIdent) {
        name = tokens_[i + 1].text;
        subscripted = i + 2 < tokens_.size() && tokens_[i + 2].text == "[";
        fn->mutations.push_back({name, MutationSite::Kind::kIncrement,
                                 subscripted, tokens_[i].line});
        return;
    }
    if (i > 0 && resolve_chain_back(i - 1, name, subscripted))
        fn->mutations.push_back({name, MutationSite::Kind::kIncrement,
                                 subscripted, tokens_[i].line});
}

void FileParser::handle_open_paren(std::size_t i) {
    ParenCtx ctx;
    ctx.brace_depth = braces_.size();
    ctx.bracket_depth = bracket_depth_;
    if (i > 0 && tokens_[i - 1].kind == Token::Kind::kIdent &&
        !non_call_keyword(tokens_[i - 1].text)) {
        std::string chain;
        const std::size_t first = read_chain_back(i - 1, chain);
        const std::string callee = tokens_[i - 1].text;
        std::string qualifier;
        if (chain.size() > callee.size())
            qualifier = chain.substr(0, chain.size() - callee.size() - 2);
        const bool member =
            first > 0 && (tokens_[first - 1].text == "." ||
                          tokens_[first - 1].text == "->");
        ctx.call = true;
        ctx.callee = callee;
        ctx.entry = entry_point(callee, qualifier, member);
        if (Function* fn = current())
            fn->calls.push_back({callee, qualifier, member,
                                 tokens_[i].line});
        // A mutating member call on a captured object is a write.
        if (member && mutating_member(callee)) {
            Function* fn = current();
            if (fn != nullptr && fn->is_lambda && first >= 2) {
                std::string name;
                bool subscripted = false;
                if (resolve_chain_back(first - 2, name, subscripted))
                    fn->mutations.push_back(
                        {name, MutationSite::Kind::kMutatingCall,
                         subscripted, tokens_[i].line});
            }
        }
    }
    parens_.push_back(ctx);
}

/// End of a statement at some brace level: harvest namespace-scope
/// mutable globals, static class members, function-local statics and
/// std::atomic declarations from the collected top-level tokens.
void FileParser::handle_statement(BraceCtx& ctx) {
    std::vector<Token> stmt = std::move(ctx.stmt);
    ctx.stmt.clear();
    if (stmt.empty()) return;

    bool has_static = false, has_const = false, has_atomic = false,
         has_paren = false, disqualified = false;
    for (const Token& t : stmt) {
        if (t.kind == Token::Kind::kIdent) {
            if (t.text == "static") has_static = true;
            else if (t.text == "const" || t.text == "constexpr" ||
                     t.text == "constinit" || t.text == "consteval" ||
                     t.text == "thread_local")
                has_const = true;
            else if (t.text == "atomic") has_atomic = true;
            else if (non_var_keyword(t.text)) disqualified = true;
        } else if (t.text == "(") {
            has_paren = true;
        }
    }
    if (disqualified) return;

    // Declared name: the last identifier before '=', '{' or '['.
    std::string name;
    std::size_t line = stmt.front().line;
    for (const Token& t : stmt) {
        if (t.text == "=" || t.text == "{" || t.text == "[") break;
        if (t.kind == Token::Kind::kIdent && !sig_qualifier(t.text) &&
            t.text != "static" && t.text != "inline") {
            name = t.text;
            line = t.line;
        }
    }
    if (name.empty()) return;

    if (has_atomic) graph_.atomic_names.insert(name);
    if (has_const || has_paren) return;

    switch (ctx.kind) {
        case BraceCtx::Kind::kNamespace:
            graph_.globals.push_back({name, file_, line, has_atomic});
            break;
        case BraceCtx::Kind::kType:
            // Only *static* data members are shared state; instance
            // members belong to their object.
            if (has_static)
                graph_.globals.push_back({name, file_, line, has_atomic});
            break;
        default:
            if (has_static && !has_atomic && ctx.fn != npos)
                graph_.functions[ctx.fn].local_statics.emplace_back(name,
                                                                    line);
            break;
    }
}

void FileParser::parse() {
    // File scope behaves like an unnamed namespace for statement
    // harvesting.
    braces_.push_back({BraceCtx::Kind::kNamespace, npos, {}});

    for (std::size_t i = 0; i < tokens_.size(); ++i) {
        const Token& t = tokens_[i];
        const bool stmt_level = parens_.empty() && bracket_depth_ == 0;

        if (t.text == "(") {
            if (stmt_level && !braces_.empty())
                braces_.back().stmt.push_back(t);
            handle_open_paren(i);
        } else if (t.text == ")") {
            if (!parens_.empty()) {
                ParenCtx& frame = parens_.back();
                if (frame.entry && frame.seg_tokens == 1 &&
                    !frame.seg_ident.empty())
                    graph_.root_names.insert(frame.seg_ident);
                parens_.pop_back();
            }
        } else if (t.text == "[") {
            ++bracket_depth_;
        } else if (t.text == "]") {
            if (bracket_depth_ > 0) --bracket_depth_;
        } else if (t.text == "{") {
            const BraceClass cls = classify_brace(i);
            BraceCtx ctx;
            ctx.kind = cls.kind;
            ctx.fn = current_fn_;
            if (cls.kind == BraceCtx::Kind::kFunction ||
                cls.kind == BraceCtx::Kind::kLambda) {
                open_function(i, cls);
                ctx.fn = current_fn_;
            } else if (cls.kind == BraceCtx::Kind::kNamespace ||
                       cls.kind == BraceCtx::Kind::kType) {
                // A definition consumed the pending statement tokens.
                if (!braces_.empty()) braces_.back().stmt.clear();
            }
            braces_.push_back(std::move(ctx));
        } else if (t.text == "}") {
            if (braces_.size() > 1) {
                const BraceCtx closed = std::move(braces_.back());
                braces_.pop_back();
                if (closed.kind == BraceCtx::Kind::kFunction ||
                    closed.kind == BraceCtx::Kind::kLambda) {
                    current_fn_ = graph_.functions[closed.fn].parent;
                    braces_.back().stmt.clear();
                } else if (closed.kind == BraceCtx::Kind::kNamespace ||
                           closed.kind == BraceCtx::Kind::kType) {
                    braces_.back().stmt.clear();
                }
            }
        } else if (t.text == ";") {
            if (stmt_level && !braces_.empty())
                handle_statement(braces_.back());
        } else {
            if (stmt_level && !braces_.empty() &&
                braces_.back().stmt.size() < 64)
                braces_.back().stmt.push_back(t);
        }

        // Worker-root names: one bare identifier as a whole argument of
        // a sanctioned entry call (`executor.map(n, solve_one)`).
        if (!parens_.empty()) {
            ParenCtx& frame = parens_.back();
            const bool frame_level = braces_.size() == frame.brace_depth &&
                                     bracket_depth_ == frame.bracket_depth;
            if (frame.entry && frame_level && t.text != "(") {
                if (t.text == ",") {
                    if (frame.seg_tokens == 1 && !frame.seg_ident.empty())
                        graph_.root_names.insert(frame.seg_ident);
                    frame.seg_tokens = 0;
                    frame.seg_ident.clear();
                } else {
                    ++frame.seg_tokens;
                    frame.seg_ident = (frame.seg_tokens == 1 &&
                                       t.kind == Token::Kind::kIdent)
                                          ? t.text
                                          : std::string();
                }
            }
        }

        // Declarations, mutations and identifier uses.
        if (t.text == "=") {
            record_assignment(i, MutationSite::Kind::kAssign);
        } else if (t.text == "+=" || t.text == "-=" || t.text == "*=" ||
                   t.text == "/=") {
            record_assignment(i, MutationSite::Kind::kAccumulate);
        } else if (t.text == "%=" || t.text == "&=" || t.text == "|=" ||
                   t.text == "^=" || t.text == "<<=" || t.text == ">>=") {
            record_assignment(i, MutationSite::Kind::kAssign);
        } else if (t.text == "++" || t.text == "--") {
            record_increment(i);
        } else if (t.text == ":") {
            note_local_decl(i);
        } else if (t.text == ";") {
            note_local_decl(i);
        } else if (t.kind == Token::Kind::kIdent && current_fn_ != npos &&
                   !non_var_keyword(t.text)) {
            ident_uses_[current_fn_].emplace_back(t.text, t.line);
        }
    }
}

}  // namespace

Graph build(const std::vector<SourceInput>& inputs) {
    Graph graph;
    // Parallel to graph.functions: every identifier used in each body,
    // matched against the global table once all files are parsed.
    std::vector<std::vector<std::pair<std::string, std::size_t>>> uses;
    for (std::size_t f = 0; f < inputs.size(); ++f) {
        graph.files.push_back(
            {inputs[f].display_path, inputs[f].virtual_path});
        FileParser parser(graph, f, inputs[f].code, uses);
        parser.parse();
    }

    std::map<std::string, const GlobalVar*> mutable_globals;
    for (const GlobalVar& global : graph.globals)
        if (!global.atomic) mutable_globals[global.name] = &global;
    for (std::size_t fn = 0; fn < graph.functions.size(); ++fn) {
        std::set<std::pair<std::string, std::size_t>> seen;
        for (const auto& [name, line] : uses[fn]) {
            if (mutable_globals.find(name) == mutable_globals.end())
                continue;
            if (graph.functions[fn].locals.count(name) != 0) continue;
            if (seen.insert({name, line}).second)
                graph.functions[fn].global_uses.emplace_back(name, line);
        }
    }
    return graph;
}

std::vector<bool> worker_reachable(const Graph& graph) {
    std::map<std::string, std::vector<std::size_t>> by_base;
    for (std::size_t i = 0; i < graph.functions.size(); ++i)
        by_base[base_name(graph.functions[i].name)].push_back(i);

    std::vector<bool> reachable(graph.functions.size(), false);
    std::vector<std::size_t> queue;
    const auto mark = [&](std::size_t fn) {
        if (!reachable[fn]) {
            reachable[fn] = true;
            queue.push_back(fn);
        }
    };

    for (std::size_t i = 0; i < graph.functions.size(); ++i) {
        if (graph.functions[i].worker_entry_arg) mark(i);
        else if (graph.root_names.count(
                     base_name(graph.functions[i].name)) != 0)
            mark(i);
    }

    while (!queue.empty()) {
        const std::size_t fn = queue.back();
        queue.pop_back();
        for (const CallSite& call : graph.functions[fn].calls) {
            const auto found = by_base.find(call.name);
            if (found == by_base.end()) continue;
            for (const std::size_t callee : found->second) mark(callee);
        }
        // A lambda defined inside a reachable function exists to be
        // called there; count it in (conservative).
        for (const std::size_t nested : graph.functions[fn].nested)
            mark(nested);
    }
    return reachable;
}

}  // namespace socbuf::lint::callgraph
