// socbuf_cli — the scenario catalog from the command line, as a thin
// client of the socbuf::Session facade. Scenarios are data: everything the
// CLI runs can be exported to JSON, edited, and run back from a file
// without recompiling.
//
//   socbuf_cli list
//       One line per registered scenario (name, testbench, job counts),
//       then the batch presets.
//   socbuf_cli show <scenario>
//       Full parameterization of one scenario.
//   socbuf_cli export <name> [--out FILE]
//       One scenario — or batch preset, as a {"scenarios": [...]}
//       catalog — as JSON ("-" = stdout, the default). The output is
//       loadable via `run --file` / `validate --file`.
//   socbuf_cli export --all [--dir DIR]
//       Every registered scenario to DIR/<name>.json (default: the
//       current directory), plus every batch preset as a catalog file.
//   socbuf_cli validate --file F [--file F ...]
//       Parse + strictly validate scenario files; exit 0 and per-file
//       spec counts, or exit 2 with a diagnostic naming the JSON path.
//   socbuf_cli run <name|--file F> [more names/files] [options]
//       Execute scenarios (registered names, batch presets, and/or files)
//       as one pipelined batch on a shared executor and print the summary
//       table.
//
// Run options:
//   --threads N          worker threads (0 = hardware concurrency;
//                        default 0)
//   --budgets A,B,...    override every selected scenario's budget list
//                        (at least one value, each >= 1)
//   --replications R     override the evaluation replication count (>= 1)
//   --iterations I       override the sizing iteration count (>= 1)
//   --horizon H          override the simulation horizon (> 0 time
//                        units); the warmup is reduced to H/10 only if it
//                        would otherwise reach past the horizon
//   --warmup W           override the statistics warmup explicitly (>= 0)
//   --seed S             override the base RNG seed
//   --no-cache           disable the batch-wide CTMDP solve cache
//   --cache-capacity N   bound the solve cache to N entries with LRU
//                        eviction (0 = unlimited, the default)
//   --cache-byte-budget B
//                        bound the solve cache's approximate resident
//                        bytes (LRU eviction; 0 = unlimited, the default)
//   --gauss-seidel       run the VI rung with the red-black Gauss-Seidel
//                        sweep: fewer iterations on large models, gains
//                        agree with Jacobi to solver tolerance (not bit
//                        for bit — like warm starts, off by default)
//   --json FILE          write the full structured report ("-" = stdout)
//   --csv FILE           write the summary as CSV ("-" = stdout)
//
// Results are bit-identical for any --threads value, and a file-loaded
// scenario reproduces its compiled preset's report exactly. Malformed or
// out-of-range option values — and malformed scenario files — are a usage
// error: exit code 2 with a diagnostic naming the flag or the JSON path
// (never an uncaught parse exception).
#include "exec/thread_pool.hpp"
#include "scenario/builder.hpp"
#include "scenario/scenario_io.hpp"
#include "session/session.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <system_error>
#include <vector>

namespace {

using socbuf::Session;
using socbuf::SessionOptions;
using socbuf::scenario::BatchReport;
using socbuf::scenario::ScenarioIoError;
using socbuf::scenario::ScenarioRegistry;
using socbuf::scenario::ScenarioSpec;

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage:\n"
                 "  %s list\n"
                 "  %s show <scenario>\n"
                 "  %s export <name> [--out FILE] | export --all [--dir DIR]\n"
                 "  %s validate --file F [--file F ...]\n"
                 "  %s run <name|--file F> [more names/files]\n"
                 "      [--threads N] [--budgets A,B,...] [--replications R]\n"
                 "      [--iterations I] [--horizon H] [--warmup W]\n"
                 "      [--seed S] [--no-cache] [--cache-capacity N]\n"
                 "      [--cache-byte-budget B] [--gauss-seidel]\n"
                 "      [--json FILE] [--csv FILE]\n",
                 argv0, argv0, argv0, argv0, argv0);
    return 2;
}

// ------------------------------------------------------------------------
// Checked numeric parsing, on std::from_chars throughout. The std::sto*
// family it replaced silently accepted leading whitespace (" 12"),
// hexfloats ("0x10" parsed as 16.0) and locale-dependent forms, and
// reported overflow by *exception* — one missed catch and an
// out-of-range value wrapped or escaped as a crash. from_chars is
// locale-independent, never throws, and reports overflow as an explicit
// errc, so a value that does not fit the destination type is a usage
// error (exit 2 naming the flag) exactly like garbage text.

bool parse_unsigned(const std::string& text, unsigned long long& out) {
    if (text.empty() || text[0] == '-' || text[0] == '+') return false;
    const auto result =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return result.ec == std::errc{} &&
           result.ptr == text.data() + text.size();
}

bool parse_number(const std::string& text, std::size_t& out) {
    unsigned long long v = 0;
    if (!parse_unsigned(text, v) ||
        v > std::numeric_limits<std::size_t>::max())
        return false;
    out = static_cast<std::size_t>(v);
    return true;
}

bool parse_number(const std::string& text, long& out) {
    if (text.empty()) return false;
    const auto result =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return result.ec == std::errc{} &&
           result.ptr == text.data() + text.size();
}

bool parse_number(const std::string& text, double& out) {
    if (text.empty()) return false;
    const auto result =
        std::from_chars(text.data(), text.data() + text.size(), out);
    // "nan"/"inf" parse but would sail through every range guard (NaN
    // compares false to everything) and silently fall back to the preset
    // values — reject them as malformed instead. Magnitude overflow
    // ("1e999") is already an errc.
    return result.ec == std::errc{} &&
           result.ptr == text.data() + text.size() && std::isfinite(out);
}

/// Parse a comma-separated budget list. Every token must be a whole
/// number >= 1 and at least one token must be present (so "--budgets ,"
/// cannot silently fall through to the preset values).
bool parse_budgets(const std::string& csv, std::vector<long>& out) {
    out.clear();
    std::string token;
    for (const char c : csv + ",") {
        if (c != ',') {
            token.push_back(c);
            continue;
        }
        if (token.empty()) continue;
        long value = 0;
        if (!parse_number(token, value) || value < 1) return false;
        out.push_back(value);
        token.clear();
    }
    return !out.empty();
}

int bad_value(const std::string& flag, const std::string& value,
              const std::string& requirement) {
    std::fprintf(stderr, "invalid value '%s' for %s (%s)\n", value.c_str(),
                 flag.c_str(), requirement.c_str());
    return 2;
}

int bad_scenario_file(const ScenarioIoError& error) {
    std::fprintf(stderr, "invalid scenario file: %s\n", error.what());
    return 2;
}

int list_scenarios() {
    // Registry-only: no Session (and no worker pool) needed to read
    // preset metadata.
    const ScenarioRegistry registry;
    socbuf::util::Table table(
        {"name", "testbench", "variants", "budgets", "reps", "jobs"});
    for (const auto& spec : registry.specs()) {
        std::vector<std::string> budgets;
        for (const long b : spec.budgets) budgets.push_back(std::to_string(b));
        table.add_row({spec.name, socbuf::scenario::to_string(spec.testbench),
                       std::to_string(spec.variants.size()),
                       socbuf::util::join(budgets, "/"),
                       std::to_string(spec.replications),
                       std::to_string(spec.job_count())});
    }
    std::printf("%s", table.to_string().c_str());
    if (!registry.batches().empty()) {
        std::printf("\nbatches (run several scenarios as one batch):\n");
        for (const auto& batch : registry.batches())
            std::printf("  %-14s %s [%s]\n", batch.name.c_str(),
                        batch.description.c_str(),
                        socbuf::util::join(batch.scenarios, ", ").c_str());
    }
    return 0;
}

int show_scenario(const std::string& name) {
    const ScenarioRegistry registry;
    if (!registry.contains(name)) {
        std::fprintf(stderr, "unknown scenario '%s' (try: list)\n",
                     name.c_str());
        return 1;
    }
    const ScenarioSpec& spec = registry.get(name);
    std::printf("%s — %s\n", spec.name.c_str(), spec.description.c_str());
    std::printf("  testbench:    %s\n",
                socbuf::scenario::to_string(spec.testbench));
    for (const auto& variant : spec.variants)
        std::printf("  variant:      %s\n",
                    variant.label.empty() ? "(default)"
                                          : variant.label.c_str());
    std::vector<std::string> budgets;
    for (const long b : spec.budgets) budgets.push_back(std::to_string(b));
    std::printf("  budgets:      %s\n",
                socbuf::util::join(budgets, ", ").c_str());
    std::printf("  replications: %zu\n", spec.replications);
    std::printf("  iterations:   %d\n", spec.sizing_iterations);
    std::printf("  models:       %s\n",
                spec.use_modulated_models ? "modulated (MMPP)" : "poisson");
    if (spec.insertion.search) {
        const std::string candidates =
            spec.insertion.candidates.empty()
                ? "all traffic-carrying bridge sites"
                : std::to_string(spec.insertion.candidates.size()) +
                      " named candidates";
        std::printf("  insertion:    placement search over %s "
                    "(exhaustive up to %zu)\n",
                    candidates.c_str(), spec.insertion.exhaustive_limit);
    }
    std::printf("  sim:          horizon %.0f, warmup %.0f, seed %llu\n",
                spec.sim.horizon, spec.sim.warmup,
                static_cast<unsigned long long>(spec.sim.seed));
    std::printf("  jobs:         %zu sizing, %zu evaluation\n",
                spec.run_count(), spec.job_count());
    return 0;
}

bool write_output(const std::string& path, const std::string& content,
                  const char* what) {
    if (path == "-") {
        std::printf("%s", content.c_str());
        return true;
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "cannot open %s for %s output\n", path.c_str(),
                     what);
        return false;
    }
    out << content;
    std::printf("wrote %s to %s\n", what, path.c_str());
    return true;
}

int export_scenarios(const std::vector<std::string>& args) {
    const ScenarioRegistry registry;
    bool all = false;
    std::string name;
    std::string out_path;
    std::string dir;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const auto next_value = [&]() -> const std::string* {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return nullptr;
            }
            return &args[++i];
        };
        if (arg == "--all") {
            all = true;
        } else if (arg == "--out") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            out_path = *v;
        } else if (arg == "--dir") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            dir = *v;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        } else if (name.empty()) {
            name = arg;
        } else {
            std::fprintf(stderr, "export takes one name (or --all)\n");
            return 2;
        }
    }
    if (all && !name.empty()) {
        std::fprintf(stderr, "export takes a name or --all, not both\n");
        return 2;
    }
    if (!all && name.empty()) {
        std::fprintf(stderr, "export needs a scenario name or --all\n");
        return 2;
    }
    // Reject the flag that would otherwise be silently ignored: --dir
    // only shapes the --all fan-out, --out only the single-name path.
    if (!all && !dir.empty()) {
        std::fprintf(stderr,
                     "--dir goes with --all; use --out FILE to export "
                     "'%s' to a file\n",
                     name.c_str());
        return 2;
    }
    if (all && !out_path.empty()) {
        std::fprintf(stderr,
                     "--out goes with a single name; use --dir DIR with "
                     "--all\n");
        return 2;
    }
    if (!all) {
        if (!registry.contains(name) && !registry.contains_batch(name)) {
            std::fprintf(stderr, "unknown scenario '%s' (try: list)\n",
                         name.c_str());
            return 1;
        }
        return write_output(out_path.empty() ? "-" : out_path,
                            export_json(registry, name).dump(2) + "\n",
                            "scenario")
                   ? 0
                   : 1;
    }
    if (dir.empty()) dir = ".";
    std::size_t written = 0;
    for (const auto& spec : registry.specs()) {
        const std::string path = dir + "/" + spec.name + ".json";
        if (!write_output(path, socbuf::scenario::to_json(spec).dump(2) + "\n",
                          "scenario"))
            return 1;
        ++written;
    }
    for (const auto& batch : registry.batches()) {
        const std::string path = dir + "/" + batch.name + ".json";
        if (!write_output(path, export_json(registry, batch.name).dump(2) + "\n",
                          "batch"))
            return 1;
        ++written;
    }
    std::printf("exported %zu files to %s\n", written, dir.c_str());
    return 0;
}

int validate_files(const std::vector<std::string>& args) {
    std::vector<std::string> files;
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--file") {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "--file needs a value\n");
                return 2;
            }
            files.push_back(args[++i]);
        } else if (!args[i].empty() && args[i][0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", args[i].c_str());
            return 2;
        } else {
            files.push_back(args[i]);  // bare paths are accepted too
        }
    }
    if (files.empty()) {
        std::fprintf(stderr, "validate needs at least one --file\n");
        return 2;
    }
    for (const auto& file : files) {
        try {
            const auto specs = socbuf::scenario::load_scenario_file(file);
            // Round-trip check: a valid file must survive
            // dump -> parse -> from_json bit-identically, so schema and
            // serializer cannot drift apart silently.
            for (const auto& spec : specs) {
                const auto json = socbuf::scenario::to_json(spec);
                const auto again = socbuf::scenario::spec_from_json(
                    socbuf::util::JsonValue::parse(json.dump()));
                if (!(again == spec)) {
                    std::fprintf(stderr,
                                 "invalid scenario file: %s: scenario '%s' "
                                 "does not round-trip through the schema\n",
                                 file.c_str(), spec.name.c_str());
                    return 2;
                }
            }
            std::printf("%s: ok (%zu scenario%s)\n", file.c_str(),
                        specs.size(), specs.size() == 1 ? "" : "s");
        } catch (const ScenarioIoError& error) {
            return bad_scenario_file(error);
        }
    }
    return 0;
}

int run_scenarios(const std::vector<std::string>& args) {
    SessionOptions session_options;
    std::string json_path;
    std::string csv_path;
    // Selections: registered names (scenarios or batch presets) and
    // scenario files, expanded in argument order. Overrides are collected
    // first and applied to every selected scenario, so flag order and
    // name order don't matter. Out-of-range values (--replications 0,
    // --horizon 0, an empty --budgets list) are rejected right here
    // rather than silently falling through to the preset values.
    std::vector<long> budgets_override;
    std::size_t replications_override = 0;
    int iterations_override = 0;
    double horizon_override = 0.0;
    double warmup_override = -1.0;
    std::uint64_t seed_override = 0;
    bool has_seed_override = false;
    std::size_t threads = 0;

    // Registry only — the executing Session (and its worker pool) is
    // constructed after the selections and overrides are fully resolved.
    const ScenarioRegistry registry;
    std::vector<ScenarioSpec> specs;
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        const auto next_value = [&]() -> const std::string* {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                return nullptr;
            }
            return &args[++i];
        };
        if (arg == "--threads") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            // Values past exec::kMaxThreads parse fine but would blow up
            // deep inside pool construction ("vector::reserve") — they
            // are a usage error of this flag, reported as one.
            if (!parse_number(*v, threads) ||
                threads > socbuf::exec::kMaxThreads)
                return bad_value(arg, *v,
                                 "expected a whole number between 0 and " +
                                     std::to_string(socbuf::exec::kMaxThreads));
        } else if (arg == "--file") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            try {
                for (auto& spec : socbuf::scenario::load_scenario_file(*v))
                    specs.push_back(std::move(spec));
            } catch (const ScenarioIoError& error) {
                return bad_scenario_file(error);
            }
        } else if (arg == "--budgets") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            if (!parse_budgets(*v, budgets_override))
                return bad_value(
                    arg, *v,
                    "expected a comma-separated list of whole numbers >= 1");
        } else if (arg == "--replications") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            if (!parse_number(*v, replications_override) ||
                replications_override < 1)
                return bad_value(arg, *v, "expected a whole number >= 1");
        } else if (arg == "--iterations") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            long value = 0;
            if (!parse_number(*v, value) || value < 1 ||
                value > std::numeric_limits<int>::max())
                return bad_value(arg, *v,
                                 "expected a whole number >= 1 (within int "
                                 "range)");
            iterations_override = static_cast<int>(value);
        } else if (arg == "--horizon") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            if (!parse_number(*v, horizon_override) || horizon_override <= 0.0)
                return bad_value(arg, *v, "expected a number > 0");
        } else if (arg == "--warmup") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            if (!parse_number(*v, warmup_override) || warmup_override < 0.0)
                return bad_value(arg, *v, "expected a number >= 0");
        } else if (arg == "--seed") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            unsigned long long seed_value = 0;
            if (!parse_unsigned(*v, seed_value))
                return bad_value(arg, *v, "expected a whole number >= 0");
            seed_override = static_cast<std::uint64_t>(seed_value);
            has_seed_override = true;
        } else if (arg == "--no-cache") {
            session_options.use_solve_cache = false;
        } else if (arg == "--cache-capacity") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            if (!parse_number(*v, session_options.cache_capacity))
                return bad_value(
                    arg, *v, "expected a whole number >= 0 (0 = unlimited)");
        } else if (arg == "--cache-byte-budget") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            if (!parse_number(*v, session_options.cache_byte_budget))
                return bad_value(
                    arg, *v, "expected a whole number >= 0 (0 = unlimited)");
        } else if (arg == "--gauss-seidel") {
            session_options.gauss_seidel = true;
        } else if (arg == "--json") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            json_path = *v;
        } else if (arg == "--csv") {
            const std::string* v = next_value();
            if (v == nullptr) return 2;
            csv_path = *v;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        } else {
            if (!registry.contains(arg) && !registry.contains_batch(arg)) {
                std::fprintf(stderr, "unknown scenario '%s' (try: list)\n",
                             arg.c_str());
                return 1;
            }
            for (auto& spec : registry.expand(arg))
                specs.push_back(std::move(spec));
        }
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "run needs at least one scenario name or --file\n");
        return 2;
    }
    for (auto& spec : specs) {
        if (!budgets_override.empty()) spec.budgets = budgets_override;
        if (replications_override > 0)
            spec.replications = replications_override;
        if (iterations_override > 0)
            spec.sizing_iterations = iterations_override;
        if (horizon_override > 0.0) {
            spec.sim.horizon = horizon_override;
            // Keep the preset warmup unless it would reach past the new
            // horizon; --warmup below still takes precedence.
            if (spec.sim.warmup >= horizon_override)
                spec.sim.warmup = horizon_override / 10.0;
        }
        if (warmup_override >= 0.0) spec.sim.warmup = warmup_override;
        if (has_seed_override) spec.sim.seed = seed_override;
        // Catch the cross-flag range error here, as a usage error naming
        // the flags, instead of letting the simulator's contract check
        // blow up mid-batch (presets always satisfy warmup < horizon, so
        // this can only arise from overrides).
        if (spec.sim.warmup >= spec.sim.horizon) {
            std::fprintf(stderr,
                         "invalid --warmup/--horizon combination for "
                         "scenario '%s': warmup %g must be below the "
                         "simulation horizon %g\n",
                         spec.name.c_str(), spec.sim.warmup,
                         spec.sim.horizon);
            return 2;
        }
    }

    session_options.threads = threads;
    Session session(session_options);
    const BatchReport report = session.run(specs);

    std::printf("%s", report.summary_table().to_string().c_str());
    if (report.cache_enabled) {
        std::printf(
            "workers: %zu · solve cache: %zu hits / %zu misses / %zu "
            "evictions (%.0f%% hit rate)\n",
            report.workers, report.cache.hits, report.cache.misses,
            report.cache.evictions, 100.0 * report.cache.hit_rate());
    } else {
        std::printf("workers: %zu · solve cache: disabled\n", report.workers);
    }

    bool ok = true;
    if (!json_path.empty())
        ok = write_output(json_path, report.to_json() + "\n",
                          "json report") && ok;
    if (!csv_path.empty())
        ok = write_output(csv_path, report.to_csv(), "csv report") && ok;
    return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage(argv[0]);
    const std::string command = argv[1];
    std::vector<std::string> rest(argv + 2, argv + argc);
    try {
        if (command == "list") return list_scenarios();
        if (command == "show")
            return rest.size() == 1 ? show_scenario(rest[0]) : usage(argv[0]);
        if (command == "export") return export_scenarios(rest);
        if (command == "validate") return validate_files(rest);
        if (command == "run") return run_scenarios(rest);
    } catch (const ScenarioIoError& error) {
        return bad_scenario_file(error);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage(argv[0]);
}
