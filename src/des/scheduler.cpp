#include "des/scheduler.hpp"

#include "util/contracts.hpp"

namespace socbuf::des {

EventId Scheduler::schedule_at(double when, std::function<void()> action) {
    SOCBUF_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
    SOCBUF_REQUIRE_MSG(static_cast<bool>(action), "empty event action");
    const EventId id = actions_.size();
    actions_.push_back(std::move(action));
    queue_.push(Entry{when, id});
    return id;
}

EventId Scheduler::schedule_after(double delay, std::function<void()> action) {
    SOCBUF_REQUIRE_MSG(delay >= 0.0, "negative delay");
    return schedule_at(now_ + delay, std::move(action));
}

bool Scheduler::cancel(EventId id) {
    if (id >= actions_.size() || !actions_[id]) return false;
    return cancelled_.insert(id).second;
}

bool Scheduler::step() {
    while (!queue_.empty()) {
        const Entry e = queue_.top();
        queue_.pop();
        if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
            cancelled_.erase(it);
            actions_[e.id] = nullptr;
            continue;
        }
        now_ = e.time;
        // Move the action out so its storage can be reclaimed even if the
        // action itself schedules more events (which may grow actions_).
        auto action = std::move(actions_[e.id]);
        actions_[e.id] = nullptr;
        ++fired_;
        action();
        return true;
    }
    return false;
}

void Scheduler::run_until(double horizon) {
    SOCBUF_REQUIRE_MSG(horizon >= now_, "horizon is in the past");
    while (!queue_.empty()) {
        const Entry e = queue_.top();
        if (e.time > horizon) break;
        step();
    }
    now_ = horizon;
}

void Scheduler::run_to_exhaustion() {
    while (step()) {
    }
}

}  // namespace socbuf::des
