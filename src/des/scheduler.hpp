// Discrete-event simulation kernel: a time-ordered event queue with stable
// FIFO tie-breaking, cancellation, and bounded runs. The architecture
// simulator (sim/) is built on top of this.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace socbuf::des {

using EventId = std::uint64_t;

/// Event-driven scheduler. Events fire in (time, insertion order).
class Scheduler {
public:
    /// Schedule `action` at absolute time `when` (>= now). Returns an id
    /// usable with cancel().
    EventId schedule_at(double when, std::function<void()> action);

    /// Schedule `action` `delay` time units from now (delay >= 0).
    EventId schedule_after(double delay, std::function<void()> action);

    /// Cancel a pending event. Cancelling an already-fired or unknown id is
    /// a no-op (returns false).
    bool cancel(EventId id);

    /// Current simulation time.
    [[nodiscard]] double now() const { return now_; }

    /// Number of pending (non-cancelled) events.
    [[nodiscard]] std::size_t pending() const {
        return queue_.size() - cancelled_.size();
    }

    /// Fire the next event; returns false if the queue is empty.
    bool step();

    /// Run until the queue empties or simulation time would exceed
    /// `horizon`. Events scheduled exactly at `horizon` still fire.
    void run_until(double horizon);

    /// Run until the queue is empty (caller must guarantee termination).
    void run_to_exhaustion();

    /// Total number of events fired so far.
    [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

private:
    struct Entry {
        double time;
        EventId id;
        // Ordered min-heap: earliest time first, FIFO among equal times.
        bool operator>(const Entry& other) const {
            if (time != other.time) return time > other.time;
            return id > other.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    std::vector<std::function<void()>> actions_;  // indexed by EventId
    // Membership tests only (count/insert/erase); firing order is decided
    // by the ordered min-heap above, so hash order stays invisible.
    // socbuf-lint: allow(unordered-container) — membership set; never iterated, order decided by queue_.
    std::unordered_set<EventId> cancelled_;
    double now_ = 0.0;
    std::uint64_t fired_ = 0;
};

}  // namespace socbuf::des
