// Online statistics for simulations: event tallies and time-weighted
// averages (queue lengths, utilizations).
#pragma once

#include <cstdint>
#include <limits>

namespace socbuf::des {

/// Running mean / variance / extrema over discrete observations
/// (Welford's algorithm).
class Tally {
public:
    void observe(double value);

    [[nodiscard]] std::uint64_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
    [[nodiscard]] double variance() const;  // sample variance, n-1
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
    [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
    [[nodiscard]] double total() const { return total_; }

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double total_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant signal, e.g. queue length.
class TimeWeighted {
public:
    /// Record that the signal changed to `value` at time `now`.
    void update(double now, double value);

    /// Average over [start, now]; requires at least one update.
    [[nodiscard]] double average(double now) const;

    [[nodiscard]] double current() const { return value_; }
    [[nodiscard]] double max() const { return max_; }

private:
    double value_ = 0.0;
    double last_time_ = 0.0;
    double weighted_sum_ = 0.0;
    double start_time_ = 0.0;
    double max_ = 0.0;
    bool started_ = false;
};

}  // namespace socbuf::des
