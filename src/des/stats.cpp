#include "des/stats.hpp"

#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>

namespace socbuf::des {

void Tally::observe(double value) {
    ++n_;
    total_ += value;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double Tally::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double Tally::stddev() const { return std::sqrt(variance()); }

void TimeWeighted::update(double now, double value) {
    if (!started_) {
        started_ = true;
        start_time_ = now;
        last_time_ = now;
        value_ = value;
        max_ = value;
        return;
    }
    SOCBUF_REQUIRE_MSG(now >= last_time_, "time went backwards");
    weighted_sum_ += value_ * (now - last_time_);
    last_time_ = now;
    value_ = value;
    max_ = std::max(max_, value);
}

double TimeWeighted::average(double now) const {
    SOCBUF_REQUIRE_MSG(started_, "average of a signal with no updates");
    const double elapsed = now - start_time_;
    if (elapsed <= 0.0) return value_;
    const double tail = value_ * (now - last_time_);
    return (weighted_sum_ + tail) / elapsed;
}

}  // namespace socbuf::des
