#include "ctmc/birth_death.hpp"

#include "util/contracts.hpp"

namespace socbuf::ctmc {

linalg::Vector birth_death_stationary(const std::vector<double>& births,
                                      const std::vector<double>& deaths) {
    SOCBUF_REQUIRE_MSG(births.size() == deaths.size(),
                       "births/deaths length mismatch");
    const std::size_t n = births.size();
    linalg::Vector pi(n + 1);
    pi[0] = 1.0;
    double total = 1.0;
    double prod = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
        SOCBUF_REQUIRE_MSG(births[i] >= 0.0, "negative birth rate");
        SOCBUF_REQUIRE_MSG(deaths[i] > 0.0, "death rates must be positive");
        prod *= births[i] / deaths[i];
        pi[i + 1] = prod;
        total += prod;
    }
    for (double& v : pi) v /= total;
    return pi;
}

linalg::Vector mm1k_stationary(double lambda, double mu, std::size_t k) {
    SOCBUF_REQUIRE_MSG(lambda >= 0.0, "negative arrival rate");
    SOCBUF_REQUIRE_MSG(mu > 0.0, "service rate must be positive");
    SOCBUF_REQUIRE_MSG(k > 0, "capacity must be at least 1");
    return birth_death_stationary(std::vector<double>(k, lambda),
                                  std::vector<double>(k, mu));
}

}  // namespace socbuf::ctmc
