#include "ctmc/transient.hpp"

#include "util/contracts.hpp"

#include <cmath>

namespace socbuf::ctmc {

namespace {

/// Common driver: walk the uniformized power sequence v_k = initial P^k,
/// calling `accumulate(k, weight_k, v_k)` with the Poisson(lambda t)
/// weights until the tail mass drops below epsilon.
template <typename Accumulate>
void poisson_walk(const Generator& q, const linalg::Vector& initial,
                  double t, const TransientOptions& options,
                  Accumulate&& accumulate) {
    SOCBUF_REQUIRE_MSG(initial.size() == q.size(),
                       "initial distribution size mismatch");
    SOCBUF_REQUIRE_MSG(t >= 0.0, "time must be non-negative");
    double mass = 0.0;
    for (double p : initial) {
        SOCBUF_REQUIRE_MSG(p >= -1e-12, "negative initial probability");
        mass += p;
    }
    SOCBUF_REQUIRE_MSG(std::fabs(mass - 1.0) < 1e-6,
                       "initial distribution must sum to 1");

    const double lambda = q.max_exit_rate() * 1.05 + 1e-9;
    const linalg::Matrix p = q.uniformized(lambda);
    const double a = lambda * t;

    // Poisson weights computed iteratively; for large a, start from the
    // log-space seed to avoid underflow of exp(-a).
    double log_weight = -a;  // log Poisson(a; 0)
    linalg::Vector v = initial;
    double consumed = 0.0;
    for (std::size_t k = 0; k < options.max_terms; ++k) {
        const double weight = std::exp(log_weight);
        accumulate(k, weight, v);
        consumed += weight;
        if (1.0 - consumed < options.epsilon && a < static_cast<double>(k))
            return;
        v = p.multiply_transposed(v);
        log_weight += std::log(a) - std::log(static_cast<double>(k + 1));
    }
    throw util::NumericalError(
        "transient analysis: Poisson series did not converge within the "
        "term limit (lambda*t too large)");
}

}  // namespace

linalg::Vector transient_distribution(const Generator& q,
                                      const linalg::Vector& initial,
                                      double t,
                                      const TransientOptions& options) {
    if (t == 0.0) return initial;
    linalg::Vector out(q.size(), 0.0);
    poisson_walk(q, initial, t, options,
                 [&](std::size_t, double weight, const linalg::Vector& v) {
                     for (std::size_t s = 0; s < out.size(); ++s)
                         out[s] += weight * v[s];
                 });
    // Renormalize the truncated series.
    double total = 0.0;
    for (double x : out) total += x;
    SOCBUF_ASSERT(total > 0.0);
    for (double& x : out) x /= total;
    return out;
}

double transient_average_cost(const Generator& q,
                              const linalg::Vector& initial,
                              const linalg::Vector& cost_rate, double t,
                              const TransientOptions& options) {
    SOCBUF_REQUIRE_MSG(cost_rate.size() == q.size(),
                       "cost vector size mismatch");
    SOCBUF_REQUIRE_MSG(t > 0.0, "horizon must be positive");
    // (1/t) int_0^t pi(s) ds = sum_k  P(N(lambda t) > k)/(lambda t) v_k
    // (standard uniformization integral). We accumulate the complementary
    // Poisson CDF weights on the fly.
    const double lambda = q.max_exit_rate() * 1.05 + 1e-9;
    const double a = lambda * t;
    double cdf = 0.0;
    double result = 0.0;
    // integral identity: int_0^t Poisson(lambda s; k) ds
    //                    = P(N(lambda t) >= k+1) / lambda,
    // so the time average is sum_k v_k c * P(N >= k+1) / (lambda t).
    poisson_walk(q, initial, t, options,
                 [&](std::size_t, double weight, const linalg::Vector& v) {
                     cdf += weight;
                     const double tail = std::max(0.0, 1.0 - cdf);
                     double state_cost = 0.0;
                     for (std::size_t s = 0; s < v.size(); ++s)
                         state_cost += v[s] * cost_rate[s];
                     result += tail / a * state_cost;
                 });
    return result;
}

}  // namespace socbuf::ctmc
