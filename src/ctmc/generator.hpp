// Continuous-time Markov chain generators (rate matrices) and
// uniformization, the bridge between the continuous-time models the paper
// uses and the discrete-time iterations we compute with.
#pragma once

#include "linalg/matrix.hpp"

#include <cstddef>

namespace socbuf::ctmc {

/// A CTMC generator: off-diagonal entries are transition rates (>= 0) and
/// each diagonal entry is minus its row's off-diagonal sum.
class Generator {
public:
    explicit Generator(std::size_t n) : q_(n, n) {}

    /// Set rate from -> to (from != to, rate >= 0); the diagonal is
    /// maintained automatically.
    void set_rate(std::size_t from, std::size_t to, double rate);

    /// Add to the rate from -> to.
    void add_rate(std::size_t from, std::size_t to, double rate);

    [[nodiscard]] double rate(std::size_t from, std::size_t to) const {
        return q_(from, to);
    }

    [[nodiscard]] std::size_t size() const { return q_.rows(); }

    /// Total exit rate of a state (= -Q(s,s)).
    [[nodiscard]] double exit_rate(std::size_t state) const {
        return -q_(state, state);
    }

    /// Largest exit rate over all states.
    [[nodiscard]] double max_exit_rate() const;

    /// Verify generator structure (signs, row sums); throws ModelError.
    void validate(double tolerance = 1e-9) const;

    /// Uniformized DTMC transition matrix P = I + Q / lambda.
    /// Requires lambda >= max_exit_rate().
    [[nodiscard]] linalg::Matrix uniformized(double lambda) const;

    /// Access the raw rate matrix.
    [[nodiscard]] const linalg::Matrix& matrix() const { return q_; }

private:
    linalg::Matrix q_;
};

}  // namespace socbuf::ctmc
