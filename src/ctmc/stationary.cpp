#include "ctmc/stationary.hpp"

#include "exec/executor.hpp"
#include "linalg/lu.hpp"
#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>

namespace socbuf::ctmc {

linalg::Vector stationary_direct(const Generator& q) {
    const std::size_t n = q.size();
    SOCBUF_REQUIRE_MSG(n > 0, "empty chain");
    // pi Q = 0 with sum(pi) = 1  <=>  A x = b where A = Q^T with its last
    // row replaced by all-ones, b = e_last.
    linalg::Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) a(r, c) = q.matrix()(c, r);
    for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
    linalg::Vector b(n, 0.0);
    b[n - 1] = 1.0;
    linalg::Vector pi = linalg::LuDecomposition(a).solve(b);
    // Clamp tiny negative round-off and renormalize.
    double total = 0.0;
    for (double& v : pi) {
        if (v < 0.0 && v > -1e-9) v = 0.0;
        if (v < 0.0)
            throw util::NumericalError(
                "stationary_direct: negative probability (chain reducible?)");
        total += v;
    }
    SOCBUF_ASSERT(total > 0.0);
    for (double& v : pi) v /= total;
    return pi;
}

linalg::Vector stationary_power(const Generator& q, double tolerance,
                                std::size_t max_iterations) {
    const std::size_t n = q.size();
    SOCBUF_REQUIRE_MSG(n > 0, "empty chain");
    // Strictly larger lambda than the max exit rate keeps self-loops
    // positive, which makes the uniformized chain aperiodic.
    const double lambda = q.max_exit_rate() * 1.05 + 1e-9;
    const linalg::Matrix p = q.uniformized(lambda);
    linalg::Vector pi(n, 1.0 / static_cast<double>(n));
    for (std::size_t it = 0; it < max_iterations; ++it) {
        linalg::Vector next = p.multiply_transposed(pi);
        const double delta = linalg::max_abs_diff(next, pi);
        pi = std::move(next);
        if (delta < tolerance) return pi;
    }
    throw util::NumericalError("stationary_power: no convergence after " +
                               std::to_string(max_iterations) +
                               " iterations");
}

linalg::Vector stationary_power_sparse(const linalg::SparseMatrix& jumps,
                                       const linalg::Vector& stay,
                                       double tolerance,
                                       std::size_t max_iterations,
                                       exec::Executor* executor,
                                       std::size_t parallel_min_states) {
    const std::size_t n = stay.size();
    SOCBUF_REQUIRE_MSG(n > 0, "empty chain");
    SOCBUF_REQUIRE_MSG(jumps.rows() == n && jumps.cols() == n,
                       "jump matrix / stay vector size mismatch");
    // Gather form: row s of the stable transpose lists every incoming
    // transition of s in the scatter's op order (see
    // SparseMatrix::transposed), so next[s] is writable independently per
    // state — the property that makes the sweep chunkable.
    const linalg::SparseMatrix gather = jumps.transposed();
    const bool fan = executor != nullptr && !executor->serial() &&
                     n >= parallel_min_states;
    constexpr std::size_t kChunk = 256;
    std::vector<double> chunk_delta((n + kChunk - 1) / kChunk, 0.0);

    linalg::Vector pi(n, 1.0 / static_cast<double>(n));
    linalg::Vector next(n, 0.0);
    const auto sweep = [&](std::size_t lo, std::size_t hi) {
        double local = 0.0;
        for (std::size_t s = lo; s < hi; ++s) {
            double acc = stay[s] * pi[s];
            for (std::size_t k = gather.row_begin(s); k < gather.row_end(s);
                 ++k)
                acc += gather.value(k) * pi[gather.col_index(k)];
            next[s] = acc;
            local = std::max(local, std::fabs(acc - pi[s]));
        }
        chunk_delta[lo / kChunk] = local;
    };
    for (std::size_t it = 0; it < max_iterations; ++it) {
        std::fill(chunk_delta.begin(), chunk_delta.end(), 0.0);
        if (fan)
            executor->for_ranges(n, sweep, kChunk);
        else
            sweep(0, n);
        double delta = 0.0;
        for (const double d : chunk_delta) delta = std::max(delta, d);
        std::swap(pi, next);
        if (delta < tolerance) return pi;
    }
    throw util::NumericalError(
        "stationary_power_sparse: no convergence after " +
        std::to_string(max_iterations) + " iterations");
}

double stationarity_residual(const Generator& q, const linalg::Vector& pi) {
    SOCBUF_REQUIRE(pi.size() == q.size());
    const linalg::Vector r = q.matrix().multiply_transposed(pi);
    return linalg::norm_inf(r);
}

}  // namespace socbuf::ctmc
