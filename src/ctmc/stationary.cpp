#include "ctmc/stationary.hpp"

#include "linalg/lu.hpp"
#include "util/contracts.hpp"

#include <cmath>

namespace socbuf::ctmc {

linalg::Vector stationary_direct(const Generator& q) {
    const std::size_t n = q.size();
    SOCBUF_REQUIRE_MSG(n > 0, "empty chain");
    // pi Q = 0 with sum(pi) = 1  <=>  A x = b where A = Q^T with its last
    // row replaced by all-ones, b = e_last.
    linalg::Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) a(r, c) = q.matrix()(c, r);
    for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
    linalg::Vector b(n, 0.0);
    b[n - 1] = 1.0;
    linalg::Vector pi = linalg::LuDecomposition(a).solve(b);
    // Clamp tiny negative round-off and renormalize.
    double total = 0.0;
    for (double& v : pi) {
        if (v < 0.0 && v > -1e-9) v = 0.0;
        if (v < 0.0)
            throw util::NumericalError(
                "stationary_direct: negative probability (chain reducible?)");
        total += v;
    }
    SOCBUF_ASSERT(total > 0.0);
    for (double& v : pi) v /= total;
    return pi;
}

linalg::Vector stationary_power(const Generator& q, double tolerance,
                                std::size_t max_iterations) {
    const std::size_t n = q.size();
    SOCBUF_REQUIRE_MSG(n > 0, "empty chain");
    // Strictly larger lambda than the max exit rate keeps self-loops
    // positive, which makes the uniformized chain aperiodic.
    const double lambda = q.max_exit_rate() * 1.05 + 1e-9;
    const linalg::Matrix p = q.uniformized(lambda);
    linalg::Vector pi(n, 1.0 / static_cast<double>(n));
    for (std::size_t it = 0; it < max_iterations; ++it) {
        linalg::Vector next = p.multiply_transposed(pi);
        const double delta = linalg::max_abs_diff(next, pi);
        pi = std::move(next);
        if (delta < tolerance) return pi;
    }
    throw util::NumericalError("stationary_power: no convergence after " +
                               std::to_string(max_iterations) +
                               " iterations");
}

double stationarity_residual(const Generator& q, const linalg::Vector& pi) {
    SOCBUF_REQUIRE(pi.size() == q.size());
    const linalg::Vector r = q.matrix().multiply_transposed(pi);
    return linalg::norm_inf(r);
}

}  // namespace socbuf::ctmc
