// Stationary distributions of finite CTMCs: a direct solver (LU on the
// normalized balance system) and a power-iteration fallback for
// cross-checking.
#pragma once

#include "ctmc/generator.hpp"
#include "linalg/matrix.hpp"

namespace socbuf::ctmc {

/// Solve pi Q = 0, sum(pi) = 1 directly. Requires an irreducible chain
/// (singular system otherwise); throws NumericalError when not solvable.
[[nodiscard]] linalg::Vector stationary_direct(const Generator& q);

/// Power iteration on the uniformized chain; converges for any finite
/// irreducible chain. `tolerance` bounds the max-norm change per step.
[[nodiscard]] linalg::Vector stationary_power(const Generator& q,
                                              double tolerance = 1e-12,
                                              std::size_t max_iterations =
                                                  200000);

/// Max-norm of pi Q — how stationary a candidate distribution is.
[[nodiscard]] double stationarity_residual(const Generator& q,
                                           const linalg::Vector& pi);

}  // namespace socbuf::ctmc
