// Stationary distributions of finite CTMCs: a direct solver (LU on the
// normalized balance system) and a power-iteration fallback for
// cross-checking.
#pragma once

#include "ctmc/generator.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

#include <cstddef>

namespace socbuf::exec {
class Executor;
}  // namespace socbuf::exec

namespace socbuf::ctmc {

/// Solve pi Q = 0, sum(pi) = 1 directly. Requires an irreducible chain
/// (singular system otherwise); throws NumericalError when not solvable.
[[nodiscard]] linalg::Vector stationary_direct(const Generator& q);

/// Power iteration on the uniformized chain; converges for any finite
/// irreducible chain. `tolerance` bounds the max-norm change per step.
[[nodiscard]] linalg::Vector stationary_power(const Generator& q,
                                              double tolerance = 1e-12,
                                              std::size_t max_iterations =
                                                  200000);

/// Power iteration on an already-uniformized chain given in sparse form:
/// `jumps` holds the off-diagonal transition probabilities (CSR, source-
/// row-major), `stay` the strictly positive self-loop probabilities, so
/// one step is next = P^T pi = stay .* pi + jumps^T pi. The step runs in
/// *gather* form over a stable transpose of `jumps`: per target state the
/// additions happen in exactly the order the scatter
/// (add_transposed_into) would have produced them, and pi stays strictly
/// positive throughout (uniform start, stay > 0), so the result is
/// bit-identical to the scatter loop — and, chunked over `executor` when
/// n >= parallel_min_states, bit-identical for any worker count (each
/// next[s] lands in its own slot; the convergence delta is a max fold,
/// which is order-exact). Throws NumericalError on non-convergence.
[[nodiscard]] linalg::Vector stationary_power_sparse(
    const linalg::SparseMatrix& jumps, const linalg::Vector& stay,
    double tolerance, std::size_t max_iterations,
    exec::Executor* executor = nullptr,
    std::size_t parallel_min_states = 1024);

/// Max-norm of pi Q — how stationary a candidate distribution is.
[[nodiscard]] double stationarity_residual(const Generator& q,
                                           const linalg::Vector& pi);

}  // namespace socbuf::ctmc
