// Transient CTMC analysis by uniformization (Jensen's method): state
// distributions at finite times and time-averaged cost over a horizon.
// Complements the stationary solvers: lets a user ask "how much is lost in
// the first T time units after a reconfiguration", and cross-validates the
// stationary results (t -> infinity limit).
#pragma once

#include "ctmc/generator.hpp"
#include "linalg/matrix.hpp"

#include <cstddef>

namespace socbuf::ctmc {

struct TransientOptions {
    /// Truncation tolerance of the Poisson series (mass left in the tail).
    double epsilon = 1e-12;
    /// Hard cap on the number of series terms (guards huge lambda*t).
    std::size_t max_terms = 2000000;
};

/// Distribution at time `t` starting from `initial`:
///   pi(t) = sum_k Poisson(lambda t; k) * initial P^k,
/// truncated when the remaining Poisson mass drops below epsilon.
[[nodiscard]] linalg::Vector transient_distribution(
    const Generator& q, const linalg::Vector& initial, double t,
    const TransientOptions& options = {});

/// Expected time-average of a state cost rate over [0, t] from `initial`:
///   (1/t) * integral_0^t  pi(s) c  ds,
/// computed with the standard uniformization integral (Poisson tail
/// weights). For t -> infinity this approaches the stationary average.
[[nodiscard]] double transient_average_cost(
    const Generator& q, const linalg::Vector& initial,
    const linalg::Vector& cost_rate, double t,
    const TransientOptions& options = {});

}  // namespace socbuf::ctmc
