#include "ctmc/generator.hpp"

#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>

namespace socbuf::ctmc {

void Generator::set_rate(std::size_t from, std::size_t to, double rate) {
    SOCBUF_REQUIRE_MSG(from < size() && to < size(), "state out of range");
    SOCBUF_REQUIRE_MSG(from != to, "cannot set a diagonal rate directly");
    SOCBUF_REQUIRE_MSG(rate >= 0.0, "rates must be non-negative");
    const double old = q_(from, to);
    q_(from, to) = rate;
    q_(from, from) += old - rate;
}

void Generator::add_rate(std::size_t from, std::size_t to, double rate) {
    SOCBUF_REQUIRE_MSG(from < size() && to < size(), "state out of range");
    SOCBUF_REQUIRE_MSG(from != to, "cannot add to a diagonal rate");
    SOCBUF_REQUIRE_MSG(rate >= 0.0, "rates must be non-negative");
    q_(from, to) += rate;
    q_(from, from) -= rate;
}

double Generator::max_exit_rate() const {
    double best = 0.0;
    for (std::size_t s = 0; s < size(); ++s)
        best = std::max(best, exit_rate(s));
    return best;
}

void Generator::validate(double tolerance) const {
    for (std::size_t r = 0; r < size(); ++r) {
        double row_sum = 0.0;
        for (std::size_t c = 0; c < size(); ++c) {
            const double v = q_(r, c);
            if (r != c && v < -tolerance)
                throw util::ModelError("generator has a negative rate at (" +
                                       std::to_string(r) + "," +
                                       std::to_string(c) + ")");
            row_sum += v;
        }
        if (std::fabs(row_sum) > tolerance)
            throw util::ModelError("generator row " + std::to_string(r) +
                                   " sums to " + std::to_string(row_sum));
    }
}

linalg::Matrix Generator::uniformized(double lambda) const {
    SOCBUF_REQUIRE_MSG(lambda > 0.0, "uniformization rate must be positive");
    SOCBUF_REQUIRE_MSG(lambda >= max_exit_rate() - 1e-12,
                       "uniformization rate below max exit rate");
    linalg::Matrix p(size(), size());
    for (std::size_t r = 0; r < size(); ++r) {
        for (std::size_t c = 0; c < size(); ++c) {
            p(r, c) = q_(r, c) / lambda;
            if (r == c) p(r, c) += 1.0;
        }
    }
    return p;
}

}  // namespace socbuf::ctmc
