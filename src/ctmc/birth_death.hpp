// Closed-form stationary distributions for birth-death chains; the M/M/1/K
// results everything else is validated against.
#pragma once

#include "linalg/matrix.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::ctmc {

/// Stationary distribution of a birth-death chain on {0..n} with birth
/// rates `births[i]` (i -> i+1) and death rates `deaths[i]` (i+1 -> i).
/// births.size() == deaths.size() == n; all death rates must be positive.
[[nodiscard]] linalg::Vector birth_death_stationary(
    const std::vector<double>& births, const std::vector<double>& deaths);

/// Convenience: the M/M/1/K occupancy distribution (arrival rate `lambda`,
/// service rate `mu`, capacity `k` customers including the one in service).
[[nodiscard]] linalg::Vector mm1k_stationary(double lambda, double mu,
                                             std::size_t k);

}  // namespace socbuf::ctmc
