// "All the equations shall be solved in one go": the joint occupation-
// measure LP over every subsystem at once, coupled by a shared expected-
// occupancy budget — and its Lagrangian (price) decomposition, which solves
// the same LP through per-subsystem solves and a one-dimensional bisection
// on the budget price. The two must agree at the optimum (tested, and
// benchmarked in A3).
#pragma once

#include "core/subsystem_model.hpp"
#include "ctmdp/lp_solver.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::core {

struct JointSolveResult {
    bool solved = false;
    /// Sum over subsystems of long-run weighted loss rate.
    double total_loss_rate = 0.0;
    /// Sum over subsystems of expected total buffer occupancy.
    double total_expected_occupancy = 0.0;
    /// Per-subsystem solutions, in build order.
    std::vector<ctmdp::LpSolveResult> per_subsystem;
    std::size_t simplex_iterations = 0;
    /// Price decomposition only: the budget price found by bisection.
    double occupancy_price = 0.0;
};

/// One monolithic LP: block-diagonal balance + normalization per subsystem,
/// plus one coupling row  sum E[occupancy] <= occupancy_budget.
[[nodiscard]] JointSolveResult solve_joint_lp(
    const std::vector<SubsystemCtmdp>& models, double occupancy_budget);

/// The same optimum via Lagrangian decomposition: each subsystem minimizes
/// loss + rho * occupancy independently; rho is bisected until the summed
/// expected occupancy meets the budget (rho = 0 if the budget is slack).
[[nodiscard]] JointSolveResult solve_price_decomposed(
    const std::vector<SubsystemCtmdp>& models, double occupancy_budget,
    double rho_max = 1024.0, std::size_t bisection_steps = 40);

/// Unconstrained per-subsystem solve (rho = 0); the engine's default path.
[[nodiscard]] JointSolveResult solve_unconstrained(
    const std::vector<SubsystemCtmdp>& models);

}  // namespace socbuf::core
