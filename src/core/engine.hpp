// BufferSizingEngine — the paper's methodology end to end:
//
//   1. split the bridged architecture into linear subsystems, inserting
//      bridge buffers (split::),
//   2. model each subsystem as a CTMDP and solve for the loss-minimizing
//      arbitration (Feinberg LP for small models, relative value iteration
//      for large ones — they agree, see tests),
//   3. translate the solution's state-action probabilities into buffer
//      space requirements (the K-switching translation: per-flow occupancy
//      quantiles + means, apportioned to the integer budget),
//   4. re-simulate with the new buffer lengths, compare losses, and
//      iterate (default 10 rounds, as in the paper), refreshing arrival
//      rates from the measured traffic each round,
//   5. keep the best allocation seen.
#pragma once

#include "core/allocation.hpp"
#include "ctmdp/solver.hpp"
#include "sim/simulator.hpp"
#include "split/splitter.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::exec {
class Executor;
}
namespace socbuf::ctmdp {
class SolveCache;
}

namespace socbuf::core {

/// Solver selection lives in the ctmdp solver layer now; the alias keeps
/// the engine's public surface (core::SolverChoice::kAuto/kLp/...) stable.
/// kAuto escalates LP -> policy iteration -> value iteration by model size.
using SolverChoice = ctmdp::SolverChoice;

struct SizingOptions {
    long total_budget = 160;
    /// Which candidate bridge sites carry an inserted buffer
    /// (split::Placement). The default selects every bridge site — the
    /// paper's split — and keeps every report bit-identical to the
    /// pre-placement engine. A deselected site is pinned to a single
    /// passthrough slot and excluded from the apportionment; the *total*
    /// budget is unchanged, so placements compete at equal budget.
    split::Placement placement;
    int iterations = 10;       // resize/resimulate rounds (paper: 10)
    double tail_mass = 0.02;   // occupancy-quantile tail for requirements
    long model_cap = 3;        // per-flow occupancy cap inside the CTMDP
    /// kAuto escalation thresholds; the named solver-layer constants are
    /// the single source of truth (DispatchOptions defaults to the same
    /// ones), so a retune there lands here without a second edit.
    std::size_t lp_pair_limit = ctmdp::kDefaultLpPairLimit;
    std::size_t pi_state_limit = ctmdp::kDefaultPiStateLimit;
    SolverChoice solver = SolverChoice::kAuto;
    /// Run the VI rung with the red-black Gauss-Seidel sweep instead of
    /// Jacobi: roughly halves the iteration count on large models, but
    /// follows a different trajectory to the fixed point — gains agree
    /// with Jacobi to the stopping tolerance, not bit for bit. Opt-in
    /// and default off, exactly like warm starts: the bit-identical-
    /// report contract holds whenever this is off.
    bool gauss_seidel = false;
    /// Worker threads for the per-subsystem CTMDP solves and per-round
    /// evaluation sims (0 = hardware concurrency). Results are
    /// bit-identical for any value — the fanned units are independent and
    /// folded in index order. Only consulted by run(system); the executor
    /// overload uses the workers of the executor it is handed.
    std::size_t threads = 1;
    /// Replications of each round's evaluation simulation (seeds
    /// sim.seed, sim.seed + 1, ...), fanned across the executor and
    /// folded in replication order: every round — and the uniform
    /// baseline it competes with — is scored, and the measured rates /
    /// occupancies refreshed, on the replication *means*, which smooths
    /// the fixed point on noisy short horizons. 1 (the default) keeps
    /// the single-sim path bit for bit. `before`/`after` in the report
    /// stay single-sim results either way.
    std::size_t eval_replications = 1;
    /// Weight of the saturated-buffer correction: when mass piles up at the
    /// modeled cap, the true requirement exceeds the cap and the score is
    /// extrapolated by boost * P(k = cap) * cap.
    double saturation_boost = 4.0;
    /// Weight of the *measured* mean occupancy in the K-switching score.
    /// The CTMDP is a Poisson model; bursty flows build far deeper queues
    /// than it predicts, and the measured occupancy is exactly the
    /// "better profiling" signal the paper suggests adding.
    double measured_occupancy_weight = 2.5;
    /// Model bursty flows as 2-state MMPPs *inside* the CTMDP (state space
    /// grows 2x per bursty flow) instead of Poisson-with-profiling. See
    /// bench_modulated_models for what this buys.
    bool use_modulated_models = false;
    bool use_measured_rates = true;  // refresh rates from each simulation
    /// Stop early once the allocation is a fixed point (two identical
    /// rounds); the paper's 10 rounds are an upper bound, not a must.
    bool early_stop = true;
    sim::SimConfig sim;              // evaluation simulator settings
};

struct IterationRecord {
    Allocation allocation;
    double total_lost = 0.0;
    double weighted_loss = 0.0;
};

struct SizingReport {
    split::SplitResult split;
    Allocation initial;  // uniform (the "constant sizing" baseline)
    Allocation best;     // lowest weighted loss seen
    /// Weighted loss of `best` (replication means at the evaluation
    /// seeds) — the score the insertion search ranks placements by.
    double best_weighted_loss = 0.0;
    sim::SimResult before;  // simulated under `initial`
    sim::SimResult after;   // simulated under `best`
    std::vector<IterationRecord> history;
    /// K-switching scores of the last round (per site; 0 = no traffic).
    std::vector<double> site_scores;
    /// CTMDP service shares per site (weights for a randomized arbiter).
    std::vector<double> site_service_weights;
    // Per-algorithm counts of the subsystem solutions this run consumed,
    // tallied from each solution's solved_by — the same whether a
    // solution was computed here or served from a shared solve cache, so
    // the counts are deterministic for any executor width.
    std::size_t switching_states = 0;  // across all solutions
    std::size_t lp_solves = 0;
    std::size_t vi_solves = 0;
    std::size_t pi_solves = 0;

    /// Loss improvement of `after` over `before` (1 = all loss removed).
    [[nodiscard]] double improvement() const;
};

class BufferSizingEngine {
public:
    explicit BufferSizingEngine(SizingOptions options);

    /// Run the full pipeline on `system` with a private execution context
    /// sized by SizingOptions::threads (workers are spawned and joined
    /// inside this call).
    [[nodiscard]] SizingReport run(const arch::TestSystem& system) const;

    /// Run the full pipeline on a *shared* execution context: the
    /// subsystem solves of every round fan out on `executor`'s workers,
    /// and — when `cache` is non-null — go through the batch-wide solve
    /// cache, so identical CTMDPs (fixed-point rounds, sweep repeats) are
    /// solved once. Results are bit-identical to run(system) for any
    /// executor width; the report's lp/vi/pi counts reflect actual solver
    /// work (cache hits do not advance them).
    [[nodiscard]] SizingReport run(const arch::TestSystem& system,
                                   exec::Executor& executor,
                                   ctmdp::SolveCache* cache = nullptr) const;

    [[nodiscard]] const SizingOptions& options() const { return options_; }

private:
    SizingOptions options_;
};

}  // namespace socbuf::core
