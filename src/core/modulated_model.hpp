// Burst-aware subsystem CTMDPs: each bursty flow carries an ON/OFF
// modulation phase (a 2-state MMPP) inside the state space, so the
// stochastic model itself predicts the deep queues bursts build — the
// paper's "stochastic models of the architecture" taken one step further
// than the plain Poisson model in subsystem_model.hpp.
//
//   state  = (k_1..k_n, phase_1..phase_m)   phase only for bursty flows
//   rates  = phase flips at 1/on_time, 1/off_time; arrivals at the burst
//            peak while ON plus the flow's Poisson background; exponential
//            bus service; same loss cost and occupancy extra-cost as the
//            Poisson model.
//
// The engine can be switched between the two model families
// (SizingOptions::use_modulated_models); bench_modulated_models measures
// what the richer model buys.
#pragma once

#include "ctmdp/model.hpp"
#include "linalg/matrix.hpp"
#include "split/splitter.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::core {

class ModulatedSubsystemCtmdp {
public:
    /// `caps[f]`: modeled buffer capacity of the subsystem's f-th flow
    /// (>= 1). `rates[f]`: long-run arrival rate override (the burst
    /// structure is taken from the subsystem's flows; the burst's long-run
    /// share of the override keeps the overall rate consistent).
    ModulatedSubsystemCtmdp(const split::Subsystem& subsystem,
                            std::vector<long> caps,
                            std::vector<double> rates);

    [[nodiscard]] const ctmdp::CtmdpModel& model() const { return model_; }
    [[nodiscard]] const split::Subsystem& subsystem() const {
        return *subsystem_;
    }
    [[nodiscard]] std::size_t flow_count() const { return caps_.size(); }
    [[nodiscard]] const std::vector<long>& caps() const { return caps_; }

    /// Number of modulated (bursty) flows — each contributes one phase bit.
    [[nodiscard]] std::size_t modulated_flow_count() const {
        return phase_index_of_flow_count_;
    }

    /// Occupancy of local flow `f` in packed state `state`.
    [[nodiscard]] long occupancy(std::size_t state, std::size_t f) const;

    /// Whether bursty flow `f` is in its ON phase in `state` (flows
    /// without modulation are always "ON" at their mean rate).
    [[nodiscard]] bool phase_on(std::size_t state, std::size_t f) const;

    /// Marginal occupancy distribution of flow `f` under `pi`.
    [[nodiscard]] std::vector<double> flow_marginal(
        const linalg::Vector& pi, std::size_t f) const;

    /// Long-run service shares from an occupation measure (pair-indexed).
    [[nodiscard]] std::vector<double> service_shares(
        const std::vector<double>& occupation) const;

private:
    void build();
    [[nodiscard]] std::size_t state_count() const;
    [[nodiscard]] double arrival_rate_in_state(std::size_t state,
                                               std::size_t f) const;

    const split::Subsystem* subsystem_;
    std::vector<long> caps_;
    std::vector<double> mean_rates_;
    // Per flow: Poisson background rate and burst peak rate (0 if smooth).
    std::vector<double> background_rate_;
    std::vector<double> peak_rate_;
    std::vector<double> on_rate_;   // 1 / on_time  (phase leaves ON)
    std::vector<double> off_rate_;  // 1 / off_time (phase leaves OFF)
    std::vector<std::size_t> occ_stride_;
    std::vector<std::size_t> phase_stride_;  // 0 for unmodulated flows
    std::size_t phase_index_of_flow_count_ = 0;
    ctmdp::CtmdpModel model_{1};
    std::vector<std::vector<std::size_t>> action_serves_;
};

/// Build one modulated model per subsystem (mirror of
/// build_subsystem_models).
[[nodiscard]] std::vector<ModulatedSubsystemCtmdp> build_modulated_models(
    const split::SplitResult& split, const std::vector<long>& allocation,
    long model_cap, const std::vector<double>& measured_site_rates = {});

}  // namespace socbuf::core
