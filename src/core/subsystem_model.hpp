// Translate a linear subsystem (one bus + its buffer sites) into a CTMDP:
//   state  = occupancy vector (k_1..k_n), k_f in [0, cap_f]
//   action = which non-empty queue the bus serves (or idle)
//   rates  = Poisson arrivals per flow, exponential bus service
//   cost   = weighted loss rate  sum_f w_f * lambda_f * [k_f == cap_f]
//   extra cost 0 = total occupancy sum_f k_f (the budget-coupling signal)
//
// This is the per-subsystem model whose average-cost LP (Feinberg) the
// paper solves after the split.
#pragma once

#include "ctmdp/model.hpp"
#include "linalg/matrix.hpp"
#include "split/splitter.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::core {

class SubsystemCtmdp {
public:
    /// `caps[f]` is the modeled buffer capacity of the subsystem's f-th
    /// flow; `rates[f]` overrides the split's first-order arrival rate
    /// (pass the split's own rates to keep them). Caps must be >= 1.
    SubsystemCtmdp(const split::Subsystem& subsystem,
                   std::vector<long> caps, std::vector<double> rates);

    [[nodiscard]] const ctmdp::CtmdpModel& model() const { return model_; }
    [[nodiscard]] const split::Subsystem& subsystem() const {
        return *subsystem_;
    }
    [[nodiscard]] std::size_t flow_count() const { return caps_.size(); }
    [[nodiscard]] const std::vector<long>& caps() const { return caps_; }
    [[nodiscard]] const std::vector<double>& rates() const { return rates_; }

    /// Occupancy of local flow `f` in packed state `state`.
    [[nodiscard]] long occupancy(std::size_t state, std::size_t f) const;

    /// Marginal occupancy distribution of flow `f` under a state
    /// distribution `pi` (length cap_f + 1).
    [[nodiscard]] std::vector<double> flow_marginal(
        const linalg::Vector& pi, std::size_t f) const;

    /// Long-run fraction of service effort given to each flow under the
    /// occupation measure x(s,a) (pair-indexed); the service shares behind
    /// the K-switching translation and the randomized arbiter weights.
    [[nodiscard]] std::vector<double> service_shares(
        const std::vector<double>& occupation) const;

    /// Weighted loss rate in state `state` (the model's cost rate there).
    [[nodiscard]] double loss_rate(std::size_t state) const;

private:
    [[nodiscard]] std::size_t state_count() const;
    void build();

    const split::Subsystem* subsystem_;
    std::vector<long> caps_;
    std::vector<double> rates_;
    std::vector<std::size_t> strides_;
    ctmdp::CtmdpModel model_{1};  // one extra cost: total occupancy
    /// action index -> served local flow (flow_count() means idle), per
    /// state action lists are built in this order.
    std::vector<std::vector<std::size_t>> action_serves_;
};

/// Build one SubsystemCtmdp per subsystem with per-site caps taken from an
/// allocation (clamped to [1, model_cap]) and rates optionally overridden
/// by measured site rates (empty vector = use the split's rates).
[[nodiscard]] std::vector<SubsystemCtmdp> build_subsystem_models(
    const split::SplitResult& split, const std::vector<long>& allocation,
    long model_cap, const std::vector<double>& measured_site_rates = {});

}  // namespace socbuf::core
