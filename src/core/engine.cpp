#include "core/engine.hpp"

#include "core/modulated_model.hpp"
#include "core/subsystem_model.hpp"
#include "ctmdp/lp_solver.hpp"
#include "ctmdp/occupation.hpp"
#include "ctmdp/value_iteration.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"
#include "util/numeric.hpp"

#include <algorithm>
#include <cmath>

namespace socbuf::core {

double SizingReport::improvement() const {
    const double pre = static_cast<double>(before.total_lost());
    if (pre <= 0.0) return 0.0;
    return 1.0 - static_cast<double>(after.total_lost()) / pre;
}

BufferSizingEngine::BufferSizingEngine(SizingOptions options)
    : options_(std::move(options)) {
    SOCBUF_REQUIRE_MSG(options_.total_budget >= 1, "budget must be >= 1");
    SOCBUF_REQUIRE_MSG(options_.iterations >= 1, "need >= 1 iteration");
    SOCBUF_REQUIRE_MSG(options_.model_cap >= 1, "model cap must be >= 1");
    SOCBUF_REQUIRE_MSG(
        options_.tail_mass > 0.0 && options_.tail_mass < 1.0,
        "tail mass must be in (0,1)");
}

namespace {

/// The solution pieces the translation needs, solver-agnostic.
struct SubsystemSolution {
    linalg::Vector stationary;       // pi(s)
    std::vector<double> occupation;  // x(s,a)
    std::size_t switching_states = 0;
    bool from_lp = false;
};

SubsystemSolution solve_subsystem(const ctmdp::CtmdpModel& model,
                                  const SizingOptions& options) {
    const bool use_lp =
        options.solver == SolverChoice::kLp ||
        (options.solver == SolverChoice::kAuto &&
         model.pair_count() <= options.lp_pair_limit);
    SubsystemSolution out;
    if (use_lp) {
        const auto r = ctmdp::solve_average_cost_lp(model);
        if (r.status == lp::SolveStatus::kOptimal) {
            out.stationary.assign(r.state_probability.begin(),
                                  r.state_probability.end());
            out.occupation = r.occupation;
            out.switching_states = r.policy.switching_state_count(1e-9);
            out.from_lp = true;
            return out;
        }
        if (options.solver == SolverChoice::kLp)
            throw util::NumericalError(
                "subsystem LP did not reach optimality: " +
                std::string(lp::to_string(r.status)));
        util::log(util::LogLevel::kWarn, "subsystem LP returned ",
                  lp::to_string(r.status),
                  "; falling back to value iteration");
    }
    ctmdp::ViOptions vi_opts;
    vi_opts.tolerance = 1e-7;  // scores need far less precision than this
    vi_opts.max_iterations = 50000;
    const auto vi = ctmdp::relative_value_iteration(model, vi_opts);
    if (!vi.converged)
        util::log(util::LogLevel::kWarn,
                  "value iteration hit the iteration limit (span ",
                  vi.span_residual, "); using the last policy");
    const auto policy =
        ctmdp::RandomizedPolicy::from_deterministic(vi.policy, model);
    out.occupation = ctmdp::occupation_of_policy(model, policy);
    out.stationary.assign(model.state_count(), 0.0);
    for (std::size_t p = 0; p < out.occupation.size(); ++p)
        out.stationary[model.pair_state(p)] += out.occupation[p];
    out.from_lp = false;
    return out;
}

/// Solve every subsystem model and fold its solution into the K-switching
/// scores and service weights. Generic over the model family (Poisson
/// SubsystemCtmdp or burst-aware ModulatedSubsystemCtmdp), which share the
/// same surface.
template <typename ModelVector>
void score_subsystems(const ModelVector& models,
                      const SizingOptions& options,
                      const std::vector<double>& measured_occ,
                      SizingReport& report) {
    for (const auto& sub_model : models) {
        const SubsystemSolution sol =
            solve_subsystem(sub_model.model(), options);
        if (sol.from_lp)
            ++report.lp_solves;
        else
            ++report.vi_solves;
        report.switching_states += sol.switching_states;

        const auto shares = sub_model.service_shares(sol.occupation);
        const auto& flows = sub_model.subsystem().flows;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const auto marginal = sub_model.flow_marginal(sol.stationary, f);
            const double q = static_cast<double>(
                ctmdp::marginal_quantile(marginal, options.tail_mass));
            const double mean = ctmdp::marginal_mean(marginal);
            // Saturation correction: occupancy pinned at the modeled cap
            // means the true requirement exceeds the model.
            const double at_cap = marginal.back();
            const double score =
                q + mean +
                options.saturation_boost * at_cap *
                    static_cast<double>(sub_model.caps()[f]) +
                options.measured_occupancy_weight *
                    measured_occ[flows[f].site];
            report.site_scores[flows[f].site] = std::max(score, 1e-6);
            report.site_service_weights[flows[f].site] = shares[f];
        }
    }
}

}  // namespace

SizingReport BufferSizingEngine::run(const arch::TestSystem& system) const {
    SizingReport report;
    report.split = split::split_architecture(system);
    const auto& split = report.split;
    const std::size_t n_sites = split.sites.size();

    std::vector<double> flow_weights;
    flow_weights.reserve(system.flows.size());
    for (const auto& f : system.flows) flow_weights.push_back(f.weight);

    report.initial = uniform_allocation(split, options_.total_budget);
    report.before = sim::simulate(system, report.initial, options_.sim);

    Allocation alloc = report.initial;
    report.best = report.initial;
    double best_weighted = report.before.weighted_loss(flow_weights);
    std::vector<double> rates =
        options_.use_measured_rates
            ? report.before.site_observed_rate
            : std::vector<double>{};
    std::vector<double> measured_occ = report.before.site_mean_occupancy;

    report.site_scores.assign(n_sites, 0.0);
    report.site_service_weights.assign(n_sites, 0.0);

    // Active sites, in deterministic order, for the apportionment.
    std::vector<arch::SiteId> active;
    for (const auto& sub : split.subsystems)
        for (const auto& f : sub.flows) active.push_back(f.site);
    std::sort(active.begin(), active.end());

    for (int iter = 0; iter < options_.iterations; ++iter) {
        // Solve every subsystem and translate occupancies into
        // K-switching scores.
        if (options_.use_modulated_models) {
            const auto models = build_modulated_models(
                split, alloc, options_.model_cap, rates);
            score_subsystems(models, options_, measured_occ, report);
        } else {
            const auto models = build_subsystem_models(
                split, alloc, options_.model_cap, rates);
            score_subsystems(models, options_, measured_occ, report);
        }

        // Apportion the budget by score (each active site keeps >= 1).
        std::vector<double> weights;
        weights.reserve(active.size());
        for (const auto s : active) weights.push_back(report.site_scores[s]);
        const auto shares = util::apportion_largest_remainder(
            options_.total_budget, weights, /*floor=*/1);
        Allocation next(n_sites, 0);
        for (std::size_t i = 0; i < active.size(); ++i)
            next[active[i]] = shares[i];

        // Resimulate with the new buffer lengths and compare losses.
        const auto eval = sim::simulate(system, next, options_.sim);
        IterationRecord rec;
        rec.allocation = next;
        rec.total_lost = static_cast<double>(eval.total_lost());
        rec.weighted_loss = eval.weighted_loss(flow_weights);
        report.history.push_back(rec);
        util::log(util::LogLevel::kInfo, "sizing iteration ", iter + 1,
                  ": total lost ", rec.total_lost, " (weighted ",
                  rec.weighted_loss, ")");

        if (rec.weighted_loss < best_weighted) {
            best_weighted = rec.weighted_loss;
            report.best = next;
        }
        if (options_.use_measured_rates)
            rates = eval.site_observed_rate;
        measured_occ = eval.site_mean_occupancy;
        const bool fixed_point = next == alloc;
        alloc = next;
        if (options_.early_stop && fixed_point) {
            util::log(util::LogLevel::kInfo,
                      "allocation reached a fixed point after ", iter + 1,
                      " rounds");
            break;
        }
    }

    report.after = sim::simulate(system, report.best, options_.sim);
    return report;
}

}  // namespace socbuf::core
