#include "core/engine.hpp"

#include "core/modulated_model.hpp"
#include "core/subsystem_model.hpp"
#include "ctmdp/occupation.hpp"
#include "ctmdp/solve_cache.hpp"
#include "ctmdp/solver.hpp"
#include "exec/executor.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"
#include "util/numeric.hpp"

#include <algorithm>
#include <cmath>

namespace socbuf::core {

double SizingReport::improvement() const {
    const double pre = static_cast<double>(before.total_lost());
    if (pre <= 0.0) return 0.0;
    return 1.0 - static_cast<double>(after.total_lost()) / pre;
}

BufferSizingEngine::BufferSizingEngine(SizingOptions options)
    : options_(std::move(options)) {
    SOCBUF_REQUIRE_MSG(options_.total_budget >= 1, "budget must be >= 1");
    SOCBUF_REQUIRE_MSG(options_.iterations >= 1, "need >= 1 iteration");
    SOCBUF_REQUIRE_MSG(options_.model_cap >= 1, "model cap must be >= 1");
    SOCBUF_REQUIRE_MSG(
        options_.tail_mass > 0.0 && options_.tail_mass < 1.0,
        "tail mass must be in (0,1)");
    SOCBUF_REQUIRE_MSG(options_.eval_replications >= 1,
                       "need >= 1 evaluation replication per round");
}

namespace {

/// Dispatch policy the registry applies to every subsystem solve.
ctmdp::DispatchOptions make_dispatch(const SizingOptions& options) {
    ctmdp::DispatchOptions dispatch;
    dispatch.choice = options.solver;
    dispatch.lp_pair_limit = options.lp_pair_limit;
    dispatch.pi_state_limit = options.pi_state_limit;
    // Scores need far less precision than the solver defaults.
    dispatch.solver.vi.tolerance = 1e-7;
    dispatch.solver.vi.max_iterations = 50000;
    dispatch.solver.vi.sweep = options.gauss_seidel
                                   ? ctmdp::ViSweep::kGaussSeidel
                                   : ctmdp::ViSweep::kJacobi;
    return dispatch;
}

/// Solve every subsystem model (in parallel — the solves are independent)
/// and fold each solution, in subsystem order, into the K-switching scores
/// and service weights; the ordered fold keeps the report bit-identical
/// for any executor width. Generic over the model family (Poisson
/// SubsystemCtmdp or burst-aware ModulatedSubsystemCtmdp), which share the
/// same surface.
template <typename ModelVector>
void score_subsystems(const ModelVector& models,
                      const SizingOptions& options,
                      ctmdp::SolverRegistry& registry,
                      exec::Executor& executor,
                      ctmdp::SolveCache* cache,
                      const std::vector<double>& measured_occ,
                      SizingReport& report) {
    ctmdp::DispatchOptions dispatch = make_dispatch(options);
    // Large models additionally fan their Bellman/stationary sweeps over
    // the same executor the per-subsystem solves run on (the sweeps are
    // nested fan-outs; the executor's caller-participation rule makes
    // that deadlock-free). Schedule-only: bit-identical for any width.
    dispatch.solver.vi.executor = &executor;
    const auto solve_one = [&](std::size_t i) {
        if (cache != nullptr)
            return cache->solve(registry, models[i].model(), dispatch);
        return registry.solve(models[i].model(), dispatch);
    };
    const auto solutions = executor.map(models.size(), solve_one);
    for (std::size_t m = 0; m < models.size(); ++m) {
        const auto& sub_model = models[m];
        const ctmdp::SubsystemSolution& sol = solutions[m];
        // Tally the algorithm behind every solution this run consumed —
        // whether it was solved here or served by a shared cache — so the
        // report's counts are deterministic for any executor width and
        // batch composition.
        switch (sol.solved_by) {
            case ctmdp::SolverKind::kLp: ++report.lp_solves; break;
            case ctmdp::SolverKind::kValueIteration:
                ++report.vi_solves;
                break;
            case ctmdp::SolverKind::kPolicyIteration:
                ++report.pi_solves;
                break;
        }
        report.switching_states += sol.switching_states;
        const auto shares = sub_model.service_shares(sol.occupation);
        const auto& flows = sub_model.subsystem().flows;
        for (std::size_t f = 0; f < flows.size(); ++f) {
            const auto marginal = sub_model.flow_marginal(sol.stationary, f);
            const double q = static_cast<double>(
                ctmdp::marginal_quantile(marginal, options.tail_mass));
            const double mean = ctmdp::marginal_mean(marginal);
            // Saturation correction: occupancy pinned at the modeled cap
            // means the true requirement exceeds the model.
            const double at_cap = marginal.back();
            const double score =
                q + mean +
                options.saturation_boost * at_cap *
                    static_cast<double>(sub_model.caps()[f]) +
                options.measured_occupancy_weight *
                    measured_occ[flows[f].site];
            report.site_scores[flows[f].site] = std::max(score, 1e-6);
            report.site_service_weights[flows[f].site] = shares[f];
        }
    }
}

/// Everything one round's evaluation feeds back into the loop.
struct RoundEval {
    double total_lost = 0.0;
    double weighted_loss = 0.0;
    std::vector<double> site_observed_rate;
    std::vector<double> site_mean_occupancy;
};

/// Evaluate `alloc` for one round: fan all eval_replications independent
/// sims (seed + r) across the executor in ONE map — nested fan-outs are
/// safe, see the executor's nesting rule — and fold their per-site
/// statistics in replication order, so the result is bit-identical for
/// any worker count (one replication runs inline and reproduces the
/// legacy single-sim round bit for bit: every fold divides by 1.0, which
/// is exact). A caller that needs replication 0's full SimResult (the
/// uniform baseline stores it as `report.before`) passes `first_out`;
/// fanning it with the rest instead of simulating it up front keeps all
/// replications inside one parallel region.
RoundEval evaluate_round(const arch::TestSystem& system,
                         const Allocation& alloc,
                         const SizingOptions& options,
                         const std::vector<double>& flow_weights,
                         exec::Executor& executor,
                         sim::SimResult* first_out = nullptr) {
    RoundEval out;
    const std::size_t reps = options.eval_replications;
    const auto evals = executor.map(reps, [&](std::size_t r) {
        sim::SimConfig config = options.sim;
        config.seed = options.sim.seed + r;
        return sim::simulate(system, alloc, config);
    });
    out.site_observed_rate.assign(evals[0].site_observed_rate.size(), 0.0);
    out.site_mean_occupancy.assign(evals[0].site_mean_occupancy.size(), 0.0);
    for (const sim::SimResult& eval : evals) {
        out.total_lost += static_cast<double>(eval.total_lost());
        out.weighted_loss += eval.weighted_loss(flow_weights);
        for (std::size_t s = 0; s < out.site_observed_rate.size(); ++s)
            out.site_observed_rate[s] += eval.site_observed_rate[s];
        for (std::size_t s = 0; s < out.site_mean_occupancy.size(); ++s)
            out.site_mean_occupancy[s] += eval.site_mean_occupancy[s];
    }
    const double n = static_cast<double>(reps);
    out.total_lost /= n;
    out.weighted_loss /= n;
    for (double& v : out.site_observed_rate) v /= n;
    for (double& v : out.site_mean_occupancy) v /= n;
    if (first_out != nullptr) *first_out = evals[0];
    return out;
}

}  // namespace

SizingReport BufferSizingEngine::run(const arch::TestSystem& system) const {
    // A private execution context for this run; a serial executor spawns
    // no thread at all, so the legacy single-run path stays cheap.
    exec::Executor executor(options_.threads);
    return run(system, executor, nullptr);
}

SizingReport BufferSizingEngine::run(const arch::TestSystem& system,
                                     exec::Executor& executor,
                                     ctmdp::SolveCache* cache) const {
    ctmdp::SolverRegistry registry;

    SizingReport report;
    report.split = split::split_architecture(system, options_.placement);
    const auto& split = report.split;
    const std::size_t n_sites = split.sites.size();

    std::vector<double> flow_weights;
    flow_weights.reserve(system.flows.size());
    for (const auto& f : system.flows) flow_weights.push_back(f.weight);

    report.initial = uniform_allocation(split, options_.total_budget);

    Allocation alloc = report.initial;
    report.best = report.initial;
    // The baseline must be scored at the same fidelity as the rounds it
    // competes with: replicated rounds against a single-sim baseline
    // would let one lucky (or unlucky) baseline seed bias which
    // allocation wins. `before` IS replication 0 at the base seed —
    // evaluate_round fans every replication (including 0) in one map and
    // hands the first back, so no simulation runs outside the parallel
    // region and the single-replication path keeps the legacy bits.
    const RoundEval baseline =
        evaluate_round(system, report.initial, options_, flow_weights,
                       executor, &report.before);
    double best_weighted = baseline.weighted_loss;
    std::vector<double> rates;
    if (options_.use_measured_rates) rates = baseline.site_observed_rate;
    std::vector<double> measured_occ = baseline.site_mean_occupancy;

    report.site_scores.assign(n_sites, 0.0);
    report.site_service_weights.assign(n_sites, 0.0);

    // Active (apportionable) sites, in deterministic order. Pinned sites
    // — bridge sites the placement deselected — keep one passthrough
    // slot each off the top of the budget instead of a score share.
    const std::vector<arch::SiteId> active = active_sites(split);
    const long pinned_budget = pinned_site_budget(split);
    std::vector<arch::SiteId> pinned;
    for (const auto& sub : split.subsystems)
        for (const auto& f : sub.flows)
            if (f.pinned) pinned.push_back(f.site);

    for (int iter = 0; iter < options_.iterations; ++iter) {
        // Solve every subsystem and translate occupancies into
        // K-switching scores.
        if (options_.use_modulated_models) {
            const auto models = build_modulated_models(
                split, alloc, options_.model_cap, rates);
            score_subsystems(models, options_, registry, executor, cache,
                             measured_occ, report);
        } else {
            const auto models = build_subsystem_models(
                split, alloc, options_.model_cap, rates);
            score_subsystems(models, options_, registry, executor, cache,
                             measured_occ, report);
        }

        // Apportion the budget by score (each active site keeps >= 1).
        std::vector<double> weights;
        weights.reserve(active.size());
        for (const auto s : active) weights.push_back(report.site_scores[s]);
        const auto shares = util::apportion_largest_remainder(
            options_.total_budget - pinned_budget, weights, /*floor=*/1);
        Allocation next(n_sites, 0);
        for (const auto s : pinned) next[s] = 1;
        for (std::size_t i = 0; i < active.size(); ++i)
            next[active[i]] = shares[i];

        // Resimulate with the new buffer lengths and compare losses
        // (replicated and fanned when eval_replications > 1).
        const RoundEval eval =
            evaluate_round(system, next, options_, flow_weights, executor);
        IterationRecord rec;
        rec.allocation = next;
        rec.total_lost = eval.total_lost;
        rec.weighted_loss = eval.weighted_loss;
        report.history.push_back(rec);
        util::log(util::LogLevel::kInfo, "sizing iteration ", iter + 1,
                  ": total lost ", rec.total_lost, " (weighted ",
                  rec.weighted_loss, ")");

        if (rec.weighted_loss < best_weighted) {
            best_weighted = rec.weighted_loss;
            report.best = next;
        }
        if (options_.use_measured_rates)
            rates = eval.site_observed_rate;
        measured_occ = eval.site_mean_occupancy;
        const bool fixed_point = next == alloc;
        alloc = next;
        if (options_.early_stop && fixed_point) {
            util::log(util::LogLevel::kInfo,
                      "allocation reached a fixed point after ", iter + 1,
                      " rounds");
            break;
        }
    }

    report.best_weighted_loss = best_weighted;
    report.after = sim::simulate(system, report.best, options_.sim);
    return report;
}

}  // namespace socbuf::core
