#include "core/modulated_model.hpp"

#include "util/contracts.hpp"

#include <algorithm>

namespace socbuf::core {

ModulatedSubsystemCtmdp::ModulatedSubsystemCtmdp(
    const split::Subsystem& subsystem, std::vector<long> caps,
    std::vector<double> rates)
    : subsystem_(&subsystem),
      caps_(std::move(caps)),
      mean_rates_(std::move(rates)) {
    SOCBUF_REQUIRE_MSG(caps_.size() == subsystem.flows.size(),
                       "caps must match flow count");
    SOCBUF_REQUIRE_MSG(mean_rates_.size() == subsystem.flows.size(),
                       "rates must match flow count");
    const std::size_t n = caps_.size();
    background_rate_.assign(n, 0.0);
    peak_rate_.assign(n, 0.0);
    on_rate_.assign(n, 0.0);
    off_rate_.assign(n, 0.0);

    for (std::size_t f = 0; f < n; ++f) {
        SOCBUF_REQUIRE_MSG(caps_[f] >= 1, "caps must be >= 1");
        SOCBUF_REQUIRE_MSG(mean_rates_[f] >= 0.0,
                           "rates must be non-negative");
        const auto& flow = subsystem.flows[f];
        if (!flow.bursty() || flow.arrival_rate <= 0.0) {
            background_rate_[f] = mean_rates_[f];
            continue;
        }
        // Scale the burst's long-run share to the (possibly measured)
        // mean-rate override; the remainder stays Poisson.
        const double burst_share =
            std::min(1.0, flow.burst_rate / flow.arrival_rate);
        const double burst_mean = mean_rates_[f] * burst_share;
        background_rate_[f] = mean_rates_[f] - burst_mean;
        const double duty =
            flow.on_time / (flow.on_time + flow.off_time);
        peak_rate_[f] = burst_mean / std::max(duty, 1e-9);
        on_rate_[f] = 1.0 / flow.on_time;
        off_rate_[f] = 1.0 / flow.off_time;
    }

    // Strides: occupancies first, then one binary phase digit per bursty
    // flow.
    occ_stride_.assign(n, 0);
    phase_stride_.assign(n, 0);
    std::size_t stride = 1;
    for (std::size_t f = 0; f < n; ++f) {
        occ_stride_[f] = stride;
        stride *= static_cast<std::size_t>(caps_[f]) + 1;
    }
    for (std::size_t f = 0; f < n; ++f) {
        if (peak_rate_[f] <= 0.0) continue;
        phase_stride_[f] = stride;
        stride *= 2;
        ++phase_index_of_flow_count_;
    }
    build();
}

std::size_t ModulatedSubsystemCtmdp::state_count() const {
    std::size_t total = 1;
    for (long c : caps_) total *= static_cast<std::size_t>(c) + 1;
    for (std::size_t f = 0; f < caps_.size(); ++f)
        if (phase_stride_[f] != 0) total *= 2;
    return total;
}

long ModulatedSubsystemCtmdp::occupancy(std::size_t state,
                                        std::size_t f) const {
    SOCBUF_REQUIRE(f < caps_.size());
    return static_cast<long>((state / occ_stride_[f]) %
                             (static_cast<std::size_t>(caps_[f]) + 1));
}

bool ModulatedSubsystemCtmdp::phase_on(std::size_t state,
                                       std::size_t f) const {
    SOCBUF_REQUIRE(f < caps_.size());
    if (phase_stride_[f] == 0) return true;
    return (state / phase_stride_[f]) % 2 == 1;
}

double ModulatedSubsystemCtmdp::arrival_rate_in_state(std::size_t state,
                                                      std::size_t f) const {
    double rate = background_rate_[f];
    if (peak_rate_[f] > 0.0 && phase_on(state, f)) rate += peak_rate_[f];
    return rate;
}

void ModulatedSubsystemCtmdp::build() {
    const std::size_t n_states = state_count();
    const double mu = subsystem_->service_rate;
    action_serves_.resize(n_states);
    for (std::size_t s = 0; s < n_states; ++s) model_.add_state();
    for (std::size_t s = 0; s < n_states; ++s) {
        // Environment transitions (phase flips) and arrivals are common to
        // every action of the state.
        std::vector<ctmdp::Transition> env;
        double loss_cost = 0.0;
        double total_occ = 0.0;
        for (std::size_t f = 0; f < caps_.size(); ++f) {
            const long k = occupancy(s, f);
            total_occ += static_cast<double>(k);
            const double lam = arrival_rate_in_state(s, f);
            if (k < caps_[f] && lam > 0.0)
                env.push_back({s + occ_stride_[f], lam});
            if (k == caps_[f])
                loss_cost += subsystem_->flows[f].weight * lam;
            if (phase_stride_[f] != 0) {
                if (phase_on(s, f))
                    env.push_back({s - phase_stride_[f], on_rate_[f]});
                else
                    env.push_back({s + phase_stride_[f], off_rate_[f]});
            }
        }
        bool any_action = false;
        for (std::size_t f = 0; f < caps_.size(); ++f) {
            if (occupancy(s, f) == 0) continue;
            ctmdp::Action act;
            act.name = "serve_" + std::to_string(f);
            act.transitions = env;
            act.transitions.push_back({s - occ_stride_[f], mu});
            act.cost = loss_cost;
            act.extra_costs = {total_occ};
            model_.add_action(s, std::move(act));
            action_serves_[s].push_back(f);
            any_action = true;
        }
        if (!any_action) {
            ctmdp::Action idle;
            idle.name = "idle";
            idle.transitions = env;
            idle.cost = loss_cost;
            idle.extra_costs = {total_occ};
            model_.add_action(s, std::move(idle));
            action_serves_[s].push_back(caps_.size());
        }
    }
    model_.validate();
}

std::vector<double> ModulatedSubsystemCtmdp::flow_marginal(
    const linalg::Vector& pi, std::size_t f) const {
    SOCBUF_REQUIRE(f < caps_.size());
    SOCBUF_REQUIRE(pi.size() == state_count());
    std::vector<double> marginal(static_cast<std::size_t>(caps_[f]) + 1,
                                 0.0);
    for (std::size_t s = 0; s < pi.size(); ++s)
        marginal[static_cast<std::size_t>(occupancy(s, f))] += pi[s];
    return marginal;
}

std::vector<double> ModulatedSubsystemCtmdp::service_shares(
    const std::vector<double>& occupation) const {
    SOCBUF_REQUIRE_MSG(occupation.size() == model_.pair_count(),
                       "occupation vector size mismatch");
    std::vector<double> shares(caps_.size(), 0.0);
    double total = 0.0;
    for (std::size_t p = 0; p < occupation.size(); ++p) {
        const std::size_t s = model_.pair_state(p);
        const std::size_t a = model_.pair_action(p);
        const std::size_t served = action_serves_[s][a];
        if (served >= caps_.size()) continue;
        shares[served] += std::max(occupation[p], 0.0);
        total += std::max(occupation[p], 0.0);
    }
    if (total > 0.0)
        for (double& v : shares) v /= total;
    return shares;
}

std::vector<ModulatedSubsystemCtmdp> build_modulated_models(
    const split::SplitResult& split, const std::vector<long>& allocation,
    long model_cap, const std::vector<double>& measured_site_rates) {
    SOCBUF_REQUIRE_MSG(allocation.size() == split.sites.size(),
                       "allocation must cover every site");
    SOCBUF_REQUIRE_MSG(model_cap >= 1, "model cap must be >= 1");
    std::vector<ModulatedSubsystemCtmdp> out;
    out.reserve(split.subsystems.size());
    for (const auto& sub : split.subsystems) {
        std::vector<long> caps;
        std::vector<double> rates;
        for (const auto& f : sub.flows) {
            caps.push_back(std::clamp(allocation[f.site], 1L, model_cap));
            double rate = f.arrival_rate;
            if (!measured_site_rates.empty()) {
                SOCBUF_REQUIRE_MSG(
                    measured_site_rates.size() == split.sites.size(),
                    "measured rate vector must cover every site");
                rate = std::max(measured_site_rates[f.site],
                                0.25 * f.arrival_rate);
            }
            rates.push_back(rate);
        }
        out.emplace_back(sub, std::move(caps), std::move(rates));
    }
    return out;
}

}  // namespace socbuf::core
