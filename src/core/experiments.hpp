// Experiment drivers that regenerate the paper's evaluation artifacts:
//   run_figure3()  — per-processor loss under constant sizing, CTMDP
//                    resizing and the timeout policy (Figure 3),
//   run_table1()   — pre/post loss under total budgets 160/320/640
//                    (Table 1).
// Both are used by the bench binaries (full scale) and the integration
// tests (reduced horizons).
//
// Both drivers run on the scenario layer's BatchRunner: Table 1's budget
// rows are independent sizing runs and execute in parallel on a shared
// executor, and every engine run in a driver shares one CTMDP solve
// cache. The single-argument overloads construct a private executor from
// the params' `threads` knob; the executor overloads join a caller-owned
// context (one pool for a whole experiment suite). Either way the results
// are bit-identical for any thread count.
#pragma once

#include "core/engine.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::exec {
class Executor;
}

namespace socbuf::core {

struct Figure3Params {
    long total_budget = 320;
    double horizon = 4000.0;
    double warmup = 400.0;
    std::size_t replications = 10;  // the paper repeats 10 times
    std::uint64_t seed = 2005;
    int sizing_iterations = 10;
    /// The timeout threshold is `scale` times the measured mean buffer
    /// wait. The paper uses the mean itself, but a mean-level cutoff drops
    /// over a third of all traffic when waits are roughly exponential
    /// (P(W > E[W]) ~ 1/e), which buries every other effect; the scaled
    /// threshold keeps the policy a competitive baseline. The sensitivity
    /// bench (bench_ablation_policies) sweeps this scale.
    double timeout_threshold_scale = 4.0;
    /// Worker threads for the replications and the engine's subsystem
    /// solves (0 = hardware concurrency). Results are bit-identical for
    /// any value — every replication owns its RNG substream.
    std::size_t threads = 1;
};

struct Figure3Result {
    /// Per processor (index = processor id; display id = index + 1).
    std::vector<double> constant_loss;
    std::vector<double> resized_loss;
    std::vector<double> timeout_loss;
    double constant_total = 0.0;
    double resized_total = 0.0;
    double timeout_total = 0.0;
    Allocation constant_alloc;
    Allocation resized_alloc;
    double timeout_threshold = 0.0;

    /// Fractional loss reduction of resizing vs constant sizing
    /// (the paper reports ~20%).
    [[nodiscard]] double gain_vs_constant() const;
    /// Fractional loss reduction of resizing vs the timeout policy
    /// (the paper reports ~50%).
    [[nodiscard]] double gain_vs_timeout() const;
};

/// Regenerate Figure 3 on the network-processor testbench.
[[nodiscard]] Figure3Result run_figure3(const Figure3Params& params = {});

/// As above, on a shared execution context (params.threads is ignored).
[[nodiscard]] Figure3Result run_figure3(const Figure3Params& params,
                                        exec::Executor& executor);

struct Table1Params {
    std::vector<long> budgets{160, 320, 640};
    double horizon = 4000.0;
    double warmup = 400.0;
    std::size_t replications = 10;
    std::uint64_t seed = 2005;
    int sizing_iterations = 10;
    /// Worker threads (0 = hardware concurrency); see Figure3Params.
    std::size_t threads = 1;
};

struct Table1Row {
    long budget = 0;
    std::vector<double> pre;   // per processor, constant sizing
    std::vector<double> post;  // per processor, after CTMDP resizing
    double pre_total = 0.0;
    double post_total = 0.0;
};

struct Table1Result {
    std::vector<Table1Row> rows;  // one per budget
    /// The processors the paper's Table 1 highlights (display ids).
    std::vector<std::size_t> highlighted{1, 4, 15, 16};
};

/// Regenerate Table 1 (budget sweep) on the network-processor testbench.
/// The budget rows are independent and run in parallel on the executor.
[[nodiscard]] Table1Result run_table1(const Table1Params& params = {});

/// As above, on a shared execution context (params.threads is ignored).
[[nodiscard]] Table1Result run_table1(const Table1Params& params,
                                      exec::Executor& executor);

}  // namespace socbuf::core
