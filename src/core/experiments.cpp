#include "core/experiments.hpp"

#include "exec/executor.hpp"
#include "scenario/batch_runner.hpp"
#include "session/session.hpp"
#include "util/contracts.hpp"

namespace socbuf::core {

double Figure3Result::gain_vs_constant() const {
    return constant_total > 0.0 ? 1.0 - resized_total / constant_total : 0.0;
}

double Figure3Result::gain_vs_timeout() const {
    return timeout_total > 0.0 ? 1.0 - resized_total / timeout_total : 0.0;
}

namespace {

/// The network-processor testbench as a one-off scenario spec; both
/// drivers are just presets over the scenario layer now.
scenario::ScenarioSpec np_spec(std::vector<long> budgets, double horizon,
                               double warmup, std::uint64_t seed,
                               std::size_t replications,
                               int sizing_iterations) {
    scenario::ScenarioSpec spec;
    spec.name = "network-processor";
    spec.testbench = scenario::Testbench::kNetworkProcessor;
    spec.budgets = std::move(budgets);
    spec.replications = replications;
    spec.sizing_iterations = sizing_iterations;
    spec.sim.horizon = horizon;
    spec.sim.warmup = warmup;
    spec.sim.seed = seed;
    return spec;
}

/// The spec for Figure 3: one budget, the timeout policy evaluated.
scenario::ScenarioSpec figure3_spec(const Figure3Params& params) {
    scenario::ScenarioSpec spec =
        np_spec({params.total_budget}, params.horizon, params.warmup,
                params.seed, params.replications, params.sizing_iterations);
    spec.evaluate_timeout_policy = true;
    spec.timeout_threshold_scale = params.timeout_threshold_scale;
    return spec;
}

Figure3Result fold_figure3(const scenario::BatchReport& report) {
    const scenario::ScenarioRunResult& run = report.runs.front();
    Figure3Result out;
    out.constant_alloc = run.constant_alloc;
    out.resized_alloc = run.resized_alloc;
    out.constant_loss = run.pre_loss;
    out.constant_total = run.pre_total;
    out.resized_loss = run.post_loss;
    out.resized_total = run.post_total;
    out.timeout_loss = run.timeout_loss;
    out.timeout_total = run.timeout_total;
    out.timeout_threshold = run.timeout_threshold;
    return out;
}

Table1Result fold_table1(const scenario::BatchReport& report) {
    Table1Result out;
    for (const auto& run : report.runs) {
        Table1Row row;
        row.budget = run.budget;
        row.pre = run.pre_loss;
        row.post = run.post_loss;
        row.pre_total = run.pre_total;
        row.post_total = run.post_total;
        out.rows.push_back(std::move(row));
    }
    return out;
}

}  // namespace

Figure3Result run_figure3(const Figure3Params& params,
                          exec::Executor& executor) {
    SOCBUF_REQUIRE_MSG(params.replications >= 1, "need >= 1 replication");
    scenario::BatchRunner runner(executor);
    return fold_figure3(runner.run(figure3_spec(params)));
}

Figure3Result run_figure3(const Figure3Params& params) {
    SOCBUF_REQUIRE_MSG(params.replications >= 1, "need >= 1 replication");
    Session session({params.threads});
    return fold_figure3(session.run(figure3_spec(params)));
}

Table1Result run_table1(const Table1Params& params,
                        exec::Executor& executor) {
    SOCBUF_REQUIRE_MSG(!params.budgets.empty(), "need at least one budget");
    // One sizing job per budget row; rows run concurrently on the
    // executor and fold back in budget order.
    scenario::BatchRunner runner(executor);
    return fold_table1(runner.run(
        np_spec(params.budgets, params.horizon, params.warmup, params.seed,
                params.replications, params.sizing_iterations)));
}

Table1Result run_table1(const Table1Params& params) {
    SOCBUF_REQUIRE_MSG(!params.budgets.empty(), "need at least one budget");
    Session session({params.threads});
    return fold_table1(session.run(
        np_spec(params.budgets, params.horizon, params.warmup, params.seed,
                params.replications, params.sizing_iterations)));
}

}  // namespace socbuf::core
