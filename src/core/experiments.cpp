#include "core/experiments.hpp"

#include "arch/presets.hpp"
#include "util/contracts.hpp"

#include <algorithm>

namespace socbuf::core {

double Figure3Result::gain_vs_constant() const {
    return constant_total > 0.0 ? 1.0 - resized_total / constant_total : 0.0;
}

double Figure3Result::gain_vs_timeout() const {
    return timeout_total > 0.0 ? 1.0 - resized_total / timeout_total : 0.0;
}

namespace {

/// Mean per-processor losses over `reps` seeds for a fixed allocation,
/// with the replications spread over `threads` workers.
std::vector<double> replicated(const arch::TestSystem& system,
                               const Allocation& alloc,
                               const sim::SimConfig& config,
                               std::size_t reps, std::size_t threads,
                               double* total_out) {
    const auto r =
        sim::replicate_losses(system, alloc, config, reps, threads);
    if (total_out != nullptr) *total_out = r.mean_total_lost;
    return r.mean_lost_per_processor;
}

}  // namespace

Figure3Result run_figure3(const Figure3Params& params) {
    SOCBUF_REQUIRE_MSG(params.replications >= 1, "need >= 1 replication");
    const auto system = arch::network_processor_system();

    SizingOptions opts;
    opts.total_budget = params.total_budget;
    opts.iterations = params.sizing_iterations;
    opts.threads = params.threads;
    opts.sim.horizon = params.horizon;
    opts.sim.warmup = params.warmup;
    opts.sim.seed = params.seed;

    const BufferSizingEngine engine(opts);
    const SizingReport report = engine.run(system);

    Figure3Result out;
    out.constant_alloc = report.initial;
    out.resized_alloc = report.best;

    // Bar 1: constant (uniform) sizing. Bar 2: after CTMDP resizing.
    out.constant_loss =
        replicated(system, report.initial, opts.sim, params.replications,
                   params.threads, &out.constant_total);
    out.resized_loss =
        replicated(system, report.best, opts.sim, params.replications,
                   params.threads, &out.resized_total);

    // Bar 3: timeout policy on the constant allocation; threshold = average
    // time spent by a request in a buffer (calibrated without timeouts).
    out.timeout_threshold =
        params.timeout_threshold_scale *
        sim::calibrate_timeout_threshold(system, report.initial, opts.sim);
    sim::SimConfig timeout_cfg = opts.sim;
    timeout_cfg.timeout_enabled = true;
    timeout_cfg.timeout_threshold = std::max(out.timeout_threshold, 1e-6);
    timeout_cfg.site_timeout_thresholds =
        sim::calibrate_site_timeout_thresholds(
            system, report.initial, opts.sim,
            params.timeout_threshold_scale);
    out.timeout_loss =
        replicated(system, report.initial, timeout_cfg, params.replications,
                   params.threads, &out.timeout_total);
    return out;
}

Table1Result run_table1(const Table1Params& params) {
    SOCBUF_REQUIRE_MSG(!params.budgets.empty(), "need at least one budget");
    const auto system = arch::network_processor_system();

    Table1Result out;
    for (const long budget : params.budgets) {
        SizingOptions opts;
        opts.total_budget = budget;
        opts.iterations = params.sizing_iterations;
        opts.threads = params.threads;
        opts.sim.horizon = params.horizon;
        opts.sim.warmup = params.warmup;
        opts.sim.seed = params.seed;

        const BufferSizingEngine engine(opts);
        const SizingReport report = engine.run(system);

        Table1Row row;
        row.budget = budget;
        row.pre = replicated(system, report.initial, opts.sim,
                             params.replications, params.threads,
                             &row.pre_total);
        row.post = replicated(system, report.best, opts.sim,
                              params.replications, params.threads,
                              &row.post_total);
        out.rows.push_back(std::move(row));
    }
    return out;
}

}  // namespace socbuf::core
