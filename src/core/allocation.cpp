#include "core/allocation.hpp"

#include "queueing/mm1k.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

#include <algorithm>

namespace socbuf::core {

namespace {

/// Scatter per-active-site shares back into a full site-indexed vector,
/// giving every pinned site its single passthrough slot.
Allocation scatter(const split::SplitResult& split,
                   const std::vector<arch::SiteId>& active,
                   const std::vector<long>& shares) {
    Allocation alloc(split.sites.size(), 0);
    for (const auto& sub : split.subsystems)
        for (const auto& f : sub.flows)
            if (f.pinned) alloc[f.site] = 1;
    for (std::size_t i = 0; i < active.size(); ++i)
        alloc[active[i]] = shares[i];
    return alloc;
}

}  // namespace

std::vector<arch::SiteId> active_sites(const split::SplitResult& split) {
    std::vector<arch::SiteId> out;
    for (const auto& sub : split.subsystems)
        for (const auto& f : sub.flows)
            if (!f.pinned) out.push_back(f.site);
    std::sort(out.begin(), out.end());
    return out;
}

long pinned_site_budget(const split::SplitResult& split) {
    long pinned = 0;
    for (const auto& sub : split.subsystems)
        for (const auto& f : sub.flows)
            if (f.pinned) ++pinned;
    return pinned;
}

long allocation_total(const Allocation& alloc) {
    long total = 0;
    for (long a : alloc) total += a;
    return total;
}

Allocation uniform_allocation(const split::SplitResult& split,
                              long total_budget) {
    const auto active = active_sites(split);
    SOCBUF_REQUIRE_MSG(!active.empty(), "no traffic-carrying sites");
    const long budget = total_budget - pinned_site_budget(split);
    const std::vector<double> weights(active.size(), 1.0);
    return scatter(split, active,
                   util::apportion_largest_remainder(budget, weights,
                                                     /*floor=*/1));
}

Allocation proportional_allocation(const split::SplitResult& split,
                                   long total_budget) {
    const auto active = active_sites(split);
    SOCBUF_REQUIRE_MSG(!active.empty(), "no traffic-carrying sites");
    std::vector<double> rate_of_site(split.sites.size(), 0.0);
    for (const auto& sub : split.subsystems)
        for (const auto& f : sub.flows) rate_of_site[f.site] = f.arrival_rate;
    std::vector<double> weights;
    weights.reserve(active.size());
    for (const auto s : active) weights.push_back(rate_of_site[s]);
    return scatter(split, active,
                   util::apportion_largest_remainder(
                       total_budget - pinned_site_budget(split), weights,
                       /*floor=*/1));
}

Allocation demand_allocation(const split::SplitResult& split,
                             long total_budget, double target_blocking) {
    const auto active = active_sites(split);
    SOCBUF_REQUIRE_MSG(!active.empty(), "no traffic-carrying sites");
    std::vector<double> demand_of_site(split.sites.size(), 1.0);
    for (const auto& sub : split.subsystems) {
        const double mu_share =
            sub.service_rate / static_cast<double>(sub.flows.size());
        for (const auto& f : sub.flows)
            demand_of_site[f.site] =
                static_cast<double>(queueing::min_capacity_for_blocking(
                    f.arrival_rate, std::max(mu_share, 1e-12),
                    target_blocking, 512));
    }
    std::vector<double> weights;
    weights.reserve(active.size());
    for (const auto s : active) weights.push_back(demand_of_site[s]);
    return scatter(split, active,
                   util::apportion_largest_remainder(
                       total_budget - pinned_site_budget(split), weights,
                       /*floor=*/1));
}

}  // namespace socbuf::core
