// Buffer allocations and the baseline sizing policies the paper compares
// against: constant (uniform) sizing and traffic-ratio (proportional)
// sizing, plus a demand-based refinement. All allocations are per buffer
// site (arch::enumerate_buffer_sites order) and exactly exhaust the budget
// over the traffic-carrying sites.
#pragma once

#include "split/splitter.hpp"

#include <vector>

namespace socbuf::core {

using Allocation = std::vector<long>;

/// Sum of all entries.
[[nodiscard]] long allocation_total(const Allocation& alloc);

/// Apportionable (non-pinned) traffic-carrying sites, in ascending site
/// order. Pinned sites — bridge sites the placement deselected — are
/// excluded: they keep a fixed single-slot passthrough instead of a
/// budget share.
[[nodiscard]] std::vector<arch::SiteId> active_sites(
    const split::SplitResult& split);

/// Budget consumed by the pinned sites' passthrough slots (one each).
/// Every allocation policy hands out `total_budget - pinned_site_budget`
/// over the active sites, so the *total* budget is identical for every
/// placement — the equal-budget contract of the insertion search.
[[nodiscard]] long pinned_site_budget(const split::SplitResult& split);

/// The paper's "constant buffer sizing" baseline: the budget is spread
/// evenly over all traffic-carrying sites (inactive sites get nothing).
[[nodiscard]] Allocation uniform_allocation(const split::SplitResult& split,
                                            long total_budget);

/// The "division of the space depending on traffic ratios" strawman from
/// the paper's introduction: shares proportional to each site's offered
/// rate.
[[nodiscard]] Allocation proportional_allocation(
    const split::SplitResult& split, long total_budget);

/// Analytic demand-based allocation: each site's share is the M/M/1/K
/// capacity it would need under an equal service share to keep blocking
/// below `target_blocking`.
[[nodiscard]] Allocation demand_allocation(const split::SplitResult& split,
                                           long total_budget,
                                           double target_blocking = 0.02);

}  // namespace socbuf::core
