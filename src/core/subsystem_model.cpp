#include "core/subsystem_model.hpp"

#include "util/contracts.hpp"

#include <algorithm>

namespace socbuf::core {

SubsystemCtmdp::SubsystemCtmdp(const split::Subsystem& subsystem,
                               std::vector<long> caps,
                               std::vector<double> rates)
    : subsystem_(&subsystem), caps_(std::move(caps)), rates_(std::move(rates)) {
    SOCBUF_REQUIRE_MSG(caps_.size() == subsystem.flows.size(),
                       "caps must match flow count");
    SOCBUF_REQUIRE_MSG(rates_.size() == subsystem.flows.size(),
                       "rates must match flow count");
    for (long c : caps_) SOCBUF_REQUIRE_MSG(c >= 1, "caps must be >= 1");
    for (double r : rates_)
        SOCBUF_REQUIRE_MSG(r >= 0.0, "rates must be non-negative");
    strides_.resize(caps_.size());
    std::size_t stride = 1;
    for (std::size_t f = 0; f < caps_.size(); ++f) {
        strides_[f] = stride;
        stride *= static_cast<std::size_t>(caps_[f]) + 1;
    }
    build();
}

std::size_t SubsystemCtmdp::state_count() const {
    std::size_t n = 1;
    for (long c : caps_) n *= static_cast<std::size_t>(c) + 1;
    return n;
}

long SubsystemCtmdp::occupancy(std::size_t state, std::size_t f) const {
    SOCBUF_REQUIRE(f < caps_.size());
    return static_cast<long>((state / strides_[f]) %
                             (static_cast<std::size_t>(caps_[f]) + 1));
}

double SubsystemCtmdp::loss_rate(std::size_t state) const {
    double cost = 0.0;
    for (std::size_t f = 0; f < caps_.size(); ++f)
        if (occupancy(state, f) == caps_[f])
            cost += subsystem_->flows[f].weight * rates_[f];
    return cost;
}

void SubsystemCtmdp::build() {
    const std::size_t n = state_count();
    const double mu = subsystem_->service_rate;
    action_serves_.resize(n);
    for (std::size_t s = 0; s < n; ++s) model_.add_state();
    for (std::size_t s = 0; s < n; ++s) {
        const double cost = loss_rate(s);
        double total_occ = 0.0;
        std::vector<ctmdp::Transition> arrivals;
        for (std::size_t f = 0; f < caps_.size(); ++f) {
            const long k = occupancy(s, f);
            total_occ += static_cast<double>(k);
            if (k < caps_[f] && rates_[f] > 0.0)
                arrivals.push_back({s + strides_[f], rates_[f]});
        }
        bool any_action = false;
        for (std::size_t f = 0; f < caps_.size(); ++f) {
            if (occupancy(s, f) == 0) continue;
            ctmdp::Action act;
            act.name = "serve_" + std::to_string(f);
            act.transitions = arrivals;
            act.transitions.push_back({s - strides_[f], mu});
            act.cost = cost;
            act.extra_costs = {total_occ};
            model_.add_action(s, std::move(act));
            action_serves_[s].push_back(f);
            any_action = true;
        }
        if (!any_action) {
            ctmdp::Action idle;
            idle.name = "idle";
            idle.transitions = arrivals;
            idle.cost = cost;
            idle.extra_costs = {total_occ};
            model_.add_action(s, std::move(idle));
            action_serves_[s].push_back(caps_.size());  // sentinel: idle
        }
    }
    model_.validate();
}

std::vector<double> SubsystemCtmdp::flow_marginal(const linalg::Vector& pi,
                                                  std::size_t f) const {
    SOCBUF_REQUIRE(f < caps_.size());
    SOCBUF_REQUIRE(pi.size() == state_count());
    std::vector<double> marginal(static_cast<std::size_t>(caps_[f]) + 1, 0.0);
    for (std::size_t s = 0; s < pi.size(); ++s)
        marginal[static_cast<std::size_t>(occupancy(s, f))] += pi[s];
    return marginal;
}

std::vector<double> SubsystemCtmdp::service_shares(
    const std::vector<double>& occupation) const {
    SOCBUF_REQUIRE_MSG(occupation.size() == model_.pair_count(),
                       "occupation vector size mismatch");
    std::vector<double> shares(caps_.size(), 0.0);
    double total = 0.0;
    for (std::size_t p = 0; p < occupation.size(); ++p) {
        const std::size_t s = model_.pair_state(p);
        const std::size_t a = model_.pair_action(p);
        const std::size_t served = action_serves_[s][a];
        if (served >= caps_.size()) continue;  // idle
        shares[served] += std::max(occupation[p], 0.0);
        total += std::max(occupation[p], 0.0);
    }
    if (total > 0.0)
        for (double& v : shares) v /= total;
    return shares;
}

std::vector<SubsystemCtmdp> build_subsystem_models(
    const split::SplitResult& split, const std::vector<long>& allocation,
    long model_cap, const std::vector<double>& measured_site_rates) {
    SOCBUF_REQUIRE_MSG(allocation.size() == split.sites.size(),
                       "allocation must cover every site");
    SOCBUF_REQUIRE_MSG(model_cap >= 1, "model cap must be >= 1");
    std::vector<SubsystemCtmdp> out;
    out.reserve(split.subsystems.size());
    for (const auto& sub : split.subsystems) {
        std::vector<long> caps;
        std::vector<double> rates;
        for (const auto& f : sub.flows) {
            caps.push_back(std::clamp(allocation[f.site], 1L, model_cap));
            double rate = f.arrival_rate;
            if (!measured_site_rates.empty()) {
                SOCBUF_REQUIRE_MSG(
                    measured_site_rates.size() == split.sites.size(),
                    "measured rate vector must cover every site");
                // Blend: measured rates can be zero early in short warmup
                // runs; never let a live flow vanish from the model.
                rate = std::max(measured_site_rates[f.site],
                                0.25 * f.arrival_rate);
            }
            rates.push_back(rate);
        }
        out.emplace_back(sub, std::move(caps), std::move(rates));
    }
    return out;
}

}  // namespace socbuf::core
