#include "core/joint.hpp"

#include "lp/simplex.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

#include <cmath>

namespace socbuf::core {

namespace {

/// Solve one subsystem for objective loss + rho * occupancy and return the
/// standard LpSolveResult (average_cost reported as the *loss* part).
ctmdp::LpSolveResult solve_priced(const SubsystemCtmdp& sub, double rho) {
    const auto& base = sub.model();
    if (rho == 0.0) return ctmdp::solve_average_cost_lp(base);
    // Clone the model with the priced cost. CtmdpModel is cheap to rebuild.
    ctmdp::CtmdpModel priced(1);
    for (std::size_t s = 0; s < base.state_count(); ++s) priced.add_state();
    for (std::size_t s = 0; s < base.state_count(); ++s) {
        for (std::size_t a = 0; a < base.action_count(s); ++a) {
            ctmdp::Action act = base.action(s, a);
            act.cost += rho * act.extra_costs[0];
            priced.add_action(s, std::move(act));
        }
    }
    auto result = ctmdp::solve_average_cost_lp(priced);
    if (result.status == lp::SolveStatus::kOptimal) {
        // Report the pure loss component, not the priced objective.
        result.average_cost -= rho * result.extra_cost_values[0];
    }
    return result;
}

JointSolveResult collect(std::vector<ctmdp::LpSolveResult> parts) {
    JointSolveResult out;
    out.solved = true;
    for (auto& r : parts) {
        if (r.status != lp::SolveStatus::kOptimal) {
            out.solved = false;
            return out;
        }
        out.total_loss_rate += r.average_cost;
        out.total_expected_occupancy += r.extra_cost_values[0];
        out.simplex_iterations += r.simplex_iterations;
        out.per_subsystem.push_back(std::move(r));
    }
    return out;
}

}  // namespace

JointSolveResult solve_unconstrained(
    const std::vector<SubsystemCtmdp>& models) {
    SOCBUF_REQUIRE_MSG(!models.empty(), "no subsystems to solve");
    std::vector<ctmdp::LpSolveResult> parts;
    parts.reserve(models.size());
    for (const auto& m : models) parts.push_back(solve_priced(m, 0.0));
    return collect(std::move(parts));
}

JointSolveResult solve_joint_lp(const std::vector<SubsystemCtmdp>& models,
                                double occupancy_budget) {
    SOCBUF_REQUIRE_MSG(!models.empty(), "no subsystems to solve");
    SOCBUF_REQUIRE_MSG(occupancy_budget > 0.0,
                       "occupancy budget must be positive");

    lp::LinearProgram program;
    program.set_sense(lp::Sense::kMinimize);
    std::vector<std::size_t> var_offset(models.size(), 0);

    // Variables: all subsystems' occupation measures, stacked.
    for (std::size_t k = 0; k < models.size(); ++k) {
        const auto& m = models[k].model();
        var_offset[k] = program.variable_count();
        for (std::size_t p = 0; p < m.pair_count(); ++p) {
            const std::size_t s = m.pair_state(p);
            const std::size_t a = m.pair_action(p);
            program.add_variable(m.action(s, a).cost,
                                 "x" + std::to_string(k) + "_" +
                                     std::to_string(p));
        }
    }

    // Block constraints per subsystem: balance (one row dropped) and
    // normalization.
    for (std::size_t k = 0; k < models.size(); ++k) {
        const auto& m = models[k].model();
        std::vector<lp::Constraint> balance(m.state_count());
        for (std::size_t p = 0; p < m.pair_count(); ++p) {
            const std::size_t s = m.pair_state(p);
            const std::size_t a = m.pair_action(p);
            double exit = 0.0;
            for (const auto& t : m.action(s, a).transitions) {
                if (t.target == s || t.rate <= 0.0) continue;
                balance[t.target].terms.emplace_back(var_offset[k] + p,
                                                     t.rate);
                exit += t.rate;
            }
            if (exit > 0.0)
                balance[s].terms.emplace_back(var_offset[k] + p, -exit);
        }
        for (std::size_t s = 1; s < m.state_count(); ++s) {
            balance[s].relation = lp::Relation::kEqual;
            balance[s].rhs = 0.0;
            program.add_constraint(std::move(balance[s]));
        }
        lp::Constraint norm;
        norm.relation = lp::Relation::kEqual;
        norm.rhs = 1.0;
        for (std::size_t p = 0; p < m.pair_count(); ++p)
            norm.terms.emplace_back(var_offset[k] + p, 1.0);
        program.add_constraint(std::move(norm));
    }

    // The single coupling row that makes this a *joint* solve.
    {
        lp::Constraint budget;
        budget.relation = lp::Relation::kLessEqual;
        budget.rhs = occupancy_budget;
        budget.name = "occupancy_budget";
        for (std::size_t k = 0; k < models.size(); ++k) {
            const auto& m = models[k].model();
            for (std::size_t p = 0; p < m.pair_count(); ++p) {
                const std::size_t s = m.pair_state(p);
                const std::size_t a = m.pair_action(p);
                const double occ = m.action(s, a).extra_costs[0];
                if (occ != 0.0)
                    budget.terms.emplace_back(var_offset[k] + p, occ);
            }
        }
        program.add_constraint(std::move(budget));
    }

    const lp::Solution sol = lp::solve(program);
    JointSolveResult out;
    if (sol.status != lp::SolveStatus::kOptimal) {
        util::log(util::LogLevel::kWarn, "joint LP terminated: ",
                  lp::to_string(sol.status));
        return out;
    }
    out.solved = true;
    out.simplex_iterations = sol.iterations;

    // Unpack per-subsystem results.
    for (std::size_t k = 0; k < models.size(); ++k) {
        const auto& m = models[k].model();
        ctmdp::LpSolveResult r;
        r.status = lp::SolveStatus::kOptimal;
        r.occupation.assign(sol.x.begin() + var_offset[k],
                            sol.x.begin() + var_offset[k] + m.pair_count());
        r.state_probability.assign(m.state_count(), 0.0);
        r.extra_cost_values.assign(1, 0.0);
        for (std::size_t p = 0; p < m.pair_count(); ++p) {
            const std::size_t s = m.pair_state(p);
            const std::size_t a = m.pair_action(p);
            const double x = std::max(r.occupation[p], 0.0);
            r.state_probability[s] += x;
            r.average_cost += m.action(s, a).cost * x;
            r.extra_cost_values[0] += m.action(s, a).extra_costs[0] * x;
        }
        std::vector<std::vector<double>> probs(m.state_count());
        for (std::size_t s = 0; s < m.state_count(); ++s) {
            probs[s].assign(m.action_count(s), 0.0);
            if (r.state_probability[s] > 1e-12) {
                for (std::size_t a = 0; a < m.action_count(s); ++a)
                    probs[s][a] = std::max(
                        r.occupation[m.pair_index(s, a)], 0.0) /
                        r.state_probability[s];
            } else {
                for (std::size_t a = 0; a < m.action_count(s); ++a)
                    probs[s][a] = 1.0 / static_cast<double>(
                                      m.action_count(s));
            }
            double total = 0.0;
            for (double p : probs[s]) total += p;
            for (double& p : probs[s]) p /= total;
        }
        r.policy = ctmdp::RandomizedPolicy(std::move(probs));
        out.total_loss_rate += r.average_cost;
        out.total_expected_occupancy += r.extra_cost_values[0];
        out.per_subsystem.push_back(std::move(r));
    }
    return out;
}

JointSolveResult solve_price_decomposed(
    const std::vector<SubsystemCtmdp>& models, double occupancy_budget,
    double rho_max, std::size_t bisection_steps) {
    SOCBUF_REQUIRE_MSG(!models.empty(), "no subsystems to solve");
    SOCBUF_REQUIRE_MSG(occupancy_budget > 0.0,
                       "occupancy budget must be positive");

    auto solve_all = [&](double rho) {
        std::vector<ctmdp::LpSolveResult> parts;
        parts.reserve(models.size());
        for (const auto& m : models) parts.push_back(solve_priced(m, rho));
        JointSolveResult r = collect(std::move(parts));
        r.occupancy_price = rho;
        return r;
    };

    // Free solution first: if the budget is slack at rho = 0, we are done.
    JointSolveResult best = solve_all(0.0);
    if (!best.solved ||
        best.total_expected_occupancy <= occupancy_budget + 1e-9)
        return best;

    // E[occupancy](rho) is non-increasing; bisect for the budget.
    double lo = 0.0;
    double hi = rho_max;
    JointSolveResult at_hi = solve_all(hi);
    for (std::size_t i = 0;
         i < bisection_steps && at_hi.solved &&
         at_hi.total_expected_occupancy > occupancy_budget;
         ++i) {
        hi *= 2.0;
        at_hi = solve_all(hi);
    }
    best = at_hi;
    for (std::size_t i = 0; i < bisection_steps; ++i) {
        const double mid = 0.5 * (lo + hi);
        const JointSolveResult r = solve_all(mid);
        if (!r.solved) break;
        if (r.total_expected_occupancy <= occupancy_budget) {
            best = r;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    return best;
}

}  // namespace socbuf::core
