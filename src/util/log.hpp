// Minimal leveled logger. All socbuf libraries log through this so example
// binaries and benches can silence or amplify diagnostics uniformly.
#pragma once

#include <sstream>
#include <string>

namespace socbuf::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one message (a newline is appended) if `level` passes the threshold.
void log_message(LogLevel level, const std::string& text);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& first, const Rest&... rest) {
    os << first;
    append_all(os, rest...);
}
}  // namespace detail

/// Stream-style convenience: log(LogLevel::kInfo, "gain=", g, " iters=", n).
template <typename... Args>
void log(LogLevel level, const Args&... args) {
    if (level < log_level()) return;
    std::ostringstream os;
    detail::append_all(os, args...);
    log_message(level, os.str());
}

}  // namespace socbuf::util
