#include "util/strings.hpp"

#include <cmath>
#include <cstdio>

namespace socbuf::util {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string format_fixed(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string format_compact(double value) {
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", value);
        return buf;
    }
    return format_fixed(value, 3);
}

std::string pad_left(const std::string& s, std::size_t width) {
    if (s.size() >= width) return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
    if (s.size() >= width) return s;
    return s + std::string(width - s.size(), ' ');
}

bool starts_with(const std::string& s, const std::string& prefix) {
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace socbuf::util
