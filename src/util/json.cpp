#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace socbuf::util {

JsonValue JsonValue::array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
}

JsonValue JsonValue::object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
}

namespace {

[[noreturn]] void kind_error(const char* wanted) {
    throw JsonError(std::string("json: value is not ") + wanted);
}

}  // namespace

bool JsonValue::as_bool() const {
    if (kind_ != Kind::kBool) kind_error("a bool");
    return bool_;
}

double JsonValue::as_number() const {
    if (kind_ != Kind::kNumber) kind_error("a number");
    return number_;
}

const std::string& JsonValue::as_string() const {
    if (kind_ != Kind::kString) kind_error("a string");
    return string_;
}

std::size_t JsonValue::size() const {
    if (kind_ == Kind::kArray) return array_.size();
    if (kind_ == Kind::kObject) return object_.size();
    kind_error("a container");
}

void JsonValue::push_back(JsonValue value) {
    if (kind_ != Kind::kArray) kind_error("an array");
    array_.push_back(std::move(value));
}

const JsonValue& JsonValue::at(std::size_t index) const {
    if (kind_ != Kind::kArray) kind_error("an array");
    if (index >= array_.size()) throw JsonError("json: index out of range");
    return array_[index];
}

void JsonValue::set(const std::string& key, JsonValue value) {
    if (kind_ != Kind::kObject) kind_error("an object");
    for (auto& member : object_) {
        if (member.first == key) {
            member.second = std::move(value);
            return;
        }
    }
    object_.emplace_back(key, std::move(value));
}

bool JsonValue::contains(const std::string& key) const {
    if (kind_ != Kind::kObject) kind_error("an object");
    for (const auto& member : object_)
        if (member.first == key) return true;
    return false;
}

const JsonValue& JsonValue::at(const std::string& key) const {
    if (kind_ != Kind::kObject) kind_error("an object");
    for (const auto& member : object_)
        if (member.first == key) return member.second;
    throw JsonError("json: no member named \"" + key + "\"");
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
    if (kind_ != Kind::kObject) kind_error("an object");
    return object_;
}

std::string json_quote(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char raw : s) {
        const auto c = static_cast<unsigned char>(raw);
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (c < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(raw);
                }
        }
    }
    out.push_back('"');
    return out;
}

namespace {

/// Shortest decimal form that parses back to the same double.
/// std::to_chars is locale-independent (printf/strtod honor LC_NUMERIC
/// and would emit "3,14" under e.g. de_DE — invalid JSON).
std::string format_number(double v) {
    if (!std::isfinite(v))
        throw JsonError("json: cannot emit a non-finite number");
    char buf[32];
    const auto result = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, result.ptr);
}

}  // namespace

void JsonValue::write(std::string& out, int indent, int depth) const {
    const bool pretty = indent >= 0;
    const auto newline_pad = [&](int levels) {
        if (!pretty) return;
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent * levels), ' ');
    };
    switch (kind_) {
        case Kind::kNull: out += "null"; break;
        case Kind::kBool: out += bool_ ? "true" : "false"; break;
        case Kind::kNumber: out += format_number(number_); break;
        case Kind::kString: out += json_quote(string_); break;
        case Kind::kArray: {
            if (array_.empty()) {
                out += "[]";
                break;
            }
            out.push_back('[');
            for (std::size_t i = 0; i < array_.size(); ++i) {
                if (i > 0) out.push_back(',');
                newline_pad(depth + 1);
                array_[i].write(out, indent, depth + 1);
            }
            newline_pad(depth);
            out.push_back(']');
            break;
        }
        case Kind::kObject: {
            if (object_.empty()) {
                out += "{}";
                break;
            }
            out.push_back('{');
            for (std::size_t i = 0; i < object_.size(); ++i) {
                if (i > 0) out.push_back(',');
                newline_pad(depth + 1);
                out += json_quote(object_[i].first);
                out.push_back(':');
                if (pretty) out.push_back(' ');
                object_[i].second.write(out, indent, depth + 1);
            }
            newline_pad(depth);
            out.push_back('}');
            break;
        }
    }
}

std::string JsonValue::dump(int indent) const {
    std::string out;
    write(out, indent, 0);
    return out;
}

bool operator==(const JsonValue& a, const JsonValue& b) {
    if (a.kind_ != b.kind_) return false;
    switch (a.kind_) {
        case JsonValue::Kind::kNull: return true;
        case JsonValue::Kind::kBool: return a.bool_ == b.bool_;
        case JsonValue::Kind::kNumber: return a.number_ == b.number_;
        case JsonValue::Kind::kString: return a.string_ == b.string_;
        case JsonValue::Kind::kArray: return a.array_ == b.array_;
        case JsonValue::Kind::kObject: return a.object_ == b.object_;
    }
    return false;
}

namespace {

class Parser {
public:
    explicit Parser(const std::string& text) : text_(text) {}

    JsonValue run() {
        JsonValue v = value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& what) const {
        throw JsonError("json parse error at byte " + std::to_string(pos_) +
                        ": " + what);
    }

    void skip_whitespace() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek() {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* literal) {
        const std::size_t len = std::char_traits<char>::length(literal);
        if (text_.compare(pos_, len, literal) != 0) return false;
        pos_ += len;
        return true;
    }

    JsonValue value() {
        skip_whitespace();
        const char c = peek();
        switch (c) {
            case '{': return object();
            case '[': return array();
            case '"': return JsonValue(string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return JsonValue(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return JsonValue(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return JsonValue();
            default: return number();
        }
    }

    JsonValue object() {
        expect('{');
        JsonValue out = JsonValue::object();
        skip_whitespace();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        for (;;) {
            skip_whitespace();
            std::string key = string();
            skip_whitespace();
            expect(':');
            out.set(key, value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return out;
        }
    }

    JsonValue array() {
        expect('[');
        JsonValue out = JsonValue::array();
        skip_whitespace();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        for (;;) {
            out.push_back(value());
            skip_whitespace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return out;
        }
    }

    std::string string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'b': out.push_back('\b'); break;
                case 'f': out.push_back('\f'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("short \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= h - '0';
                        else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
                        else fail("bad hex digit in \\u escape");
                    }
                    // Encode the code point as UTF-8 (socbuf only ever
                    // emits \u00XX controls; surrogates are not combined).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    } else {
                        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                        out.push_back(
                            static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    JsonValue number() {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start) fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        double v = 0.0;
        // Locale-independent counterpart of to_chars in format_number.
        const auto result =
            std::from_chars(token.data(), token.data() + token.size(), v);
        if (result.ec != std::errc{} ||
            result.ptr != token.data() + token.size()) {
            pos_ = start;
            fail("malformed number '" + token + "'");
        }
        return JsonValue(v);
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(const std::string& text) {
    return Parser(text).run();
}

}  // namespace socbuf::util
