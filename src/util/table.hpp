// Column-aligned text tables with CSV (RFC 4180) and JSON emission. The
// bench binaries use this to print the paper's tables/figures as plain
// rows, so outputs are easy to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace socbuf::util {

/// A simple right-aligned text table with a header row.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Append one row; must have exactly as many cells as there are headers.
    void add_row(std::vector<std::string> cells);

    /// Convenience: format doubles with `precision` digits.
    void add_numeric_row(const std::string& label,
                         const std::vector<double>& values, int precision = 2);

    [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

    /// Render with aligned columns, a separator under the header.
    [[nodiscard]] std::string to_string() const;

    /// Render as CSV per RFC 4180: cells containing commas, quotes or
    /// newlines are quoted, with embedded quotes doubled.
    [[nodiscard]] std::string to_csv() const;

    /// Render as a JSON object: {"headers": [...], "rows": [[...], ...]}
    /// with every cell kept as a string. `indent` as in JsonValue::dump.
    [[nodiscard]] std::string to_json(int indent = -1) const;

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace socbuf::util
