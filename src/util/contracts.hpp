// Contract checking and error types shared by all socbuf modules.
//
// Per the C++ Core Guidelines (I.5/I.6, E.2) we express preconditions with
// throwing checks so violations are detectable in release builds; logic
// errors raised here indicate misuse of an API, runtime errors indicate a
// legitimate failure (e.g. an infeasible LP).
#pragma once

#include <stdexcept>
#include <string>

namespace socbuf::util {

/// Raised when a caller violates a documented precondition.
class ContractViolation : public std::logic_error {
public:
    explicit ContractViolation(const std::string& what_arg)
        : std::logic_error(what_arg) {}
};

/// Raised when an algorithm fails for a reason the caller can act on
/// (singular matrix, infeasible program, divergent iteration, ...).
class NumericalError : public std::runtime_error {
public:
    explicit NumericalError(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

/// Raised when a model description is structurally invalid
/// (dangling bus reference, negative rate, empty architecture, ...).
class ModelError : public std::runtime_error {
public:
    explicit ModelError(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

[[noreturn]] inline void raise_contract_violation(const char* expr,
                                                  const char* file, int line,
                                                  const std::string& msg) {
    throw ContractViolation(std::string(file) + ":" + std::to_string(line) +
                            ": contract `" + expr + "` violated" +
                            (msg.empty() ? "" : (": " + msg)));
}

}  // namespace socbuf::util

/// Precondition check that survives in release builds.
#define SOCBUF_REQUIRE(expr)                                                  \
    do {                                                                      \
        if (!(expr))                                                          \
            ::socbuf::util::raise_contract_violation(#expr, __FILE__,         \
                                                     __LINE__, "");           \
    } while (false)

/// Precondition check with an explanatory message.
#define SOCBUF_REQUIRE_MSG(expr, msg)                                         \
    do {                                                                      \
        if (!(expr))                                                          \
            ::socbuf::util::raise_contract_violation(#expr, __FILE__,         \
                                                     __LINE__, (msg));        \
    } while (false)

/// Internal invariant check (same behaviour; distinct name documents intent).
#define SOCBUF_ASSERT(expr) SOCBUF_REQUIRE(expr)
