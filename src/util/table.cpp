#include "util/table.hpp"

#include "util/contracts.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

#include <algorithm>

namespace socbuf::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    SOCBUF_REQUIRE_MSG(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
    SOCBUF_REQUIRE_MSG(cells.size() == headers_.size(),
                       "row width must match header width");
    rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::string& label,
                            const std::vector<double>& values, int precision) {
    SOCBUF_REQUIRE(values.size() + 1 == headers_.size());
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values) cells.push_back(format_fixed(v, precision));
    add_row(std::move(cells));
}

std::string Table::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::string out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) out += "  ";
            out += pad_left(row[c], widths[c]);
        }
        out += '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);
    out += std::string(total, '-');
    out += '\n';
    for (const auto& row : rows_) emit_row(row);
    return out;
}

namespace {

/// RFC 4180 field encoding: quote when the cell contains a comma, quote
/// or line break, doubling embedded quotes; everything else passes as-is.
std::string csv_escape(const std::string& cell) {
    if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
    std::string out;
    out.reserve(cell.size() + 2);
    out.push_back('"');
    for (const char c : cell) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

std::string csv_row(const std::vector<std::string>& cells) {
    std::vector<std::string> escaped;
    escaped.reserve(cells.size());
    for (const auto& cell : cells) escaped.push_back(csv_escape(cell));
    return join(escaped, ",");
}

}  // namespace

std::string Table::to_csv() const {
    std::string out = csv_row(headers_) + "\n";
    for (const auto& row : rows_) out += csv_row(row) + "\n";
    return out;
}

std::string Table::to_json(int indent) const {
    JsonValue headers = JsonValue::array();
    for (const auto& h : headers_) headers.push_back(h);
    JsonValue rows = JsonValue::array();
    for (const auto& row : rows_) {
        JsonValue cells = JsonValue::array();
        for (const auto& cell : row) cells.push_back(cell);
        rows.push_back(std::move(cells));
    }
    JsonValue out = JsonValue::object();
    out.set("headers", std::move(headers));
    out.set("rows", std::move(rows));
    return out.dump(indent);
}

}  // namespace socbuf::util
