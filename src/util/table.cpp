#include "util/table.hpp"

#include "util/contracts.hpp"
#include "util/strings.hpp"

#include <algorithm>

namespace socbuf::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    SOCBUF_REQUIRE_MSG(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
    SOCBUF_REQUIRE_MSG(cells.size() == headers_.size(),
                       "row width must match header width");
    rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::string& label,
                            const std::vector<double>& values, int precision) {
    SOCBUF_REQUIRE(values.size() + 1 == headers_.size());
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values) cells.push_back(format_fixed(v, precision));
    add_row(std::move(cells));
}

std::string Table::to_string() const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::string out;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) out += "  ";
            out += pad_left(row[c], widths[c]);
        }
        out += '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c > 0 ? 2 : 0);
    out += std::string(total, '-');
    out += '\n';
    for (const auto& row : rows_) emit_row(row);
    return out;
}

std::string Table::to_csv() const {
    std::string out = join(headers_, ",") + "\n";
    for (const auto& row : rows_) out += join(row, ",") + "\n";
    return out;
}

}  // namespace socbuf::util
