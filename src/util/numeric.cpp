#include "util/numeric.hpp"

#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace socbuf::util {

bool approx_equal(double a, double b, double atol, double rtol) {
    return std::fabs(a - b) <=
           atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

double stable_sum(const std::vector<double>& values) {
    double sum = 0.0;
    double carry = 0.0;
    for (double v : values) {
        const double y = v - carry;
        const double t = sum + y;
        carry = (t - sum) - y;
        sum = t;
    }
    return sum;
}

double mean(const std::vector<double>& values) {
    if (values.empty()) return 0.0;
    return stable_sum(values) / static_cast<double>(values.size());
}

double sample_stddev(const std::vector<double>& values) {
    if (values.size() < 2) return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (double v : values) acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

std::vector<long> apportion_largest_remainder(long total,
                                              const std::vector<double>& weights,
                                              long floor_per_entry) {
    SOCBUF_REQUIRE_MSG(!weights.empty(), "need at least one weight");
    SOCBUF_REQUIRE_MSG(total >= 0, "total must be non-negative");
    SOCBUF_REQUIRE_MSG(floor_per_entry >= 0, "floor must be non-negative");
    const long n = static_cast<long>(weights.size());
    SOCBUF_REQUIRE_MSG(floor_per_entry * n <= total,
                       "floors alone exceed the total");
    for (double w : weights)
        SOCBUF_REQUIRE_MSG(w >= 0.0, "weights must be non-negative");

    std::vector<long> out(weights.size(), floor_per_entry);
    long remaining = total - floor_per_entry * n;
    double weight_sum = stable_sum(weights);
    if (weight_sum <= 0.0) {
        // Degenerate: spread evenly, front-loaded.
        for (std::size_t i = 0; remaining > 0; i = (i + 1) % weights.size()) {
            ++out[i];
            --remaining;
        }
        return out;
    }

    std::vector<double> remainders(weights.size());
    long assigned = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double exact =
            static_cast<double>(remaining) * weights[i] / weight_sum;
        const long whole = static_cast<long>(std::floor(exact));
        out[i] += whole;
        assigned += whole;
        remainders[i] = exact - static_cast<double>(whole);
    }
    long leftover = remaining - assigned;
    // Hand out the leftover units by decreasing fractional remainder,
    // breaking ties toward lower index for determinism.
    std::vector<std::size_t> order(weights.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return remainders[a] > remainders[b];
                     });
    for (std::size_t k = 0; leftover > 0; ++k, --leftover)
        ++out[order[k % order.size()]];
    return out;
}

std::size_t argmax(const std::vector<double>& values) {
    SOCBUF_REQUIRE_MSG(!values.empty(), "argmax of empty vector");
    return static_cast<std::size_t>(
        std::distance(values.begin(),
                      std::max_element(values.begin(), values.end())));
}

std::size_t lower_bound_index(const std::vector<double>& cumulative,
                              double x) {
    SOCBUF_REQUIRE_MSG(!cumulative.empty(), "empty cumulative vector");
    auto it = std::lower_bound(cumulative.begin(), cumulative.end(), x);
    if (it == cumulative.end()) return cumulative.size() - 1;
    return static_cast<std::size_t>(std::distance(cumulative.begin(), it));
}

}  // namespace socbuf::util
