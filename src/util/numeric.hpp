// Numeric helpers shared by the solvers: tolerant comparisons, compensated
// summation, and integer apportionment (largest-remainder rounding), which
// the sizing engine uses to turn fractional buffer shares into an integer
// allocation that exactly exhausts the budget.
#pragma once

#include <cstddef>
#include <vector>

namespace socbuf::util {

/// |a - b| <= atol + rtol * max(|a|, |b|).
[[nodiscard]] bool approx_equal(double a, double b, double atol = 1e-9,
                                double rtol = 1e-9);

/// Kahan-compensated sum of `values`.
[[nodiscard]] double stable_sum(const std::vector<double>& values);

/// Mean of `values`; zero for an empty vector.
[[nodiscard]] double mean(const std::vector<double>& values);

/// Sample standard deviation (n-1 denominator); zero for n < 2.
[[nodiscard]] double sample_stddev(const std::vector<double>& values);

/// Largest-remainder (Hamilton) apportionment of `total` indivisible units
/// proportionally to the non-negative `weights`. Every entry receives at
/// least `floor_per_entry` units when total permits; the result always sums
/// to exactly `total`.
///
/// Throws ContractViolation if weights are empty/negative or the floors
/// alone exceed the total.
[[nodiscard]] std::vector<long> apportion_largest_remainder(
    long total, const std::vector<double>& weights, long floor_per_entry = 0);

/// Index of the maximum element (first one on ties). Requires non-empty.
[[nodiscard]] std::size_t argmax(const std::vector<double>& values);

/// Linear interpolation search: smallest index i with cumulative[i] >= x.
/// `cumulative` must be non-decreasing and non-empty.
[[nodiscard]] std::size_t lower_bound_index(
    const std::vector<double>& cumulative, double x);

}  // namespace socbuf::util
