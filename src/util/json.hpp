// A small JSON value type with a writer and a strict parser — enough for
// socbuf's structured results (batch reports, tables, CLI output) without
// an external dependency. Design points:
//
//   * objects preserve insertion order, so emission is deterministic and
//     diffs of two reports line up key by key,
//   * numbers are doubles emitted with shortest round-trip precision via
//     std::to_chars/from_chars — locale-independent, so dump -> parse ->
//     dump is a fixed point under any LC_NUMERIC,
//   * the parser rejects trailing garbage, unterminated strings/containers
//     and malformed numbers with a JsonError naming the byte offset.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace socbuf::util {

class JsonError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class JsonValue {
public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    JsonValue() = default;  // null
    JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
    JsonValue(double v) : kind_(Kind::kNumber), number_(v) {}
    JsonValue(int v) : JsonValue(static_cast<double>(v)) {}
    JsonValue(long v) : JsonValue(static_cast<double>(v)) {}
    JsonValue(std::size_t v) : JsonValue(static_cast<double>(v)) {}
    JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
    JsonValue(const char* s) : JsonValue(std::string(s)) {}

    [[nodiscard]] static JsonValue array();
    [[nodiscard]] static JsonValue object();

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
    [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
    [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

    /// Typed accessors; throw JsonError on a kind mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] double as_number() const;
    [[nodiscard]] const std::string& as_string() const;

    /// Array/object element count (JsonError for scalars).
    [[nodiscard]] std::size_t size() const;

    /// Array: append an element (JsonError unless array).
    void push_back(JsonValue value);
    /// Array: element access with bounds checking.
    [[nodiscard]] const JsonValue& at(std::size_t index) const;

    /// Object: insert-or-assign keeping first-insertion order.
    void set(const std::string& key, JsonValue value);
    [[nodiscard]] bool contains(const std::string& key) const;
    /// Object: member access; JsonError when the key is absent.
    [[nodiscard]] const JsonValue& at(const std::string& key) const;
    [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
    members() const;

    /// Serialize. indent < 0: compact one-liner; otherwise pretty-printed
    /// with `indent` spaces per level.
    [[nodiscard]] std::string dump(int indent = -1) const;

    /// Strict parse of a complete JSON document (throws JsonError).
    [[nodiscard]] static JsonValue parse(const std::string& text);

    friend bool operator==(const JsonValue& a, const JsonValue& b);
    friend bool operator!=(const JsonValue& a, const JsonValue& b) {
        return !(a == b);
    }

private:
    void write(std::string& out, int indent, int depth) const;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Escape `s` per RFC 8259 and wrap it in double quotes.
[[nodiscard]] std::string json_quote(const std::string& s);

}  // namespace socbuf::util
