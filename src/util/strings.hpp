// Small string utilities used across modules (no locale, no allocation
// surprises).
#pragma once

#include <string>
#include <vector>

namespace socbuf::util {

/// Join the elements of `parts` with `sep`.
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Fixed-precision formatting of a double (printf "%.*f").
std::string format_fixed(double value, int precision);

/// Human-readable formatting: integers without decimals, otherwise 3 digits.
std::string format_compact(double value);

/// Left-pad `s` with spaces to at least `width` characters.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pad `s` with spaces to at least `width` characters.
std::string pad_right(const std::string& s, std::size_t width);

/// True if `s` starts with `prefix`.
bool starts_with(const std::string& s, const std::string& prefix);

}  // namespace socbuf::util
