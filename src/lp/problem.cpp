#include "lp/problem.hpp"

#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace socbuf::lp {

std::size_t LinearProgram::add_variable(double objective_coeff,
                                        std::string name) {
    obj_.push_back(objective_coeff);
    if (name.empty()) name = "x" + std::to_string(obj_.size() - 1);
    names_.push_back(std::move(name));
    return obj_.size() - 1;
}

void LinearProgram::set_objective_coeff(std::size_t var, double coeff) {
    SOCBUF_REQUIRE_MSG(var < obj_.size(), "unknown variable id");
    obj_[var] = coeff;
}

std::size_t LinearProgram::add_constraint(Constraint c) {
    // Merge duplicate variable ids so downstream code sees a clean row.
    std::map<std::size_t, double> merged;
    for (const auto& [var, coeff] : c.terms) {
        SOCBUF_REQUIRE_MSG(var < obj_.size(),
                           "constraint references unknown variable");
        merged[var] += coeff;
    }
    c.terms.assign(merged.begin(), merged.end());
    if (c.name.empty()) c.name = "c" + std::to_string(constraints_.size());
    constraints_.push_back(std::move(c));
    return constraints_.size() - 1;
}

std::size_t LinearProgram::add_dense_constraint(
    const std::vector<double>& coeffs, Relation relation, double rhs,
    std::string name) {
    SOCBUF_REQUIRE_MSG(coeffs.size() == obj_.size(),
                       "dense constraint width must equal variable count");
    Constraint c;
    c.relation = relation;
    c.rhs = rhs;
    c.name = std::move(name);
    for (std::size_t v = 0; v < coeffs.size(); ++v)
        if (coeffs[v] != 0.0) c.terms.emplace_back(v, coeffs[v]);
    return add_constraint(std::move(c));
}

double LinearProgram::objective_coeff(std::size_t var) const {
    SOCBUF_REQUIRE_MSG(var < obj_.size(), "unknown variable id");
    return obj_[var];
}

const Constraint& LinearProgram::constraint(std::size_t i) const {
    SOCBUF_REQUIRE_MSG(i < constraints_.size(), "unknown constraint id");
    return constraints_[i];
}

const std::string& LinearProgram::variable_name(std::size_t var) const {
    SOCBUF_REQUIRE_MSG(var < names_.size(), "unknown variable id");
    return names_[var];
}

double LinearProgram::objective_value(const std::vector<double>& x) const {
    SOCBUF_REQUIRE_MSG(x.size() == obj_.size(), "point size mismatch");
    double acc = 0.0;
    for (std::size_t v = 0; v < obj_.size(); ++v) acc += obj_[v] * x[v];
    return acc;
}

double LinearProgram::max_violation(const std::vector<double>& x) const {
    SOCBUF_REQUIRE_MSG(x.size() == obj_.size(), "point size mismatch");
    double worst = 0.0;
    for (double v : x) worst = std::max(worst, -v);  // x >= 0
    for (const auto& c : constraints_) {
        double lhs = 0.0;
        for (const auto& [var, coeff] : c.terms) lhs += coeff * x[var];
        switch (c.relation) {
            case Relation::kLessEqual:
                worst = std::max(worst, lhs - c.rhs);
                break;
            case Relation::kGreaterEqual:
                worst = std::max(worst, c.rhs - lhs);
                break;
            case Relation::kEqual:
                worst = std::max(worst, std::fabs(lhs - c.rhs));
                break;
        }
    }
    return worst;
}

}  // namespace socbuf::lp
