// Linear program description. Variables are non-negative reals (occupation
// measures are probabilities, so x >= 0 is the natural domain); general
// bounds can be expressed as explicit constraints.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace socbuf::lp {

enum class Sense { kMinimize, kMaximize };
enum class Relation { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: sum(coeff_i * x_{var_i}) REL rhs.
struct Constraint {
    std::vector<std::pair<std::size_t, double>> terms;
    Relation relation = Relation::kEqual;
    double rhs = 0.0;
    std::string name;
};

/// Builder for an LP over non-negative variables.
class LinearProgram {
public:
    /// Add a variable with the given objective coefficient; returns its id.
    std::size_t add_variable(double objective_coeff = 0.0,
                             std::string name = {});

    void set_objective_coeff(std::size_t var, double coeff);
    void set_sense(Sense sense) { sense_ = sense; }

    /// Add a constraint; term variable ids must already exist.
    /// Duplicate variable ids inside one constraint are summed.
    std::size_t add_constraint(Constraint c);

    /// Convenience for dense rows (coeffs.size() == variable_count()).
    std::size_t add_dense_constraint(const std::vector<double>& coeffs,
                                     Relation relation, double rhs,
                                     std::string name = {});

    [[nodiscard]] std::size_t variable_count() const { return obj_.size(); }
    [[nodiscard]] std::size_t constraint_count() const {
        return constraints_.size();
    }
    [[nodiscard]] Sense sense() const { return sense_; }
    [[nodiscard]] double objective_coeff(std::size_t var) const;
    [[nodiscard]] const Constraint& constraint(std::size_t i) const;
    [[nodiscard]] const std::string& variable_name(std::size_t var) const;

    /// Objective value of a candidate point (no feasibility check).
    [[nodiscard]] double objective_value(const std::vector<double>& x) const;

    /// Largest violation of any constraint or the x >= 0 domain by `x`.
    [[nodiscard]] double max_violation(const std::vector<double>& x) const;

private:
    Sense sense_ = Sense::kMinimize;
    std::vector<double> obj_;
    std::vector<std::string> names_;
    std::vector<Constraint> constraints_;
};

}  // namespace socbuf::lp
