// Two-phase primal simplex on a dense tableau.
//
// Scope: the occupation-measure LPs socbuf generates (hundreds to a few
// thousand rows/columns, many redundant equality rows from the CTMC balance
// equations). Design choices that matter for those inputs:
//   * phase 1 with explicit artificials, so redundant balance rows are
//     detected and neutralized rather than crashing a basis factorization;
//   * Dantzig pricing with an automatic switch to Bland's rule after a
//     stall, so degenerate occupation-measure polytopes cannot cycle;
//   * all tolerances are explicit and adjustable.
#pragma once

#include "lp/problem.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::lp {

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

[[nodiscard]] const char* to_string(SolveStatus status);

struct Solution {
    SolveStatus status = SolveStatus::kIterationLimit;
    std::vector<double> x;        // structural variables only
    double objective = 0.0;       // in the LP's own sense
    std::size_t iterations = 0;   // total pivots across both phases
    double max_violation = 0.0;   // feasibility check of the returned point
};

struct SimplexOptions {
    double pivot_tolerance = 1e-9;    // entries smaller than this can't pivot
    double cost_tolerance = 1e-9;     // reduced costs above -tol are optimal
    double feasibility_tolerance = 1e-7;
    std::size_t max_iterations = 0;   // 0 = automatic: 200 * (m + n) + 5000
    std::size_t stall_before_bland = 64;  // degenerate pivots before Bland
    /// Wolfe-style anti-degeneracy: row i's rhs is nudged by
    /// rhs_perturbation * (i+1)/m. The CTMC balance systems socbuf feeds
    /// in are *totally* degenerate (every rhs is 0 except normalization),
    /// where even lexicographic/Bland pivoting wanders for millions of
    /// iterations under floating point; the perturbation removes the ties
    /// outright at a solution error far below feasibility_tolerance.
    /// Set to 0 to disable.
    double rhs_perturbation = 1e-10;
};

/// Solve `lp` with the two-phase primal simplex method.
[[nodiscard]] Solution solve(const LinearProgram& lp,
                             const SimplexOptions& options = {});

}  // namespace socbuf::lp
