#include "lp/simplex.hpp"

#include "util/contracts.hpp"
#include "util/log.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace socbuf::lp {

namespace {

// Column-major tableau:
//   rows 0..m-1: constraint rows, column layout [structural | slack/surplus |
//                artificial | rhs]
//   row m      : reduced-cost row for the active phase; its rhs cell holds
//                minus the current objective value.
// Columns are stored contiguously (tab_[c * col_stride_ + r]) because the
// pivot — by far the dominant cost — is a rank-1 update that walks whole
// columns: the rewritten loop streams each column once, skips columns whose
// pivot-row entry is zero (the dense update would subtract f * 0
// everywhere), and skips rows whose elimination factor is zero, which on
// our sparse occupation-measure LPs leaves most of the tableau untouched.
// Each surviving cell computes the identical expression the row-major
// update did (factor * (pivot_entry * inv)), so results are bit-identical.
class Tableau {
public:
    Tableau(const LinearProgram& lp, const SimplexOptions& options)
        : opts_(options), n_struct_(lp.variable_count()) {
        build(lp);
    }

    SolveStatus run_two_phase(const LinearProgram& lp) {
        if (needs_phase1_) {
            load_phase1_objective();
            const SolveStatus s1 = iterate(/*phase1=*/true);
            if (s1 != SolveStatus::kOptimal) return s1;
            if (current_objective() > opts_.feasibility_tolerance)
                return SolveStatus::kInfeasible;
            expel_basic_artificials();
        }
        load_phase2_objective(lp);
        return iterate(/*phase1=*/false);
    }

    [[nodiscard]] std::vector<double> structural_solution() const {
        std::vector<double> x(n_struct_, 0.0);
        for (std::size_t r = 0; r < m_; ++r) {
            const std::size_t b = basis_[r];
            if (b < n_struct_) x[b] = rhs(r);
        }
        return x;
    }

    [[nodiscard]] std::size_t iterations() const { return iterations_; }

private:
    [[nodiscard]] double& cell(std::size_t r, std::size_t c) {
        return tab_[c * col_stride_ + r];
    }
    [[nodiscard]] double cell(std::size_t r, std::size_t c) const {
        return tab_[c * col_stride_ + r];
    }
    [[nodiscard]] double rhs(std::size_t r) const {
        return cell(r, n_total_);
    }
    [[nodiscard]] double current_objective() const {
        return -cell(m_, n_total_);
    }

    void build(const LinearProgram& lp) {
        m_ = lp.constraint_count();
        // Count auxiliary columns.
        std::size_t n_slack = 0;
        std::size_t n_art = 0;
        for (std::size_t i = 0; i < m_; ++i) {
            const auto& c = lp.constraint(i);
            const bool flip = c.rhs < 0.0;
            const Relation rel =
                !flip ? c.relation
                      : (c.relation == Relation::kLessEqual
                             ? Relation::kGreaterEqual
                             : (c.relation == Relation::kGreaterEqual
                                    ? Relation::kLessEqual
                                    : Relation::kEqual));
            if (rel != Relation::kEqual) ++n_slack;
            if (rel != Relation::kLessEqual) ++n_art;
        }
        slack_begin_ = n_struct_;
        art_begin_ = n_struct_ + n_slack;
        n_total_ = n_struct_ + n_slack + n_art;
        col_stride_ = m_ + 1;
        tab_.assign((n_total_ + 1) * col_stride_, 0.0);
        basis_.assign(m_, 0);
        is_artificial_.assign(n_total_, false);
        needs_phase1_ = n_art > 0;

        std::size_t next_slack = slack_begin_;
        std::size_t next_art = art_begin_;
        for (std::size_t i = 0; i < m_; ++i) {
            const auto& c = lp.constraint(i);
            const bool flip = c.rhs < 0.0;
            const double sign = flip ? -1.0 : 1.0;
            for (const auto& [var, coeff] : c.terms)
                cell(i, var) += sign * coeff;
            cell(i, n_total_) =
                sign * c.rhs +
                opts_.rhs_perturbation * static_cast<double>(i + 1) /
                    static_cast<double>(m_);
            Relation rel = c.relation;
            if (flip) {
                if (rel == Relation::kLessEqual)
                    rel = Relation::kGreaterEqual;
                else if (rel == Relation::kGreaterEqual)
                    rel = Relation::kLessEqual;
            }
            switch (rel) {
                case Relation::kLessEqual:
                    cell(i, next_slack) = 1.0;
                    basis_[i] = next_slack;
                    ++next_slack;
                    break;
                case Relation::kGreaterEqual: {
                    cell(i, next_slack) = -1.0;  // surplus
                    ++next_slack;
                    cell(i, next_art) = 1.0;
                    is_artificial_[next_art] = true;
                    basis_[i] = next_art;
                    ++next_art;
                    break;
                }
                case Relation::kEqual:
                    cell(i, next_art) = 1.0;
                    is_artificial_[next_art] = true;
                    basis_[i] = next_art;
                    ++next_art;
                    break;
            }
        }
    }

    void load_phase1_objective() {
        // Minimize the sum of artificials: cost row starts as e_artificials,
        // then gets reduced against the (artificial) basis, which amounts to
        // subtracting every artificial-basic row.
        for (std::size_t c = 0; c <= n_total_; ++c) cell(m_, c) = 0.0;
        for (std::size_t c = art_begin_; c < n_total_; ++c) cell(m_, c) = 1.0;
        for (std::size_t r = 0; r < m_; ++r) {
            if (!is_artificial_[basis_[r]]) continue;
            for (std::size_t c = 0; c <= n_total_; ++c)
                cell(m_, c) -= cell(r, c);
        }
        phase1_ = true;
    }

    void load_phase2_objective(const LinearProgram& lp) {
        const double sense =
            lp.sense() == Sense::kMinimize ? 1.0 : -1.0;  // run min internally
        for (std::size_t c = 0; c <= n_total_; ++c) cell(m_, c) = 0.0;
        for (std::size_t v = 0; v < n_struct_; ++v)
            cell(m_, v) = sense * lp.objective_coeff(v);
        // Reduce against the current basis.
        for (std::size_t r = 0; r < m_; ++r) {
            const std::size_t b = basis_[r];
            const double cb = cell(m_, b);
            if (cb == 0.0) continue;
            for (std::size_t c = 0; c <= n_total_; ++c)
                cell(m_, c) -= cb * cell(r, c);
        }
        phase1_ = false;
        sense_sign_ = sense;
    }

    /// After phase 1, pivot still-basic artificials out on any eligible
    /// column; rows where that is impossible are redundant and stay with a
    /// zero-valued artificial that phase 2 will never re-enter.
    void expel_basic_artificials() {
        for (std::size_t r = 0; r < m_; ++r) {
            if (!is_artificial_[basis_[r]]) continue;
            std::size_t col = n_total_;  // sentinel: none found
            for (std::size_t c = 0; c < art_begin_; ++c) {
                if (std::fabs(cell(r, c)) > opts_.pivot_tolerance) {
                    col = c;
                    break;
                }
            }
            if (col == n_total_) continue;  // redundant row
            pivot(r, col);
        }
    }

    [[nodiscard]] bool column_eligible(std::size_t c) const {
        // Artificials may never re-enter once phase 1 ends.
        return phase1_ || !is_artificial_[c];
    }

    /// Entering column under Dantzig pricing; n_total_ if optimal.
    [[nodiscard]] std::size_t price_dantzig() const {
        std::size_t best = n_total_;
        double best_cost = -opts_.cost_tolerance;
        for (std::size_t c = 0; c < n_total_; ++c) {
            if (!column_eligible(c)) continue;
            const double rc = cell(m_, c);
            if (rc < best_cost) {
                best_cost = rc;
                best = c;
            }
        }
        return best;
    }

    /// Entering column under Bland's rule; n_total_ if optimal.
    [[nodiscard]] std::size_t price_bland() const {
        for (std::size_t c = 0; c < n_total_; ++c) {
            if (!column_eligible(c)) continue;
            if (cell(m_, c) < -opts_.cost_tolerance) return c;
        }
        return n_total_;
    }

    /// Lexicographic comparison of two candidate leaving rows: compare
    /// row/pivot element-wise. The tableau rows carry B^-1 through the
    /// artificial identity block, so this is the classic lexicographic
    /// ratio test — it provably terminates even on the massively
    /// degenerate phase-1 problems our balance equations produce (every
    /// rhs is zero except the normalization row).
    [[nodiscard]] bool lex_less(std::size_t r1, double a1, std::size_t r2,
                                double a2) const {
        for (std::size_t c = 0; c <= n_total_; ++c) {
            const double v1 = cell(r1, c) / a1;
            const double v2 = cell(r2, c) / a2;
            if (std::fabs(v1 - v2) > 1e-11) return v1 < v2;
        }
        return false;
    }

    /// Ratio test; returns m_ when the column is unbounded below.
    [[nodiscard]] std::size_t choose_leaving(std::size_t col) const {
        std::size_t best_row = m_;
        double best_ratio = std::numeric_limits<double>::infinity();
        for (std::size_t r = 0; r < m_; ++r) {
            const double a = cell(r, col);
            if (a <= opts_.pivot_tolerance) continue;
            // Round-off can push a basic value a hair below zero; a
            // negative ratio would pivot the basis into infeasibility and
            // the iteration can whipsaw forever. Clamp at zero.
            const double ratio = std::max(0.0, rhs(r)) / a;
            if (ratio < best_ratio - 1e-9) {
                best_ratio = ratio;
                best_row = r;
            } else if (ratio < best_ratio + 1e-9 && best_row != m_) {
                if (lex_less(r, a, best_row, cell(best_row, col)))
                    best_row = r;
            }
        }
        return best_row;
    }

    void pivot(std::size_t row, std::size_t col) {
        double* entering = &tab_[col * col_stride_];
        const double p = entering[row];
        SOCBUF_ASSERT(std::fabs(p) > 0.0);
        const double inv = 1.0 / p;
        // Snapshot the entering column first: its entries are the per-row
        // elimination factors, and the update below overwrites them.
        factor_buf_.assign(entering, entering + m_ + 1);
        for (std::size_t c = 0; c <= n_total_; ++c) {
            if (c == col) continue;
            double* colp = &tab_[c * col_stride_];
            const double pr = colp[row];
            // Zero pivot-row entry: the scaled pivot value is zero, so
            // every elimination in this column subtracts f * 0 — skip it
            // wholesale. This is where tableau sparsity pays off.
            if (pr == 0.0) continue;
            const double sp = pr * inv;  // scale once, like the dense path
            colp[row] = sp;
            for (std::size_t r = 0; r <= m_; ++r) {
                if (r == row) continue;
                const double f = factor_buf_[r];
                if (f == 0.0) continue;
                colp[r] -= f * sp;
            }
        }
        // The entering column becomes the unit vector e_row, exactly as
        // the row-major update left it.
        for (std::size_t r = 0; r <= m_; ++r) entering[r] = 0.0;
        entering[row] = 1.0;
        basis_[row] = col;
        ++iterations_;
    }

    SolveStatus iterate(bool phase1) {
        const std::size_t max_iter =
            opts_.max_iterations > 0
                ? opts_.max_iterations
                : 200 * (m_ + n_total_) + 5000;
        bool bland = false;
        std::size_t degenerate_streak = 0;
        double last_obj = current_objective();
        while (iterations_ < max_iter) {
            const std::size_t col = bland ? price_bland() : price_dantzig();
            if (col == n_total_) return SolveStatus::kOptimal;
            const std::size_t row = choose_leaving(col);
            if (row == m_) {
                // Phase 1 objective is bounded below by 0, so an unbounded
                // ray here means numerical trouble, not a real ray.
                if (phase1)
                    throw util::NumericalError(
                        "simplex: unbounded phase-1 subproblem");
                return SolveStatus::kUnbounded;
            }
            pivot(row, col);
            const double obj = current_objective();
            if (iterations_ % 10000 == 0)
                util::log(util::LogLevel::kDebug, "simplex: iter ",
                          iterations_, " phase1=", phase1, " bland=", bland,
                          " obj=", obj, " col=", col, " row=", row);
            if (obj > last_obj - 1e-12) {
                if (++degenerate_streak >= opts_.stall_before_bland &&
                    !bland) {
                    bland = true;
                    util::log(util::LogLevel::kDebug,
                              "simplex: switching to Bland's rule after ",
                              degenerate_streak, " degenerate pivots");
                }
            } else {
                degenerate_streak = 0;
            }
            last_obj = obj;
        }
        return SolveStatus::kIterationLimit;
    }

public:
    [[nodiscard]] double signed_objective() const {
        return sense_sign_ * current_objective();
    }

private:
    SimplexOptions opts_;
    std::vector<double> tab_;
    std::vector<double> factor_buf_;  // scratch for pivot()
    std::vector<std::size_t> basis_;
    std::vector<bool> is_artificial_;
    std::size_t n_struct_ = 0;
    std::size_t slack_begin_ = 0;
    std::size_t art_begin_ = 0;
    std::size_t n_total_ = 0;
    std::size_t col_stride_ = 0;  // m_ + 1 (rows per stored column)
    std::size_t m_ = 0;
    std::size_t iterations_ = 0;
    bool needs_phase1_ = false;
    bool phase1_ = false;
    double sense_sign_ = 1.0;
};

}  // namespace

const char* to_string(SolveStatus status) {
    switch (status) {
        case SolveStatus::kOptimal: return "optimal";
        case SolveStatus::kInfeasible: return "infeasible";
        case SolveStatus::kUnbounded: return "unbounded";
        case SolveStatus::kIterationLimit: return "iteration-limit";
    }
    return "?";
}

Solution solve(const LinearProgram& lp, const SimplexOptions& options) {
    SOCBUF_REQUIRE_MSG(lp.variable_count() > 0,
                       "cannot solve an LP with no variables");
    Tableau tableau(lp, options);
    Solution sol;
    sol.status = tableau.run_two_phase(lp);
    sol.iterations = tableau.iterations();
    if (sol.status == SolveStatus::kOptimal) {
        sol.x = tableau.structural_solution();
        sol.objective = lp.objective_value(sol.x);
        sol.max_violation = lp.max_violation(sol.x);
        if (sol.max_violation > 1e-5)
            util::log(util::LogLevel::kWarn,
                      "simplex: returned point violates constraints by ",
                      sol.max_violation);
    }
    return sol;
}

}  // namespace socbuf::lp
