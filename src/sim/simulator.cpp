#include "sim/simulator.hpp"

#include "des/scheduler.hpp"
#include "des/stats.hpp"
#include "exec/executor.hpp"
#include "exec/parallel.hpp"
#include "traffic/arrivals.hpp"
#include "traffic/routing.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

#include <algorithm>
#include <deque>
#include <memory>

namespace socbuf::sim {

namespace {

struct Packet {
    std::size_t flow = 0;
    std::size_t hop = 0;          // index into the flow's route
    double enqueue_time = 0.0;    // when it entered the current buffer
    bool counted = false;         // generated after warmup
};

struct SiteRuntime {
    std::deque<Packet> queue;
    long capacity = 0;
    des::TimeWeighted occupancy;
    des::Tally wait;  // waiting time of packets that reached service
    std::uint64_t arrivals = 0;
    std::uint64_t losses = 0;
    std::uint64_t served = 0;
};

struct BusRuntime {
    bool busy = false;
    arch::SiteId serving_site = 0;
    double busy_since = 0.0;
    double busy_in_window = 0.0;  // accumulated within [warmup, horizon]
    std::size_t rr_cursor = 0;    // round-robin position
    std::vector<arch::SiteId> sites;
};

class ArchitectureSimulatorImpl {
public:
    ArchitectureSimulatorImpl(const arch::TestSystem& system,
                              const std::vector<long>& capacities,
                              const SimConfig& config)
        : system_(system), config_(config), root_engine_(config.seed) {
        system.architecture.validate();
        sites_ = arch::enumerate_buffer_sites(system.architecture);
        SOCBUF_REQUIRE_MSG(capacities.size() == sites_.size(),
                           "capacity vector must cover every buffer site");
        SOCBUF_REQUIRE_MSG(config.horizon > config.warmup,
                           "horizon must exceed warmup");
        SOCBUF_REQUIRE_MSG(!config.timeout_enabled ||
                               config.timeout_threshold > 0.0 ||
                               !config.site_timeout_thresholds.empty(),
                           "timeout policy needs a positive threshold");
        SOCBUF_REQUIRE_MSG(config.site_timeout_thresholds.empty() ||
                               config.site_timeout_thresholds.size() ==
                                   sites_.size(),
                           "per-site thresholds must cover every site");
        routes_ = traffic::compute_routes(system);

        site_rt_.resize(sites_.size());
        for (std::size_t s = 0; s < sites_.size(); ++s) {
            SOCBUF_REQUIRE_MSG(capacities[s] >= 0,
                               "buffer capacities must be non-negative");
            site_rt_[s].capacity = capacities[s];
            site_rt_[s].occupancy.update(0.0, 0.0);
        }
        bus_rt_.resize(system.architecture.bus_count());
        for (arch::BusId b = 0; b < bus_rt_.size(); ++b)
            bus_rt_[b].sites = arch::sites_on_bus(sites_, b);

        if (config.arbiter == ArbiterKind::kWeightedRandom &&
            !config.site_weights.empty())
            SOCBUF_REQUIRE_MSG(config.site_weights.size() == sites_.size(),
                               "site weight vector must cover every site");

        for (std::size_t f = 0; f < system.flows.size(); ++f) {
            arrivals_.push_back(
                traffic::make_arrival_process(system.flows[f]));
            flow_engines_.push_back(root_engine_.spawn(f));
        }
        for (arch::BusId b = 0; b < bus_rt_.size(); ++b) {
            bus_engines_.push_back(root_engine_.spawn(100000u + b));
            arbiter_engines_.push_back(root_engine_.spawn(200000u + b));
        }
    }

    SimResult run() {
        for (std::size_t f = 0; f < system_.flows.size(); ++f)
            schedule_next_arrival(f);
        sched_.run_until(config_.horizon);
        return collect();
    }

private:
    void schedule_next_arrival(std::size_t flow) {
        const double gap =
            arrivals_[flow]->next_interarrival(flow_engines_[flow]);
        sched_.schedule_after(gap, [this, flow] {
            on_arrival(flow);
            schedule_next_arrival(flow);
        });
    }

    void on_arrival(std::size_t flow) {
        const double now = sched_.now();
        Packet p;
        p.flow = flow;
        p.hop = 0;
        p.counted = now > config_.warmup;
        if (p.counted) ++offered_[system_.flows[flow].source];
        enqueue(p, routes_[flow].sites[0]);
    }

    /// Place `packet` into `site`'s buffer or count it as a loss.
    void enqueue(Packet packet, arch::SiteId site) {
        const double now = sched_.now();
        SiteRuntime& rt = site_rt_[site];
        if (now > config_.warmup) ++rt.arrivals;
        if (static_cast<long>(rt.queue.size()) >= rt.capacity) {
            drop(packet, site);
            return;
        }
        packet.enqueue_time = now;
        rt.queue.push_back(packet);
        rt.occupancy.update(now, static_cast<double>(rt.queue.size()));
        BusRuntime& bus = bus_rt_[sites_[site].bus];
        if (!bus.busy) begin_service(sites_[site].bus);
    }

    void drop(const Packet& packet, arch::SiteId site) {
        if (sched_.now() > config_.warmup) ++site_rt_[site].losses;
        if (packet.counted) {
            ++lost_[system_.flows[packet.flow].source];
            ++flow_lost_[packet.flow];
        }
    }

    /// Timeout policy: shed expired packets from the heads of every queue
    /// on the bus (FIFO order means the head is always the oldest).
    [[nodiscard]] double threshold_of(arch::SiteId site) const {
        if (!config_.site_timeout_thresholds.empty() &&
            config_.site_timeout_thresholds[site] > 0.0)
            return config_.site_timeout_thresholds[site];
        return config_.timeout_threshold;
    }

    void purge_expired(BusRuntime& bus) {
        const double now = sched_.now();
        for (const auto site : bus.sites) {
            SiteRuntime& rt = site_rt_[site];
            const double threshold = threshold_of(site);
            bool changed = false;
            while (!rt.queue.empty() &&
                   now - rt.queue.front().enqueue_time > threshold) {
                drop(rt.queue.front(), site);
                rt.queue.pop_front();
                changed = true;
            }
            if (changed)
                rt.occupancy.update(now,
                                    static_cast<double>(rt.queue.size()));
        }
    }

    /// Arbitration: pick the next site this bus serves; sites_.size() when
    /// every queue is empty.
    arch::SiteId arbitrate(arch::BusId bus_id) {
        BusRuntime& bus = bus_rt_[bus_id];
        std::vector<arch::SiteId> ready;
        for (const auto site : bus.sites)
            if (!site_rt_[site].queue.empty()) ready.push_back(site);
        if (ready.empty()) return sites_.size();
        switch (config_.arbiter) {
            case ArbiterKind::kFixedPriority:
                return ready.front();
            case ArbiterKind::kRoundRobin: {
                // Next non-empty site at or after the cursor.
                for (std::size_t k = 0; k < bus.sites.size(); ++k) {
                    const std::size_t idx =
                        (bus.rr_cursor + k) % bus.sites.size();
                    const auto site = bus.sites[idx];
                    if (!site_rt_[site].queue.empty()) {
                        bus.rr_cursor = (idx + 1) % bus.sites.size();
                        return site;
                    }
                }
                return ready.front();  // unreachable
            }
            case ArbiterKind::kLongestQueue: {
                arch::SiteId best = ready.front();
                for (const auto site : ready)
                    if (site_rt_[site].queue.size() >
                        site_rt_[best].queue.size())
                        best = site;
                return best;
            }
            case ArbiterKind::kWeightedRandom: {
                std::vector<double> w(ready.size(), 1.0);
                if (!config_.site_weights.empty()) {
                    for (std::size_t i = 0; i < ready.size(); ++i)
                        w[i] = std::max(config_.site_weights[ready[i]],
                                        1e-6);
                }
                return ready[arbiter_engines_[bus_id].discrete(w)];
            }
        }
        return ready.front();
    }

    void begin_service(arch::BusId bus_id) {
        BusRuntime& bus = bus_rt_[bus_id];
        SOCBUF_ASSERT(!bus.busy);
        if (config_.timeout_enabled) purge_expired(bus);
        const arch::SiteId site = arbitrate(bus_id);
        if (site == sites_.size()) return;  // nothing to serve
        bus.busy = true;
        bus.serving_site = site;
        bus.busy_since = sched_.now();
        SiteRuntime& rt = site_rt_[site];
        rt.wait.observe(sched_.now() - rt.queue.front().enqueue_time);
        if (sched_.now() > config_.warmup) ++rt.served;
        const double service =
            bus_engines_[bus_id].exponential(
                system_.architecture.bus(bus_id).service_rate);
        sched_.schedule_after(service,
                              [this, bus_id] { complete_service(bus_id); });
    }

    void complete_service(arch::BusId bus_id) {
        const double now = sched_.now();
        BusRuntime& bus = bus_rt_[bus_id];
        SOCBUF_ASSERT(bus.busy);
        bus.busy = false;
        const double lo = std::max(bus.busy_since, config_.warmup);
        if (now > lo) bus.busy_in_window += now - lo;

        SiteRuntime& rt = site_rt_[bus.serving_site];
        SOCBUF_ASSERT(!rt.queue.empty());
        Packet packet = rt.queue.front();
        rt.queue.pop_front();
        rt.occupancy.update(now, static_cast<double>(rt.queue.size()));

        const auto& route = routes_[packet.flow];
        if (packet.hop + 1 >= route.sites.size()) {
            if (packet.counted)
                ++delivered_[system_.flows[packet.flow].source];
        } else {
            ++packet.hop;
            enqueue(packet, route.sites[packet.hop]);
        }
        begin_service(bus_id);
    }

    SimResult collect() {
        SimResult out;
        out.measured_time = config_.horizon - config_.warmup;
        out.offered = offered_;
        out.delivered = delivered_;
        out.lost = lost_;
        out.flow_lost = flow_lost_;
        out.site_arrivals.resize(sites_.size());
        out.site_losses.resize(sites_.size());
        out.site_mean_wait.resize(sites_.size());
        out.site_mean_occupancy.resize(sites_.size());
        out.site_observed_rate.resize(sites_.size());
        out.site_served.resize(sites_.size());
        for (std::size_t s = 0; s < sites_.size(); ++s) {
            out.site_arrivals[s] = site_rt_[s].arrivals;
            out.site_losses[s] = site_rt_[s].losses;
            out.site_mean_wait[s] = site_rt_[s].wait.mean();
            out.site_mean_occupancy[s] =
                site_rt_[s].occupancy.average(config_.horizon);
            out.site_observed_rate[s] =
                static_cast<double>(site_rt_[s].arrivals) /
                out.measured_time;
            out.site_served[s] = site_rt_[s].served;
        }
        out.bus_utilization.resize(bus_rt_.size());
        for (arch::BusId b = 0; b < bus_rt_.size(); ++b) {
            double busy = bus_rt_[b].busy_in_window;
            if (bus_rt_[b].busy) {
                const double lo =
                    std::max(bus_rt_[b].busy_since, config_.warmup);
                if (config_.horizon > lo) busy += config_.horizon - lo;
            }
            out.bus_utilization[b] = busy / out.measured_time;
        }
        return out;
    }

    const arch::TestSystem& system_;
    SimConfig config_;
    rng::RandomEngine root_engine_;
    std::vector<arch::BufferSite> sites_;
    std::vector<traffic::FlowRoute> routes_;
    std::vector<std::unique_ptr<traffic::ArrivalProcess>> arrivals_;
    std::vector<rng::RandomEngine> flow_engines_;
    std::vector<rng::RandomEngine> bus_engines_;
    std::vector<rng::RandomEngine> arbiter_engines_;
    std::vector<SiteRuntime> site_rt_;
    std::vector<BusRuntime> bus_rt_;
    des::Scheduler sched_;

    std::vector<std::uint64_t> offered_ =
        std::vector<std::uint64_t>(system_.architecture.processor_count(), 0);
    std::vector<std::uint64_t> delivered_ =
        std::vector<std::uint64_t>(system_.architecture.processor_count(), 0);
    std::vector<std::uint64_t> lost_ =
        std::vector<std::uint64_t>(system_.architecture.processor_count(), 0);
    std::vector<std::uint64_t> flow_lost_ =
        std::vector<std::uint64_t>(system_.flows.size(), 0);
};

}  // namespace

SimResult simulate(const arch::TestSystem& system,
                   const std::vector<long>& capacities,
                   const SimConfig& config) {
    ArchitectureSimulatorImpl impl(system, capacities, config);
    return impl.run();
}

double calibrate_timeout_threshold(const arch::TestSystem& system,
                                   const std::vector<long>& capacities,
                                   const SimConfig& config) {
    SimConfig calib = config;
    calib.timeout_enabled = false;
    const SimResult r = simulate(system, capacities, calib);
    return r.overall_mean_wait();
}

std::vector<double> calibrate_site_timeout_thresholds(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config, double scale) {
    SOCBUF_REQUIRE_MSG(scale > 0.0, "threshold scale must be positive");
    SimConfig calib = config;
    calib.timeout_enabled = false;
    const SimResult r = simulate(system, capacities, calib);
    const double global = r.overall_mean_wait();
    std::vector<double> thresholds(r.site_mean_wait.size(), 0.0);
    for (std::size_t s = 0; s < thresholds.size(); ++s) {
        const double base =
            r.site_served[s] > 0 ? r.site_mean_wait[s] : global;
        thresholds[s] = std::max(base, 1e-9) * scale;
    }
    return thresholds;
}

TimeoutCalibration calibrate_timeout(const arch::TestSystem& system,
                                     const std::vector<long>& capacities,
                                     const SimConfig& config, double scale,
                                     exec::Executor& executor,
                                     std::size_t replications) {
    SOCBUF_REQUIRE_MSG(scale > 0.0, "threshold scale must be positive");
    SOCBUF_REQUIRE_MSG(replications > 0,
                       "need at least one calibration replication");
    // The calibration sims are independent (each owns its RNG substream:
    // seed = base seed + replication index), so they fan across the
    // executor's workers; the folds below run in replication order, which
    // keeps the thresholds bit-identical for any worker count.
    const std::vector<SimResult> results =
        executor.map(replications, [&](std::size_t r) {
            SimConfig calib = config;
            calib.timeout_enabled = false;
            calib.seed = config.seed + r;
            return simulate(system, capacities, calib);
        });

    TimeoutCalibration out;
    const double n = static_cast<double>(replications);
    double global_sum = 0.0;
    for (const SimResult& r : results) global_sum += r.overall_mean_wait();
    out.global_threshold = scale * (global_sum / n);

    // Per site: apply the no-traffic fallback within each replication
    // (one replication must reproduce the serial calibration bit for
    // bit), then average the per-replication bases.
    out.site_thresholds.assign(results[0].site_mean_wait.size(), 0.0);
    for (const SimResult& r : results) {
        const double global = r.overall_mean_wait();
        for (std::size_t s = 0; s < out.site_thresholds.size(); ++s)
            out.site_thresholds[s] +=
                r.site_served[s] > 0 ? r.site_mean_wait[s] : global;
    }
    for (double& threshold : out.site_thresholds)
        threshold = std::max(threshold / n, 1e-9) * scale;
    return out;
}

std::vector<double> calibrate_site_timeout_thresholds(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config, double scale, exec::Executor& executor,
    std::size_t replications) {
    return calibrate_timeout(system, capacities, config, scale, executor,
                             replications)
        .site_thresholds;
}

ReplicatedLosses replicate_losses(const arch::TestSystem& system,
                                  const std::vector<long>& capacities,
                                  const SimConfig& config, std::size_t runs,
                                  std::size_t threads) {
    SOCBUF_REQUIRE_MSG(runs > 0, "need at least one replication");
    const std::size_t n = system.architecture.processor_count();
    // Each replication owns its RNG substream, so the runs are independent
    // and can execute on any number of workers; the ordered fold below
    // keeps the aggregate bit-identical for every thread count.
    const std::vector<SimResult> results =
        exec::parallel_map(threads, runs, [&](std::size_t r) {
            SimConfig c = config;
            c.seed = config.seed + r;
            return simulate(system, capacities, c);
        });
    std::vector<std::vector<double>> samples(n);
    ReplicatedLosses out;
    for (const SimResult& res : results) {
        for (std::size_t p = 0; p < n; ++p)
            samples[p].push_back(static_cast<double>(res.lost[p]));
        out.mean_total_lost += static_cast<double>(res.total_lost());
        out.mean_total_offered += static_cast<double>(res.total_offered());
    }
    out.mean_total_lost /= static_cast<double>(runs);
    out.mean_total_offered /= static_cast<double>(runs);
    out.mean_lost_per_processor.resize(n);
    out.stddev_lost_per_processor.resize(n);
    for (std::size_t p = 0; p < n; ++p) {
        out.mean_lost_per_processor[p] = util::mean(samples[p]);
        out.stddev_lost_per_processor[p] = util::sample_stddev(samples[p]);
    }
    return out;
}

}  // namespace socbuf::sim
