// Simulation configuration and results for the architecture simulator.
#pragma once

#include <cstdint>
#include <vector>

namespace socbuf::sim {

/// Bus arbitration disciplines available at simulation time.
enum class ArbiterKind {
    kFixedPriority,   // lowest site id wins
    kRoundRobin,      // rotate over the bus's sites
    kLongestQueue,    // deepest backlog wins
    kWeightedRandom,  // sample non-empty sites by configured weights
};

struct SimConfig {
    double horizon = 4000.0;  // simulated time units
    double warmup = 400.0;    // statistics discarded before this time
    std::uint64_t seed = 1;
    ArbiterKind arbiter = ArbiterKind::kRoundRobin;
    /// Per-site weights for kWeightedRandom (empty = all ones). The sizing
    /// engine fills these from the CTMDP policy's service shares.
    std::vector<double> site_weights;
    /// Timeout drop policy (the paper's third bar): packets whose waiting
    /// time exceeds the threshold are dropped at arbitration instants.
    bool timeout_enabled = false;
    double timeout_threshold = 0.0;
    /// Optional per-site thresholds ("the average time spent by a request
    /// in a buffer" read per buffer); overrides timeout_threshold where
    /// positive. Must be empty or cover every site.
    std::vector<double> site_timeout_thresholds;
};

inline bool operator==(const SimConfig& a, const SimConfig& b) {
    return a.horizon == b.horizon && a.warmup == b.warmup &&
           a.seed == b.seed && a.arbiter == b.arbiter &&
           a.site_weights == b.site_weights &&
           a.timeout_enabled == b.timeout_enabled &&
           a.timeout_threshold == b.timeout_threshold &&
           a.site_timeout_thresholds == b.site_timeout_thresholds;
}
inline bool operator!=(const SimConfig& a, const SimConfig& b) {
    return !(a == b);
}

/// Everything measured in one run. Loss is attributed to the packet's
/// *originating* processor wherever on its route it is dropped, matching
/// the paper's per-processor loss bars.
struct SimResult {
    double measured_time = 0.0;  // horizon - warmup

    // Per processor (origin).
    std::vector<std::uint64_t> offered;
    std::vector<std::uint64_t> delivered;
    std::vector<std::uint64_t> lost;

    // Per flow id.
    std::vector<std::uint64_t> flow_lost;

    // Per buffer site.
    std::vector<std::uint64_t> site_arrivals;
    std::vector<std::uint64_t> site_losses;
    std::vector<double> site_mean_wait;       // enqueue -> service start
    std::vector<double> site_mean_occupancy;  // time-weighted
    std::vector<double> site_observed_rate;   // arrivals / measured_time

    // Per bus.
    std::vector<double> bus_utilization;

    [[nodiscard]] std::uint64_t total_offered() const;
    [[nodiscard]] std::uint64_t total_lost() const;
    [[nodiscard]] std::uint64_t total_delivered() const;

    /// Mean waiting time over all served packets (used to calibrate the
    /// timeout policy's threshold, per the paper).
    [[nodiscard]] double overall_mean_wait() const;

    /// Sum over flows of weight * lost packets; weights supplied by caller.
    [[nodiscard]] double weighted_loss(
        const std::vector<double>& flow_weights) const;

    // Served packet counts per site (post-warmup).
    std::vector<std::uint64_t> site_served;
};

}  // namespace socbuf::sim
