#include "sim/config.hpp"

#include "util/contracts.hpp"

namespace socbuf::sim {

namespace {
std::uint64_t sum(const std::vector<std::uint64_t>& v) {
    std::uint64_t total = 0;
    for (auto x : v) total += x;
    return total;
}
}  // namespace

std::uint64_t SimResult::total_offered() const { return sum(offered); }
std::uint64_t SimResult::total_lost() const { return sum(lost); }
std::uint64_t SimResult::total_delivered() const { return sum(delivered); }

double SimResult::overall_mean_wait() const {
    double weighted = 0.0;
    std::uint64_t count = 0;
    for (std::size_t s = 0; s < site_mean_wait.size(); ++s) {
        weighted += site_mean_wait[s] * static_cast<double>(site_served[s]);
        count += site_served[s];
    }
    return count > 0 ? weighted / static_cast<double>(count) : 0.0;
}

double SimResult::weighted_loss(
    const std::vector<double>& flow_weights) const {
    SOCBUF_REQUIRE_MSG(flow_weights.size() == flow_lost.size(),
                       "flow weight vector size mismatch");
    double total = 0.0;
    for (std::size_t f = 0; f < flow_lost.size(); ++f)
        total += flow_weights[f] * static_cast<double>(flow_lost[f]);
    return total;
}

}  // namespace socbuf::sim
