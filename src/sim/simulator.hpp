// Event-driven simulator of an SoC communication architecture with finite
// buffers. Packets are generated per flow, queue at buffer sites, win bus
// arbitration, hop across bridges, and are counted as lost (attributed to
// their origin processor) whenever they meet a full buffer or trip the
// timeout policy.
#pragma once

#include "arch/presets.hpp"
#include "arch/sites.hpp"
#include "sim/config.hpp"

#include <vector>

namespace socbuf::sim {

/// Simulate `system` with per-site buffer `capacities` (indexed like
/// arch::enumerate_buffer_sites). Returns per-processor / per-site / per-bus
/// statistics. Deterministic for a fixed (system, capacities, config).
[[nodiscard]] SimResult simulate(const arch::TestSystem& system,
                                 const std::vector<long>& capacities,
                                 const SimConfig& config);

/// Run once without the timeout policy and return the mean buffer waiting
/// time — the threshold the paper's timeout policy uses ("the average time
/// spent by a request in a buffer").
[[nodiscard]] double calibrate_timeout_threshold(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config);

/// Per-buffer calibration of the same quantity: mean waiting time at each
/// site, scaled by `scale`; sites with no served packets fall back to the
/// scaled global mean. Feed the result to
/// SimConfig::site_timeout_thresholds.
[[nodiscard]] std::vector<double> calibrate_site_timeout_thresholds(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config, double scale);

/// Average `runs` independent replications (seeds seed, seed+1, ...) and
/// return per-processor mean loss counts; used by the experiment drivers
/// for smoother Figure 3 / Table 1 rows. Replications are independent —
/// each owns its RNG substream (seed = base seed + replication index) —
/// so they run on `threads` workers (0 = hardware concurrency) and are
/// folded in replication order: the result is bit-identical for any
/// thread count, including 1.
struct ReplicatedLosses {
    std::vector<double> mean_lost_per_processor;
    std::vector<double> stddev_lost_per_processor;
    double mean_total_lost = 0.0;
    double mean_total_offered = 0.0;
};
[[nodiscard]] ReplicatedLosses replicate_losses(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config, std::size_t runs, std::size_t threads = 1);

}  // namespace socbuf::sim
