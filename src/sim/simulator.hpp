// Event-driven simulator of an SoC communication architecture with finite
// buffers. Packets are generated per flow, queue at buffer sites, win bus
// arbitration, hop across bridges, and are counted as lost (attributed to
// their origin processor) whenever they meet a full buffer or trip the
// timeout policy.
#pragma once

#include "arch/presets.hpp"
#include "arch/sites.hpp"
#include "sim/config.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::exec {
class Executor;
}

namespace socbuf::sim {

/// Simulate `system` with per-site buffer `capacities` (indexed like
/// arch::enumerate_buffer_sites). Returns per-processor / per-site / per-bus
/// statistics. Deterministic for a fixed (system, capacities, config).
[[nodiscard]] SimResult simulate(const arch::TestSystem& system,
                                 const std::vector<long>& capacities,
                                 const SimConfig& config);

/// Run once without the timeout policy and return the mean buffer waiting
/// time — the threshold the paper's timeout policy uses ("the average time
/// spent by a request in a buffer").
[[nodiscard]] double calibrate_timeout_threshold(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config);

/// Per-buffer calibration of the same quantity: mean waiting time at each
/// site, scaled by `scale`; sites with no served packets fall back to the
/// scaled global mean. Feed the result to
/// SimConfig::site_timeout_thresholds.
[[nodiscard]] std::vector<double> calibrate_site_timeout_thresholds(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config, double scale);

/// Both timeout-policy thresholds the paper's calibration produces, from
/// one set of no-timeout simulations: the scaled global mean buffer wait
/// and the scaled per-site means (same fallback rule as
/// calibrate_site_timeout_thresholds).
struct TimeoutCalibration {
    double global_threshold = 0.0;
    std::vector<double> site_thresholds;
};

/// Calibrate the timeout policy with `replications` independent
/// no-timeout simulations (seeds config.seed, config.seed + 1, ...)
/// fanned across `executor` and folded in replication order — safe from
/// inside a job already running on the executor (nested fan-outs make
/// progress on the calling worker; see exec/executor.hpp). Per-site
/// means apply the global fallback per replication, then average, so one
/// replication reproduces the serial calibrate_timeout_threshold /
/// calibrate_site_timeout_thresholds pair bit for bit — from a single
/// simulation instead of two — and any replication count is
/// bit-identical for any worker count.
[[nodiscard]] TimeoutCalibration calibrate_timeout(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config, double scale, exec::Executor& executor,
    std::size_t replications = 1);

/// The per-site half of calibrate_timeout, fanned the same way: with one
/// replication the result equals the serial overload bit for bit.
[[nodiscard]] std::vector<double> calibrate_site_timeout_thresholds(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config, double scale, exec::Executor& executor,
    std::size_t replications);

/// Average `runs` independent replications (seeds seed, seed+1, ...) and
/// return per-processor mean loss counts; used by the experiment drivers
/// for smoother Figure 3 / Table 1 rows. Replications are independent —
/// each owns its RNG substream (seed = base seed + replication index) —
/// so they run on `threads` workers (0 = hardware concurrency) and are
/// folded in replication order: the result is bit-identical for any
/// thread count, including 1.
struct ReplicatedLosses {
    std::vector<double> mean_lost_per_processor;
    std::vector<double> stddev_lost_per_processor;
    double mean_total_lost = 0.0;
    double mean_total_offered = 0.0;
};
[[nodiscard]] ReplicatedLosses replicate_losses(
    const arch::TestSystem& system, const std::vector<long>& capacities,
    const SimConfig& config, std::size_t runs, std::size_t threads = 1);

}  // namespace socbuf::sim
