// Buffer-insertion placement search: which candidate bridge sites get a
// dedicated inserted buffer, and which are left as single-slot
// passthroughs, at one shared total budget.
//
// The paper treats insertion as a given (every bridge carries a buffer);
// this layer searches over that choice. A *plan* is a subset of the
// candidate sites, encoded as a bit mask in candidate index order (bit i
// set = candidate i selected). Plans are scored by a caller-supplied
// evaluator — in socbuf that is a full BufferSizingEngine run with the
// plan's split::Placement, so a plan's score is the best weighted loss
// the sizing loop reaches at the equal total budget (deselected sites
// keep one passthrough slot off the top; see core::pinned_site_budget).
//
// Two search modes, chosen by candidate count:
//  - exhaustive (n <= exhaustive_limit): every one of the 2^n masks is
//    evaluated in a single executor fan-out.
//  - pruned (van Ginneken-style staged DP): candidates are decided one
//    at a time in index order; each partial plan is scored by its
//    *canonical completion* (undecided candidates all selected), and at
//    every stage the child plans are pruned to the Pareto frontier on
//    (plan cost, completion loss) — a child whose completion costs at
//    least as much and loses at least as much as another's is dominated
//    and dropped. Completions are memoized by mask, so the selected
//    child of every plan is a free cache hit and only deselections cost
//    an evaluation.
//
// Determinism contract: plans expand and fold in candidate-index/mask
// order, unevaluated masks of a stage fan through ONE executor.map call
// (index-addressed), and every tie breaks on (loss, cost, mask) — so the
// chosen placement is bit-identical for any worker count. The pruning is
// a heuristic (completion scores are estimates of subtree quality, not
// bounds): the best plan is therefore taken over every *evaluated* plan,
// which always includes the all-selected preset, so the search can never
// report a plan worse than the preset it started from.
#pragma once

#include "arch/sites.hpp"
#include "exec/executor.hpp"
#include "split/splitter.hpp"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace socbuf::insertion {

/// Score one placement; smaller is better. Must be safe to call
/// concurrently from executor workers and deterministic in the placement
/// alone (the sizing engine satisfies both).
using PlanEvaluator = std::function<double(const split::Placement&)>;

/// The widest candidate set a search accepts: masks are 64-bit and the
/// all-selected sentinel needs a spare bit. Real systems have a handful
/// of bridges; hitting this limit is a caller error.
inline constexpr std::size_t kMaxCandidates = 63;

struct SearchOptions {
    /// Candidate counts up to this run the exhaustive 2^n sweep; larger
    /// sets take the pruned staged search.
    std::size_t exhaustive_limit = 4;
};

/// One fully-evaluated plan (a completion the search scored).
struct EvaluatedPlan {
    std::uint64_t mask = 0;  ///< bit i = candidate i selected
    split::Placement placement;
    double cost = 0.0;  ///< summed unit_cost of the selected candidates
    double loss = 0.0;  ///< evaluator score
};

struct SearchResult {
    split::Placement best;  ///< empty (all-selected) when the preset wins
    std::uint64_t best_mask = 0;
    double best_loss = 0.0;
    double best_cost = 0.0;
    /// Loss of the all-selected plan — the fixed preset placement every
    /// pre-search scenario uses. best_loss <= preset_loss always.
    double preset_loss = 0.0;
    std::size_t plans_evaluated = 0;  ///< unique evaluator calls
    std::size_t plans_pruned = 0;     ///< children dropped by dominance
    bool exhaustive = false;
    /// Every evaluated plan, mask-ascending (deterministic).
    std::vector<EvaluatedPlan> evaluated;
};

/// Search placements over `candidates` (strictly increasing SiteIds;
/// candidate_costs aligned by index). Plan evaluations fan through
/// `executor` at Priority::kSizing. Deterministic for any worker count.
[[nodiscard]] SearchResult search_placements(
    const std::vector<arch::SiteId>& candidates,
    const std::vector<double>& candidate_costs, const PlanEvaluator& evaluate,
    exec::Executor& executor, const SearchOptions& options = {});

}  // namespace socbuf::insertion
