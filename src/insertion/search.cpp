#include "insertion/search.hpp"

#include "util/contracts.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace socbuf::insertion {

namespace {

/// One partial plan of the staged search: the decided prefix's bits plus
/// the canonical completion (undecided candidates all selected).
struct Node {
    std::uint64_t completion = 0;  ///< canonical-completion mask
    double cost = 0.0;             ///< cost of the completion
    double loss = 0.0;             ///< memoized completion score
    std::size_t order = 0;         ///< creation index (final tie-break)
};

double mask_cost(std::uint64_t mask, const std::vector<double>& costs) {
    double cost = 0.0;
    for (std::size_t i = 0; i < costs.size(); ++i)
        if (((mask >> i) & 1U) != 0U) cost += costs[i];
    return cost;
}

split::Placement mask_placement(std::uint64_t mask, std::uint64_t full,
                                const std::vector<arch::SiteId>& candidates) {
    split::Placement placement;  // empty = all selected
    if (mask == full || candidates.empty()) return placement;
    placement.selected.assign(candidates.back() + 1, true);
    for (std::size_t i = 0; i < candidates.size(); ++i)
        if (((mask >> i) & 1U) == 0U) placement.selected[candidates[i]] = false;
    return placement;
}

}  // namespace

SearchResult search_placements(const std::vector<arch::SiteId>& candidates,
                               const std::vector<double>& candidate_costs,
                               const PlanEvaluator& evaluate,
                               exec::Executor& executor,
                               const SearchOptions& options) {
    SOCBUF_REQUIRE_MSG(evaluate != nullptr, "need a plan evaluator");
    SOCBUF_REQUIRE_MSG(candidate_costs.size() == candidates.size(),
                       "candidate costs must align with candidates");
    SOCBUF_REQUIRE_MSG(candidates.size() <= kMaxCandidates,
                       "too many insertion candidates");
    SOCBUF_REQUIRE_MSG(
        std::is_sorted(candidates.begin(), candidates.end()) &&
            std::adjacent_find(candidates.begin(), candidates.end()) ==
                candidates.end(),
        "candidates must be strictly increasing site ids");

    const std::size_t n = candidates.size();
    const std::uint64_t full = (std::uint64_t{1} << n) - 1U;

    // Completion scores by mask; std::map keeps mask order deterministic
    // for the final fold and the evaluated-plan listing.
    std::map<std::uint64_t, double> memo;

    // Evaluate every not-yet-memoized mask of `masks` in ONE fan-out at
    // kSizing (the plans are bulk stage-1 work; a finished run's
    // evaluation replications still claim ahead of them). `masks` must be
    // deterministic in content and order, and duplicate-free — both call
    // sites satisfy that by construction (distinct prefixes always have
    // distinct canonical completions).
    const auto evaluate_masks = [&](const std::vector<std::uint64_t>& masks) {
        std::vector<std::uint64_t> fresh;
        for (const std::uint64_t mask : masks)
            if (memo.find(mask) == memo.end()) fresh.push_back(mask);
        if (fresh.empty()) return;
        const auto losses = executor.map(
            fresh.size(),
            [&](std::size_t i) {
                return evaluate(mask_placement(fresh[i], full, candidates));
            },
            exec::Priority::kSizing);
        for (std::size_t i = 0; i < fresh.size(); ++i)
            memo.emplace(fresh[i], losses[i]);
    };

    SearchResult result;
    result.exhaustive = n <= options.exhaustive_limit;

    if (result.exhaustive) {
        // Every mask, ascending, one fan-out.
        std::vector<std::uint64_t> masks;
        masks.reserve(std::size_t{1} << n);
        for (std::uint64_t mask = 0; mask <= full; ++mask)
            masks.push_back(mask);
        evaluate_masks(masks);
    } else {
        // Staged DP: decide candidates in index order. The root's
        // canonical completion is the all-selected preset, so the preset
        // is always the first plan evaluated.
        std::size_t next_order = 0;
        evaluate_masks({full});
        std::vector<Node> frontier{
            {full, mask_cost(full, candidate_costs), memo.at(full),
             next_order++}};
        for (std::size_t stage = 0; stage < n; ++stage) {
            const std::uint64_t bit = std::uint64_t{1} << stage;
            // Children in frontier order, selected before deselected; the
            // selected child shares its parent's completion (memo hit),
            // the deselected child clears the stage bit.
            std::vector<std::uint64_t> pending;
            pending.reserve(frontier.size());
            for (const Node& node : frontier)
                pending.push_back(node.completion & ~bit);
            evaluate_masks(pending);
            std::vector<Node> children;
            children.reserve(2 * frontier.size());
            for (const Node& node : frontier) {
                children.push_back(
                    {node.completion, node.cost, node.loss, next_order++});
                const std::uint64_t off = node.completion & ~bit;
                children.push_back({off, mask_cost(off, candidate_costs),
                                    memo.at(off), next_order++});
            }
            // Pareto prune on (cost, loss): sort by cost, then loss, then
            // creation order; keep only children that strictly improve the
            // best loss seen at lower-or-equal cost.
            std::sort(children.begin(), children.end(),
                      [](const Node& a, const Node& b) {
                          if (a.cost != b.cost) return a.cost < b.cost;
                          if (a.loss != b.loss) return a.loss < b.loss;
                          return a.order < b.order;
                      });
            std::vector<Node> kept;
            kept.reserve(children.size());
            double best_loss_so_far = 0.0;
            for (const Node& child : children) {
                if (kept.empty() || child.loss < best_loss_so_far) {
                    kept.push_back(child);
                    best_loss_so_far = child.loss;
                }
            }
            result.plans_pruned += children.size() - kept.size();
            // Restore expansion determinism: the next stage walks the
            // frontier in creation order, not cost order.
            std::sort(kept.begin(), kept.end(),
                      [](const Node& a, const Node& b) {
                          return a.order < b.order;
                      });
            frontier = std::move(kept);
        }
    }

    // The winner is the best *evaluated* plan — never worse than the
    // all-selected preset, which both paths evaluate unconditionally.
    result.plans_evaluated = memo.size();
    result.evaluated.reserve(memo.size());
    bool first = true;
    for (const auto& [mask, loss] : memo) {
        EvaluatedPlan plan;
        plan.mask = mask;
        plan.placement = mask_placement(mask, full, candidates);
        plan.cost = mask_cost(mask, candidate_costs);
        plan.loss = loss;
        const bool better =
            first || plan.loss < result.best_loss ||
            (plan.loss == result.best_loss && plan.cost < result.best_cost);
        if (better) {
            result.best = plan.placement;
            result.best_mask = mask;
            result.best_loss = loss;
            result.best_cost = plan.cost;
            first = false;
        }
        result.evaluated.push_back(std::move(plan));
    }
    result.preset_loss = memo.at(full);
    return result;
}

}  // namespace socbuf::insertion
