#include "arch/sites.hpp"

#include "util/contracts.hpp"

namespace socbuf::arch {

std::vector<BufferSite> enumerate_buffer_sites(const Architecture& arch) {
    return enumerate_buffer_sites(arch, SiteCostModel{});
}

std::vector<BufferSite> enumerate_buffer_sites(const Architecture& arch,
                                               const SiteCostModel& costs) {
    std::vector<BufferSite> sites;
    sites.reserve(arch.processor_count() + 2 * arch.bridge_count());
    for (ProcessorId p = 0; p < arch.processor_count(); ++p) {
        BufferSite s;
        s.kind = SiteKind::kProcessor;
        s.owner = p;
        s.bus = arch.processor(p).bus;
        s.name = arch.processor(p).name;
        s.unit_cost = costs.cost_of(SiteKind::kProcessor);
        sites.push_back(std::move(s));
    }
    for (BridgeId b = 0; b < arch.bridge_count(); ++b) {
        const Bridge& br = arch.bridge(b);
        // Direction bus_a -> bus_b: the queue sits at the bus_b side and
        // contends on bus_b.
        BufferSite ab;
        ab.kind = SiteKind::kBridge;
        ab.owner = b;
        ab.bus = br.bus_b;
        ab.from_bus = br.bus_a;
        ab.name = br.name + ":" + arch.bus(br.bus_a).name + ">" +
                  arch.bus(br.bus_b).name;
        ab.unit_cost = costs.cost_of(SiteKind::kBridge);
        sites.push_back(std::move(ab));
        BufferSite ba;
        ba.kind = SiteKind::kBridge;
        ba.owner = b;
        ba.bus = br.bus_a;
        ba.from_bus = br.bus_b;
        ba.name = br.name + ":" + arch.bus(br.bus_b).name + ">" +
                  arch.bus(br.bus_a).name;
        ba.unit_cost = costs.cost_of(SiteKind::kBridge);
        sites.push_back(std::move(ba));
    }
    return sites;
}

std::vector<SiteId> candidate_bridge_sites(
    const std::vector<BufferSite>& sites) {
    std::vector<SiteId> out;
    for (SiteId i = 0; i < sites.size(); ++i)
        if (sites[i].kind == SiteKind::kBridge) out.push_back(i);
    return out;
}

SiteId processor_site(const Architecture& arch, ProcessorId processor) {
    SOCBUF_REQUIRE_MSG(processor < arch.processor_count(),
                       "unknown processor");
    return processor;
}

SiteId bridge_site(const Architecture& arch, BridgeId bridge, BusId from_bus) {
    SOCBUF_REQUIRE_MSG(bridge < arch.bridge_count(), "unknown bridge");
    const Bridge& br = arch.bridge(bridge);
    SOCBUF_REQUIRE_MSG(br.bus_a == from_bus || br.bus_b == from_bus,
                       "from_bus is not an endpoint of the bridge");
    const std::size_t base = arch.processor_count() + 2 * bridge;
    return br.bus_a == from_bus ? base : base + 1;
}

std::vector<SiteId> sites_on_bus(const std::vector<BufferSite>& sites,
                                 BusId bus) {
    std::vector<SiteId> out;
    for (SiteId i = 0; i < sites.size(); ++i)
        if (sites[i].bus == bus) out.push_back(i);
    return out;
}

}  // namespace socbuf::arch
