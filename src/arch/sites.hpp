// Buffer sites: the places in an architecture where buffer space can be
// allotted. Each processor owns one site (its outbound queue onto its bus)
// and each bridge owns two (one per forwarding direction). The paper's
// total buffer budget is distributed over exactly these sites.
//
// Bridge sites are additionally *candidates*: whether a bridge direction
// actually receives a dedicated inserted buffer is a placement decision
// (split::Placement; the insertion layer searches over it). Processor
// sites are never candidates — a processor always owns its outbound
// queue. Sites optionally carry heterogeneous per-kind unit costs
// (SiteCostModel) so a placement search can weigh a bridge buffer
// differently from the implicit processor queues; the default model
// prices every site at 1.0 and leaves the enumeration byte-identical to
// the cost-free one.
#pragma once

#include "arch/architecture.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace socbuf::arch {

enum class SiteKind { kProcessor, kBridge };

using SiteId = std::size_t;

/// Per-kind unit costs of a buffer site. Consumed by the insertion
/// search's dominance pruning (plan cost = sum of selected candidates'
/// unit costs); the sizing budget itself is unaffected.
struct SiteCostModel {
    double processor_cost = 1.0;
    double bridge_cost = 1.0;

    [[nodiscard]] double cost_of(SiteKind kind) const {
        return kind == SiteKind::kBridge ? bridge_cost : processor_cost;
    }
};

struct BufferSite {
    SiteKind kind = SiteKind::kProcessor;
    /// ProcessorId for processor sites, BridgeId for bridge sites.
    std::size_t owner = 0;
    /// The bus this site's queue contends on.
    BusId bus = 0;
    /// For bridge sites: the bus traffic arrives *from*; unused otherwise.
    BusId from_bus = 0;
    std::string name;
    /// Unit cost under the enumeration's SiteCostModel (1.0 by default).
    double unit_cost = 1.0;
};

/// Enumerate all buffer sites of `arch` in a deterministic order:
/// processors first (by id), then bridges (by id, a->b direction before
/// b->a). Site ids index into this vector everywhere in socbuf.
[[nodiscard]] std::vector<BufferSite> enumerate_buffer_sites(
    const Architecture& arch);

/// As above, stamping each site's `unit_cost` from `costs`. The default
/// model reproduces the overload above exactly.
[[nodiscard]] std::vector<BufferSite> enumerate_buffer_sites(
    const Architecture& arch, const SiteCostModel& costs);

/// The candidate sites of a placement decision: every bridge site, in
/// enumeration order. (Processor sites are fixed; only bridge buffers
/// are *inserted* and therefore searchable.)
[[nodiscard]] std::vector<SiteId> candidate_bridge_sites(
    const std::vector<BufferSite>& sites);

/// Index of a processor's site within enumerate_buffer_sites' order.
[[nodiscard]] SiteId processor_site(const Architecture& arch,
                                    ProcessorId processor);

/// Index of a bridge's directional site (traffic flowing out of `from_bus`
/// through `bridge` onto the peer bus).
[[nodiscard]] SiteId bridge_site(const Architecture& arch, BridgeId bridge,
                                 BusId from_bus);

/// All sites whose queue contends on `bus`.
[[nodiscard]] std::vector<SiteId> sites_on_bus(
    const std::vector<BufferSite>& sites, BusId bus);

}  // namespace socbuf::arch
