// Buffer sites: the places in an architecture where buffer space can be
// allotted. Each processor owns one site (its outbound queue onto its bus)
// and each bridge owns two (one per forwarding direction). The paper's
// total buffer budget is distributed over exactly these sites.
#pragma once

#include "arch/architecture.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace socbuf::arch {

enum class SiteKind { kProcessor, kBridge };

using SiteId = std::size_t;

struct BufferSite {
    SiteKind kind = SiteKind::kProcessor;
    /// ProcessorId for processor sites, BridgeId for bridge sites.
    std::size_t owner = 0;
    /// The bus this site's queue contends on.
    BusId bus = 0;
    /// For bridge sites: the bus traffic arrives *from*; unused otherwise.
    BusId from_bus = 0;
    std::string name;
};

/// Enumerate all buffer sites of `arch` in a deterministic order:
/// processors first (by id), then bridges (by id, a->b direction before
/// b->a). Site ids index into this vector everywhere in socbuf.
[[nodiscard]] std::vector<BufferSite> enumerate_buffer_sites(
    const Architecture& arch);

/// Index of a processor's site within enumerate_buffer_sites' order.
[[nodiscard]] SiteId processor_site(const Architecture& arch,
                                    ProcessorId processor);

/// Index of a bridge's directional site (traffic flowing out of `from_bus`
/// through `bridge` onto the peer bus).
[[nodiscard]] SiteId bridge_site(const Architecture& arch, BridgeId bridge,
                                 BusId from_bus);

/// All sites whose queue contends on `bus`.
[[nodiscard]] std::vector<SiteId> sites_on_bus(
    const std::vector<BufferSite>& sites, BusId bus);

}  // namespace socbuf::arch
