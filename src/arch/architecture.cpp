#include "arch/architecture.hpp"

#include "util/contracts.hpp"

#include <deque>

namespace socbuf::arch {

BusId Architecture::add_bus(std::string name, double service_rate) {
    SOCBUF_REQUIRE_MSG(service_rate > 0.0, "bus service rate must be > 0");
    if (name.empty()) name = "bus" + std::to_string(buses_.size());
    buses_.push_back(Bus{std::move(name), service_rate});
    return buses_.size() - 1;
}

ProcessorId Architecture::add_processor(std::string name, BusId bus) {
    SOCBUF_REQUIRE_MSG(bus < buses_.size(), "processor on unknown bus");
    if (name.empty()) name = "p" + std::to_string(processors_.size() + 1);
    processors_.push_back(Processor{std::move(name), bus});
    return processors_.size() - 1;
}

BridgeId Architecture::add_bridge(std::string name, BusId bus_a, BusId bus_b) {
    SOCBUF_REQUIRE_MSG(bus_a < buses_.size() && bus_b < buses_.size(),
                       "bridge references unknown bus");
    SOCBUF_REQUIRE_MSG(bus_a != bus_b, "bridge must join distinct buses");
    if (name.empty()) name = "b" + std::to_string(bridges_.size() + 1);
    bridges_.push_back(Bridge{std::move(name), bus_a, bus_b});
    return bridges_.size() - 1;
}

const Bus& Architecture::bus(BusId id) const {
    SOCBUF_REQUIRE_MSG(id < buses_.size(), "unknown bus");
    return buses_[id];
}

const Processor& Architecture::processor(ProcessorId id) const {
    SOCBUF_REQUIRE_MSG(id < processors_.size(), "unknown processor");
    return processors_[id];
}

const Bridge& Architecture::bridge(BridgeId id) const {
    SOCBUF_REQUIRE_MSG(id < bridges_.size(), "unknown bridge");
    return bridges_[id];
}

std::vector<ProcessorId> Architecture::processors_on_bus(BusId bus) const {
    SOCBUF_REQUIRE_MSG(bus < buses_.size(), "unknown bus");
    std::vector<ProcessorId> out;
    for (ProcessorId p = 0; p < processors_.size(); ++p)
        if (processors_[p].bus == bus) out.push_back(p);
    return out;
}

std::vector<BridgeId> Architecture::bridges_of_bus(BusId bus) const {
    SOCBUF_REQUIRE_MSG(bus < buses_.size(), "unknown bus");
    std::vector<BridgeId> out;
    for (BridgeId b = 0; b < bridges_.size(); ++b)
        if (bridges_[b].bus_a == bus || bridges_[b].bus_b == bus)
            out.push_back(b);
    return out;
}

BusId Architecture::bridge_peer(BridgeId bridge_id, BusId bus) const {
    const Bridge& b = bridge(bridge_id);
    SOCBUF_REQUIRE_MSG(b.bus_a == bus || b.bus_b == bus,
                       "bus is not an endpoint of the bridge");
    return b.bus_a == bus ? b.bus_b : b.bus_a;
}

std::optional<BridgeId> Architecture::bridge_between(BusId a, BusId b) const {
    for (BridgeId id = 0; id < bridges_.size(); ++id) {
        const Bridge& br = bridges_[id];
        if ((br.bus_a == a && br.bus_b == b) ||
            (br.bus_a == b && br.bus_b == a))
            return id;
    }
    return std::nullopt;
}

std::vector<BridgeId> Architecture::route(BusId from, BusId to) const {
    SOCBUF_REQUIRE_MSG(from < buses_.size() && to < buses_.size(),
                       "route endpoints unknown");
    if (from == to) return {};
    // BFS over the bus graph, remembering the bridge used to reach each bus.
    constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);
    std::vector<std::size_t> via_bridge(buses_.size(), kUnvisited);
    std::vector<BusId> via_bus(buses_.size(), 0);
    std::deque<BusId> frontier{from};
    std::vector<bool> seen(buses_.size(), false);
    seen[from] = true;
    while (!frontier.empty()) {
        const BusId current = frontier.front();
        frontier.pop_front();
        if (current == to) break;
        for (BridgeId br : bridges_of_bus(current)) {
            const BusId next = bridge_peer(br, current);
            if (seen[next]) continue;
            seen[next] = true;
            via_bridge[next] = br;
            via_bus[next] = current;
            frontier.push_back(next);
        }
    }
    if (!seen[to])
        throw util::ModelError("no bridge path between bus " +
                               buses_[from].name + " and bus " +
                               buses_[to].name);
    std::vector<BridgeId> path;
    for (BusId cursor = to; cursor != from; cursor = via_bus[cursor])
        path.push_back(via_bridge[cursor]);
    return {path.rbegin(), path.rend()};
}

bool Architecture::bus_graph_connected() const {
    if (buses_.empty()) return true;
    std::vector<bool> seen(buses_.size(), false);
    std::deque<BusId> frontier{0};
    seen[0] = true;
    std::size_t visited = 1;
    while (!frontier.empty()) {
        const BusId current = frontier.front();
        frontier.pop_front();
        for (BridgeId br : bridges_of_bus(current)) {
            const BusId next = bridge_peer(br, current);
            if (!seen[next]) {
                seen[next] = true;
                ++visited;
                frontier.push_back(next);
            }
        }
    }
    return visited == buses_.size();
}

void Architecture::validate() const {
    if (buses_.empty()) throw util::ModelError("architecture has no buses");
    if (processors_.empty())
        throw util::ModelError("architecture has no processors");
    for (const auto& p : processors_)
        if (p.bus >= buses_.size())
            throw util::ModelError("processor " + p.name +
                                   " is attached to an unknown bus");
    for (const auto& b : bridges_) {
        if (b.bus_a >= buses_.size() || b.bus_b >= buses_.size())
            throw util::ModelError("bridge " + b.name +
                                   " references an unknown bus");
        if (b.bus_a == b.bus_b)
            throw util::ModelError("bridge " + b.name +
                                   " joins a bus to itself");
    }
    for (const auto& b : buses_)
        if (b.service_rate <= 0.0)
            throw util::ModelError("bus " + b.name +
                                   " has a non-positive service rate");
}

}  // namespace socbuf::arch
