#include "arch/presets.hpp"

#include "util/contracts.hpp"

namespace socbuf::arch {

std::vector<double> offered_rate_per_processor(const TestSystem& system) {
    std::vector<double> rates(system.architecture.processor_count(), 0.0);
    for (const auto& f : system.flows) rates[f.source] += f.rate;
    return rates;
}

TestSystem figure1_system() {
    TestSystem sys;
    sys.name = "figure1";
    Architecture& a = sys.architecture;
    const BusId bus_a = a.add_bus("a", 4.0);
    const BusId bus_b = a.add_bus("b", 3.0);
    const BusId bus_f = a.add_bus("f", 3.0);
    const BusId bus_g = a.add_bus("g", 3.0);
    const ProcessorId p1 = a.add_processor("1", bus_a);
    const ProcessorId p2 = a.add_processor("2", bus_b);
    const ProcessorId p3 = a.add_processor("3", bus_b);
    const ProcessorId p4 = a.add_processor("4", bus_a);
    const ProcessorId p5 = a.add_processor("5", bus_g);
    a.add_bridge("bf", bus_b, bus_f);
    a.add_bridge("fg", bus_f, bus_g);

    // Bus a is processor-only: 1 and 4 exchange local traffic.
    sys.flows.push_back({p1, p4, 1.1, 1.0, 0.0, 0.0});
    sys.flows.push_back({p4, p1, 0.9, 1.0, 0.0, 0.0});
    // Processors 2, 3 and 5 talk across buses b, f and g (through both
    // bridges), the coupling that makes the monolithic model quadratic.
    // Rates keep every bus under its service rate (bus b, the hottest,
    // runs near rho = 0.85) so buffer sizing — not raw bus capacity — is
    // what decides the losses.
    sys.flows.push_back({p2, p5, 0.60, 1.0, 2.0, 2.0});
    sys.flows.push_back({p3, p5, 0.45, 1.0, 0.0, 0.0});
    sys.flows.push_back({p5, p2, 0.50, 1.0, 2.0, 2.0});
    sys.flows.push_back({p5, p3, 0.30, 1.0, 0.0, 0.0});
    // Local traffic on bus b keeps it the shared hot resource of
    // subsystem 1.
    sys.flows.push_back({p2, p3, 0.40, 1.0, 0.0, 0.0});
    sys.flows.push_back({p3, p2, 0.30, 1.0, 0.0, 0.0});
    return sys;
}

bool operator==(const NetworkProcessorParams& a,
                const NetworkProcessorParams& b) {
    return a.pe_per_cluster == b.pe_per_cluster &&
           a.bus_rate_scale == b.bus_rate_scale &&
           a.load_scale == b.load_scale && a.cluster_pe == b.cluster_pe &&
           a.crypto_cluster == b.crypto_cluster;
}

TestSystem network_processor_system(const NetworkProcessorParams& params) {
    SOCBUF_REQUIRE_MSG(params.pe_per_cluster >= 2,
                       "need at least two PEs per cluster");
    SOCBUF_REQUIRE_MSG(params.load_scale > 0.0, "load scale must be > 0");
    SOCBUF_REQUIRE_MSG(params.bus_rate_scale > 0.0,
                       "bus rate scale must be > 0");
    SOCBUF_REQUIRE_MSG(
        params.cluster_pe.empty() || params.cluster_pe.size() == 4,
        "cluster_pe must be empty or name all four clusters");
    for (const std::size_t n : params.cluster_pe)
        SOCBUF_REQUIRE_MSG(n >= 2, "need at least two PEs per cluster");
    // Per-cluster sizes: uniform pe_per_cluster unless cluster_pe overrides
    // (ingress, classify, crypto, egress). With uniform sizes and the
    // crypto cluster present this function reproduces the original
    // testbench bit for bit — same processor order, same flow order.
    const std::size_t pi = params.cluster_size(0);
    const std::size_t pc = params.cluster_size(1);
    const std::size_t pr = params.cluster_size(2);
    const std::size_t pg = params.cluster_size(3);
    const bool with_crypto = params.crypto_cluster;
    const double ls = params.load_scale;
    const double bs = params.bus_rate_scale;

    TestSystem sys;
    sys.name = "network-processor";
    Architecture& a = sys.architecture;

    // Cluster buses around a core bus, bridged star topology. Rates
    // reflect the pipeline: ingress and egress clusters are the stressed
    // ones (see DESIGN.md for the reconstruction rationale). Dropping the
    // crypto cluster removes its bus and bridge (three cluster bridges
    // instead of four).
    const BusId ingress_bus = a.add_bus("ingress", 4.6 * bs);
    const BusId classify_bus = a.add_bus("classify", 8.4 * bs);
    const BusId crypto_bus =
        with_crypto ? a.add_bus("crypto", 3.3 * bs) : BusId{0};
    const BusId egress_bus = a.add_bus("egress", 10.5 * bs);
    const BusId core_bus = a.add_bus("core", 11.5 * bs);
    a.add_bridge("br_ingress", ingress_bus, core_bus);
    a.add_bridge("br_classify", classify_bus, core_bus);
    if (with_crypto) a.add_bridge("br_crypto", crypto_bus, core_bus);
    a.add_bridge("br_egress", egress_bus, core_bus);

    std::vector<ProcessorId> ingress, classify, crypto, egress;
    std::size_t pe_number = 0;  // cumulative "peN" naming across clusters
    for (std::size_t i = 0; i < pi; ++i)
        ingress.push_back(
            a.add_processor("pe" + std::to_string(++pe_number), ingress_bus));
    for (std::size_t i = 0; i < pc; ++i)
        classify.push_back(
            a.add_processor("pe" + std::to_string(++pe_number), classify_bus));
    if (with_crypto)
        for (std::size_t i = 0; i < pr; ++i)
            crypto.push_back(a.add_processor(
                "pe" + std::to_string(++pe_number), crypto_bus));
    for (std::size_t i = 0; i < pg; ++i)
        egress.push_back(
            a.add_processor("pe" + std::to_string(++pe_number), egress_bus));
    const ProcessorId cp = a.add_processor("cp", core_bus);

    auto flow = [&](ProcessorId s, ProcessorId d, double rate, double on = 0.0,
                    double off = 0.0) {
        sys.flows.push_back({s, d, rate * ls, 1.0, on, off});
    };

    // Ingress PEs push parsed packets to their classify peers (wrapping
    // when the clusters are asymmetric). Slightly bursty (packet trains)
    // and asymmetric so the leftmost processors of Figure 3 show moderate
    // loss.
    const double ingress_rate[] = {0.85, 0.75, 0.75, 0.95};
    for (std::size_t i = 0; i < pi; ++i)
        flow(ingress[i], classify[i % pc], ingress_rate[i % 4]);

    // Classify splits traffic: the bulk goes straight to egress, the
    // remainder detours through the crypto cluster — or, without one,
    // straight to the egress schedulers (load preserved).
    const double direct_rate[] = {0.60, 0.55, 0.55, 0.70};
    const double crypto_rate[] = {0.30, 0.25, 0.25, 0.30};
    for (std::size_t i = 0; i < pc; ++i) {
        flow(classify[i], egress[i % pg], direct_rate[i % 4]);
        if (with_crypto)
            flow(classify[i], crypto[i % pr], crypto_rate[i % 4]);
        else
            flow(classify[i], egress[pg - 2 + (i % 2)], crypto_rate[i % 4]);
    }

    // Crypto results concentrate on the two scheduler PEs at the end of the
    // egress cluster (the future display processors 15 and 16).
    if (with_crypto)
        for (std::size_t i = 0; i < pr; ++i)
            flow(crypto[i], egress[pg - 2 + (i % 2)], crypto_rate[i % 4]);

    // Egress schedulers emit the final aggregated wire streams to the MAC
    // PEs on the same bus: heavy and deeply bursty, the workload whose
    // buffer demand uniform sizing underestimates most (the paper's
    // processors 15 and 16). At pg == 2 the scheduler and MAC roles fall
    // on the same two PEs, so the streams cross the pair instead of
    // degenerating into self-flows (routing rejects source ==
    // destination).
    if (pg >= 3) {
        flow(egress[pg - 2], egress[0], 1.6, 3.0, 1.5);
        flow(egress[pg - 1], egress[1], 2.2, 4.0, 2.0);
    } else {
        flow(egress[1], egress[0], 1.6, 3.0, 1.5);
        flow(egress[0], egress[1], 2.2, 4.0, 2.0);
    }

    // Light intra-cluster chatter keeps every bus busy. The [1] <-> [2]
    // pairs only exist in clusters with >= 3 PEs (the contract above
    // guarantees >= 2, where the chatter reduces to the egress pair).
    if (pi >= 3) {
        flow(ingress[1], ingress[2], 0.2);
        flow(ingress[2], ingress[1], 0.2);
    }
    if (pc >= 3) {
        flow(classify[1], classify[2], 0.2);
        flow(classify[2], classify[1], 0.2);
    }
    if (with_crypto && pr >= 3) {
        flow(crypto[1], crypto[2], 0.15);
        flow(crypto[2], crypto[1], 0.15);
    }
    flow(egress[0], egress[1], 0.25);
    flow(egress[1], egress[0], 0.25);

    // Control plane: the CP polls one PE per cluster; the last PE of each
    // cluster reports statistics back.
    flow(cp, ingress[0], 0.2);
    flow(cp, classify[0], 0.2);
    if (with_crypto) flow(cp, crypto[0], 0.2);
    flow(cp, egress[0], 0.2);
    flow(ingress[pi - 1], cp, 0.15);
    flow(classify[pc - 1], cp, 0.15);
    if (with_crypto) flow(crypto[pr - 1], cp, 0.15);
    flow(egress[pg - 1], cp, 0.15);
    return sys;
}

}  // namespace socbuf::arch
