// Workload descriptions and the two test systems of the paper:
//   * figure1_system(): the small bridged sample architecture of Figure 1,
//   * network_processor_system(): the network-processor testbench behind
//     Figure 3 and Table 1.
//
// The paper does not publish its exact topologies or rates, so these are
// reconstructions (documented in DESIGN.md): they preserve the structural
// facts the paper states — Figure 1 has processor-only buses plus three
// mutually communicating buses and splits into four subsystems with four
// inserted bridge buffers; the network processor has 17 processors whose
// traffic is strongly asymmetric across bridged cluster buses.
#pragma once

#include "arch/architecture.hpp"

#include <string>
#include <vector>

namespace socbuf::arch {

/// One unidirectional traffic flow between processors. Rates are Poisson
/// packet rates; `weight` scales the flow's loss in every objective.
struct FlowSpec {
    ProcessorId source = 0;
    ProcessorId destination = 0;
    double rate = 0.0;
    double weight = 1.0;
    /// Burstiness: 0 = pure Poisson. Otherwise the source alternates
    /// exponential ON/OFF phases (mean lengths on_time/off_time) and emits
    /// at rate/duty_cycle while ON, preserving the long-run rate.
    double on_time = 0.0;
    double off_time = 0.0;

    [[nodiscard]] bool bursty() const { return on_time > 0.0 && off_time > 0.0; }
};

/// An architecture together with its workload.
struct TestSystem {
    std::string name;
    Architecture architecture;
    std::vector<FlowSpec> flows;
};

/// Total offered rate originating at each processor.
[[nodiscard]] std::vector<double> offered_rate_per_processor(
    const TestSystem& system);

/// The Figure 1 sample architecture: buses a, b, f, g; five processors
/// (1, 4 on a; 2, 3 on b; 5 on g); bridges b<->f and f<->g, so b, f and g
/// talk to each other while bus a is processor-only. Splitting inserts
/// four directional bridge buffers (the b1..b4 of Figure 2) and yields
/// four single-bus subsystems.
[[nodiscard]] TestSystem figure1_system();

struct NetworkProcessorParams {
    /// Per-cluster processing elements (4 clusters); 4*pe_per_cluster + 1
    /// control processor = 17 processors by default, matching Figure 3.
    std::size_t pe_per_cluster = 4;
    /// Multiplier on every bus service rate (sweeps bus speed).
    double bus_rate_scale = 1.0;
    /// Multiplier on every flow rate (sweeps offered load).
    double load_scale = 1.0;
    /// Asymmetric clusters: when non-empty, exactly four per-cluster PE
    /// counts (ingress, classify, crypto, egress), each >= 2, overriding
    /// pe_per_cluster. Empty (the default) keeps all clusters at
    /// pe_per_cluster — bit-identical to the pre-override testbench.
    std::vector<std::size_t> cluster_pe;
    /// Topology knob: false drops the crypto cluster (bus, bridge and
    /// PEs) so the architecture has three cluster bridges instead of
    /// four; classify's crypto-detour traffic goes straight to the
    /// egress schedulers, preserving offered load.
    bool crypto_cluster = true;

    /// Effective PE count of cluster `c` (0 = ingress .. 3 = egress).
    [[nodiscard]] std::size_t cluster_size(std::size_t c) const {
        return cluster_pe.empty() ? pe_per_cluster : cluster_pe[c];
    }
};

[[nodiscard]] bool operator==(const NetworkProcessorParams& a,
                              const NetworkProcessorParams& b);
inline bool operator!=(const NetworkProcessorParams& a,
                       const NetworkProcessorParams& b) {
    return !(a == b);
}

/// The network-processor testbench: four cluster buses (ingress parse,
/// classify, egress queue/schedule) joined to a core bus by four bridges;
/// 16 PEs plus one control processor. Traffic follows a packet-processing
/// pipeline (ingress -> classify -> egress) with strongly asymmetric rates
/// plus light control traffic, so buffer demand varies widely across
/// processors — the regime Figure 3 and Table 1 explore.
[[nodiscard]] TestSystem network_processor_system(
    const NetworkProcessorParams& params = {});

}  // namespace socbuf::arch
