// SoC communication architecture description: processors attached to
// buses, buses joined by bridges (the AMBA / CoreConnect shape the paper
// targets). Purely structural — rates live in the workload (FlowSpec) and
// runtime behaviour in sim/.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace socbuf::arch {

using ProcessorId = std::size_t;
using BusId = std::size_t;
using BridgeId = std::size_t;

struct Processor {
    std::string name;
    BusId bus = 0;  // the single bus this processor is attached to
};

struct Bus {
    std::string name;
    double service_rate = 1.0;  // transfers completed per unit time
};

/// A bridge joins exactly two buses and forwards traffic in both
/// directions. Bridge buffers are *not* part of the structure: the paper's
/// method inserts them (split::), and sim/ materializes them.
struct Bridge {
    std::string name;
    BusId bus_a = 0;
    BusId bus_b = 0;
};

class Architecture {
public:
    BusId add_bus(std::string name, double service_rate);
    ProcessorId add_processor(std::string name, BusId bus);
    BridgeId add_bridge(std::string name, BusId bus_a, BusId bus_b);

    [[nodiscard]] std::size_t bus_count() const { return buses_.size(); }
    [[nodiscard]] std::size_t processor_count() const {
        return processors_.size();
    }
    [[nodiscard]] std::size_t bridge_count() const { return bridges_.size(); }

    [[nodiscard]] const Bus& bus(BusId id) const;
    [[nodiscard]] const Processor& processor(ProcessorId id) const;
    [[nodiscard]] const Bridge& bridge(BridgeId id) const;

    [[nodiscard]] std::vector<ProcessorId> processors_on_bus(BusId bus) const;
    [[nodiscard]] std::vector<BridgeId> bridges_of_bus(BusId bus) const;

    /// The bus on the other side of `bridge` from `bus`.
    [[nodiscard]] BusId bridge_peer(BridgeId bridge, BusId bus) const;

    /// Bridge joining the two buses directly, if any.
    [[nodiscard]] std::optional<BridgeId> bridge_between(BusId a,
                                                         BusId b) const;

    /// Shortest bus-level route from `from` to `to` as the sequence of
    /// bridges to traverse (empty when from == to). Throws ModelError when
    /// the buses are not connected.
    [[nodiscard]] std::vector<BridgeId> route(BusId from, BusId to) const;

    /// True when every bus can reach every other bus over bridges.
    [[nodiscard]] bool bus_graph_connected() const;

    /// Structural validation (ids in range, positive service rates, bridges
    /// join distinct buses, no empty architecture). Throws ModelError.
    void validate() const;

private:
    std::vector<Bus> buses_;
    std::vector<Processor> processors_;
    std::vector<Bridge> bridges_;
};

}  // namespace socbuf::arch
