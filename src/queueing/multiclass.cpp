#include "queueing/multiclass.hpp"

#include "queueing/mm1k.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"

#include <algorithm>

namespace socbuf::queueing {

MulticlassMetrics approximate_shared_server(
    const std::vector<FlowLoad>& flows, double mu) {
    SOCBUF_REQUIRE_MSG(!flows.empty(), "no flows");
    SOCBUF_REQUIRE_MSG(mu > 0.0, "service rate must be positive");
    double total_arrivals = 0.0;
    for (const auto& f : flows) {
        SOCBUF_REQUIRE_MSG(f.arrival_rate >= 0.0, "negative arrival rate");
        SOCBUF_REQUIRE_MSG(f.capacity >= 1, "capacity must be >= 1");
        total_arrivals += f.arrival_rate;
    }

    MulticlassMetrics out;
    out.loss_rate.resize(flows.size(), 0.0);
    out.blocking.resize(flows.size(), 0.0);
    out.mean_occupancy.resize(flows.size(), 0.0);
    if (total_arrivals <= 0.0) return out;

    for (std::size_t i = 0; i < flows.size(); ++i) {
        const auto& f = flows[i];
        if (f.arrival_rate <= 0.0) continue;
        const double share = f.arrival_rate / total_arrivals;
        const double mu_f = std::max(mu * share, 1e-12);
        const Mm1kMetrics m = analyze_mm1k(f.arrival_rate, mu_f, f.capacity);
        out.loss_rate[i] = m.loss_rate;
        out.blocking[i] = m.blocking_probability;
        out.mean_occupancy[i] = m.mean_occupancy;
        out.total_loss_rate += m.loss_rate;
        out.weighted_loss_rate += f.weight * m.loss_rate;
        out.server_utilization += m.throughput / mu;
    }
    out.server_utilization = std::min(out.server_utilization, 1.0);
    return out;
}

std::vector<long> demand_proportional_allocation(
    const std::vector<FlowLoad>& flows, double mu, long total_buffer,
    double target_blocking) {
    SOCBUF_REQUIRE_MSG(!flows.empty(), "no flows");
    SOCBUF_REQUIRE_MSG(total_buffer >= static_cast<long>(flows.size()),
                       "need at least one buffer unit per flow");

    // Under rate-proportional sharing every class would see the same
    // utilization, which cannot discriminate demand; an equal-share
    // (round-robin) service model does, and matches the simulator's
    // default arbiter.
    const double mu_equal =
        std::max(mu / static_cast<double>(flows.size()), 1e-12);
    std::vector<double> demand(flows.size(), 1.0);
    for (std::size_t i = 0; i < flows.size(); ++i) {
        const auto& f = flows[i];
        if (f.arrival_rate <= 0.0) continue;
        demand[i] = static_cast<double>(min_capacity_for_blocking(
            f.arrival_rate, mu_equal, target_blocking, 512));
    }
    return util::apportion_largest_remainder(total_buffer, demand,
                                             /*floor_per_entry=*/1);
}

}  // namespace socbuf::queueing
