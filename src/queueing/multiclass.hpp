// Multi-class shared-server approximation: n Poisson flows share one
// exponential server, each with its own finite buffer. Used for initial
// buffer allocations and as an analytic sanity check of the CTMDP models.
//
// The approximation treats class f as an independent M/M/1/K_f queue whose
// service rate is the server's capacity times the class's long-run service
// share. It is exact for a single class and a good first-order model under
// work-conserving arbitration.
#pragma once

#include <cstddef>
#include <vector>

namespace socbuf::queueing {

struct FlowLoad {
    double arrival_rate = 0.0;  // lambda_f
    std::size_t capacity = 1;   // K_f, including the slot in service
    double weight = 1.0;        // loss weight used by sizing objectives
};

struct MulticlassMetrics {
    std::vector<double> loss_rate;       // per class
    std::vector<double> blocking;        // per class
    std::vector<double> mean_occupancy;  // per class
    double total_loss_rate = 0.0;
    double weighted_loss_rate = 0.0;
    double server_utilization = 0.0;  // estimated
};

/// Approximate per-class metrics for flows sharing a server of rate `mu`.
/// Service shares are proportional to each class's arrival rate (a
/// processor-sharing view of round-robin arbitration).
[[nodiscard]] MulticlassMetrics approximate_shared_server(
    const std::vector<FlowLoad>& flows, double mu);

/// Allocate `total_buffer` units across flows proportionally to the
/// capacity each class would need to keep blocking below `target_blocking`
/// in isolation (each class gets at least one unit). This is the paper's
/// "division of space depending on traffic ratios" strawman, refined by
/// need rather than raw rate.
[[nodiscard]] std::vector<long> demand_proportional_allocation(
    const std::vector<FlowLoad>& flows, double mu, long total_buffer,
    double target_blocking = 0.01);

}  // namespace socbuf::queueing
