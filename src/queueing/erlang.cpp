#include "queueing/erlang.hpp"

#include "util/contracts.hpp"

namespace socbuf::queueing {

double erlang_b(std::size_t servers, double offered_load) {
    SOCBUF_REQUIRE_MSG(offered_load >= 0.0, "negative offered load");
    // B(0, a) = 1; B(c, a) = a*B(c-1,a) / (c + a*B(c-1,a)).
    double b = 1.0;
    for (std::size_t c = 1; c <= servers; ++c) {
        b = offered_load * b /
            (static_cast<double>(c) + offered_load * b);
    }
    return b;
}

std::size_t erlang_b_servers_for(double offered_load, double target,
                                 std::size_t max_servers) {
    SOCBUF_REQUIRE_MSG(target > 0.0 && target < 1.0,
                       "target blocking must be in (0,1)");
    double b = 1.0;
    for (std::size_t c = 1; c <= max_servers; ++c) {
        b = offered_load * b / (static_cast<double>(c) + offered_load * b);
        if (b <= target) return c;
    }
    return max_servers;
}

}  // namespace socbuf::queueing
