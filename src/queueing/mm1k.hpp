// Closed-form M/M/1/K performance measures. These are the analytic ground
// truth that the event simulator and the CTMDP models are validated
// against.
#pragma once

#include <cstddef>

namespace socbuf::queueing {

/// Performance measures of an M/M/1/K loss queue.
struct Mm1kMetrics {
    double blocking_probability = 0.0;  // P(arrival sees a full system)
    double loss_rate = 0.0;             // lambda * blocking_probability
    double throughput = 0.0;            // lambda * (1 - blocking)
    double mean_occupancy = 0.0;        // E[number in system]
    double mean_sojourn = 0.0;          // mean time in system of accepted jobs
    double utilization = 0.0;           // P(server busy)
};

/// Analyze an M/M/1/K queue (capacity `k` includes the job in service).
/// Handles rho == 1 via the uniform-distribution limit.
[[nodiscard]] Mm1kMetrics analyze_mm1k(double lambda, double mu,
                                       std::size_t k);

/// Smallest capacity k whose M/M/1/K blocking probability is <= `target`.
/// Returns `max_k` if even that capacity cannot reach the target.
[[nodiscard]] std::size_t min_capacity_for_blocking(double lambda, double mu,
                                                    double target,
                                                    std::size_t max_k = 4096);

}  // namespace socbuf::queueing
