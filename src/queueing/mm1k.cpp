#include "queueing/mm1k.hpp"

#include "ctmc/birth_death.hpp"
#include "util/contracts.hpp"

#include <cmath>

namespace socbuf::queueing {

Mm1kMetrics analyze_mm1k(double lambda, double mu, std::size_t k) {
    SOCBUF_REQUIRE_MSG(lambda >= 0.0, "negative arrival rate");
    SOCBUF_REQUIRE_MSG(mu > 0.0, "service rate must be positive");
    SOCBUF_REQUIRE_MSG(k > 0, "capacity must be at least 1");

    const auto pi = ctmc::mm1k_stationary(lambda, mu, k);
    Mm1kMetrics m;
    m.blocking_probability = pi[k];
    m.loss_rate = lambda * m.blocking_probability;
    m.throughput = lambda - m.loss_rate;
    for (std::size_t i = 0; i <= k; ++i)
        m.mean_occupancy += static_cast<double>(i) * pi[i];
    m.utilization = 1.0 - pi[0];
    // Little's law over accepted jobs.
    m.mean_sojourn = m.throughput > 0.0 ? m.mean_occupancy / m.throughput
                                        : 0.0;
    return m;
}

std::size_t min_capacity_for_blocking(double lambda, double mu, double target,
                                      std::size_t max_k) {
    SOCBUF_REQUIRE_MSG(target > 0.0 && target < 1.0,
                       "target blocking must be in (0,1)");
    SOCBUF_REQUIRE_MSG(max_k > 0, "max_k must be positive");
    for (std::size_t k = 1; k <= max_k; ++k) {
        if (analyze_mm1k(lambda, mu, k).blocking_probability <= target)
            return k;
    }
    return max_k;
}

}  // namespace socbuf::queueing
