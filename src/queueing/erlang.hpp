// Erlang loss formulas, used as an independent cross-check of the
// birth-death machinery (Erlang-B equals M/M/c/c blocking).
#pragma once

#include <cstddef>

namespace socbuf::queueing {

/// Erlang-B blocking probability for `servers` servers offered
/// `offered_load` = lambda/mu Erlangs, via the stable recursion.
[[nodiscard]] double erlang_b(std::size_t servers, double offered_load);

/// Smallest number of servers with Erlang-B blocking <= `target`.
[[nodiscard]] std::size_t erlang_b_servers_for(double offered_load,
                                               double target,
                                               std::size_t max_servers =
                                                   100000);

}  // namespace socbuf::queueing
