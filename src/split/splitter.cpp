#include "split/splitter.hpp"

#include "traffic/routing.hpp"
#include "util/contracts.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace socbuf::split {

double Subsystem::offered_rate() const {
    double total = 0.0;
    for (const auto& f : flows) total += f.arrival_rate;
    return total;
}

double Subsystem::utilization() const {
    return service_rate > 0.0 ? offered_rate() / service_rate : 0.0;
}

bool operator==(const Placement& a, const Placement& b) {
    return a.selected == b.selected;
}

SplitResult split_architecture(const arch::TestSystem& system) {
    return split_architecture(system, Placement{});
}

SplitResult split_architecture(const arch::TestSystem& system,
                               const Placement& placement) {
    system.architecture.validate();
    SOCBUF_REQUIRE_MSG(!system.flows.empty(), "system has no flows");

    SplitResult out;
    out.sites = arch::enumerate_buffer_sites(system.architecture);
    const auto routes = traffic::compute_routes(system);
    const auto rates = traffic::offered_rate_per_site(system, routes,
                                                      out.sites.size());
    const auto weights =
        traffic::weight_per_site(system, routes, out.sites.size());

    // Contributing flows per site.
    std::vector<std::vector<std::size_t>> site_flows(out.sites.size());
    for (const auto& r : routes)
        for (const auto site : r.sites)
            site_flows[site].push_back(r.flow_id);

    out.subsystem_of_site.assign(out.sites.size(), SplitResult::npos);
    std::map<arch::BusId, std::size_t> subsystem_of_bus;
    for (arch::SiteId s = 0; s < out.sites.size(); ++s) {
        if (rates[s] <= 0.0) continue;  // site carries no traffic
        const arch::BusId bus = out.sites[s].bus;
        auto it = subsystem_of_bus.find(bus);
        if (it == subsystem_of_bus.end()) {
            Subsystem sub;
            sub.bus = bus;
            sub.bus_name = system.architecture.bus(bus).name;
            sub.service_rate = system.architecture.bus(bus).service_rate;
            out.subsystems.push_back(std::move(sub));
            it = subsystem_of_bus
                     .emplace(bus, out.subsystems.size() - 1)
                     .first;
        }
        SubsystemFlow flow;
        flow.site = s;
        flow.arrival_rate = rates[s];
        flow.weight = std::max(weights[s], 1e-12);
        const bool bridge = out.sites[s].kind == arch::SiteKind::kBridge;
        const bool chosen = placement.site_selected(s);
        flow.inserted = bridge && chosen;
        flow.pinned = bridge && !chosen;
        flow.flow_ids = site_flows[s];
        // Burst structure: keep the largest bursty contributor; everything
        // else is treated as Poisson background by the modulated models.
        for (const std::size_t id : flow.flow_ids) {
            const auto& spec = system.flows[id];
            if (spec.bursty() && spec.rate > flow.burst_rate) {
                flow.burst_rate = spec.rate;
                flow.on_time = spec.on_time;
                flow.off_time = spec.off_time;
            }
        }
        if (flow.inserted) ++out.inserted_buffer_count;
        out.subsystem_of_site[s] = it->second;
        out.subsystems[it->second].flows.push_back(std::move(flow));
    }
    SOCBUF_ASSERT(!out.subsystems.empty());
    return out;
}

void verify_linearity(const arch::TestSystem& system,
                      const SplitResult& split) {
    std::set<arch::SiteId> seen;
    for (const auto& sub : split.subsystems) {
        if (sub.flows.empty())
            throw util::ModelError("subsystem on bus " + sub.bus_name +
                                   " has no flows");
        for (const auto& f : sub.flows) {
            if (f.site >= split.sites.size())
                throw util::ModelError("subsystem references unknown site");
            // Single-bus property: every site of the subsystem contends on
            // the subsystem's bus and on nothing else.
            if (split.sites[f.site].bus != sub.bus)
                throw util::ModelError(
                    "subsystem on bus " + sub.bus_name +
                    " contains a site of another bus — not linear");
            if (!seen.insert(f.site).second)
                throw util::ModelError("site " + split.sites[f.site].name +
                                       " appears in two subsystems");
        }
    }
    // Coverage: every flow's entire route lies in some subsystem.
    const auto routes = traffic::compute_routes(system);
    for (const auto& r : routes)
        for (const auto site : r.sites)
            if (!seen.count(site))
                throw util::ModelError(
                    "flow route site " + split.sites[site].name +
                    " is not covered by any subsystem");
}

}  // namespace socbuf::split
