// The paper's splitting methodology (Section 2): insert buffers at every
// bridge point and cut the bridged architecture into single-bus subsystems
// separated by those buffers. Each subsystem's CTMDP is then *linear*
// (its balance equations involve only its own occupation measures); the
// bilinear bus-to-bus coupling terms of the monolithic model (see
// nonlinear/) disappear because the inserted buffer decouples the two
// buses' states.
#pragma once

#include "arch/presets.hpp"
#include "arch/sites.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace socbuf::split {

/// A placement decision over the candidate bridge sites: which of them
/// actually receive a dedicated inserted buffer. The default (empty
/// mask) selects *every* bridge site — the paper's split, and the
/// placement behind every pre-insertion report. A deselected bridge
/// site still exists in the split (traffic still crosses the bridge)
/// but is *pinned*: it keeps a minimal single-slot passthrough and is
/// excluded from the score-based apportionment, so its budget share
/// flows to the selected sites instead.
struct Placement {
    /// Per-site selection mask (enumerate_buffer_sites order). Empty =
    /// every site selected. Only bridge sites consult it; processor
    /// sites are always selected.
    std::vector<bool> selected;

    /// True when this is the default all-selected placement.
    [[nodiscard]] bool all_selected() const { return selected.empty(); }

    [[nodiscard]] bool site_selected(arch::SiteId site) const {
        return selected.empty() || site >= selected.size() ||
               selected[site];
    }
};

[[nodiscard]] bool operator==(const Placement& a, const Placement& b);
inline bool operator!=(const Placement& a, const Placement& b) {
    return !(a == b);
}

/// One traffic source contending on a subsystem's bus.
struct SubsystemFlow {
    arch::SiteId site = 0;   // the buffer site feeding the bus
    double arrival_rate = 0.0;  // first-order offered rate at this site
    double weight = 1.0;        // loss weight (max over contributing flows)
    bool inserted = false;      // true for bridge buffers created by the split
    /// Deselected bridge site: carries traffic through a single-slot
    /// passthrough, excluded from budget apportionment.
    bool pinned = false;
    std::vector<std::size_t> flow_ids;  // contributing FlowSpec indices

    /// Burst structure of the dominant bursty contributor (zeros when all
    /// contributing flows are Poisson). `burst_rate` is that flow's
    /// long-run rate; the remaining `arrival_rate - burst_rate` stays
    /// Poisson. Consumed by the modulated (MMPP) subsystem models.
    double burst_rate = 0.0;
    double on_time = 0.0;
    double off_time = 0.0;

    [[nodiscard]] bool bursty() const {
        return burst_rate > 0.0 && on_time > 0.0 && off_time > 0.0;
    }
};

/// A single-bus linear subsystem.
struct Subsystem {
    arch::BusId bus = 0;
    std::string bus_name;
    double service_rate = 0.0;
    std::vector<SubsystemFlow> flows;  // only sites with traffic

    /// Total offered rate over all flows.
    [[nodiscard]] double offered_rate() const;
    /// offered_rate / service_rate.
    [[nodiscard]] double utilization() const;
};

struct SplitResult {
    std::vector<Subsystem> subsystems;      // one per bus carrying traffic
    std::vector<arch::BufferSite> sites;    // full site enumeration
    /// Traffic-carrying bridge sites the placement actually selected —
    /// the number of buffers the split *inserted*.
    std::size_t inserted_buffer_count = 0;

    /// Site -> subsystem index, or npos for sites with no traffic.
    std::vector<std::size_t> subsystem_of_site;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Split `system` into independent linear subsystems under the default
/// placement (every bridge site selected — the paper's split). Throws
/// ModelError on invalid architectures or unroutable flows.
[[nodiscard]] SplitResult split_architecture(const arch::TestSystem& system);

/// As above under an explicit `placement`: deselected bridge sites come
/// back pinned (single-slot passthrough, excluded from apportionment)
/// and do not count toward inserted_buffer_count. The default placement
/// reproduces the overload above bit for bit.
[[nodiscard]] SplitResult split_architecture(const arch::TestSystem& system,
                                             const Placement& placement);

/// Verify the defining property of the split: every subsystem touches
/// exactly one bus, no site appears in two subsystems, and every flow of
/// the original system is covered. Throws ModelError on violation.
/// (Exercised directly by tests and by the Figure 2 bench.)
void verify_linearity(const arch::TestSystem& system,
                      const SplitResult& split);

}  // namespace socbuf::split
