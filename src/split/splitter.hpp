// The paper's splitting methodology (Section 2): insert buffers at every
// bridge point and cut the bridged architecture into single-bus subsystems
// separated by those buffers. Each subsystem's CTMDP is then *linear*
// (its balance equations involve only its own occupation measures); the
// bilinear bus-to-bus coupling terms of the monolithic model (see
// nonlinear/) disappear because the inserted buffer decouples the two
// buses' states.
#pragma once

#include "arch/presets.hpp"
#include "arch/sites.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace socbuf::split {

/// One traffic source contending on a subsystem's bus.
struct SubsystemFlow {
    arch::SiteId site = 0;   // the buffer site feeding the bus
    double arrival_rate = 0.0;  // first-order offered rate at this site
    double weight = 1.0;        // loss weight (max over contributing flows)
    bool inserted = false;      // true for bridge buffers created by the split
    std::vector<std::size_t> flow_ids;  // contributing FlowSpec indices

    /// Burst structure of the dominant bursty contributor (zeros when all
    /// contributing flows are Poisson). `burst_rate` is that flow's
    /// long-run rate; the remaining `arrival_rate - burst_rate` stays
    /// Poisson. Consumed by the modulated (MMPP) subsystem models.
    double burst_rate = 0.0;
    double on_time = 0.0;
    double off_time = 0.0;

    [[nodiscard]] bool bursty() const {
        return burst_rate > 0.0 && on_time > 0.0 && off_time > 0.0;
    }
};

/// A single-bus linear subsystem.
struct Subsystem {
    arch::BusId bus = 0;
    std::string bus_name;
    double service_rate = 0.0;
    std::vector<SubsystemFlow> flows;  // only sites with traffic

    /// Total offered rate over all flows.
    [[nodiscard]] double offered_rate() const;
    /// offered_rate / service_rate.
    [[nodiscard]] double utilization() const;
};

struct SplitResult {
    std::vector<Subsystem> subsystems;      // one per bus carrying traffic
    std::vector<arch::BufferSite> sites;    // full site enumeration
    std::size_t inserted_buffer_count = 0;  // bridge sites carrying traffic

    /// Site -> subsystem index, or npos for sites with no traffic.
    std::vector<std::size_t> subsystem_of_site;
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/// Split `system` into independent linear subsystems. Throws ModelError on
/// invalid architectures or unroutable flows.
[[nodiscard]] SplitResult split_architecture(const arch::TestSystem& system);

/// Verify the defining property of the split: every subsystem touches
/// exactly one bus, no site appears in two subsystems, and every flow of
/// the original system is covered. Throws ModelError on violation.
/// (Exercised directly by tests and by the Figure 2 bench.)
void verify_linearity(const arch::TestSystem& system,
                      const SplitResult& split);

}  // namespace socbuf::split
