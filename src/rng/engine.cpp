#include "rng/engine.hpp"

#include "util/contracts.hpp"

#include <cmath>

namespace socbuf::rng {

std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

RandomEngine::RandomEngine(std::uint64_t seed) : seed_(seed) {
    // Run the seed through SplitMix64 so nearby seeds (0,1,2,...) give
    // uncorrelated mt19937 states.
    std::uint64_t s = seed;
    const std::uint64_t a = splitmix64(s);
    const std::uint64_t b = splitmix64(s);
    std::seed_seq seq{static_cast<std::uint32_t>(a),
                      static_cast<std::uint32_t>(a >> 32),
                      static_cast<std::uint32_t>(b),
                      static_cast<std::uint32_t>(b >> 32)};
    gen_.seed(seq);
}

RandomEngine RandomEngine::spawn(std::uint64_t stream_id) const {
    std::uint64_t s = seed_ ^ (0xA5A5A5A5DEADBEEFULL + stream_id);
    const std::uint64_t child = splitmix64(s) ^ splitmix64(s);
    return RandomEngine(child);
}

double RandomEngine::uniform() {
    // (0,1): rejection of the exact endpoints keeps log() calls safe.
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    double u = dist(gen_);
    while (u <= 0.0 || u >= 1.0) u = dist(gen_);
    return u;
}

double RandomEngine::uniform(double lo, double hi) {
    SOCBUF_REQUIRE_MSG(lo <= hi, "uniform: lo must be <= hi");
    return lo + (hi - lo) * uniform();
}

double RandomEngine::exponential(double rate) {
    SOCBUF_REQUIRE_MSG(rate > 0.0, "exponential: rate must be positive");
    return -std::log(uniform()) / rate;
}

long RandomEngine::uniform_int(long lo, long hi) {
    SOCBUF_REQUIRE_MSG(lo <= hi, "uniform_int: lo must be <= hi");
    std::uniform_int_distribution<long> dist(lo, hi);
    return dist(gen_);
}

bool RandomEngine::bernoulli(double p) {
    SOCBUF_REQUIRE_MSG(p >= 0.0 && p <= 1.0, "bernoulli: p outside [0,1]");
    return uniform() < p;
}

std::size_t RandomEngine::discrete(const std::vector<double>& weights) {
    SOCBUF_REQUIRE_MSG(!weights.empty(), "discrete: no weights");
    double total = 0.0;
    for (double w : weights) {
        SOCBUF_REQUIRE_MSG(w >= 0.0, "discrete: negative weight");
        total += w;
    }
    SOCBUF_REQUIRE_MSG(total > 0.0, "discrete: all weights zero");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x <= 0.0) return i;
    }
    return weights.size() - 1;  // round-off fallback
}

}  // namespace socbuf::rng
