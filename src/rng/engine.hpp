// Reproducible random streams. Every stochastic component in socbuf draws
// from a RandomEngine spawned off a single experiment seed, so simulations
// are bit-reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace socbuf::rng {

/// SplitMix64 step — used to derive well-separated child seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// A seeded mt19937_64 with the distributions socbuf needs.
class RandomEngine {
public:
    explicit RandomEngine(std::uint64_t seed);

    /// Child engine whose stream is decorrelated from this one; calling with
    /// the same `stream_id` twice yields the same child.
    [[nodiscard]] RandomEngine spawn(std::uint64_t stream_id) const;

    /// U(0,1), never exactly 0 or 1.
    double uniform();

    /// U(lo,hi).
    double uniform(double lo, double hi);

    /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
    double exponential(double rate);

    /// Integer in [lo, hi] inclusive. Requires lo <= hi.
    long uniform_int(long lo, long hi);

    /// Bernoulli trial.
    bool bernoulli(double p);

    /// Index drawn proportionally to non-negative `weights`
    /// (at least one must be positive).
    std::size_t discrete(const std::vector<double>& weights);

    /// Underlying engine, for std distributions not wrapped here.
    std::mt19937_64& raw() { return gen_; }

    [[nodiscard]] std::uint64_t seed() const { return seed_; }

private:
    std::uint64_t seed_;
    std::mt19937_64 gen_;
};

}  // namespace socbuf::rng
