#include "linalg/sparse.hpp"

#include "util/contracts.hpp"

#include <cmath>

namespace socbuf::linalg {

SparseMatrix SparseMatrix::from_triplets(
    std::size_t rows, std::size_t cols,
    const std::vector<SparseEntry>& entries) {
    SparseMatrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.row_offset_.assign(rows + 1, 0);
    m.col_.reserve(entries.size());
    m.value_.reserve(entries.size());
    std::size_t current = 0;
    for (const SparseEntry& e : entries) {
        SOCBUF_REQUIRE_MSG(e.row < rows && e.col < cols,
                           "sparse entry out of range");
        SOCBUF_REQUIRE_MSG(e.row >= current,
                           "sparse entries must have non-decreasing rows");
        while (current < e.row) m.row_offset_[++current] = m.col_.size();
        m.col_.push_back(e.col);
        m.value_.push_back(e.value);
    }
    while (current < rows) m.row_offset_[++current] = m.col_.size();
    return m;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense,
                                      double drop_tolerance) {
    std::vector<SparseEntry> entries;
    for (std::size_t r = 0; r < dense.rows(); ++r)
        for (std::size_t c = 0; c < dense.cols(); ++c) {
            const double v = dense(r, c);
            if (v == 0.0 || std::fabs(v) <= drop_tolerance) continue;
            entries.push_back({r, c, v});
        }
    return from_triplets(dense.rows(), dense.cols(), entries);
}

double SparseMatrix::density() const {
    const double cells =
        static_cast<double>(rows_) * static_cast<double>(cols_);
    return cells > 0.0 ? static_cast<double>(nnz()) / cells : 0.0;
}

Vector SparseMatrix::multiply(const Vector& x) const {
    SOCBUF_REQUIRE_MSG(x.size() == cols_, "A*x size mismatch");
    Vector y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t k = row_offset_[r]; k < row_offset_[r + 1]; ++k)
            acc += value_[k] * x[col_[k]];
        y[r] = acc;
    }
    return y;
}

Vector SparseMatrix::multiply_transposed(const Vector& x) const {
    SOCBUF_REQUIRE_MSG(x.size() == rows_, "A^T*x size mismatch");
    Vector y(cols_, 0.0);
    add_transposed_into(x, y);
    return y;
}

void SparseMatrix::add_transposed_into(const Vector& x, Vector& y) const {
    SOCBUF_REQUIRE_MSG(x.size() == rows_ && y.size() == cols_,
                       "A^T*x accumulate size mismatch");
    for (std::size_t r = 0; r < rows_; ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        for (std::size_t k = row_offset_[r]; k < row_offset_[r + 1]; ++k)
            y[col_[k]] += value_[k] * xr;
    }
}

SparseMatrix SparseMatrix::transposed() const {
    SparseMatrix t;
    t.rows_ = cols_;
    t.cols_ = rows_;
    t.row_offset_.assign(cols_ + 1, 0);
    t.col_.resize(nnz());
    t.value_.resize(nnz());
    // Counting sort on the column index: count, prefix-sum, then walk the
    // entries in storage order so each output row fills front to back in
    // that same order (stability).
    for (const std::size_t c : col_) ++t.row_offset_[c + 1];
    for (std::size_t c = 0; c < cols_; ++c)
        t.row_offset_[c + 1] += t.row_offset_[c];
    std::vector<std::size_t> cursor(t.row_offset_.begin(),
                                    t.row_offset_.end() - 1);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t k = row_offset_[r]; k < row_offset_[r + 1]; ++k) {
            const std::size_t slot = cursor[col_[k]]++;
            t.col_[slot] = r;
            t.value_[slot] = value_[k];
        }
    return t;
}

Matrix SparseMatrix::to_dense() const {
    Matrix out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t k = row_offset_[r]; k < row_offset_[r + 1]; ++k)
            out(r, col_[k]) += value_[k];
    return out;
}

}  // namespace socbuf::linalg
