// Compressed-row (CSR) sparse matrix for the structure-exploiting solver
// paths. Subsystem CTMDP generators have ~flows non-zeros per row, so the
// dense kernels waste a factor of |S|/flows in both memory traffic and
// arithmetic; this type stores only the structural non-zeros while keeping
// the *fold order* of the dense kernels — a CSR mat-vec accumulates a
// row's stored entries left to right exactly like Matrix::multiply walks
// the full row, so on models whose skipped entries are exact zeros the
// results are bit-identical to the dense path (pinned in linalg_test).
#pragma once

#include "linalg/matrix.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::linalg {

/// One explicit entry of a sparse matrix under construction.
struct SparseEntry {
    std::size_t row = 0;
    std::size_t col = 0;
    double value = 0.0;
};

class SparseMatrix {
public:
    SparseMatrix() = default;

    /// Build from explicit entries. Rows must be non-decreasing (the
    /// builder is a single forward pass); within a row, entries keep their
    /// given order — that order *is* the mat-vec fold order. Duplicate
    /// (row, col) entries are kept and accumulate like repeated terms.
    [[nodiscard]] static SparseMatrix from_triplets(
        std::size_t rows, std::size_t cols,
        const std::vector<SparseEntry>& entries);

    /// Compress a dense matrix, dropping exact zeros (and, optionally,
    /// entries with |v| <= drop_tolerance). Row-major scan, so the stored
    /// order matches the dense fold order.
    [[nodiscard]] static SparseMatrix from_dense(const Matrix& dense,
                                                 double drop_tolerance = 0.0);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }
    [[nodiscard]] std::size_t nnz() const { return value_.size(); }
    /// nnz / (rows * cols); 0 for an empty shape.
    [[nodiscard]] double density() const;

    /// Entry range of row r: indices [row_begin(r), row_end(r)) into
    /// col_index()/value().
    [[nodiscard]] std::size_t row_begin(std::size_t r) const {
        return row_offset_[r];
    }
    [[nodiscard]] std::size_t row_end(std::size_t r) const {
        return row_offset_[r + 1];
    }
    [[nodiscard]] std::size_t col_index(std::size_t k) const {
        return col_[k];
    }
    [[nodiscard]] double value(std::size_t k) const { return value_[k]; }

    /// y = A x over stored entries; per row, the stored order is the fold
    /// order (bit-identical to the dense product when the skipped entries
    /// are exact zeros).
    [[nodiscard]] Vector multiply(const Vector& x) const;

    /// y = A^T x, scatter form: rows in order, y[col] += v * x[row] —
    /// the same op order as Matrix::multiply_transposed restricted to the
    /// stored entries.
    [[nodiscard]] Vector multiply_transposed(const Vector& x) const;

    /// y[col] += v * x[row] for every stored entry, rows in order — the
    /// in-place scatter the stationary power iteration uses.
    void add_transposed_into(const Vector& x, Vector& y) const;

    /// A^T in CSR form, built by a stable counting sort: row r of the
    /// result holds every stored (row, col = r, v) entry of *this in
    /// original storage order. That stability is the determinism contract
    /// the parallel stationary iteration leans on: gathering the
    /// transpose's row t left to right accumulates into y[t] in exactly
    /// the order add_transposed_into's scatter would have, so the two
    /// forms produce bit-identical results when x is dense (no zero-skip
    /// divergence, see stationary_power_sparse).
    [[nodiscard]] SparseMatrix transposed() const;

    /// Materialize back to dense (tests / diagnostics).
    [[nodiscard]] Matrix to_dense() const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::size_t> row_offset_;  // size rows_ + 1
    std::vector<std::size_t> col_;
    std::vector<double> value_;
};

}  // namespace socbuf::linalg
