// LU factorization with partial pivoting, the direct solver behind CTMC
// stationary analysis and policy evaluation.
#pragma once

#include "linalg/matrix.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::linalg {

/// PA = LU factorization of a square matrix. Throws NumericalError if the
/// matrix is singular to working precision.
class LuDecomposition {
public:
    explicit LuDecomposition(Matrix a, double pivot_tolerance = 1e-13);

    /// Solve A x = b for x.
    [[nodiscard]] Vector solve(const Vector& b) const;

    /// Solve A^T x = b for x.
    [[nodiscard]] Vector solve_transposed(const Vector& b) const;

    /// det(A), from the product of pivots and the permutation sign.
    [[nodiscard]] double determinant() const;

    /// Smallest absolute pivot encountered — a cheap conditioning signal.
    [[nodiscard]] double min_pivot() const { return min_pivot_; }

    [[nodiscard]] std::size_t size() const { return lu_.rows(); }

private:
    Matrix lu_;                      // packed L (unit diag) and U
    std::vector<std::size_t> perm_;  // row permutation
    int perm_sign_ = 1;
    double min_pivot_ = 0.0;
};

/// One-shot convenience: solve A x = b. Throws NumericalError when singular.
[[nodiscard]] Vector solve_linear_system(const Matrix& a, const Vector& b);

/// Residual max-norm ||A x - b||_inf, for verification.
[[nodiscard]] double residual_inf(const Matrix& a, const Vector& x,
                                  const Vector& b);

}  // namespace socbuf::linalg
