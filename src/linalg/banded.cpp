#include "linalg/banded.hpp"

#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace socbuf::linalg {

Bandwidths bandwidths_of(const Matrix& dense) {
    SOCBUF_REQUIRE_MSG(dense.square(), "bandwidths of a non-square matrix");
    Bandwidths bw;
    for (std::size_t r = 0; r < dense.rows(); ++r)
        for (std::size_t c = 0; c < dense.cols(); ++c) {
            if (dense(r, c) == 0.0) continue;
            if (r > c) bw.lower = std::max(bw.lower, r - c);
            if (c > r) bw.upper = std::max(bw.upper, c - r);
        }
    return bw;
}

BandedMatrix::BandedMatrix(std::size_t n, std::size_t lower,
                           std::size_t upper)
    : n_(n),
      lower_(lower),
      upper_(upper),
      width_(lower + upper + 1),
      band_(n * width_, 0.0) {
    SOCBUF_REQUIRE_MSG(n > 0, "empty banded matrix");
}

double& BandedMatrix::at(std::size_t r, std::size_t c) {
    SOCBUF_REQUIRE_MSG(in_band(r, c), "banded element outside the band");
    return band_[r * width_ + (c + lower_ - r)];
}

double BandedMatrix::get(std::size_t r, std::size_t c) const {
    SOCBUF_REQUIRE_MSG(r < n_ && c < n_, "banded index out of range");
    if (!in_band(r, c)) return 0.0;
    return band_[r * width_ + (c + lower_ - r)];
}

Matrix BandedMatrix::to_dense() const {
    Matrix out(n_, n_);
    for (std::size_t r = 0; r < n_; ++r) {
        const std::size_t lo = r >= lower_ ? r - lower_ : 0;
        const std::size_t hi = std::min(n_ - 1, r + upper_);
        for (std::size_t c = lo; c <= hi; ++c) out(r, c) = get(r, c);
    }
    return out;
}

BandedLu::BandedLu(const BandedMatrix& a, double pivot_tolerance)
    : n_(a.size()),
      lower_(a.lower()),
      // Partial pivoting can push U's band out to lower + upper; the
      // factor stores that widened upper band (gbtrf's fill rows).
      upper_(std::min(a.size() - 1, a.lower() + a.upper())),
      width_(lower_ + upper_ + 1),
      band_(a.size() * width_, 0.0),
      ipiv_(a.size(), 0) {
    for (std::size_t r = 0; r < n_; ++r) {
        const std::size_t lo = r >= lower_ ? r - lower_ : 0;
        const std::size_t hi = std::min(n_ - 1, r + a.upper());
        for (std::size_t c = lo; c <= hi; ++c) fac(r, c) = a.get(r, c);
    }
    min_pivot_ = std::numeric_limits<double>::infinity();

    // Mirror of the dense LuDecomposition loop restricted to the band:
    // column k's candidates below row k + lower are exact zeros in a
    // banded matrix and can never win the strictly-greater test, so the
    // restricted pivot search picks the dense choice; the restricted
    // update range skips only multiply-by-exact-zero no-ops. Multipliers
    // stay in the slot where they were computed (rows swap only over the
    // active columns), and solve() applies ipiv_ lazily.
    for (std::size_t k = 0; k < n_; ++k) {
        const std::size_t rmax = std::min(n_ - 1, k + lower_);
        const std::size_t cmax = std::min(n_ - 1, k + upper_);
        std::size_t pivot_row = k;
        double pivot_mag = std::fabs(fac(k, k));
        for (std::size_t r = k + 1; r <= rmax; ++r) {
            const double mag = std::fabs(fac(r, k));
            if (mag > pivot_mag) {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if (pivot_mag <= pivot_tolerance)
            throw util::NumericalError(
                "banded LU: matrix is singular to working precision "
                "(pivot " +
                std::to_string(pivot_mag) + " at column " +
                std::to_string(k) + ")");
        ipiv_[k] = pivot_row;
        if (pivot_row != k)
            for (std::size_t c = k; c <= cmax; ++c)
                std::swap(fac(k, c), fac(pivot_row, c));
        min_pivot_ = std::min(min_pivot_, pivot_mag);
        const double inv_pivot = 1.0 / fac(k, k);
        for (std::size_t r = k + 1; r <= rmax; ++r) {
            const double factor = fac(r, k) * inv_pivot;
            fac(r, k) = factor;
            if (factor == 0.0) continue;
            for (std::size_t c = k + 1; c <= cmax; ++c)
                fac(r, c) -= factor * fac(k, c);
        }
    }
}

Vector BandedLu::solve(const Vector& b) const {
    SOCBUF_REQUIRE_MSG(b.size() == n_, "solve: rhs size mismatch");
    Vector x = b;
    // Forward substitution with interleaved interchanges (gbtrs): each
    // subtraction uses the same multiplier and the same fully-eliminated
    // operand, in the same ascending-step order, as the dense forward
    // substitution over the pre-permuted rhs.
    for (std::size_t k = 0; k < n_; ++k) {
        if (ipiv_[k] != k) std::swap(x[k], x[ipiv_[k]]);
        const double xk = x[k];
        const std::size_t rmax = std::min(n_ - 1, k + lower_);
        for (std::size_t r = k + 1; r <= rmax; ++r)
            x[r] -= fac(r, k) * xk;
    }
    // Back substitution on the (widened-band) U.
    for (std::size_t ri = n_; ri-- > 0;) {
        double acc = x[ri];
        const std::size_t cmax = std::min(n_ - 1, ri + upper_);
        for (std::size_t c = ri + 1; c <= cmax; ++c)
            acc -= fac(ri, c) * x[c];
        x[ri] = acc / fac(ri, ri);
    }
    return x;
}

Vector solve_banded_system(const BandedMatrix& a, const Vector& b) {
    return BandedLu(a).solve(b);
}

}  // namespace socbuf::linalg
