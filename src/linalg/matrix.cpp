#include "linalg/matrix.hpp"

#include "util/contracts.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <cmath>

namespace socbuf::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<Vector>& rows) {
    SOCBUF_REQUIRE_MSG(!rows.empty(), "from_rows needs at least one row");
    const std::size_t cols = rows.front().size();
    Matrix m(rows.size(), cols);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        SOCBUF_REQUIRE_MSG(rows[r].size() == cols,
                           "all rows must have equal length");
        for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
    }
    return m;
}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
    SOCBUF_REQUIRE_MSG(r < rows_ && c < cols_, "matrix index out of range");
    return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
    SOCBUF_REQUIRE_MSG(r < rows_ && c < cols_, "matrix index out of range");
    return (*this)(r, c);
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
}

Vector Matrix::multiply(const Vector& x) const {
    SOCBUF_REQUIRE_MSG(x.size() == cols_, "A*x size mismatch");
    Vector y(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        const double* row = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
        y[r] = acc;
    }
    return y;
}

Vector Matrix::multiply_transposed(const Vector& x) const {
    SOCBUF_REQUIRE_MSG(x.size() == rows_, "A^T*x size mismatch");
    Vector y(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        const double* row = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
    }
    return y;
}

Matrix Matrix::multiply(const Matrix& other) const {
    SOCBUF_REQUIRE_MSG(cols_ == other.rows_, "A*B shape mismatch");
    Matrix out(rows_, other.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = (*this)(r, k);
            if (a == 0.0) continue;
            const double* brow = other.data_.data() + k * other.cols_;
            double* orow = out.data_.data() + r * other.cols_;
            for (std::size_t c = 0; c < other.cols_; ++c)
                orow[c] += a * brow[c];
        }
    }
    return out;
}

Matrix Matrix::add(const Matrix& other) const {
    SOCBUF_REQUIRE_MSG(rows_ == other.rows_ && cols_ == other.cols_,
                       "A+B shape mismatch");
    Matrix out = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += other.data_[i];
    return out;
}

Matrix Matrix::scaled(double s) const {
    Matrix out = *this;
    for (double& v : out.data_) v *= s;
    return out;
}

double Matrix::infinity_norm() const {
    double best = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < cols_; ++c)
            acc += std::fabs((*this)(r, c));
        best = std::max(best, acc);
    }
    return best;
}

double Matrix::max_abs() const {
    double best = 0.0;
    for (double v : data_) best = std::max(best, std::fabs(v));
    return best;
}

std::string Matrix::to_string(int precision) const {
    std::string out;
    for (std::size_t r = 0; r < rows_; ++r) {
        out += "[ ";
        for (std::size_t c = 0; c < cols_; ++c) {
            out += util::format_fixed((*this)(r, c), precision);
            out += ' ';
        }
        out += "]\n";
    }
    return out;
}

Vector add(const Vector& a, const Vector& b) {
    SOCBUF_REQUIRE(a.size() == b.size());
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
    return out;
}

Vector subtract(const Vector& a, const Vector& b) {
    SOCBUF_REQUIRE(a.size() == b.size());
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
    return out;
}

Vector scale(const Vector& a, double s) {
    Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
    return out;
}

double dot(const Vector& a, const Vector& b) {
    SOCBUF_REQUIRE(a.size() == b.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
    return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
    double best = 0.0;
    for (double v : a) best = std::max(best, std::fabs(v));
    return best;
}

double sum(const Vector& a) {
    double acc = 0.0;
    for (double v : a) acc += v;
    return acc;
}

double max_abs_diff(const Vector& a, const Vector& b) {
    SOCBUF_REQUIRE(a.size() == b.size());
    double best = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        best = std::max(best, std::fabs(a[i] - b[i]));
    return best;
}

double span(const Vector& a) {
    if (a.empty()) return 0.0;
    auto [lo, hi] = std::minmax_element(a.begin(), a.end());
    return *hi - *lo;
}

}  // namespace socbuf::linalg
