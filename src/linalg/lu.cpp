#include "linalg/lu.hpp"

#include "util/contracts.hpp"

#include <cmath>
#include <limits>
#include <numeric>

namespace socbuf::linalg {

LuDecomposition::LuDecomposition(Matrix a, double pivot_tolerance)
    : lu_(std::move(a)) {
    SOCBUF_REQUIRE_MSG(lu_.square(), "LU requires a square matrix");
    const std::size_t n = lu_.rows();
    SOCBUF_REQUIRE_MSG(n > 0, "LU of an empty matrix");
    perm_.resize(n);
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});
    min_pivot_ = std::numeric_limits<double>::infinity();

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude in column k.
        std::size_t pivot_row = k;
        double pivot_mag = std::fabs(lu_(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            const double mag = std::fabs(lu_(r, k));
            if (mag > pivot_mag) {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if (pivot_mag <= pivot_tolerance)
            throw util::NumericalError(
                "LU: matrix is singular to working precision (pivot " +
                std::to_string(pivot_mag) + " at column " +
                std::to_string(k) + ")");
        if (pivot_row != k) {
            for (std::size_t c = 0; c < n; ++c)
                std::swap(lu_(k, c), lu_(pivot_row, c));
            std::swap(perm_[k], perm_[pivot_row]);
            perm_sign_ = -perm_sign_;
        }
        min_pivot_ = std::min(min_pivot_, pivot_mag);
        const double inv_pivot = 1.0 / lu_(k, k);
        for (std::size_t r = k + 1; r < n; ++r) {
            const double factor = lu_(r, k) * inv_pivot;
            lu_(r, k) = factor;
            if (factor == 0.0) continue;
            for (std::size_t c = k + 1; c < n; ++c)
                lu_(r, c) -= factor * lu_(k, c);
        }
    }
}

Vector LuDecomposition::solve(const Vector& b) const {
    const std::size_t n = lu_.rows();
    SOCBUF_REQUIRE_MSG(b.size() == n, "solve: rhs size mismatch");
    Vector x(n);
    // Forward substitution with permuted rhs (L has unit diagonal).
    for (std::size_t r = 0; r < n; ++r) {
        double acc = b[perm_[r]];
        for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
        x[r] = acc;
    }
    // Back substitution on U.
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = x[ri];
        for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
        x[ri] = acc / lu_(ri, ri);
    }
    return x;
}

Vector LuDecomposition::solve_transposed(const Vector& b) const {
    const std::size_t n = lu_.rows();
    SOCBUF_REQUIRE_MSG(b.size() == n, "solve_transposed: rhs size mismatch");
    // A^T x = b  <=>  U^T L^T P x = b.
    Vector y(n);
    // Forward substitution with U^T (lower triangular with diag of U).
    for (std::size_t r = 0; r < n; ++r) {
        double acc = b[r];
        for (std::size_t c = 0; c < r; ++c) acc -= lu_(c, r) * y[c];
        y[r] = acc / lu_(r, r);
    }
    // Back substitution with L^T (unit upper triangular).
    for (std::size_t ri = n; ri-- > 0;) {
        double acc = y[ri];
        for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(c, ri) * y[c];
        y[ri] = acc;
    }
    // Undo the permutation: x[perm[i]] = y[i].
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = y[i];
    return x;
}

double LuDecomposition::determinant() const {
    double det = static_cast<double>(perm_sign_);
    for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
    return det;
}

Vector solve_linear_system(const Matrix& a, const Vector& b) {
    return LuDecomposition(a).solve(b);
}

double residual_inf(const Matrix& a, const Vector& x, const Vector& b) {
    const Vector ax = a.multiply(x);
    return max_abs_diff(ax, b);
}

}  // namespace socbuf::linalg
