// Dense row-major matrix and free-function vector algebra. Sized for the
// problems socbuf solves (CTMC generators and policy-evaluation systems of a
// few thousand states); no expression templates, no views — plain,
// predictable code per the Core Guidelines' "make simple things simple".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace socbuf::linalg {

using Vector = std::vector<double>;

class Matrix {
public:
    Matrix() = default;

    /// rows x cols matrix, zero-initialized (or filled with `fill`).
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// Build from nested initializer-style data; all rows must be equal
    /// length.
    static Matrix from_rows(const std::vector<Vector>& rows);

    /// n x n identity.
    static Matrix identity(std::size_t n);

    [[nodiscard]] std::size_t rows() const { return rows_; }
    [[nodiscard]] std::size_t cols() const { return cols_; }
    [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }
    [[nodiscard]] bool square() const { return rows_ == cols_; }

    double& operator()(std::size_t r, std::size_t c) {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const {
        return data_[r * cols_ + c];
    }

    /// Checked element access.
    double& at(std::size_t r, std::size_t c);
    [[nodiscard]] double at(std::size_t r, std::size_t c) const;

    /// Raw storage (row-major), useful for tight solver loops.
    [[nodiscard]] const std::vector<double>& data() const { return data_; }
    std::vector<double>& data() { return data_; }

    [[nodiscard]] Matrix transposed() const;

    /// Matrix-vector product; x.size() must equal cols().
    [[nodiscard]] Vector multiply(const Vector& x) const;

    /// y = A^T x ; x.size() must equal rows().
    [[nodiscard]] Vector multiply_transposed(const Vector& x) const;

    /// Matrix-matrix product; other.rows() must equal cols().
    [[nodiscard]] Matrix multiply(const Matrix& other) const;

    /// Element-wise addition of same-shape matrices.
    [[nodiscard]] Matrix add(const Matrix& other) const;

    /// this * s, element-wise.
    [[nodiscard]] Matrix scaled(double s) const;

    /// Maximum absolute row sum (induced infinity norm).
    [[nodiscard]] double infinity_norm() const;

    /// Maximum absolute element.
    [[nodiscard]] double max_abs() const;

    /// Human-readable rendering for diagnostics.
    [[nodiscard]] std::string to_string(int precision = 4) const;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

// ---- free vector helpers ---------------------------------------------------

/// Element-wise a + b (sizes must match).
[[nodiscard]] Vector add(const Vector& a, const Vector& b);

/// Element-wise a - b (sizes must match).
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);

/// s * a.
[[nodiscard]] Vector scale(const Vector& a, double s);

/// Dot product (sizes must match).
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
[[nodiscard]] double norm2(const Vector& a);

/// Maximum absolute entry; 0 for an empty vector.
[[nodiscard]] double norm_inf(const Vector& a);

/// Sum of entries.
[[nodiscard]] double sum(const Vector& a);

/// max_i |a_i - b_i| (sizes must match).
[[nodiscard]] double max_abs_diff(const Vector& a, const Vector& b);

/// Difference between the largest and smallest entry (span seminorm),
/// used by relative value iteration's stopping rule.
[[nodiscard]] double span(const Vector& a);

}  // namespace socbuf::linalg
