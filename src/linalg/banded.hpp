// Banded storage and banded LU with partial pivoting (LAPACK gbtrf-style).
//
// Subsystem policy-evaluation systems are banded: transitions move one
// flow's occupancy by one, so |target - state| never exceeds the packing
// stride. A banded factorization costs O(n * kl * (kl + ku)) instead of
// the dense O(n^3) — the structural win behind the sparse PI path.
//
// Bit-identity contract: on a matrix whose entries outside the declared
// band are exact zeros, BandedLu performs the *same pivot choices and the
// same arithmetic* as the dense LuDecomposition — partial pivoting only
// ever finds candidates within kl rows of the diagonal (everything below
// is an exact zero that can never win the strictly-greater magnitude
// test), and the dense elimination's updates outside the band multiply
// exact zeros (no-ops). The factorization keeps multipliers in the slot
// where they were computed and applies row interchanges to the right-hand
// side lazily during solve (the gbtrf/gbtrs convention), which applies
// the identical multiplier/operand products in the identical order as the
// dense forward/back substitution. linalg_test pins solve() bit-identical
// to the dense path on random banded systems.
#pragma once

#include "linalg/matrix.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::linalg {

/// Lower/upper bandwidth of a matrix: max (r - c) / (c - r) over nonzero
/// entries.
struct Bandwidths {
    std::size_t lower = 0;
    std::size_t upper = 0;
};

[[nodiscard]] Bandwidths bandwidths_of(const Matrix& dense);

/// An n x n matrix with entries confined to c in [r - lower, r + upper].
/// Writes outside the band throw; reads outside return 0.
class BandedMatrix {
public:
    BandedMatrix(std::size_t n, std::size_t lower, std::size_t upper);

    [[nodiscard]] std::size_t size() const { return n_; }
    [[nodiscard]] std::size_t lower() const { return lower_; }
    [[nodiscard]] std::size_t upper() const { return upper_; }

    [[nodiscard]] bool in_band(std::size_t r, std::size_t c) const {
        return r < n_ && c < n_ && c + lower_ >= r && c <= r + upper_;
    }

    /// Checked in-band element reference.
    [[nodiscard]] double& at(std::size_t r, std::size_t c);
    /// Element value; exact 0.0 outside the band.
    [[nodiscard]] double get(std::size_t r, std::size_t c) const;

    /// Materialize to dense (tests / diagnostics).
    [[nodiscard]] Matrix to_dense() const;

private:
    std::size_t n_ = 0;
    std::size_t lower_ = 0;
    std::size_t upper_ = 0;
    std::size_t width_ = 0;       // lower_ + upper_ + 1
    std::vector<double> band_;    // band_[r * width_ + (c - r + lower_)]
};

/// PA = LU of a banded matrix; partial pivoting widens U's band to
/// lower + upper (extra fill rows are part of the storage). Throws
/// NumericalError when singular to working precision, exactly like the
/// dense LuDecomposition.
class BandedLu {
public:
    explicit BandedLu(const BandedMatrix& a, double pivot_tolerance = 1e-13);

    /// Solve A x = b; bit-identical to LuDecomposition::solve on the same
    /// (banded) matrix.
    [[nodiscard]] Vector solve(const Vector& b) const;

    [[nodiscard]] double min_pivot() const { return min_pivot_; }
    [[nodiscard]] std::size_t size() const { return n_; }

private:
    [[nodiscard]] double& fac(std::size_t r, std::size_t c) {
        return band_[r * width_ + (c + lower_ - r)];
    }
    [[nodiscard]] double fac(std::size_t r, std::size_t c) const {
        return band_[r * width_ + (c + lower_ - r)];
    }

    std::size_t n_ = 0;
    std::size_t lower_ = 0;
    std::size_t upper_ = 0;   // effective upper band of U: lower + upper
    std::size_t width_ = 0;   // 2 * lower_ + upper(original) + 1
    std::vector<double> band_;
    std::vector<std::size_t> ipiv_;  // row interchanged with k at step k
    double min_pivot_ = 0.0;
};

/// One-shot convenience: solve A x = b for banded A.
[[nodiscard]] Vector solve_banded_system(const BandedMatrix& a,
                                         const Vector& b);

}  // namespace socbuf::linalg
