#include "nonlinear/newton.hpp"

#include "linalg/lu.hpp"
#include "util/contracts.hpp"

#include <cmath>

namespace socbuf::nonlinear {

const char* to_string(NewtonOutcome outcome) {
    switch (outcome) {
        case NewtonOutcome::kConverged: return "converged";
        case NewtonOutcome::kConvergedInfeasible:
            return "converged-infeasible";
        case NewtonOutcome::kSingularJacobian: return "singular-jacobian";
        case NewtonOutcome::kLineSearchFailed: return "line-search-failed";
        case NewtonOutcome::kIterationLimit: return "iteration-limit";
        case NewtonOutcome::kDiverged: return "diverged";
    }
    return "?";
}

namespace {

linalg::Matrix fd_jacobian(const CoupledBusModel& model,
                           const linalg::Vector& x,
                           const linalg::Vector& fx, double eps) {
    const std::size_t n = x.size();
    linalg::Matrix j(n, n);
    linalg::Vector xp = x;
    for (std::size_t c = 0; c < n; ++c) {
        const double h = eps * std::max(1.0, std::fabs(x[c]));
        xp[c] = x[c] + h;
        const linalg::Vector fp = model.residual(xp);
        xp[c] = x[c];
        for (std::size_t r = 0; r < n; ++r)
            j(r, c) = (fp[r] - fx[r]) / h;
    }
    return j;
}

bool has_nan(const linalg::Vector& v) {
    for (double e : v)
        if (!std::isfinite(e)) return true;
    return false;
}

}  // namespace

NewtonResult solve_newton(const CoupledBusModel& model,
                          const linalg::Vector& x0,
                          const NewtonOptions& options) {
    SOCBUF_REQUIRE_MSG(x0.size() == model.unknown_count(),
                       "starting point has wrong dimension");
    NewtonResult out;
    out.x = x0;
    linalg::Vector fx = model.residual(out.x);
    double fnorm = linalg::norm_inf(fx);
    const double initial_norm = fnorm;

    for (std::size_t it = 0; it < options.max_iterations; ++it) {
        out.iterations = it;
        out.residual_norm = fnorm;
        if (fnorm < options.tolerance) {
            const auto decoded = model.decode(out.x);
            out.outcome = decoded.feasible
                              ? NewtonOutcome::kConverged
                              : NewtonOutcome::kConvergedInfeasible;
            return out;
        }

        linalg::Vector step;
        try {
            const linalg::Matrix j =
                fd_jacobian(model, out.x, fx, options.fd_epsilon);
            step = linalg::LuDecomposition(j).solve(fx);
        } catch (const util::NumericalError&) {
            out.outcome = NewtonOutcome::kSingularJacobian;
            return out;
        }

        if (options.line_search) {
            // Backtracking line search on ||F||.
            double alpha = 1.0;
            bool improved = false;
            while (alpha >= options.min_step) {
                linalg::Vector candidate = out.x;
                for (std::size_t i = 0; i < candidate.size(); ++i)
                    candidate[i] -= alpha * step[i];
                const linalg::Vector fc = model.residual(candidate);
                if (has_nan(fc)) {
                    alpha *= 0.5;
                    continue;
                }
                const double cnorm = linalg::norm_inf(fc);
                if (cnorm < fnorm * (1.0 - 1e-4 * alpha)) {
                    out.x = std::move(candidate);
                    fx = fc;
                    fnorm = cnorm;
                    improved = true;
                    break;
                }
                alpha *= 0.5;
            }
            if (!improved) {
                out.outcome = NewtonOutcome::kLineSearchFailed;
                out.residual_norm = fnorm;
                return out;
            }
        } else {
            // Full Newton step, no globalization.
            for (std::size_t i = 0; i < out.x.size(); ++i)
                out.x[i] -= step[i];
            fx = model.residual(out.x);
            if (has_nan(fx)) {
                out.outcome = NewtonOutcome::kDiverged;
                return out;
            }
            fnorm = linalg::norm_inf(fx);
        }
        if (!std::isfinite(fnorm) || fnorm > 1e6 * (initial_norm + 1.0)) {
            out.outcome = NewtonOutcome::kDiverged;
            out.residual_norm = fnorm;
            return out;
        }
    }
    out.outcome = NewtonOutcome::kIterationLimit;
    out.residual_norm = fnorm;
    return out;
}

}  // namespace socbuf::nonlinear
