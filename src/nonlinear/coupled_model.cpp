#include "nonlinear/coupled_model.hpp"

#include "ctmc/generator.hpp"
#include "ctmc/stationary.hpp"
#include "traffic/routing.hpp"
#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>

namespace socbuf::nonlinear {

namespace {

/// Mixed-radix helpers over per-flow caps.
std::size_t state_count_of(const std::vector<long>& caps) {
    std::size_t n = 1;
    for (long c : caps) n *= static_cast<std::size_t>(c) + 1;
    return n;
}

void decode_state(std::size_t index, const std::vector<long>& caps,
                  std::vector<long>& occ) {
    occ.resize(caps.size());
    for (std::size_t f = 0; f < caps.size(); ++f) {
        const std::size_t radix = static_cast<std::size_t>(caps[f]) + 1;
        occ[f] = static_cast<long>(index % radix);
        index /= radix;
    }
}

std::size_t encode_delta(std::size_t index, std::size_t flow, long delta,
                         const std::vector<long>& caps) {
    // index +- stride(flow).
    std::size_t stride = 1;
    for (std::size_t f = 0; f < flow; ++f)
        stride *= static_cast<std::size_t>(caps[f]) + 1;
    return delta > 0 ? index + stride : index - stride;
}

/// Longest-queue policy: local flow served in this state (ties -> lowest
/// index); caps.size() when all queues are empty.
std::size_t served_flow(const std::vector<long>& occ) {
    std::size_t best = occ.size();
    long best_len = 0;
    for (std::size_t f = 0; f < occ.size(); ++f) {
        if (occ[f] > best_len) {
            best_len = occ[f];
            best = f;
        }
    }
    return best;
}

}  // namespace

CoupledBusModel::CoupledBusModel(const arch::TestSystem& system,
                                 const split::SplitResult& split,
                                 const CoupledModelOptions& options)
    : split_(split), options_(options) {
    SOCBUF_REQUIRE_MSG(options.site_cap >= 1, "site cap must be >= 1");

    site_to_bus_.assign(split_.sites.size(), static_cast<std::size_t>(-1));
    site_to_local_.assign(split_.sites.size(), static_cast<std::size_t>(-1));

    // Upstream feeders per global site, from the flow routes.
    const auto routes = traffic::compute_routes(system);
    std::vector<std::vector<Feeder>> feeders(split_.sites.size());
    for (const auto& r : routes) {
        const double rate = system.flows[r.flow_id].rate;
        for (std::size_t hop = 1; hop < r.sites.size(); ++hop)
            feeders[r.sites[hop]].push_back(Feeder{r.sites[hop - 1], rate});
    }

    n_unknowns_ = 0;
    for (std::size_t k = 0; k < split_.subsystems.size(); ++k) {
        const auto& sub = split_.subsystems[k];
        BusBlock block;
        block.subsystem = k;
        for (std::size_t local = 0; local < sub.flows.size(); ++local) {
            const auto& f = sub.flows[local];
            block.caps.push_back(options.site_cap);
            block.feeders.push_back(feeders[f.site]);
            // Exogenous inflow = traffic entering the network at this site
            // (processor sites only; bridge sites are fed by upstream
            // service, which the coupling computes).
            block.exo_rate.push_back(
                feeders[f.site].empty() ? f.arrival_rate : 0.0);
            site_to_bus_[f.site] = buses_.size();
            site_to_local_[f.site] = local;
        }
        block.n_states = state_count_of(block.caps);
        block.x_offset = n_unknowns_;
        n_unknowns_ += block.n_states;
        buses_.push_back(std::move(block));
    }
}

std::size_t CoupledBusModel::bus_state_count(std::size_t bus_index) const {
    SOCBUF_REQUIRE(bus_index < buses_.size());
    return buses_[bus_index].n_states;
}

std::size_t CoupledBusModel::bilinear_term_count() const {
    // One bilinear family per (bridge feeder, downstream balance row):
    // lambda_g multiplies every pi_j(s) with room at g, and is itself a sum
    // over the upstream bus's full-state indicator.
    std::size_t count = 0;
    for (const auto& bus : buses_) {
        std::size_t bridge_feeders = 0;
        for (const auto& fs : bus.feeders) bridge_feeders += fs.size();
        count += bridge_feeders * bus.n_states;
    }
    return count;
}

std::vector<double> CoupledBusModel::site_blocking(
    const linalg::Vector& x) const {
    std::vector<double> blocking(split_.sites.size(), 0.0);
    std::vector<long> occ;
    for (const auto& bus : buses_) {
        const auto& sub = split_.subsystems[bus.subsystem];
        for (std::size_t s = 0; s < bus.n_states; ++s) {
            decode_state(s, bus.caps, occ);
            const double p = x[bus.x_offset + s];
            for (std::size_t f = 0; f < bus.caps.size(); ++f)
                if (occ[f] == bus.caps[f])
                    blocking[sub.flows[f].site] += p;
        }
    }
    return blocking;
}

std::vector<double> CoupledBusModel::effective_rates(
    const BusBlock& bus, const std::vector<double>& blocking) const {
    std::vector<double> rates(bus.caps.size(), 0.0);
    for (std::size_t f = 0; f < bus.caps.size(); ++f) {
        rates[f] = bus.exo_rate[f];
        for (const auto& feeder : bus.feeders[f]) {
            // Reduced-load thinning: traffic survives its upstream buffer
            // with probability (1 - B_prev). B_prev is linear in the
            // upstream bus's distribution => this term is bilinear.
            rates[f] += feeder.rate *
                        std::max(0.0, 1.0 - blocking[feeder.prev_site]);
        }
    }
    return rates;
}

linalg::Vector CoupledBusModel::balance_product(
    const BusBlock& bus, const std::vector<double>& rates,
    const double* pi) const {
    const auto& sub = split_.subsystems[bus.subsystem];
    linalg::Vector out(bus.n_states, 0.0);
    std::vector<long> occ;
    for (std::size_t s = 0; s < bus.n_states; ++s) {
        const double p = pi[s];
        decode_state(s, bus.caps, occ);
        double exit = 0.0;
        for (std::size_t f = 0; f < bus.caps.size(); ++f) {
            if (occ[f] < bus.caps[f] && rates[f] > 0.0) {
                const std::size_t to = encode_delta(s, f, +1, bus.caps);
                out[to] += p * rates[f];
                exit += rates[f];
            }
        }
        const std::size_t serve = served_flow(occ);
        if (serve < bus.caps.size()) {
            const std::size_t to = encode_delta(s, serve, -1, bus.caps);
            out[to] += p * sub.service_rate;
            exit += sub.service_rate;
        }
        out[s] -= p * exit;
    }
    return out;
}

linalg::Vector CoupledBusModel::residual(const linalg::Vector& x) const {
    SOCBUF_REQUIRE_MSG(x.size() == n_unknowns_, "bad unknown vector size");
    const auto blocking = site_blocking(x);
    linalg::Vector out(n_unknowns_, 0.0);
    for (const auto& bus : buses_) {
        const auto rates = effective_rates(bus, blocking);
        const auto product =
            balance_product(bus, rates, x.data() + bus.x_offset);
        // n-1 balance components + normalization.
        for (std::size_t s = 1; s < bus.n_states; ++s)
            out[bus.x_offset + s - 1] = product[s];
        double total = 0.0;
        for (std::size_t s = 0; s < bus.n_states; ++s)
            total += x[bus.x_offset + s];
        out[bus.x_offset + bus.n_states - 1] = total - 1.0;
    }
    return out;
}

linalg::Vector CoupledBusModel::initial_uniform() const {
    linalg::Vector x(n_unknowns_, 0.0);
    for (const auto& bus : buses_) {
        const double p = 1.0 / static_cast<double>(bus.n_states);
        for (std::size_t s = 0; s < bus.n_states; ++s)
            x[bus.x_offset + s] = p;
    }
    return x;
}

linalg::Vector CoupledBusModel::initial_random(
    rng::RandomEngine& engine) const {
    linalg::Vector x(n_unknowns_, 0.0);
    for (const auto& bus : buses_) {
        double total = 0.0;
        for (std::size_t s = 0; s < bus.n_states; ++s) {
            const double v = engine.exponential(1.0);  // Dirichlet(1,..,1)
            x[bus.x_offset + s] = v;
            total += v;
        }
        for (std::size_t s = 0; s < bus.n_states; ++s)
            x[bus.x_offset + s] /= total;
    }
    return x;
}

CoupledBusModel::Decoded CoupledBusModel::decode(const linalg::Vector& x,
                                                 double tolerance) const {
    Decoded d;
    d.feasible = true;
    for (const auto& bus : buses_) {
        linalg::Vector pi(bus.n_states);
        double total = 0.0;
        for (std::size_t s = 0; s < bus.n_states; ++s) {
            pi[s] = x[bus.x_offset + s];
            if (pi[s] < -tolerance) d.feasible = false;
            total += pi[s];
        }
        if (std::fabs(total - 1.0) > 1e-6) d.feasible = false;
        d.pi.push_back(std::move(pi));
    }
    d.site_blocking = site_blocking(x);
    // Loss rate: offered * blocking at each site, using effective rates.
    for (const auto& bus : buses_) {
        const auto& sub = split_.subsystems[bus.subsystem];
        const auto rates = effective_rates(bus, d.site_blocking);
        for (std::size_t f = 0; f < bus.caps.size(); ++f)
            d.total_loss_rate +=
                rates[f] * d.site_blocking[sub.flows[f].site];
    }
    return d;
}

linalg::Vector CoupledBusModel::bus_stationary(
    const BusBlock& bus, const std::vector<double>& rates) const {
    const auto& sub = split_.subsystems[bus.subsystem];
    ctmc::Generator gen(bus.n_states);
    std::vector<long> occ;
    for (std::size_t s = 0; s < bus.n_states; ++s) {
        decode_state(s, bus.caps, occ);
        for (std::size_t f = 0; f < bus.caps.size(); ++f)
            if (occ[f] < bus.caps[f] && rates[f] > 0.0)
                gen.add_rate(s, encode_delta(s, f, +1, bus.caps), rates[f]);
        const std::size_t serve = served_flow(occ);
        if (serve < bus.caps.size())
            gen.add_rate(s, encode_delta(s, serve, -1, bus.caps),
                         sub.service_rate);
    }
    return ctmc::stationary_power(gen, 1e-12);
}

CoupledBusModel::FixedPointResult CoupledBusModel::solve_fixed_point(
    std::size_t max_iterations, double tolerance, double damping) const {
    SOCBUF_REQUIRE_MSG(damping > 0.0 && damping <= 1.0,
                       "damping must be in (0,1]");
    std::vector<double> blocking(split_.sites.size(), 0.0);
    linalg::Vector x(n_unknowns_, 0.0);
    FixedPointResult out;
    for (std::size_t it = 0; it < max_iterations; ++it) {
        // Solve every bus as a *linear* system given current blockings.
        for (const auto& bus : buses_) {
            const auto rates = effective_rates(bus, blocking);
            const auto pi = bus_stationary(bus, rates);
            for (std::size_t s = 0; s < bus.n_states; ++s)
                x[bus.x_offset + s] = pi[s];
        }
        const auto next = site_blocking(x);
        double change = 0.0;
        for (std::size_t s = 0; s < blocking.size(); ++s) {
            change = std::max(change, std::fabs(next[s] - blocking[s]));
            blocking[s] =
                damping * next[s] + (1.0 - damping) * blocking[s];
        }
        out.iterations = it + 1;
        out.final_change = change;
        if (change < tolerance) {
            out.converged = true;
            break;
        }
    }
    out.solution = decode(x);
    return out;
}

}  // namespace socbuf::nonlinear
