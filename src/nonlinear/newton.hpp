// Damped Newton for the monolithic quadratic system — the "Matlab 6.1
// nonlinear solver" stand-in. Jacobians are finite-difference; steps are
// backtracked on the residual norm; divergence, singular Jacobians and
// infeasible fixed points are all reported rather than hidden, because the
// failure modes *are* the experimental result (E5).
#pragma once

#include "linalg/matrix.hpp"
#include "nonlinear/coupled_model.hpp"

#include <cstddef>

namespace socbuf::nonlinear {

struct NewtonOptions {
    std::size_t max_iterations = 200;
    double tolerance = 1e-10;      // on ||F||_inf
    double min_step = 1e-12;       // backtracking floor
    double fd_epsilon = 1e-7;      // finite-difference step
    /// true: damped Newton with backtracking (modern globalization).
    /// false: full Newton steps — the behaviour of a plain nonlinear
    /// solver, and the mode in which the paper's failure reproduces.
    bool line_search = true;
};

enum class NewtonOutcome {
    kConverged,          // ||F|| below tolerance, solution feasible
    kConvergedInfeasible,  // solved the equations but left the simplex
    kSingularJacobian,
    kLineSearchFailed,   // no descent even at the smallest step
    kIterationLimit,
    kDiverged,           // residual blew up / NaN
};

[[nodiscard]] const char* to_string(NewtonOutcome outcome);

struct NewtonResult {
    NewtonOutcome outcome = NewtonOutcome::kIterationLimit;
    std::size_t iterations = 0;
    double residual_norm = 0.0;
    linalg::Vector x;

    [[nodiscard]] bool usable() const {
        return outcome == NewtonOutcome::kConverged;
    }
};

/// Solve model.residual(x) = 0 starting from `x0`.
[[nodiscard]] NewtonResult solve_newton(const CoupledBusModel& model,
                                        const linalg::Vector& x0,
                                        const NewtonOptions& options = {});

}  // namespace socbuf::nonlinear
