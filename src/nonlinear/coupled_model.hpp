// The monolithic model of a bridged architecture — the thing the paper
// shows is *quadratic* and could not be solved with a nonlinear solver
// (Matlab 6.1), motivating the split.
//
// Formulation. Fix the arbitration policy (longest-queue) so each bus is a
// CTMC over the occupancy vector of its buffer sites. Buses are coupled
// through bridges by reduced-load thinning: the inflow rate of a bridge
// site g fed from bus i is
//     lambda_g = sum_{flows via g} lambda_flow * (1 - B_prev(pi_i)),
// where the upstream blocking B_prev is *linear* in bus i's stationary
// distribution pi_i. Substituting into bus j's balance equations
// pi_j Q_j(lambda(pi)) = 0 makes them *bilinear* in (pi_j, pi_i): exactly
// the quadratic equality constraints the paper describes. The stacked
// system over all buses is square: per bus, n-1 balance components plus a
// normalization row.
#pragma once

#include "linalg/matrix.hpp"
#include "rng/engine.hpp"
#include "split/splitter.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::nonlinear {

struct CoupledModelOptions {
    /// Per-site occupancy cap in the monolithic model (state space grows as
    /// (cap+1)^sites per bus — keep small).
    long site_cap = 3;
};

class CoupledBusModel {
public:
    CoupledBusModel(const arch::TestSystem& system,
                    const split::SplitResult& split,
                    const CoupledModelOptions& options = {});

    /// Total number of unknowns (stacked per-bus state distributions).
    [[nodiscard]] std::size_t unknown_count() const { return n_unknowns_; }

    /// Number of bilinear pi_i * pi_j monomials in the stacked system —
    /// the paper's "number of quadratic terms depends on how many points
    /// ... buses are connected to each other".
    [[nodiscard]] std::size_t bilinear_term_count() const;

    /// Residual of the monolithic system at x.
    [[nodiscard]] linalg::Vector residual(const linalg::Vector& x) const;

    /// Uniform-distribution starting point.
    [[nodiscard]] linalg::Vector initial_uniform() const;

    /// Random stochastic starting point (per-bus simplex samples).
    [[nodiscard]] linalg::Vector initial_random(
        rng::RandomEngine& engine) const;

    struct Decoded {
        std::vector<linalg::Vector> pi;      // per bus
        std::vector<double> site_blocking;   // per site (global index)
        double total_loss_rate = 0.0;
        bool feasible = false;  // all entries >= -tol, sums == 1
    };
    [[nodiscard]] Decoded decode(const linalg::Vector& x,
                                 double tolerance = 1e-6) const;

    /// Split-style fixed point: holding bridge inflows fixed, solve each
    /// bus's *linear* stationary system exactly, update the inflows, and
    /// repeat. This is the computational essence of the paper's method.
    struct FixedPointResult {
        bool converged = false;
        std::size_t iterations = 0;
        double final_change = 0.0;
        Decoded solution;
    };
    [[nodiscard]] FixedPointResult solve_fixed_point(
        std::size_t max_iterations = 500, double tolerance = 1e-10,
        double damping = 0.7) const;

    [[nodiscard]] std::size_t bus_count() const { return buses_.size(); }
    [[nodiscard]] std::size_t bus_state_count(std::size_t bus_index) const;

private:
    struct Feeder {
        std::size_t prev_site = 0;  // global site id upstream
        double rate = 0.0;          // flow rate entering through it
    };
    struct BusBlock {
        std::size_t subsystem = 0;    // index into split_.subsystems
        std::vector<long> caps;       // per local flow
        std::vector<double> exo_rate;  // exogenous (processor-site) inflow
        /// For bridge sites: upstream feeders (empty for processor sites).
        std::vector<std::vector<Feeder>> feeders;
        std::size_t n_states = 0;
        std::size_t x_offset = 0;  // position in the stacked unknown vector
    };

    /// Blocking probability of every site given stacked distributions.
    [[nodiscard]] std::vector<double> site_blocking(
        const linalg::Vector& x) const;

    /// Effective per-local-flow inflow rates of one bus given blockings.
    [[nodiscard]] std::vector<double> effective_rates(
        const BusBlock& bus, const std::vector<double>& blocking) const;

    /// pi^T Q for one bus with the given inflow rates (length n_states).
    [[nodiscard]] linalg::Vector balance_product(
        const BusBlock& bus, const std::vector<double>& rates,
        const double* pi) const;

    /// Stationary distribution of one bus with inflow rates fixed.
    [[nodiscard]] linalg::Vector bus_stationary(
        const BusBlock& bus, const std::vector<double>& rates) const;

    const split::SplitResult split_;
    CoupledModelOptions options_;
    std::vector<BusBlock> buses_;
    std::vector<std::size_t> site_to_bus_;    // global site -> bus block
    std::vector<std::size_t> site_to_local_;  // global site -> local flow
    std::size_t n_unknowns_ = 0;
};

}  // namespace socbuf::nonlinear
