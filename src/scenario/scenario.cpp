#include "scenario/scenario.hpp"

#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace socbuf::scenario {

const char* to_string(Testbench testbench) {
    switch (testbench) {
        case Testbench::kFigure1: return "figure1";
        case Testbench::kNetworkProcessor: return "network-processor";
    }
    return "?";
}

arch::TestSystem ScenarioSpec::build_system(std::size_t variant) const {
    SOCBUF_REQUIRE_MSG(variant < variants.size(), "variant out of range");
    arch::TestSystem system =
        testbench == Testbench::kFigure1
            ? arch::figure1_system()
            : arch::network_processor_system(variants[variant].np);
    if (!variants[variant].label.empty())
        system.name += " [" + variants[variant].label + "]";
    return system;
}

core::SizingOptions ScenarioSpec::sizing_options(long budget) const {
    core::SizingOptions options;
    options.total_budget = budget;
    options.iterations = sizing_iterations;
    options.eval_replications = sizing_eval_replications;
    options.solver = solver;
    options.use_modulated_models = use_modulated_models;
    options.sim = sim;
    return options;
}

void ScenarioSpec::validate() const {
    SOCBUF_REQUIRE_MSG(!name.empty(), "a scenario needs a name");
    SOCBUF_REQUIRE_MSG(!variants.empty(), "a scenario needs >= 1 variant");
    SOCBUF_REQUIRE_MSG(!budgets.empty(), "a scenario needs >= 1 budget");
    for (const long b : budgets)
        SOCBUF_REQUIRE_MSG(b >= 1, "budgets must be >= 1");
    SOCBUF_REQUIRE_MSG(replications >= 1, "need >= 1 replication");
    SOCBUF_REQUIRE_MSG(sizing_eval_replications >= 1,
                       "need >= 1 sizing evaluation replication");
    SOCBUF_REQUIRE_MSG(sizing_iterations >= 1, "need >= 1 sizing iteration");
    SOCBUF_REQUIRE_MSG(timeout_threshold_scale > 0.0,
                       "timeout threshold scale must be positive");
    for (const auto& v : variants) {
        SOCBUF_REQUIRE_MSG(v.np.pe_per_cluster >= 1,
                           "pe_per_cluster must be >= 1");
        SOCBUF_REQUIRE_MSG(v.np.bus_rate_scale > 0.0 && v.np.load_scale > 0.0,
                           "testbench scales must be positive");
    }
}

namespace {

/// Shared evaluation defaults of the paper's experiments: the Figure 3 /
/// Table 1 horizon and the 2005 base seed.
void paper_sim_defaults(ScenarioSpec& spec) {
    spec.sim.horizon = 4000.0;
    spec.sim.warmup = 400.0;
    spec.sim.seed = 2005;
}

ScenarioSpec figure1_preset() {
    ScenarioSpec spec;
    spec.name = "figure1";
    spec.description =
        "The paper's Figure 1 sample architecture: four buses, two "
        "bridges, sized at two modest budgets.";
    spec.testbench = Testbench::kFigure1;
    spec.budgets = {24, 48};
    spec.replications = 5;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_baseline_preset() {
    ScenarioSpec spec;
    spec.name = "np-baseline";
    spec.description =
        "Network-processor testbench at nominal load — Table 1's budget "
        "sweep (160/320/640) with the paper's 10 replications.";
    spec.budgets = {160, 320, 640};
    spec.replications = 10;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_load_sweep_preset() {
    ScenarioSpec spec;
    spec.name = "np-load-sweep";
    spec.description =
        "Offered-load sweep on the network processor: every flow rate "
        "scaled to 80% / 100% / 125% of nominal at budget 320.";
    spec.variants.clear();
    for (const double scale : {0.8, 1.0, 1.25}) {
        ScenarioVariant v;
        v.label = "load=" + util::format_fixed(scale, 2);
        v.np.load_scale = scale;
        spec.variants.push_back(v);
    }
    spec.budgets = {320};
    spec.replications = 5;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_bus_speed_sweep_preset() {
    ScenarioSpec spec;
    spec.name = "np-bus-speed-sweep";
    spec.description =
        "Bus-speed sweep on the network processor: every bus service rate "
        "scaled to 80% / 100% / 125% of nominal at budget 320.";
    spec.variants.clear();
    for (const double scale : {0.8, 1.0, 1.25}) {
        ScenarioVariant v;
        v.label = "bus=" + util::format_fixed(scale, 2);
        v.np.bus_rate_scale = scale;
        spec.variants.push_back(v);
    }
    spec.budgets = {320};
    spec.replications = 5;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_cluster_scaling_preset() {
    ScenarioSpec spec;
    spec.name = "np-cluster-scaling";
    spec.description =
        "Architecture-size sweep: 2/4/6 processing elements per cluster "
        "(9/17/25 processors) under the same 320-unit budget.";
    spec.variants.clear();
    for (const std::size_t pe : {std::size_t{2}, std::size_t{4},
                                 std::size_t{6}}) {
        ScenarioVariant v;
        v.label = "pe=" + std::to_string(pe);
        v.np.pe_per_cluster = pe;
        spec.variants.push_back(v);
    }
    spec.budgets = {320};
    spec.replications = 5;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_bursty_heavy_preset() {
    ScenarioSpec spec;
    spec.name = "np-bursty-heavy";
    spec.description =
        "Overloaded bursty regime: 115% load with burst-aware (MMPP) "
        "subsystem models, at tight and nominal budgets.";
    spec.variants[0].label = "load=1.15";
    spec.variants[0].np.load_scale = 1.15;
    spec.budgets = {160, 320};
    spec.replications = 5;
    spec.use_modulated_models = true;
    paper_sim_defaults(spec);
    return spec;
}

}  // namespace

ScenarioRegistry::ScenarioRegistry() {
    add(figure1_preset());
    add(np_baseline_preset());
    add(np_load_sweep_preset());
    add(np_bus_speed_sweep_preset());
    add(np_cluster_scaling_preset());
    add(np_bursty_heavy_preset());
}

void ScenarioRegistry::add(ScenarioSpec spec) {
    spec.validate();
    for (auto& existing : specs_) {
        if (existing.name == spec.name) {
            existing = std::move(spec);
            return;
        }
    }
    specs_.push_back(std::move(spec));
}

bool ScenarioRegistry::contains(const std::string& name) const {
    for (const auto& spec : specs_)
        if (spec.name == name) return true;
    return false;
}

const ScenarioSpec& ScenarioRegistry::get(const std::string& name) const {
    for (const auto& spec : specs_)
        if (spec.name == name) return spec;
    util::raise_contract_violation("registry.contains(name)", __FILE__,
                                   __LINE__, "unknown scenario: " + name);
}

std::vector<std::string> ScenarioRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const auto& spec : specs_) out.push_back(spec.name);
    return out;
}

}  // namespace socbuf::scenario
