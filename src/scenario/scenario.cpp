#include "scenario/scenario.hpp"

#include "scenario/scenario_io.hpp"
#include "util/contracts.hpp"
#include "util/strings.hpp"

#include <utility>

namespace socbuf::scenario {

const char* to_string(Testbench testbench) {
    switch (testbench) {
        case Testbench::kFigure1: return "figure1";
        case Testbench::kNetworkProcessor: return "network-processor";
    }
    return "?";
}

bool testbench_from_string(const std::string& text, Testbench& out) {
    if (text == "figure1") out = Testbench::kFigure1;
    else if (text == "network-processor") out = Testbench::kNetworkProcessor;
    else return false;
    return true;
}

bool operator==(const ScenarioVariant& a, const ScenarioVariant& b) {
    return a.label == b.label && a.np == b.np;
}

bool operator==(const InsertionSpec& a, const InsertionSpec& b) {
    return a.search == b.search && a.candidates == b.candidates &&
           a.processor_site_cost == b.processor_site_cost &&
           a.bridge_site_cost == b.bridge_site_cost &&
           a.exhaustive_limit == b.exhaustive_limit;
}

bool operator==(const ScenarioSpec& a, const ScenarioSpec& b) {
    return a.name == b.name && a.description == b.description &&
           a.testbench == b.testbench && a.variants == b.variants &&
           a.budgets == b.budgets && a.replications == b.replications &&
           a.sizing_iterations == b.sizing_iterations &&
           a.sizing_eval_replications == b.sizing_eval_replications &&
           a.solver == b.solver && a.gauss_seidel == b.gauss_seidel &&
           a.use_modulated_models == b.use_modulated_models &&
           a.evaluate_timeout_policy == b.evaluate_timeout_policy &&
           a.timeout_threshold_scale == b.timeout_threshold_scale &&
           a.calibration_replications == b.calibration_replications &&
           a.insertion == b.insertion && a.sim == b.sim;
}

arch::TestSystem ScenarioSpec::build_system(std::size_t variant) const {
    SOCBUF_REQUIRE_MSG(variant < variants.size(), "variant out of range");
    arch::TestSystem system =
        testbench == Testbench::kFigure1
            ? arch::figure1_system()
            : arch::network_processor_system(variants[variant].np);
    if (!variants[variant].label.empty())
        system.name += " [" + variants[variant].label + "]";
    return system;
}

core::SizingOptions ScenarioSpec::sizing_options(long budget) const {
    core::SizingOptions options;
    options.total_budget = budget;
    options.iterations = sizing_iterations;
    options.eval_replications = sizing_eval_replications;
    options.solver = solver;
    options.gauss_seidel = gauss_seidel;
    options.use_modulated_models = use_modulated_models;
    options.sim = sim;
    return options;
}

void ScenarioSpec::validate() const {
    SOCBUF_REQUIRE_MSG(!name.empty(), "a scenario needs a name");
    SOCBUF_REQUIRE_MSG(!variants.empty(), "a scenario needs >= 1 variant");
    SOCBUF_REQUIRE_MSG(!budgets.empty(), "a scenario needs >= 1 budget");
    for (const long b : budgets)
        SOCBUF_REQUIRE_MSG(b >= 1, "budgets must be >= 1");
    SOCBUF_REQUIRE_MSG(replications >= 1, "need >= 1 replication");
    SOCBUF_REQUIRE_MSG(sizing_eval_replications >= 1,
                       "need >= 1 sizing evaluation replication");
    SOCBUF_REQUIRE_MSG(sizing_iterations >= 1, "need >= 1 sizing iteration");
    SOCBUF_REQUIRE_MSG(timeout_threshold_scale > 0.0,
                       "timeout threshold scale must be positive");
    SOCBUF_REQUIRE_MSG(calibration_replications >= 1,
                       "need >= 1 calibration replication");
    SOCBUF_REQUIRE_MSG(insertion.processor_site_cost > 0.0 &&
                           insertion.bridge_site_cost > 0.0,
                       "insertion site costs must be positive");
    for (const auto& c : insertion.candidates)
        SOCBUF_REQUIRE_MSG(!c.empty(),
                           "insertion candidate names must be non-empty");
    for (const auto& v : variants) {
        SOCBUF_REQUIRE_MSG(v.np.pe_per_cluster >= 1,
                           "pe_per_cluster must be >= 1");
        SOCBUF_REQUIRE_MSG(v.np.bus_rate_scale > 0.0 && v.np.load_scale > 0.0,
                           "testbench scales must be positive");
        SOCBUF_REQUIRE_MSG(
            v.np.cluster_pe.empty() || v.np.cluster_pe.size() == 4,
            "cluster_pe must be empty or name all four clusters");
        for (const std::size_t pe : v.np.cluster_pe)
            SOCBUF_REQUIRE_MSG(pe >= 2, "cluster_pe entries must be >= 2");
    }
}

namespace {

/// Shared evaluation defaults of the paper's experiments: the Figure 3 /
/// Table 1 horizon and the 2005 base seed.
void paper_sim_defaults(ScenarioSpec& spec) {
    spec.sim.horizon = 4000.0;
    spec.sim.warmup = 400.0;
    spec.sim.seed = 2005;
}

ScenarioSpec figure1_preset() {
    ScenarioSpec spec;
    spec.name = "figure1";
    spec.description =
        "The paper's Figure 1 sample architecture: four buses, two "
        "bridges, sized at two modest budgets.";
    spec.testbench = Testbench::kFigure1;
    spec.budgets = {24, 48};
    spec.replications = 5;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_baseline_preset() {
    ScenarioSpec spec;
    spec.name = "np-baseline";
    spec.description =
        "Network-processor testbench at nominal load — Table 1's budget "
        "sweep (160/320/640) with the paper's 10 replications.";
    spec.budgets = {160, 320, 640};
    spec.replications = 10;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_load_sweep_preset() {
    ScenarioSpec spec;
    spec.name = "np-load-sweep";
    spec.description =
        "Offered-load sweep on the network processor: every flow rate "
        "scaled to 80% / 100% / 125% of nominal at budget 320.";
    spec.variants.clear();
    for (const double scale : {0.8, 1.0, 1.25}) {
        ScenarioVariant v;
        v.label = "load=" + util::format_fixed(scale, 2);
        v.np.load_scale = scale;
        spec.variants.push_back(v);
    }
    spec.budgets = {320};
    spec.replications = 5;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_bus_speed_sweep_preset() {
    ScenarioSpec spec;
    spec.name = "np-bus-speed-sweep";
    spec.description =
        "Bus-speed sweep on the network processor: every bus service rate "
        "scaled to 80% / 100% / 125% of nominal at budget 320.";
    spec.variants.clear();
    for (const double scale : {0.8, 1.0, 1.25}) {
        ScenarioVariant v;
        v.label = "bus=" + util::format_fixed(scale, 2);
        v.np.bus_rate_scale = scale;
        spec.variants.push_back(v);
    }
    spec.budgets = {320};
    spec.replications = 5;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_cluster_scaling_preset() {
    ScenarioSpec spec;
    spec.name = "np-cluster-scaling";
    spec.description =
        "Architecture-size sweep: 2/4/6 processing elements per cluster "
        "(9/17/25 processors) under the same 320-unit budget.";
    spec.variants.clear();
    for (const std::size_t pe : {std::size_t{2}, std::size_t{4},
                                 std::size_t{6}}) {
        ScenarioVariant v;
        v.label = "pe=" + std::to_string(pe);
        v.np.pe_per_cluster = pe;
        spec.variants.push_back(v);
    }
    spec.budgets = {320};
    spec.replications = 5;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_cluster_asymmetry_preset() {
    ScenarioSpec spec;
    spec.name = "np-cluster-asymmetry";
    spec.description =
        "Topology sweep on the network processor: three vs four cluster "
        "bridges and asymmetric PE clusters under one 320-unit budget.";
    spec.variants.clear();
    {
        ScenarioVariant v;  // the nominal star, for reference
        v.label = "bridges=4";
        spec.variants.push_back(v);
    }
    {
        ScenarioVariant v;  // drop the crypto cluster: 3 bridges
        v.label = "bridges=3";
        v.np.crypto_cluster = false;
        spec.variants.push_back(v);
    }
    {
        ScenarioVariant v;  // front-loaded pipeline
        v.label = "asym=ingress-heavy";
        v.np.cluster_pe = {6, 4, 2, 4};
        spec.variants.push_back(v);
    }
    {
        ScenarioVariant v;  // back-loaded pipeline (deep scheduler pool)
        v.label = "asym=egress-heavy";
        v.np.cluster_pe = {2, 4, 4, 6};
        spec.variants.push_back(v);
    }
    spec.budgets = {320};
    spec.replications = 5;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec np_bursty_heavy_preset() {
    ScenarioSpec spec;
    spec.name = "np-bursty-heavy";
    spec.description =
        "Overloaded bursty regime: 115% load with burst-aware (MMPP) "
        "subsystem models, at tight and nominal budgets.";
    spec.variants[0].label = "load=1.15";
    spec.variants[0].np.load_scale = 1.15;
    spec.budgets = {160, 320};
    spec.replications = 5;
    spec.use_modulated_models = true;
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec insertion_figure1_preset() {
    ScenarioSpec spec;
    spec.name = "insertion-figure1";
    spec.description =
        "Placement search on the Figure 1 sample: all 16 plans over the "
        "four directional bridge buffers, exhaustively, at budget 24.";
    spec.testbench = Testbench::kFigure1;
    spec.budgets = {24};
    spec.replications = 3;
    spec.insertion.search = true;  // 4 candidates <= exhaustive_limit
    paper_sim_defaults(spec);
    return spec;
}

ScenarioSpec insertion_np_search_preset() {
    ScenarioSpec spec;
    spec.name = "insertion-np-search";
    spec.description =
        "Pruned placement search on a compact network processor: eight "
        "traffic-carrying bridge sites (> exhaustive_limit), dominance "
        "pruning against the 256-plan exhaustive space at budget 160.";
    spec.variants[0].np.pe_per_cluster = 2;
    spec.budgets = {160};
    spec.replications = 3;
    spec.sizing_iterations = 5;
    spec.insertion.search = true;  // 8 candidates > exhaustive_limit = 4
    paper_sim_defaults(spec);
    return spec;
}

}  // namespace

ScenarioRegistry::ScenarioRegistry() {
    add(figure1_preset());
    add(np_baseline_preset());
    add(np_load_sweep_preset());
    add(np_bus_speed_sweep_preset());
    add(np_cluster_scaling_preset());
    add(np_cluster_asymmetry_preset());
    add(np_bursty_heavy_preset());
    add(insertion_figure1_preset());
    add(insertion_np_search_preset());
    // The mixed-testbench default batch: the Figure 1 sample and Table 1's
    // budget sweep as one pipelined batch (two different testbenches on
    // one shared executor and solve cache).
    add_batch({"paper-suite",
               "The paper's two testbenches in one batch: figure1 plus "
               "np-baseline (Table 1's budget sweep).",
               {"figure1", "np-baseline"}});
    add_batch({"insertion-search",
               "Both placement-search presets — the exhaustive Figure 1 "
               "sweep and the pruned network-processor search — as one "
               "batch.",
               {"insertion-figure1", "insertion-np-search"}});
}

void ScenarioRegistry::add(ScenarioSpec spec) {
    spec.validate();
    for (auto& existing : specs_) {
        if (existing.name == spec.name) {
            existing = std::move(spec);
            return;
        }
    }
    specs_.push_back(std::move(spec));
}

bool ScenarioRegistry::contains(const std::string& name) const {
    for (const auto& spec : specs_)
        if (spec.name == name) return true;
    return false;
}

const ScenarioSpec& ScenarioRegistry::get(const std::string& name) const {
    for (const auto& spec : specs_)
        if (spec.name == name) return spec;
    util::raise_contract_violation("registry.contains(name)", __FILE__,
                                   __LINE__, "unknown scenario: " + name);
}

std::vector<std::string> ScenarioRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const auto& spec : specs_) out.push_back(spec.name);
    return out;
}

std::size_t ScenarioRegistry::load_json(const util::JsonValue& document) {
    return adopt_document(document_from_json(document));
}

std::size_t ScenarioRegistry::adopt_document(ScenarioDocument doc) {
    // Everything is already deserialized and validated; what remains is
    // the cross-reference check, done before the first add() so a bad
    // batch never half-applies the document (the load stays atomic).
    // Each batch member must resolve against the registry's scenarios or
    // the document's own.
    for (const auto& batch : doc.batches) {
        for (const auto& member : batch.scenarios) {
            bool known = contains(member);
            for (const auto& spec : doc.scenarios)
                known = known || spec.name == member;
            if (!known)
                throw ScenarioIoError(
                    "$.batches",
                    "batch '" + batch.name +
                        "' references unknown scenario: " + member);
        }
    }
    const std::size_t added = doc.scenarios.size();
    for (auto& spec : doc.scenarios) add(std::move(spec));
    for (auto& batch : doc.batches) add_batch(std::move(batch));
    return added;
}

std::size_t ScenarioRegistry::load_text(const std::string& text) {
    util::JsonValue document;
    try {
        document = util::JsonValue::parse(text);
    } catch (const util::JsonError& error) {
        throw ScenarioIoError("$", error.what());
    }
    return load_json(document);
}

std::size_t ScenarioRegistry::load_file(const std::string& path) {
    return adopt_document(load_scenario_document(path));
}

void ScenarioRegistry::merge(const ScenarioRegistry& other) {
    for (const auto& spec : other.specs_) add(spec);
    for (const auto& batch : other.batches_) add_batch(batch);
}

void ScenarioRegistry::add_batch(BatchPreset batch) {
    SOCBUF_REQUIRE_MSG(!batch.name.empty(), "a batch needs a name");
    SOCBUF_REQUIRE_MSG(!batch.scenarios.empty(),
                       "a batch needs >= 1 scenario");
    for (const auto& member : batch.scenarios)
        SOCBUF_REQUIRE_MSG(contains(member),
                           "batch '" + batch.name +
                               "' references unknown scenario: " + member);
    for (auto& existing : batches_) {
        if (existing.name == batch.name) {
            existing = std::move(batch);
            return;
        }
    }
    batches_.push_back(std::move(batch));
}

bool ScenarioRegistry::contains_batch(const std::string& name) const {
    for (const auto& batch : batches_)
        if (batch.name == name) return true;
    return false;
}

const BatchPreset& ScenarioRegistry::get_batch(const std::string& name) const {
    for (const auto& batch : batches_)
        if (batch.name == name) return batch;
    util::raise_contract_violation("registry.contains_batch(name)", __FILE__,
                                   __LINE__, "unknown batch: " + name);
}

std::vector<ScenarioSpec> ScenarioRegistry::expand(
    const std::string& name) const {
    if (contains_batch(name)) {
        std::vector<ScenarioSpec> specs;
        for (const auto& member : get_batch(name).scenarios)
            specs.push_back(get(member));
        return specs;
    }
    return {get(name)};
}

}  // namespace socbuf::scenario
