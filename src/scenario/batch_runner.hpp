// Deterministic, pipelined batch execution of scenarios on one shared
// executor.
//
// A batch expands its ScenarioSpecs into two deterministic job lists:
//
//   sizing jobs, one per (scenario, variant, budget): build the
//     testbench, run the BufferSizingEngine (through the batch-wide
//     ctmdp::SolveCache, so identical subsystem CTMDPs across rounds,
//     budgets and replications are solved once), and calibrate the
//     timeout policy when the spec asks for it;
//   evaluation jobs, one per (sizing job, replication): simulate the
//     constant and resized allocations (and optionally the timeout
//     policy) with seed = spec.sim.seed + replication.
//
// There is **no stage barrier** between the two: the runner submits every
// sizing job to one exec::TaskGraph up front, and each sizing job submits
// its own evaluation replications the moment it finishes — so evaluation
// work overlaps the remaining sizing work (BatchReport::eval_overlap
// counts how often) instead of the whole batch idling until the slowest
// sizing run completes. Scheduling is **priority-aware** on top: sizing
// jobs enter the graph at exec::Priority::kSizing and evaluation
// replications at exec::Priority::kEvaluation, so a finished sizing job's
// evaluations are claimed before still-queued sizing work — first results
// land as early as the pool allows (BatchReport::first_eval_latency_s
// measures it; BatchOptions::priority_scheduling = false restores plain
// FIFO claims for comparison — the report bits are identical either way,
// only the schedule moves). Sizing jobs keep the *shared* executor for
// their per-subsystem solves, per-round evaluation sims and timeout-
// calibration sims (spec.calibration_replications fans the latter):
// nested fan-outs on one pool are safe (the caller drives its own loop —
// see the nesting rule in exec/executor.hpp), so a lone sizing run still
// parallelizes internally.
//
// Every job writes an index-addressed slot and the runner folds the slots
// in expansion order, so a BatchReport is **bit-identical for any worker
// count, including 1** — the same contract the exec layer gives
// parallel_map, lifted to whole experiment batches. That covers the runs
// *and* the solve-cache counters (each resident key is solved exactly
// once, and every run tallies the algorithm behind each solution it
// consumed, so neither depends on scheduling). Two fields reflect the
// execution rather than the workload by design: `workers` records the
// width, and `eval_overlap` is a scheduling-dependent pipelining
// diagnostic; neither is serialized into the run data. A finite
// `cache_capacity` smaller than the batch's distinct-model count can
// additionally make the cache *counters* (never the results) depend on
// eviction order under concurrency — leave it 0 where counter
// determinism matters.
#pragma once

#include "core/allocation.hpp"
#include "ctmdp/solve_cache.hpp"
#include "exec/executor.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace socbuf::scenario {

struct BatchOptions {
    /// Share one solve cache across every engine run of the batch. Results
    /// are identical either way; this is purely a work-avoidance knob
    /// (and the thing bench_batch_scenarios measures).
    bool use_solve_cache = true;
    /// Entry budget for the batch-wide solve cache: 0 = unlimited (every
    /// entry lives for the batch), otherwise the least-recently-used
    /// entries are evicted beyond this many (ctmdp::SolveCache's LRU).
    /// Results are bit-identical for any value; see the header comment
    /// for what a tight budget does to the cache *counters*.
    std::size_t cache_capacity = 0;
    /// Run through a caller-owned cache instead of a fresh per-batch one
    /// (socbuf::Session passes its own here). Non-owning; when set,
    /// cache_capacity is ignored (the cache was built with its own) and
    /// the report echoes the shared cache's stats — clear() it between
    /// batches if per-batch counters matter. Ignored when use_solve_cache
    /// is false.
    ctmdp::SolveCache* shared_cache = nullptr;
    /// Approximate byte budget for the batch-wide solve cache: 0 =
    /// unlimited, otherwise LRU entries are evicted until
    /// stats().bytes_resident is back under budget (composes with
    /// cache_capacity; same pinning rules, same counter caveats as a
    /// tight capacity). Ignored when shared_cache is set — that cache
    /// was constructed with its own budget.
    std::size_t cache_byte_budget = 0;
    /// Claim-order evaluation replications ahead of still-queued sizing
    /// jobs (exec::Priority::kEvaluation > kSizing). Off = plain FIFO
    /// claims, the pre-priority schedule. Results are bit-identical
    /// either way — this knob moves only *when* jobs start, which is
    /// what first_eval_latency_s measures.
    bool priority_scheduling = true;
    /// Nearest-fingerprint warm starts in the batch's own solve cache:
    /// a miss whose model structure matches an already-solved entry
    /// seeds PI/VI with that entry's converged policy/bias. Saves
    /// iterations on budget sweeps, but seeded solves converge along a
    /// different trajectory — results agree to solver tolerance, NOT bit
    /// for bit — so this is opt-in and default off: the batch
    /// determinism contract (identical reports at any worker count)
    /// holds unconditionally only when it stays off. Ignored when
    /// shared_cache is set (that cache was constructed with its own
    /// warm flag) or when use_solve_cache is false.
    bool warm_start = false;
    /// Submit same-priority sizing jobs longest-first: jobs are ordered
    /// by descending estimated solve cost (per subsystem,
    /// (model_cap+1)^flows states x (flows+1) actions) before entering
    /// the task graph, so the biggest CTMDPs start before the small fry
    /// and the batch's makespan is not hostage to a monster job queued
    /// last. Pure submission-order change: results are folded in
    /// expansion order and stay bit-identical either way.
    bool longest_first = true;
    /// Force the red-black Gauss-Seidel VI sweep on every sizing job in
    /// the batch, on top of whatever each spec says (a spec with
    /// gauss_seidel = true keeps it either way). Opt-in like warm_start
    /// and with the same caveat: tolerance-level, not bit-identical,
    /// results. Off (the default) leaves the per-spec knob in charge and
    /// preserves the bit-identical-report contract for default-knob
    /// specs.
    bool gauss_seidel = false;
};

/// Outcome of one run's buffer-insertion placement search. Only present
/// (searched = true) when the spec's $.insertion.search asked for it;
/// default-spec runs never carry one, which keeps their serialized
/// reports byte-identical to pre-search socbuf.
struct InsertionRunReport {
    bool searched = false;
    /// Candidate bridge sites the winning placement kept / dropped, by
    /// site name, in site-id order.
    std::vector<std::string> selected_sites;
    std::vector<std::string> deselected_sites;
    /// Best weighted loss of the winning placement vs the fixed
    /// all-selected preset, both at the same total budget (deselected
    /// sites keep one passthrough slot off the top). searched_loss <=
    /// preset_loss by construction — the preset is always evaluated.
    double searched_loss = 0.0;
    double preset_loss = 0.0;
    std::size_t plans_evaluated = 0;
    std::size_t plans_pruned = 0;
    bool exhaustive = false;
};

/// One (scenario, variant, budget) outcome with its replicated evaluation.
struct ScenarioRunResult {
    std::string scenario;
    std::string variant;  // empty for single-variant scenarios
    long budget = 0;
    std::size_t replications = 0;

    /// Placement-search outcome; insertion.searched is false for
    /// default (search-off) specs.
    InsertionRunReport insertion;

    core::Allocation constant_alloc;  // uniform baseline
    core::Allocation resized_alloc;   // engine's best

    // Replication means, exactly as the experiment drivers compute them.
    std::vector<double> pre_loss;      // per processor, constant sizing
    std::vector<double> post_loss;     // per processor, after resizing
    std::vector<double> timeout_loss;  // per processor, timeout policy
    double pre_total = 0.0;
    double post_total = 0.0;
    double timeout_total = 0.0;  // 0 unless the spec evaluated timeouts
    double timeout_threshold = 0.0;

    std::size_t engine_rounds = 0;  // sizing iterations actually run
    std::size_t lp_solves = 0;
    std::size_t vi_solves = 0;
    std::size_t pi_solves = 0;

    /// Fractional loss reduction of resizing vs constant sizing.
    [[nodiscard]] double improvement() const {
        return pre_total > 0.0 ? 1.0 - post_total / pre_total : 0.0;
    }
};

struct BatchReport {
    /// Spec-major, then variant-major, then budget order — the expansion
    /// order, independent of which worker finished first.
    std::vector<ScenarioRunResult> runs;
    ctmdp::SolveCacheStats cache;  // zeros when the cache was disabled
    /// Whether the batch ran with the solve cache at all — lets report
    /// consumers tell "disabled" apart from "enabled but cold".
    bool cache_enabled = true;
    /// The cache's entry budget (0 = unlimited), echoed for the report.
    std::size_t cache_capacity = 0;
    /// The cache's byte budget (0 = unlimited), echoed for the report.
    std::size_t cache_byte_budget = 0;
    std::size_t workers = 1;
    /// Pipelining diagnostic: evaluation jobs that *started* while some
    /// other job's sizing run was still in flight — 0 under a serial
    /// executor, > 0 once the task graph overlaps the stages. Depends on
    /// scheduling by nature, so it is excluded from to_json()/to_csv().
    std::size_t eval_overlap = 0;
    /// Latency diagnostic: seconds from batch start until the *first*
    /// evaluation job completed — the time to the first usable result,
    /// which priority scheduling is designed to shrink (evaluations are
    /// claimed before queued sizing jobs). Wall-clock and scheduling
    /// dependent by nature, so — like eval_overlap — it is excluded from
    /// to_json()/to_csv(). Negative when the batch ran no evaluation.
    double first_eval_latency_s = -1.0;

    /// One row per run: totals, gain, solver work.
    [[nodiscard]] util::Table summary_table() const;
    /// The summary as RFC 4180 CSV.
    [[nodiscard]] std::string to_csv() const;
    /// Full structured report: per-processor means, allocations, cache
    /// stats. Deterministic (ordered keys, round-trip numbers).
    [[nodiscard]] std::string to_json(int indent = 2) const;
};

class BatchRunner {
public:
    explicit BatchRunner(exec::Executor& executor, BatchOptions options = {});

    /// Run every spec (validated first) and fold the results in expansion
    /// order. Deterministic for any executor width.
    [[nodiscard]] BatchReport run(const std::vector<ScenarioSpec>& specs);
    [[nodiscard]] BatchReport run(const ScenarioSpec& spec);

private:
    exec::Executor& executor_;
    BatchOptions options_;
};

}  // namespace socbuf::scenario
