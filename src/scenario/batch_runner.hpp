// Deterministic batch execution of scenarios on one shared executor.
//
// A batch expands its ScenarioSpecs into two deterministic job lists:
//
//   stage 1 — sizing jobs, one per (scenario, variant, budget): build the
//     testbench, run the BufferSizingEngine (through the batch-wide
//     ctmdp::SolveCache, so identical subsystem CTMDPs across rounds,
//     budgets and replications are solved once), and calibrate the timeout
//     policy when the spec asks for it;
//   stage 2 — evaluation jobs, one per (sizing job, replication): simulate
//     the constant and resized allocations (and optionally the timeout
//     policy) with seed = spec.sim.seed + replication.
//
// Both stages fan across the shared exec::Executor and fold their results
// in job-index order, so a BatchReport is **bit-identical for any worker
// count, including 1** — the same contract the exec layer gives
// parallel_map, lifted to whole experiment batches. That covers the runs
// *and* the solve-cache counters (each key is solved exactly once, and
// every run tallies the algorithm behind each solution it consumed, so
// neither depends on scheduling); the only field that reflects the width
// is `workers` itself. Jobs themselves run
// serially (see the nesting rule in exec/executor.hpp); a single-job stage
// instead runs inline on the caller with the shared executor, so a lone
// sizing run still parallelizes its subsystem solves.
#pragma once

#include "core/allocation.hpp"
#include "ctmdp/solve_cache.hpp"
#include "exec/executor.hpp"
#include "scenario/scenario.hpp"
#include "util/table.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace socbuf::scenario {

struct BatchOptions {
    /// Share one solve cache across every engine run of the batch. Results
    /// are identical either way; this is purely a work-avoidance knob
    /// (and the thing bench_batch_scenarios measures).
    bool use_solve_cache = true;
};

/// One (scenario, variant, budget) outcome with its replicated evaluation.
struct ScenarioRunResult {
    std::string scenario;
    std::string variant;  // empty for single-variant scenarios
    long budget = 0;
    std::size_t replications = 0;

    core::Allocation constant_alloc;  // uniform baseline
    core::Allocation resized_alloc;   // engine's best

    // Replication means, exactly as the experiment drivers compute them.
    std::vector<double> pre_loss;      // per processor, constant sizing
    std::vector<double> post_loss;     // per processor, after resizing
    std::vector<double> timeout_loss;  // per processor, timeout policy
    double pre_total = 0.0;
    double post_total = 0.0;
    double timeout_total = 0.0;  // 0 unless the spec evaluated timeouts
    double timeout_threshold = 0.0;

    std::size_t engine_rounds = 0;  // sizing iterations actually run
    std::size_t lp_solves = 0;
    std::size_t vi_solves = 0;
    std::size_t pi_solves = 0;

    /// Fractional loss reduction of resizing vs constant sizing.
    [[nodiscard]] double improvement() const {
        return pre_total > 0.0 ? 1.0 - post_total / pre_total : 0.0;
    }
};

struct BatchReport {
    /// Spec-major, then variant-major, then budget order — the expansion
    /// order, independent of which worker finished first.
    std::vector<ScenarioRunResult> runs;
    ctmdp::SolveCacheStats cache;  // zeros when the cache was disabled
    std::size_t workers = 1;

    /// One row per run: totals, gain, solver work.
    [[nodiscard]] util::Table summary_table() const;
    /// The summary as RFC 4180 CSV.
    [[nodiscard]] std::string to_csv() const;
    /// Full structured report: per-processor means, allocations, cache
    /// stats. Deterministic (ordered keys, round-trip numbers).
    [[nodiscard]] std::string to_json(int indent = 2) const;
};

class BatchRunner {
public:
    explicit BatchRunner(exec::Executor& executor, BatchOptions options = {});

    /// Run every spec (validated first) and fold the results in expansion
    /// order. Deterministic for any executor width.
    [[nodiscard]] BatchReport run(const std::vector<ScenarioSpec>& specs);
    [[nodiscard]] BatchReport run(const ScenarioSpec& spec);

private:
    exec::Executor& executor_;
    /// Context handed to jobs running *on* executor_'s workers: stateless
    /// when serial, so concurrent use from many jobs is safe.
    exec::Executor serial_{1};
    BatchOptions options_;
};

}  // namespace socbuf::scenario
