// Declarative scenario descriptions — the layer that turns "two hard-coded
// experiments" into a catalog of runnable workloads.
//
// A ScenarioSpec names a testbench preset (Figure 1 sample or the
// network-processor testbench), the parameter variants to build it at
// (NetworkProcessorParams scales: offered load, bus speed, cluster size),
// the buffer budgets to size under, how many evaluation replications to
// average, and the solver / model / simulation knobs of the sizing engine.
// A spec therefore expands into (variants x budgets) sizing runs and
// (variants x budgets x replications) evaluation jobs — the unit of work
// scenario::BatchRunner fans across a shared exec::Executor.
//
// ScenarioRegistry is the named-preset catalog (figure1, np-baseline, the
// np-* sweeps); tools (socbuf_cli) and benches look scenarios up by name
// instead of hard-coding parameters.
#pragma once

#include "arch/presets.hpp"
#include "core/engine.hpp"
#include "sim/config.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace socbuf::util {
class JsonValue;
}

namespace socbuf::scenario {

struct ScenarioDocument;  // scenario_io.hpp

/// Which reconstructed system a scenario runs on.
enum class Testbench { kFigure1, kNetworkProcessor };

[[nodiscard]] const char* to_string(Testbench testbench);
/// Inverse of to_string; false when `text` names no testbench.
[[nodiscard]] bool testbench_from_string(const std::string& text,
                                         Testbench& out);

/// One parameterization of the testbench. The label names the point in a
/// sweep ("load=0.8"); `np` is ignored by Testbench::kFigure1, which has
/// no free parameters.
struct ScenarioVariant {
    std::string label;
    arch::NetworkProcessorParams np;
};

[[nodiscard]] bool operator==(const ScenarioVariant& a,
                              const ScenarioVariant& b);
inline bool operator!=(const ScenarioVariant& a, const ScenarioVariant& b) {
    return !(a == b);
}

/// Buffer-insertion knobs of a scenario — schema v2's $.insertion block.
/// With search off (the default) every run keeps the fixed all-selected
/// preset placement and reports are byte-identical to pre-search socbuf;
/// with search on, each (variant, budget) run first searches placements
/// over the candidate bridge sites (insertion::search_placements) and
/// then sizes under the winning placement at the same total budget.
struct InsertionSpec {
    bool search = false;
    /// Candidate site names (BufferSite::name) to search over; empty
    /// means every traffic-carrying bridge site of the built system.
    /// Names must resolve to bridge sites of the testbench.
    std::vector<std::string> candidates;
    /// Per-kind unit costs fed to arch::SiteCostModel — the plan-cost
    /// axis of the search's dominance pruning. The sizing budget itself
    /// is unaffected.
    double processor_site_cost = 1.0;
    double bridge_site_cost = 1.0;
    /// Candidate counts up to this run the exhaustive 2^n sweep; larger
    /// sets take the pruned staged search.
    std::size_t exhaustive_limit = 4;
};

[[nodiscard]] bool operator==(const InsertionSpec& a, const InsertionSpec& b);
inline bool operator!=(const InsertionSpec& a, const InsertionSpec& b) {
    return !(a == b);
}

struct ScenarioSpec {
    std::string name;
    std::string description;
    Testbench testbench = Testbench::kNetworkProcessor;
    /// At least one; single-variant scenarios use one empty-labeled entry.
    std::vector<ScenarioVariant> variants{{std::string{}, {}}};
    /// Total buffer budgets to size under (one sizing run per budget).
    std::vector<long> budgets{320};
    /// Evaluation replications per (variant, budget); replication r
    /// simulates with seed sim.seed + r, exactly like the experiment
    /// drivers, so means are comparable across scenarios.
    std::size_t replications = 1;
    int sizing_iterations = 10;
    /// Replications of each sizing round's evaluation sim inside the
    /// engine (SizingOptions::eval_replications): > 1 smooths the
    /// measured-rate feedback and fans the sims across the shared
    /// executor; 1 keeps the classic single-sim rounds.
    std::size_t sizing_eval_replications = 1;
    core::SolverChoice solver = core::SolverChoice::kAuto;
    /// Run the VI rung with the red-black Gauss-Seidel sweep
    /// (SizingOptions::gauss_seidel): fewer iterations on large models,
    /// tolerance-level (not bit-identical) gains. Default off — the
    /// bit-identical-report contract holds whenever this is off.
    bool gauss_seidel = false;
    /// Burst-aware (MMPP) subsystem CTMDPs instead of Poisson models.
    bool use_modulated_models = false;
    /// Also evaluate the paper's timeout-drop policy on the constant
    /// allocation (the third bar of Figure 3).
    bool evaluate_timeout_policy = false;
    double timeout_threshold_scale = 4.0;
    /// Replications of the timeout-calibration simulation ("the average
    /// time spent by a request in a buffer", read without the timeout
    /// policy): > 1 averages independent no-timeout sims (seeds
    /// sim.seed, sim.seed + 1, ...), fanned across the shared executor
    /// inside the sizing job; 1 (the default) reproduces the classic
    /// single-sim calibration bit for bit. Ignored unless
    /// evaluate_timeout_policy is set.
    std::size_t calibration_replications = 1;
    /// Buffer-insertion search (schema v2); default = search off, fixed
    /// all-selected placement, byte-identical legacy reports.
    InsertionSpec insertion;
    sim::SimConfig sim;

    /// Build the testbench system for `variant` (index into variants).
    [[nodiscard]] arch::TestSystem build_system(std::size_t variant) const;

    /// Engine options for one budget. threads is left at 1: inside a batch
    /// the fan-out happens *across* jobs, on the shared executor.
    [[nodiscard]] core::SizingOptions sizing_options(long budget) const;

    /// variants x budgets — the number of sizing runs the spec expands to.
    [[nodiscard]] std::size_t run_count() const {
        return variants.size() * budgets.size();
    }
    /// run_count x replications — the number of evaluation jobs.
    [[nodiscard]] std::size_t job_count() const {
        return run_count() * replications;
    }

    /// Structural checks (non-empty variants/budgets, positive budgets and
    /// replications, ...). Throws util::ContractViolation.
    void validate() const;
};

/// Field-by-field equality — the contract behind the JSON round trip
/// (scenario_io): from_json(to_json(spec)) == spec for every spec whose
/// numbers survive a double round trip (all built-in presets do).
[[nodiscard]] bool operator==(const ScenarioSpec& a, const ScenarioSpec& b);
inline bool operator!=(const ScenarioSpec& a, const ScenarioSpec& b) {
    return !(a == b);
}

/// A named list of registered scenarios run as one batch — the unit the
/// CLI's `run <name>` accepts beside single scenarios. Batches may mix
/// testbenches (the built-in "paper-suite" runs figure1 and np-baseline
/// together).
struct BatchPreset {
    std::string name;
    std::string description;
    std::vector<std::string> scenarios;  // registered scenario names
};

/// The named-preset catalog. Default construction registers the built-in
/// presets; add() lets callers define their own (same-name replaces).
/// Scenarios are equally loadable from JSON files (load_file/load_json,
/// the scenario_io schema), so the catalog is data, not code.
class ScenarioRegistry {
public:
    ScenarioRegistry();

    void add(ScenarioSpec spec);
    [[nodiscard]] bool contains(const std::string& name) const;
    /// Throws util::ContractViolation for unknown names.
    [[nodiscard]] const ScenarioSpec& get(const std::string& name) const;
    /// Registered names in registration order (presets first).
    [[nodiscard]] std::vector<std::string> names() const;
    [[nodiscard]] std::size_t size() const { return specs_.size(); }
    [[nodiscard]] const std::vector<ScenarioSpec>& specs() const {
        return specs_;
    }

    /// Register every scenario in a scenario_io JSON document (a single
    /// spec object or {"scenarios": [...]}); returns how many were added.
    /// Throws ScenarioIoError with the offending JSON path on malformed
    /// input; on error the registry is unchanged.
    std::size_t load_json(const util::JsonValue& document);
    /// As load_json, on raw JSON text (parse errors become ScenarioIoError).
    std::size_t load_text(const std::string& text);
    /// As load_json, reading `path`; unreadable files throw ScenarioIoError
    /// naming the file.
    std::size_t load_file(const std::string& path);
    /// Adopt every scenario and batch preset of `other` (same-name
    /// replaces, registration order appends).
    void merge(const ScenarioRegistry& other);

    /// Named batch presets (lists of registered scenarios).
    void add_batch(BatchPreset batch);
    [[nodiscard]] bool contains_batch(const std::string& name) const;
    /// Throws util::ContractViolation for unknown names.
    [[nodiscard]] const BatchPreset& get_batch(const std::string& name) const;
    [[nodiscard]] const std::vector<BatchPreset>& batches() const {
        return batches_;
    }
    /// Resolve `name` to specs: a batch expands to its members, a plain
    /// scenario to itself. Throws util::ContractViolation for unknown
    /// names.
    [[nodiscard]] std::vector<ScenarioSpec> expand(
        const std::string& name) const;

private:
    /// Adopt a deserialized document atomically: batch members are
    /// resolved (against existing + incoming scenarios) before anything
    /// is registered. Returns the scenario count.
    std::size_t adopt_document(ScenarioDocument doc);

    std::vector<ScenarioSpec> specs_;
    std::vector<BatchPreset> batches_;
};

}  // namespace socbuf::scenario
