#include "scenario/scenario_io.hpp"

#include "util/contracts.hpp"
#include "util/strings.hpp"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

namespace socbuf::scenario {

namespace {

const char* kind_name(const util::JsonValue& value) {
    switch (value.kind()) {
        case util::JsonValue::Kind::kNull: return "null";
        case util::JsonValue::Kind::kBool: return "a boolean";
        case util::JsonValue::Kind::kNumber: return "a number";
        case util::JsonValue::Kind::kString: return "a string";
        case util::JsonValue::Kind::kArray: return "an array";
        case util::JsonValue::Kind::kObject: return "an object";
    }
    return "?";
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
    throw ScenarioIoError(path, what);
}

/// Strict object access: every key read is remembered, finish() rejects
/// whatever was not — the unknown-key diagnostic names the exact path.
class ObjectReader {
public:
    ObjectReader(const util::JsonValue& value, std::string path)
        : value_(value), path_(std::move(path)) {
        if (!value_.is_object())
            fail(path_, std::string("expected an object, got ") +
                            kind_name(value_));
    }

    /// The member, or nullptr when absent (absent = keep the default).
    const util::JsonValue* find(const std::string& key) {
        seen_.insert(key);
        return value_.contains(key) ? &value_.at(key) : nullptr;
    }

    const util::JsonValue& require(const std::string& key) {
        const util::JsonValue* member = find(key);
        if (member == nullptr) fail(path_, "missing required key '" + key + "'");
        return *member;
    }

    void finish() const {
        for (const auto& [key, member] : value_.members()) {
            (void)member;
            if (seen_.count(key) == 0)
                fail(path_ + "." + key, "unknown key");
        }
    }

    [[nodiscard]] const std::string& path() const { return path_; }

private:
    const util::JsonValue& value_;
    std::string path_;
    std::set<std::string> seen_;
};

double read_number(const util::JsonValue& value, const std::string& path) {
    if (value.kind() != util::JsonValue::Kind::kNumber)
        fail(path, std::string("expected a number, got ") + kind_name(value));
    return value.as_number();
}

bool read_bool(const util::JsonValue& value, const std::string& path) {
    if (value.kind() != util::JsonValue::Kind::kBool)
        fail(path, std::string("expected a boolean, got ") + kind_name(value));
    return value.as_bool();
}

std::string read_string(const util::JsonValue& value,
                        const std::string& path) {
    if (value.kind() != util::JsonValue::Kind::kString)
        fail(path, std::string("expected a string, got ") + kind_name(value));
    return value.as_string();
}

/// A whole number >= `min`. JSON numbers are doubles; fractions and
/// magnitudes past 2^53 (where doubles lose exactness) are malformed.
long long read_integer(const util::JsonValue& value, const std::string& path,
                       long long min) {
    const double number = read_number(value, path);
    if (std::floor(number) != number || std::abs(number) > 9.007199254740992e15)
        fail(path, "expected a whole number");
    const auto integer = static_cast<long long>(number);
    if (integer < min)
        fail(path, "must be >= " + std::to_string(min));
    return integer;
}

const util::JsonValue& element(const util::JsonValue& array,
                               const std::string& path) {
    if (!array.is_array())
        fail(path, std::string("expected an array, got ") + kind_name(array));
    return array;
}

std::string at_index(const std::string& path, std::size_t index) {
    return path + "[" + std::to_string(index) + "]";
}

arch::NetworkProcessorParams np_from_json(const util::JsonValue& value,
                                          const std::string& path) {
    arch::NetworkProcessorParams np;
    ObjectReader reader(value, path);
    if (const auto* pe = reader.find("pe_per_cluster")) {
        np.pe_per_cluster = static_cast<std::size_t>(
            read_integer(*pe, path + ".pe_per_cluster", 2));
    }
    if (const auto* scale = reader.find("bus_rate_scale")) {
        np.bus_rate_scale = read_number(*scale, path + ".bus_rate_scale");
        if (!(np.bus_rate_scale > 0.0))
            fail(path + ".bus_rate_scale", "must be > 0");
    }
    if (const auto* scale = reader.find("load_scale")) {
        np.load_scale = read_number(*scale, path + ".load_scale");
        if (!(np.load_scale > 0.0)) fail(path + ".load_scale", "must be > 0");
    }
    if (const auto* cluster = reader.find("cluster_pe")) {
        const std::string cluster_path = path + ".cluster_pe";
        element(*cluster, cluster_path);
        for (std::size_t i = 0; i < cluster->size(); ++i)
            np.cluster_pe.push_back(static_cast<std::size_t>(read_integer(
                cluster->at(i), at_index(cluster_path, i), 2)));
        if (!np.cluster_pe.empty() && np.cluster_pe.size() != 4)
            fail(cluster_path,
                 "must be empty or name all four clusters (ingress, "
                 "classify, crypto, egress)");
    }
    if (const auto* crypto = reader.find("crypto_cluster"))
        np.crypto_cluster = read_bool(*crypto, path + ".crypto_cluster");
    reader.finish();
    return np;
}

ScenarioVariant variant_from_json(const util::JsonValue& value,
                                  const std::string& path) {
    ScenarioVariant variant;
    ObjectReader reader(value, path);
    if (const auto* label = reader.find("label"))
        variant.label = read_string(*label, path + ".label");
    if (const auto* np = reader.find("np"))
        variant.np = np_from_json(*np, path + ".np");
    reader.finish();
    return variant;
}

sim::SimConfig sim_from_json(const util::JsonValue& value,
                             const std::string& path) {
    sim::SimConfig sim;
    ObjectReader reader(value, path);
    if (const auto* horizon = reader.find("horizon")) {
        sim.horizon = read_number(*horizon, path + ".horizon");
        if (!(sim.horizon > 0.0)) fail(path + ".horizon", "must be > 0");
    }
    const bool explicit_warmup = reader.find("warmup") != nullptr;
    if (explicit_warmup) {
        sim.warmup = read_number(value.at("warmup"), path + ".warmup");
        if (!(sim.warmup >= 0.0)) fail(path + ".warmup", "must be >= 0");
    }
    if (const auto* seed = reader.find("seed"))
        sim.seed = static_cast<std::uint64_t>(
            read_integer(*seed, path + ".seed", 0));
    if (const auto* arbiter = reader.find("arbiter")) {
        const std::string name = read_string(*arbiter, path + ".arbiter");
        if (!arbiter_from_string(name, sim.arbiter))
            fail(path + ".arbiter",
                 "unknown arbiter '" + name +
                     "' (expected fixed-priority, round-robin, "
                     "longest-queue or weighted-random)");
    }
    if (sim.warmup >= sim.horizon) {
        // Blame the key the document actually wrote: with no explicit
        // warmup the conflict comes from the horizon undercutting the
        // *default* warmup, which would otherwise be invisible.
        if (explicit_warmup)
            fail(path + ".warmup", "must be below the simulation horizon");
        fail(path + ".horizon",
             "must exceed the default warmup (" +
                 util::format_compact(sim.warmup) + "); set " + path +
                 ".warmup explicitly");
    }
    reader.finish();
    return sim;
}

InsertionSpec insertion_from_json(const util::JsonValue& value,
                                  const std::string& path) {
    InsertionSpec insertion;
    ObjectReader reader(value, path);
    if (const auto* search = reader.find("search"))
        insertion.search = read_bool(*search, path + ".search");
    if (const auto* candidates = reader.find("candidates")) {
        const std::string candidates_path = path + ".candidates";
        element(*candidates, candidates_path);
        for (std::size_t i = 0; i < candidates->size(); ++i) {
            const std::string name = read_string(
                candidates->at(i), at_index(candidates_path, i));
            if (name.empty())
                fail(at_index(candidates_path, i), "must not be empty");
            insertion.candidates.push_back(name);
        }
    }
    if (const auto* cost = reader.find("processor_site_cost")) {
        insertion.processor_site_cost =
            read_number(*cost, path + ".processor_site_cost");
        if (!(insertion.processor_site_cost > 0.0))
            fail(path + ".processor_site_cost", "must be > 0");
    }
    if (const auto* cost = reader.find("bridge_site_cost")) {
        insertion.bridge_site_cost =
            read_number(*cost, path + ".bridge_site_cost");
        if (!(insertion.bridge_site_cost > 0.0))
            fail(path + ".bridge_site_cost", "must be > 0");
    }
    if (const auto* limit = reader.find("exhaustive_limit"))
        insertion.exhaustive_limit = static_cast<std::size_t>(
            read_integer(*limit, path + ".exhaustive_limit", 0));
    reader.finish();
    return insertion;
}

BatchPreset batch_from_json(const util::JsonValue& value,
                            const std::string& path) {
    BatchPreset batch;
    ObjectReader reader(value, path);
    batch.name = read_string(reader.require("name"), path + ".name");
    if (batch.name.empty()) fail(path + ".name", "must not be empty");
    if (const auto* description = reader.find("description"))
        batch.description = read_string(*description, path + ".description");
    const util::JsonValue& members = reader.require("scenarios");
    const std::string members_path = path + ".scenarios";
    element(members, members_path);
    if (members.size() == 0)
        fail(members_path, "must name at least one scenario");
    for (std::size_t i = 0; i < members.size(); ++i) {
        const std::string member =
            read_string(members.at(i), at_index(members_path, i));
        if (member.empty())
            fail(at_index(members_path, i), "must not be empty");
        batch.scenarios.push_back(member);
    }
    reader.finish();
    return batch;
}

util::JsonValue np_to_json(const arch::NetworkProcessorParams& np) {
    util::JsonValue node = util::JsonValue::object();
    node.set("pe_per_cluster", np.pe_per_cluster);
    node.set("bus_rate_scale", np.bus_rate_scale);
    node.set("load_scale", np.load_scale);
    util::JsonValue cluster = util::JsonValue::array();
    for (const std::size_t pe : np.cluster_pe) cluster.push_back(pe);
    node.set("cluster_pe", std::move(cluster));
    node.set("crypto_cluster", np.crypto_cluster);
    return node;
}

util::JsonValue insertion_to_json(const InsertionSpec& insertion) {
    util::JsonValue node = util::JsonValue::object();
    node.set("search", insertion.search);
    util::JsonValue candidates = util::JsonValue::array();
    for (const auto& name : insertion.candidates) candidates.push_back(name);
    node.set("candidates", std::move(candidates));
    node.set("processor_site_cost", insertion.processor_site_cost);
    node.set("bridge_site_cost", insertion.bridge_site_cost);
    node.set("exhaustive_limit", insertion.exhaustive_limit);
    return node;
}

util::JsonValue batch_to_json(const BatchPreset& batch) {
    util::JsonValue node = util::JsonValue::object();
    node.set("name", batch.name);
    node.set("description", batch.description);
    util::JsonValue members = util::JsonValue::array();
    for (const auto& member : batch.scenarios) members.push_back(member);
    node.set("scenarios", std::move(members));
    return node;
}

util::JsonValue sim_to_json(const sim::SimConfig& sim,
                            const std::string& path) {
    // A spec-level sim config is a plain evaluation setup; the engine-owned
    // fields (arbitration weights, timeout state) are run artifacts, never
    // scenario inputs — a spec carrying them cannot round-trip, so refuse
    // to serialize it rather than drop them silently.
    if (sim.timeout_enabled || sim.timeout_threshold != 0.0 ||
        !sim.site_weights.empty() || !sim.site_timeout_thresholds.empty())
        fail(path,
             "engine-owned sim fields (timeouts, site weights) are not part "
             "of the scenario schema; use evaluate_timeout_policy");
    // JSON numbers are doubles: a seed past 2^53 would be emitted rounded
    // and rejected on the way back in — refuse it here, symmetrically with
    // read_integer's exactness bound, so every exported spec is loadable.
    if (sim.seed > (std::uint64_t{1} << 53))
        fail(path + ".seed",
             "must be <= 2^53 to round-trip exactly through JSON");
    util::JsonValue node = util::JsonValue::object();
    node.set("horizon", sim.horizon);
    node.set("warmup", sim.warmup);
    node.set("seed", sim.seed);
    node.set("arbiter", to_string(sim.arbiter));
    return node;
}

}  // namespace

const char* to_string(core::SolverChoice solver) {
    switch (solver) {
        case core::SolverChoice::kAuto: return "auto";
        case core::SolverChoice::kLp: return "lp";
        case core::SolverChoice::kValueIteration: return "value-iteration";
        case core::SolverChoice::kPolicyIteration: return "policy-iteration";
    }
    return "?";
}

bool solver_from_string(const std::string& text, core::SolverChoice& out) {
    if (text == "auto") out = core::SolverChoice::kAuto;
    else if (text == "lp") out = core::SolverChoice::kLp;
    else if (text == "value-iteration") out = core::SolverChoice::kValueIteration;
    else if (text == "policy-iteration") out = core::SolverChoice::kPolicyIteration;
    else return false;
    return true;
}

const char* to_string(sim::ArbiterKind arbiter) {
    switch (arbiter) {
        case sim::ArbiterKind::kFixedPriority: return "fixed-priority";
        case sim::ArbiterKind::kRoundRobin: return "round-robin";
        case sim::ArbiterKind::kLongestQueue: return "longest-queue";
        case sim::ArbiterKind::kWeightedRandom: return "weighted-random";
    }
    return "?";
}

bool arbiter_from_string(const std::string& text, sim::ArbiterKind& out) {
    if (text == "fixed-priority") out = sim::ArbiterKind::kFixedPriority;
    else if (text == "round-robin") out = sim::ArbiterKind::kRoundRobin;
    else if (text == "longest-queue") out = sim::ArbiterKind::kLongestQueue;
    else if (text == "weighted-random") out = sim::ArbiterKind::kWeightedRandom;
    else return false;
    return true;
}

util::JsonValue to_json(const ScenarioSpec& spec) {
    util::JsonValue root = util::JsonValue::object();
    root.set("version", kScenarioSchemaVersion);
    root.set("name", spec.name);
    root.set("description", spec.description);
    root.set("testbench", scenario::to_string(spec.testbench));

    util::JsonValue variants = util::JsonValue::array();
    for (const auto& variant : spec.variants) {
        util::JsonValue node = util::JsonValue::object();
        node.set("label", variant.label);
        node.set("np", np_to_json(variant.np));
        variants.push_back(std::move(node));
    }
    root.set("variants", std::move(variants));

    util::JsonValue budgets = util::JsonValue::array();
    for (const long budget : spec.budgets) budgets.push_back(budget);
    root.set("budgets", std::move(budgets));

    root.set("replications", spec.replications);
    root.set("sizing_iterations", spec.sizing_iterations);
    root.set("sizing_eval_replications", spec.sizing_eval_replications);
    root.set("solver", to_string(spec.solver));
    root.set("gauss_seidel", spec.gauss_seidel);
    root.set("modulated_models", spec.use_modulated_models);
    root.set("evaluate_timeout_policy", spec.evaluate_timeout_policy);
    root.set("timeout_threshold_scale", spec.timeout_threshold_scale);
    root.set("calibration_replications", spec.calibration_replications);
    root.set("insertion", insertion_to_json(spec.insertion));
    root.set("sim", sim_to_json(spec.sim, "$.sim"));
    return root;
}

ScenarioSpec spec_from_json(const util::JsonValue& value,
                            const std::string& path) {
    ScenarioSpec spec;
    ObjectReader reader(value, path);

    // Absent means version 1 (every file written before the field
    // existed); 1 and 2 are both understood; anything else is a document
    // this reader does not speak, rejected up front so a future-version
    // file fails on the version line, not on whichever new key happens
    // to come first.
    long long schema_version = kLegacyScenarioSchemaVersion;
    if (const auto* version = reader.find("version")) {
        schema_version = read_integer(*version, path + ".version", 0);
        if (schema_version != kLegacyScenarioSchemaVersion &&
            schema_version != kScenarioSchemaVersion)
            fail(path + ".version",
                 "unsupported schema version " +
                     std::to_string(schema_version) + " (this reader "
                     "understands versions " +
                     std::to_string(kLegacyScenarioSchemaVersion) + " and " +
                     std::to_string(kScenarioSchemaVersion) + ")");
    }
    spec.name = read_string(reader.require("name"), path + ".name");
    if (spec.name.empty()) fail(path + ".name", "must not be empty");
    if (const auto* description = reader.find("description"))
        spec.description = read_string(*description, path + ".description");
    if (const auto* testbench = reader.find("testbench")) {
        const std::string name =
            read_string(*testbench, path + ".testbench");
        if (!testbench_from_string(name, spec.testbench))
            fail(path + ".testbench",
                 "unknown testbench '" + name +
                     "' (expected figure1 or network-processor)");
    }

    if (const auto* variants = reader.find("variants")) {
        const std::string variants_path = path + ".variants";
        element(*variants, variants_path);
        if (variants->size() == 0)
            fail(variants_path, "must name at least one variant");
        spec.variants.clear();
        for (std::size_t i = 0; i < variants->size(); ++i)
            spec.variants.push_back(variant_from_json(
                variants->at(i), at_index(variants_path, i)));
    }

    if (const auto* budgets = reader.find("budgets")) {
        const std::string budgets_path = path + ".budgets";
        element(*budgets, budgets_path);
        if (budgets->size() == 0)
            fail(budgets_path, "must name at least one budget");
        spec.budgets.clear();
        for (std::size_t i = 0; i < budgets->size(); ++i)
            spec.budgets.push_back(static_cast<long>(
                read_integer(budgets->at(i), at_index(budgets_path, i), 1)));
    }

    if (const auto* replications = reader.find("replications"))
        spec.replications = static_cast<std::size_t>(
            read_integer(*replications, path + ".replications", 1));
    if (const auto* iterations = reader.find("sizing_iterations"))
        spec.sizing_iterations = static_cast<int>(
            read_integer(*iterations, path + ".sizing_iterations", 1));
    if (const auto* eval = reader.find("sizing_eval_replications"))
        spec.sizing_eval_replications = static_cast<std::size_t>(read_integer(
            *eval, path + ".sizing_eval_replications", 1));
    if (const auto* solver = reader.find("solver")) {
        const std::string name = read_string(*solver, path + ".solver");
        if (!solver_from_string(name, spec.solver))
            fail(path + ".solver",
                 "unknown solver '" + name +
                     "' (expected auto, lp, value-iteration or "
                     "policy-iteration)");
    }
    if (const auto* gs = reader.find("gauss_seidel"))
        spec.gauss_seidel = read_bool(*gs, path + ".gauss_seidel");
    if (const auto* modulated = reader.find("modulated_models"))
        spec.use_modulated_models =
            read_bool(*modulated, path + ".modulated_models");
    if (const auto* timeout = reader.find("evaluate_timeout_policy"))
        spec.evaluate_timeout_policy =
            read_bool(*timeout, path + ".evaluate_timeout_policy");
    if (const auto* scale = reader.find("timeout_threshold_scale")) {
        spec.timeout_threshold_scale =
            read_number(*scale, path + ".timeout_threshold_scale");
        if (!(spec.timeout_threshold_scale > 0.0))
            fail(path + ".timeout_threshold_scale", "must be > 0");
    }
    if (const auto* calibration = reader.find("calibration_replications"))
        spec.calibration_replications = static_cast<std::size_t>(read_integer(
            *calibration, path + ".calibration_replications", 1));
    // The v2-defining block: required at version 2 (a v2 file must say
    // whether it searches, even if only "search": false), and unknown —
    // rejected by finish() below at $.insertion — in a legacy document,
    // where the reader never claims the key.
    if (schema_version >= kScenarioSchemaVersion) {
        const auto* insertion = reader.find("insertion");
        if (insertion == nullptr)
            fail(path + ".insertion",
                 "required at schema version 2 (declare at least "
                 "{\"search\": false})");
        spec.insertion = insertion_from_json(*insertion, path + ".insertion");
    }
    if (const auto* sim = reader.find("sim"))
        spec.sim = sim_from_json(*sim, path + ".sim");
    reader.finish();

    // Backstop: the structural checks shared with compiled specs. Field
    // reads above already cover them with precise paths; anything that
    // still slips through is reported at the spec's root.
    try {
        spec.validate();
    } catch (const util::ContractViolation& violation) {
        fail(path, violation.what());
    }
    return spec;
}

ScenarioDocument document_from_json(const util::JsonValue& document) {
    ScenarioDocument out;
    const bool catalog =
        document.is_object() &&
        (document.contains("scenarios") || document.contains("batches"));
    if (!catalog) {
        out.scenarios.push_back(spec_from_json(document, "$"));
        return out;
    }
    ObjectReader reader(document, "$");
    const util::JsonValue& list = reader.require("scenarios");
    const util::JsonValue* batches = reader.find("batches");
    reader.finish();
    element(list, "$.scenarios");
    if (list.size() == 0)
        fail("$.scenarios", "must name at least one scenario");
    out.scenarios.reserve(list.size());
    for (std::size_t i = 0; i < list.size(); ++i)
        out.scenarios.push_back(
            spec_from_json(list.at(i), at_index("$.scenarios", i)));
    if (batches != nullptr) {
        element(*batches, "$.batches");
        for (std::size_t i = 0; i < batches->size(); ++i)
            out.batches.push_back(
                batch_from_json(batches->at(i), at_index("$.batches", i)));
    }
    return out;
}

std::vector<ScenarioSpec> specs_from_json(const util::JsonValue& document) {
    return document_from_json(document).scenarios;
}

util::JsonValue catalog_to_json(const std::vector<ScenarioSpec>& specs,
                                const std::vector<BatchPreset>& batches) {
    util::JsonValue list = util::JsonValue::array();
    for (const auto& spec : specs) list.push_back(to_json(spec));
    util::JsonValue root = util::JsonValue::object();
    root.set("scenarios", std::move(list));
    if (!batches.empty()) {
        util::JsonValue batch_list = util::JsonValue::array();
        for (const auto& batch : batches)
            batch_list.push_back(batch_to_json(batch));
        root.set("batches", std::move(batch_list));
    }
    return root;
}

util::JsonValue export_json(const ScenarioRegistry& registry,
                            const std::string& name) {
    // A batch exports as a self-contained catalog: its member specs plus
    // its own batch entry, so loading the file back registers the batch
    // too (the members are all present, satisfying load_json's check).
    if (registry.contains_batch(name))
        return catalog_to_json(registry.expand(name),
                               {registry.get_batch(name)});
    return to_json(registry.get(name));
}

ScenarioDocument load_scenario_document(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) fail(path, "cannot read scenario file");
    std::ostringstream text;
    text << in.rdbuf();
    if (in.bad()) fail(path, "cannot read scenario file");
    util::JsonValue document;
    try {
        document = util::JsonValue::parse(text.str());
    } catch (const util::JsonError& error) {
        fail(path, error.what());
    }
    return document_from_json(document);
}

std::vector<ScenarioSpec> load_scenario_file(const std::string& path) {
    return load_scenario_document(path).scenarios;
}

}  // namespace socbuf::scenario
