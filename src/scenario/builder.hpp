// ScenarioBuilder — the fluent way to define a ScenarioSpec in code,
// replacing aggregate-initialization sprawl in experiments, benches and
// examples:
//
//     const auto spec = scenario::ScenarioBuilder("np-budget-sweep")
//                           .budgets({160, 320, 640})
//                           .replications(5)
//                           .sizing_iterations(6)
//                           .horizon(2000.0, 200.0)
//                           .seed(2005)
//                           .build();
//
// build() runs ScenarioSpec::validate(), so a malformed chain fails at
// construction with the contract diagnostic, not deep inside a batch.
// The first variant()/variants() call replaces the default single
// unlabeled variant; later calls append.
#pragma once

#include "scenario/scenario.hpp"

#include <utility>

namespace socbuf::scenario {

class ScenarioBuilder {
public:
    explicit ScenarioBuilder(std::string name) { spec_.name = std::move(name); }

    ScenarioBuilder& description(std::string text) {
        spec_.description = std::move(text);
        return *this;
    }
    ScenarioBuilder& testbench(Testbench testbench) {
        spec_.testbench = testbench;
        return *this;
    }
    /// Append one variant (the first call drops the default entry).
    ScenarioBuilder& variant(std::string label,
                             arch::NetworkProcessorParams np = {}) {
        if (!explicit_variants_) {
            spec_.variants.clear();
            explicit_variants_ = true;
        }
        spec_.variants.push_back({std::move(label), std::move(np)});
        return *this;
    }
    /// Replace the variant list wholesale.
    ScenarioBuilder& variants(std::vector<ScenarioVariant> variants) {
        spec_.variants = std::move(variants);
        explicit_variants_ = true;
        return *this;
    }
    ScenarioBuilder& budgets(std::vector<long> budgets) {
        spec_.budgets = std::move(budgets);
        return *this;
    }
    ScenarioBuilder& replications(std::size_t count) {
        spec_.replications = count;
        return *this;
    }
    ScenarioBuilder& sizing_iterations(int iterations) {
        spec_.sizing_iterations = iterations;
        return *this;
    }
    ScenarioBuilder& sizing_eval_replications(std::size_t count) {
        spec_.sizing_eval_replications = count;
        return *this;
    }
    ScenarioBuilder& solver(core::SolverChoice solver) {
        spec_.solver = solver;
        return *this;
    }
    ScenarioBuilder& modulated_models(bool on = true) {
        spec_.use_modulated_models = on;
        return *this;
    }
    /// Opt the sizing runs into the Gauss–Seidel VI sweep
    /// (core::SizingOptions::gauss_seidel).
    ScenarioBuilder& gauss_seidel(bool on = true) {
        spec_.gauss_seidel = on;
        return *this;
    }
    /// Evaluate the paper's timeout-drop policy alongside (Figure 3's
    /// third bar), thresholded at `scale` times the mean buffer wait.
    ScenarioBuilder& timeout_policy(double scale = 4.0) {
        spec_.evaluate_timeout_policy = true;
        spec_.timeout_threshold_scale = scale;
        return *this;
    }
    /// Average `count` independent timeout-calibration sims (fanned
    /// across the shared executor); 1 keeps the classic single-sim
    /// calibration bit for bit.
    ScenarioBuilder& calibration_replications(std::size_t count) {
        spec_.calibration_replications = count;
        return *this;
    }
    /// Simulation horizon; `warmup` < 0 keeps a 10% warmup.
    ScenarioBuilder& horizon(double horizon, double warmup = -1.0) {
        spec_.sim.horizon = horizon;
        spec_.sim.warmup = warmup >= 0.0 ? warmup : horizon / 10.0;
        return *this;
    }
    ScenarioBuilder& seed(std::uint64_t seed) {
        spec_.sim.seed = seed;
        return *this;
    }
    ScenarioBuilder& arbiter(sim::ArbiterKind arbiter) {
        spec_.sim.arbiter = arbiter;
        return *this;
    }
    /// Replace the whole evaluation sim config.
    ScenarioBuilder& sim(sim::SimConfig config) {
        spec_.sim = std::move(config);
        return *this;
    }
    /// Replace the buffer-insertion placement-search block (v2 schema's
    /// $.insertion).
    ScenarioBuilder& insertion(InsertionSpec insertion) {
        spec_.insertion = std::move(insertion);
        return *this;
    }

    /// Validate and return the spec (throws util::ContractViolation on a
    /// malformed chain).
    [[nodiscard]] ScenarioSpec build() const {
        spec_.validate();
        return spec_;
    }

private:
    ScenarioSpec spec_;
    bool explicit_variants_ = false;
};

}  // namespace socbuf::scenario
