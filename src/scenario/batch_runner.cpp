#include "scenario/batch_runner.hpp"

#include "arch/sites.hpp"
#include "core/engine.hpp"
#include "exec/task_graph.hpp"
#include "insertion/search.hpp"
#include "sim/simulator.hpp"
#include "split/splitter.hpp"
#include "util/contracts.hpp"
#include "util/json.hpp"
#include "util/numeric.hpp"
#include "util/strings.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <utility>

namespace socbuf::scenario {

namespace {

/// Stage-1 work item: one (spec, variant, budget).
struct SizingJob {
    std::size_t spec = 0;
    std::size_t variant = 0;
    long budget = 0;
};

/// Stage-1 result: the sized system plus everything stage 2 needs.
struct SizingOutcome {
    arch::TestSystem system;
    core::Allocation initial;
    core::Allocation best;
    std::size_t engine_rounds = 0;
    std::size_t lp_solves = 0;
    std::size_t vi_solves = 0;
    std::size_t pi_solves = 0;
    // Timeout policy calibration (only when the spec evaluates it).
    double timeout_threshold = 0.0;
    sim::SimConfig timeout_config;
    bool timeout_evaluated = false;
    InsertionRunReport insertion;
};

/// Resolve the candidate sites of a spec's placement search: the spec's
/// named subset, or (empty list) every traffic-carrying bridge site of
/// the built system. Returns strictly increasing site ids — the order
/// insertion::search_placements requires.
std::vector<arch::SiteId> resolve_candidates(
    const ScenarioSpec& spec, const arch::TestSystem& system,
    const std::vector<arch::BufferSite>& sites) {
    // Traffic-carrying bridge sites, via the default (all-selected) split:
    // a bridge direction no flow crosses has nothing to place.
    const split::SplitResult split = split::split_architecture(system);
    std::vector<arch::SiteId> carrying;
    for (const auto& sub : split.subsystems)
        for (const auto& flow : sub.flows)
            if (sites[flow.site].kind == arch::SiteKind::kBridge)
                carrying.push_back(flow.site);
    std::sort(carrying.begin(), carrying.end());
    carrying.erase(std::unique(carrying.begin(), carrying.end()),
                   carrying.end());
    if (spec.insertion.candidates.empty()) return carrying;
    std::vector<arch::SiteId> resolved;
    for (const std::string& name : spec.insertion.candidates) {
        bool found = false;
        for (std::size_t s = 0; s < sites.size(); ++s) {
            if (sites[s].name != name) continue;
            SOCBUF_REQUIRE_MSG(
                std::find(carrying.begin(), carrying.end(), s) !=
                    carrying.end(),
                "insertion candidate '" + name +
                    "' is not a traffic-carrying bridge site");
            resolved.push_back(s);
            found = true;
            break;
        }
        SOCBUF_REQUIRE_MSG(found, "unknown insertion candidate site: " + name);
    }
    std::sort(resolved.begin(), resolved.end());
    resolved.erase(std::unique(resolved.begin(), resolved.end()),
                   resolved.end());
    return resolved;
}

/// Stage-2 result: one replication's loss counts under each policy.
struct EvalSample {
    std::vector<std::uint64_t> pre_lost;
    std::vector<std::uint64_t> post_lost;
    std::vector<std::uint64_t> timeout_lost;
    std::uint64_t pre_total = 0;
    std::uint64_t post_total = 0;
    std::uint64_t timeout_total = 0;
};

SizingOutcome run_sizing(const ScenarioSpec& spec, const SizingJob& job,
                         exec::Executor& executor,
                         ctmdp::SolveCache* cache,
                         bool force_gauss_seidel) {
    SizingOutcome out;
    out.system = spec.build_system(job.variant);
    core::SizingOptions options = spec.sizing_options(job.budget);
    // The batch-level knob forces the accelerated sweep on; a spec that
    // already opted in keeps it regardless.
    if (force_gauss_seidel) options.gauss_seidel = true;

    if (spec.insertion.search) {
        // Placement search first: score every candidate plan by a full
        // sizing run at this budget (all through the shared executor and
        // solve cache — plans sharing subsystem structure hit the cache),
        // then size under the winner below. The final engine run repeats
        // the winning plan's evaluation, so its solves are all warm.
        arch::SiteCostModel cost_model;
        cost_model.processor_cost = spec.insertion.processor_site_cost;
        cost_model.bridge_cost = spec.insertion.bridge_site_cost;
        const std::vector<arch::BufferSite> sites =
            arch::enumerate_buffer_sites(out.system.architecture, cost_model);
        const std::vector<arch::SiteId> candidates =
            resolve_candidates(spec, out.system, sites);
        std::vector<double> candidate_costs;
        candidate_costs.reserve(candidates.size());
        for (const arch::SiteId s : candidates)
            candidate_costs.push_back(sites[s].unit_cost);
        const auto evaluate = [&](const split::Placement& placement) {
            core::SizingOptions plan_options = options;
            plan_options.placement = placement;
            return core::BufferSizingEngine(plan_options)
                .run(out.system, executor, cache)
                .best_weighted_loss;
        };
        insertion::SearchOptions search_options;
        search_options.exhaustive_limit = spec.insertion.exhaustive_limit;
        const insertion::SearchResult found = insertion::search_placements(
            candidates, candidate_costs, evaluate, executor, search_options);
        options.placement = found.best;
        out.insertion.searched = true;
        for (const arch::SiteId s : candidates) {
            if (found.best.site_selected(s))
                out.insertion.selected_sites.push_back(sites[s].name);
            else
                out.insertion.deselected_sites.push_back(sites[s].name);
        }
        out.insertion.searched_loss = found.best_loss;
        out.insertion.preset_loss = found.preset_loss;
        out.insertion.plans_evaluated = found.plans_evaluated;
        out.insertion.plans_pruned = found.plans_pruned;
        out.insertion.exhaustive = found.exhaustive;
    }

    const core::BufferSizingEngine engine(options);
    const core::SizingReport report = engine.run(out.system, executor, cache);
    out.initial = report.initial;
    out.best = report.best;
    out.engine_rounds = report.history.size();
    out.lp_solves = report.lp_solves;
    out.vi_solves = report.vi_solves;
    out.pi_solves = report.pi_solves;
    if (spec.evaluate_timeout_policy) {
        // Same calibration as core::run_figure3 — the scaled mean buffer
        // wait of the constant allocation, globally and per site — but
        // both thresholds now come from ONE set of calibration sims
        // fanned across the shared executor (the old path simulated the
        // identical no-timeout run twice, once per threshold), and
        // spec.calibration_replications averages independent substreams;
        // one replication keeps the classic calibration bit for bit.
        const sim::TimeoutCalibration calibration = sim::calibrate_timeout(
            out.system, out.initial, options.sim,
            spec.timeout_threshold_scale, executor,
            spec.calibration_replications);
        out.timeout_threshold = calibration.global_threshold;
        out.timeout_config = options.sim;
        out.timeout_config.timeout_enabled = true;
        out.timeout_config.timeout_threshold =
            std::max(out.timeout_threshold, 1e-6);
        out.timeout_config.site_timeout_thresholds =
            calibration.site_thresholds;
        out.timeout_evaluated = true;
    }
    return out;
}

EvalSample run_eval(const ScenarioSpec& spec, const SizingOutcome& sized,
                    std::size_t replication) {
    sim::SimConfig config = spec.sim;
    config.seed = spec.sim.seed + replication;
    EvalSample sample;
    const auto pre = sim::simulate(sized.system, sized.initial, config);
    sample.pre_lost = pre.lost;
    sample.pre_total = pre.total_lost();
    const auto post = sim::simulate(sized.system, sized.best, config);
    sample.post_lost = post.lost;
    sample.post_total = post.total_lost();
    if (sized.timeout_evaluated) {
        sim::SimConfig timeout_config = sized.timeout_config;
        timeout_config.seed = config.seed;
        const auto timeout =
            sim::simulate(sized.system, sized.initial, timeout_config);
        sample.timeout_lost = timeout.lost;
        sample.timeout_total = timeout.total_lost();
    }
    return sample;
}

/// Estimated solver cost of one (spec, variant): per subsystem,
/// (model_cap+1)^flows CTMDP states times ~(flows+1) actions, doubled per
/// bursty flow when the spec uses modulated (MMPP) models. A deliberate
/// back-of-envelope — it only has to *rank* the sizing jobs for
/// longest-first submission, and the state count dominates every solver's
/// runtime, so ranking by it tracks wall-clock well enough.
double estimated_sizing_cost(const ScenarioSpec& spec, std::size_t variant) {
    const arch::TestSystem system = spec.build_system(variant);
    const split::SplitResult split = split::split_architecture(system);
    const double cap = static_cast<double>(
        spec.sizing_options(spec.budgets.front()).model_cap);
    double cost = 0.0;
    for (const auto& sub : split.subsystems) {
        const double flows = static_cast<double>(sub.flows.size());
        double states = std::pow(cap + 1.0, flows);
        if (spec.use_modulated_models)
            for (const auto& flow : sub.flows)
                if (flow.bursty()) states *= 2.0;
        cost += states * (flows + 1.0);
    }
    return cost;
}

/// Replication-mean fold, op-for-op the same as sim::replicate_losses so a
/// batch row equals the legacy experiment drivers bit for bit.
void fold_replications(
    const std::vector<const std::vector<std::uint64_t>*>& per_rep_lost,
    const std::vector<std::uint64_t>& totals, std::vector<double>& mean_out,
    double& total_out) {
    const std::size_t reps = per_rep_lost.size();
    const std::size_t n = per_rep_lost.empty() ? 0 : per_rep_lost[0]->size();
    std::vector<std::vector<double>> samples(n);
    total_out = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
        for (std::size_t p = 0; p < n; ++p)
            samples[p].push_back(static_cast<double>((*per_rep_lost[r])[p]));
        total_out += static_cast<double>(totals[r]);
    }
    total_out /= static_cast<double>(reps);
    mean_out.resize(n);
    for (std::size_t p = 0; p < n; ++p) mean_out[p] = util::mean(samples[p]);
}

}  // namespace

BatchRunner::BatchRunner(exec::Executor& executor, BatchOptions options)
    : executor_(executor), options_(options) {}

BatchReport BatchRunner::run(const ScenarioSpec& spec) {
    return run(std::vector<ScenarioSpec>{spec});
}

BatchReport BatchRunner::run(const std::vector<ScenarioSpec>& specs) {
    for (const auto& spec : specs) spec.validate();

    // Expansion order defines result order: spec-major, variant, budget.
    std::vector<SizingJob> jobs;
    for (std::size_t s = 0; s < specs.size(); ++s)
        for (std::size_t v = 0; v < specs[s].variants.size(); ++v)
            for (const long budget : specs[s].budgets)
                jobs.push_back({s, v, budget});

    std::vector<std::size_t> eval_offset(jobs.size() + 1, 0);
    for (std::size_t j = 0; j < jobs.size(); ++j)
        eval_offset[j + 1] =
            eval_offset[j] + specs[jobs[j].spec].replications;

    ctmdp::SolveCache local_cache(options_.cache_capacity,
                                  options_.warm_start,
                                  options_.cache_byte_budget);
    ctmdp::SolveCache& cache = options_.shared_cache != nullptr
                                   ? *options_.shared_cache
                                   : local_cache;
    ctmdp::SolveCache* cache_ptr = options_.use_solve_cache ? &cache : nullptr;

    // Longest-first submission: order same-priority sizing jobs by
    // descending estimated cost (stable, so ties keep expansion order and
    // the schedule stays reproducible). Same-cost memoization per
    // (spec, variant): budgets share a model, so one estimate covers a
    // whole sweep. Submission order is invisible to the results — slots
    // are index-addressed and folded in expansion order below.
    std::vector<std::size_t> order(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) order[j] = j;
    if (options_.longest_first && jobs.size() > 1) {
        std::vector<double> variant_cost;  // (spec, variant) memo, -1 unset
        std::vector<std::size_t> variant_base(specs.size() + 1, 0);
        for (std::size_t s = 0; s < specs.size(); ++s)
            variant_base[s + 1] = variant_base[s] + specs[s].variants.size();
        variant_cost.assign(variant_base.back(), -1.0);
        std::vector<double> job_cost(jobs.size(), 0.0);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            const std::size_t slot = variant_base[jobs[j].spec] +
                                     jobs[j].variant;
            if (variant_cost[slot] < 0.0)
                variant_cost[slot] = estimated_sizing_cost(
                    specs[jobs[j].spec], jobs[j].variant);
            job_cost[j] = variant_cost[slot];
        }
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                             return job_cost[a] > job_cost[b];
                         });
    }

    // One dependency-aware fan-out, no stage barrier: every sizing job is
    // submitted up front and submits its own evaluation replications the
    // moment it finishes, so evaluation work starts while other sizing
    // jobs are still running. Sizing enters the graph at Priority::kSizing
    // and evaluations at Priority::kEvaluation (unless the FIFO knob is
    // set), so a finished job's evaluations are claimed before queued
    // sizing work — that ordering is what first_eval_latency_s measures;
    // it cannot change the results. Sizing jobs keep the shared executor
    // for their nested fan-outs (subsystem solves, per-round eval sims,
    // calibration sims) — nested maps are deadlock-free by the executor's
    // nesting rule. Every job writes an index-addressed slot; the fold
    // below reads them in expansion order, which is what keeps the report
    // bit-identical for any worker count and either schedule.
    const exec::Priority sizing_priority = options_.priority_scheduling
                                               ? exec::Priority::kSizing
                                               : exec::Priority::kDefault;
    const exec::Priority eval_priority = options_.priority_scheduling
                                             ? exec::Priority::kEvaluation
                                             : exec::Priority::kDefault;
    std::vector<SizingOutcome> sized(jobs.size());
    std::vector<EvalSample> samples(eval_offset.back());
    std::atomic<std::size_t> sizing_in_flight{0};
    std::atomic<std::size_t> overlap{0};
    // Completion time of the earliest-finishing evaluation job, in
    // microseconds since batch start (-1 = none finished yet). A
    // CAS-min keeps the earliest value under concurrent finishes.
    std::atomic<std::int64_t> first_eval_us{-1};
    // socbuf-lint: allow(wall-clock) — feeds first_eval_latency_s, a scheduling diagnostic; report folds never read it.
    const auto batch_start = std::chrono::steady_clock::now();
    exec::TaskGraph graph(executor_);
    for (const std::size_t j : order) {
        graph.submit(
            [&, j] {
                ++sizing_in_flight;
                sized[j] = run_sizing(specs[jobs[j].spec], jobs[j],
                                      executor_, cache_ptr,
                                      options_.gauss_seidel);
                --sizing_in_flight;
                for (std::size_t e = eval_offset[j]; e < eval_offset[j + 1];
                     ++e) {
                    graph.submit(
                        [&, j, e] {
                            // Scheduling diagnostics only — results never
                            // read them.
                            if (sizing_in_flight.load(
                                    std::memory_order_relaxed) > 0)
                                overlap.fetch_add(1,
                                                  std::memory_order_relaxed);
                            samples[e] = run_eval(specs[jobs[j].spec],
                                                  sized[j],
                                                  e - eval_offset[j]);
                            const auto us =
                                std::chrono::duration_cast<
                                    std::chrono::microseconds>(
                                    // socbuf-lint: allow(wall-clock) — first_eval_latency_s diagnostic; never folded into results.
                                    std::chrono::steady_clock::now() -
                                    batch_start)
                                    .count();
                            std::int64_t seen = first_eval_us.load(
                                std::memory_order_relaxed);
                            while ((seen < 0 || us < seen) &&
                                   !first_eval_us.compare_exchange_weak(
                                       seen, us, std::memory_order_relaxed)) {
                            }
                        },
                        eval_priority);
                }
            },
            sizing_priority);
    }
    graph.wait();

    // Fold, in expansion order.
    BatchReport report;
    report.workers = executor_.workers();
    report.eval_overlap = overlap.load();
    report.first_eval_latency_s =
        first_eval_us.load() < 0
            ? -1.0
            : static_cast<double>(first_eval_us.load()) * 1e-6;
    report.runs.reserve(jobs.size());
    for (std::size_t j = 0; j < jobs.size(); ++j) {
        const ScenarioSpec& spec = specs[jobs[j].spec];
        const SizingOutcome& outcome = sized[j];
        ScenarioRunResult run;
        run.scenario = spec.name;
        run.variant = spec.variants[jobs[j].variant].label;
        run.budget = jobs[j].budget;
        run.replications = spec.replications;
        run.constant_alloc = outcome.initial;
        run.resized_alloc = outcome.best;
        run.engine_rounds = outcome.engine_rounds;
        run.lp_solves = outcome.lp_solves;
        run.vi_solves = outcome.vi_solves;
        run.pi_solves = outcome.pi_solves;
        run.timeout_threshold = outcome.timeout_threshold;
        run.insertion = outcome.insertion;

        std::vector<const std::vector<std::uint64_t>*> pre, post, timeout;
        std::vector<std::uint64_t> pre_totals, post_totals, timeout_totals;
        for (std::size_t e = eval_offset[j]; e < eval_offset[j + 1]; ++e) {
            pre.push_back(&samples[e].pre_lost);
            post.push_back(&samples[e].post_lost);
            pre_totals.push_back(samples[e].pre_total);
            post_totals.push_back(samples[e].post_total);
            if (outcome.timeout_evaluated) {
                timeout.push_back(&samples[e].timeout_lost);
                timeout_totals.push_back(samples[e].timeout_total);
            }
        }
        fold_replications(pre, pre_totals, run.pre_loss, run.pre_total);
        fold_replications(post, post_totals, run.post_loss, run.post_total);
        if (outcome.timeout_evaluated)
            fold_replications(timeout, timeout_totals, run.timeout_loss,
                              run.timeout_total);
        report.runs.push_back(std::move(run));
    }
    report.cache = cache.stats();
    report.cache_enabled = options_.use_solve_cache;
    report.cache_capacity = cache.capacity();
    report.cache_byte_budget = cache.byte_budget();
    return report;
}

util::Table BatchReport::summary_table() const {
    // Insertion columns appear only when some run actually searched, so
    // default batches keep the pre-search CSV bytes.
    bool any_searched = false;
    for (const auto& run : runs) any_searched |= run.insertion.searched;
    std::vector<std::string> header{"scenario", "variant",  "budget",
                                    "reps",     "pre loss", "post loss",
                                    "gain",     "rounds",   "lp/vi/pi"};
    if (any_searched) {
        header.push_back("plans");
        header.push_back("pruned");
        header.push_back("search gain");
    }
    util::Table table(header);
    for (const auto& run : runs) {
        std::vector<std::string> row{
            run.scenario, run.variant.empty() ? "-" : run.variant,
            std::to_string(run.budget), std::to_string(run.replications),
            util::format_fixed(run.pre_total, 2),
            util::format_fixed(run.post_total, 2),
            util::format_fixed(100.0 * run.improvement(), 1) + "%",
            std::to_string(run.engine_rounds),
            std::to_string(run.lp_solves) + "/" +
                std::to_string(run.vi_solves) + "/" +
                std::to_string(run.pi_solves)};
        if (any_searched) {
            if (run.insertion.searched) {
                const double gain =
                    run.insertion.preset_loss > 0.0
                        ? 1.0 - run.insertion.searched_loss /
                                    run.insertion.preset_loss
                        : 0.0;
                row.push_back(std::to_string(run.insertion.plans_evaluated));
                row.push_back(std::to_string(run.insertion.plans_pruned));
                row.push_back(util::format_fixed(100.0 * gain, 1) + "%");
            } else {
                row.push_back("-");
                row.push_back("-");
                row.push_back("-");
            }
        }
        table.add_row(row);
    }
    return table;
}

std::string BatchReport::to_csv() const { return summary_table().to_csv(); }

namespace {

util::JsonValue to_json_array(const std::vector<double>& values) {
    util::JsonValue out = util::JsonValue::array();
    for (const double v : values) out.push_back(v);
    return out;
}

util::JsonValue to_json_array(const std::vector<long>& values) {
    util::JsonValue out = util::JsonValue::array();
    for (const long v : values) out.push_back(v);
    return out;
}

}  // namespace

std::string BatchReport::to_json(int indent) const {
    util::JsonValue root = util::JsonValue::object();
    root.set("workers", workers);
    // A disabled cache serializes as {"enabled": false} only — zeroed
    // counters would be indistinguishable from "enabled but cold".
    util::JsonValue cache_node = util::JsonValue::object();
    cache_node.set("enabled", cache_enabled);
    if (cache_enabled) {
        cache_node.set("capacity", cache_capacity);
        // Only when set: a default (unlimited) budget keeps pre-existing
        // report bytes unchanged, like the optional keys below.
        if (cache_byte_budget != 0)
            cache_node.set("byte_budget", cache_byte_budget);
        cache_node.set("hits", cache.hits);
        cache_node.set("misses", cache.misses);
        cache_node.set("evictions", cache.evictions);
        cache_node.set("hit_rate", cache.hit_rate());
        cache_node.set("warm_hits", cache.warm_hits);
        cache_node.set("iterations_saved", cache.iterations_saved);
        cache_node.set("bytes_resident", cache.bytes_resident);
    }
    root.set("solve_cache", std::move(cache_node));

    util::JsonValue runs_node = util::JsonValue::array();
    for (const auto& run : runs) {
        util::JsonValue node = util::JsonValue::object();
        node.set("scenario", run.scenario);
        if (!run.variant.empty()) node.set("variant", run.variant);
        node.set("budget", run.budget);
        node.set("replications", run.replications);
        node.set("pre_total", run.pre_total);
        node.set("post_total", run.post_total);
        node.set("improvement", run.improvement());
        node.set("pre_loss", to_json_array(run.pre_loss));
        node.set("post_loss", to_json_array(run.post_loss));
        if (!run.timeout_loss.empty()) {
            node.set("timeout_total", run.timeout_total);
            node.set("timeout_threshold", run.timeout_threshold);
            node.set("timeout_loss", to_json_array(run.timeout_loss));
        }
        // Only for runs that searched: default-spec reports keep their
        // pre-search bytes, like the other optional keys.
        if (run.insertion.searched) {
            util::JsonValue ins = util::JsonValue::object();
            util::JsonValue selected = util::JsonValue::array();
            for (const auto& s : run.insertion.selected_sites)
                selected.push_back(s);
            util::JsonValue deselected = util::JsonValue::array();
            for (const auto& s : run.insertion.deselected_sites)
                deselected.push_back(s);
            ins.set("selected_sites", std::move(selected));
            ins.set("deselected_sites", std::move(deselected));
            ins.set("searched_loss", run.insertion.searched_loss);
            ins.set("preset_loss", run.insertion.preset_loss);
            ins.set("plans_evaluated", run.insertion.plans_evaluated);
            ins.set("plans_pruned", run.insertion.plans_pruned);
            ins.set("exhaustive", run.insertion.exhaustive);
            node.set("insertion", std::move(ins));
        }
        node.set("constant_alloc", to_json_array(run.constant_alloc));
        node.set("resized_alloc", to_json_array(run.resized_alloc));
        node.set("engine_rounds", run.engine_rounds);
        node.set("lp_solves", run.lp_solves);
        node.set("vi_solves", run.vi_solves);
        node.set("pi_solves", run.pi_solves);
        runs_node.push_back(std::move(node));
    }
    root.set("runs", std::move(runs_node));
    return root.dump(indent);
}

}  // namespace socbuf::scenario
