// Scenarios as data: the complete JSON round trip for ScenarioSpec.
//
// to_json emits every field of a spec (defaults included), so a dumped
// document is a full, self-describing record of the workload; from_json
// reconstructs the spec with *strict* validation — unknown keys, type
// mismatches and out-of-range values all raise ScenarioIoError naming the
// offending JSON path ("$.variants[1].np.load_scale"), never a bare parse
// exception. The round trip is contractual:
//
//     spec_from_json(JsonValue::parse(to_json(spec).dump())) == spec
//
// for every spec whose numbers survive a double round trip — which all
// built-in presets do (util::JsonValue emits shortest round-trip doubles),
// pinned by tests/scenario_io_test.cpp.
//
// The schema (documented field by field in scenarios/README.md):
//
//   {
//     "version": 2,                       optional; absent = 1 (legacy);
//                                         1 or 2 accepted, anything else
//                                         is rejected at $.version
//     "name": "np-load-sweep",            required, non-empty
//     "description": "...",               optional string
//     "testbench": "network-processor",   "figure1" | "network-processor"
//     "variants": [                       optional, >= 1 entry
//       {"label": "load=0.80",
//        "np": {"pe_per_cluster": 4, "bus_rate_scale": 1.0,
//               "load_scale": 0.8, "cluster_pe": [6,4,2,4],
//               "crypto_cluster": true}}
//     ],
//     "budgets": [320],                   >= 1 entry, each >= 1
//     "replications": 5,                  >= 1
//     "sizing_iterations": 10,            >= 1
//     "sizing_eval_replications": 1,      >= 1
//     "solver": "auto",                   auto|lp|value-iteration|
//                                         policy-iteration
//     "modulated_models": false,
//     "evaluate_timeout_policy": false,
//     "timeout_threshold_scale": 4.0,     > 0
//     "insertion": {                      REQUIRED at version 2, rejected
//                                         below it ($.insertion names the
//                                         miss either way)
//       "search": false,                  placement search on/off
//       "candidates": ["bridge:..."],     site names; empty = every
//                                         traffic-carrying bridge site
//       "processor_site_cost": 1.0,       > 0
//       "bridge_site_cost": 1.0,          > 0
//       "exhaustive_limit": 4},           candidate counts <= this take
//                                         the exhaustive 2^n sweep
//     "sim": {"horizon": 4000.0, "warmup": 400.0, "seed": 2005,
//             "arbiter": "round-robin"}
//   }
//
// A *document* is either one spec object or a catalog
// {"scenarios": [spec, ...]} — registry.load_file and the CLI accept both.
// Catalogs may additionally carry user-defined batch presets:
// "batches": [{"name": "...", "description": "...", "scenarios": [names]}]
// (ScenarioRegistry::load_json registers them after validating every
// member against the registry's scenarios plus the document's own — a
// bad member leaves the registry untouched).
#pragma once

#include "scenario/scenario.hpp"
#include "util/json.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace socbuf::scenario {

/// The scenario schema version this writer speaks. to_json stamps it on
/// every document; spec_from_json additionally accepts version-1 files
/// (absent = 1) where the v2-only keys ($.insertion) are rejected as
/// unknown, and rejects every other version with a $.version diagnostic.
/// Version 2 added the required $.insertion block and optional document-
/// level $.batches. Bump only with a migration story for the shipped
/// scenarios/ catalog.
inline constexpr int kScenarioSchemaVersion = 2;
inline constexpr int kLegacyScenarioSchemaVersion = 1;

/// A malformed scenario document: the message always leads with the JSON
/// path (or file name) of the offending value.
class ScenarioIoError : public std::runtime_error {
public:
    ScenarioIoError(std::string path, const std::string& what_arg)
        : std::runtime_error(path + ": " + what_arg),
          path_(std::move(path)) {}

    /// The JSON path ("$.budgets[2]") or file name the error points at.
    [[nodiscard]] const std::string& path() const { return path_; }

private:
    std::string path_;
};

/// Serialize one spec, emitting every field (defaults included).
[[nodiscard]] util::JsonValue to_json(const ScenarioSpec& spec);

/// Deserialize one spec object with strict validation; `path` prefixes
/// every diagnostic (default "$", the document root).
[[nodiscard]] ScenarioSpec spec_from_json(const util::JsonValue& value,
                                          const std::string& path = "$");

/// Deserialize a document: a single spec object or {"scenarios": [...]}.
/// Catalog-level "batches" are structurally validated but dropped — use
/// document_from_json when batch presets matter.
[[nodiscard]] std::vector<ScenarioSpec> specs_from_json(
    const util::JsonValue& document);

/// Everything a scenario document can carry: the specs plus any
/// document-level batch presets ({"batches": [...]}, v2 catalogs only).
struct ScenarioDocument {
    std::vector<ScenarioSpec> scenarios;
    std::vector<BatchPreset> batches;
};

/// Deserialize a document including its batch presets. Batch members are
/// checked structurally (non-empty names, >= 1 member) but NOT resolved
/// — a batch may reference registry presets the document does not carry;
/// ScenarioRegistry::load_json does the existence check.
[[nodiscard]] ScenarioDocument document_from_json(
    const util::JsonValue& document);

/// A catalog document {"scenarios": [...]} from `specs`, plus a
/// "batches" array when `batches` is non-empty.
[[nodiscard]] util::JsonValue catalog_to_json(
    const std::vector<ScenarioSpec>& specs,
    const std::vector<BatchPreset>& batches = {});

/// One registered name as a loadable document: a scenario as its spec
/// object, a batch preset as a catalog of its members. The single source
/// behind Session::export_scenario and `socbuf_cli export`. Throws
/// util::ContractViolation for unknown names.
[[nodiscard]] util::JsonValue export_json(const ScenarioRegistry& registry,
                                          const std::string& name);

/// Read and deserialize a scenario file. Unreadable files and parse
/// errors throw ScenarioIoError naming the file.
[[nodiscard]] std::vector<ScenarioSpec> load_scenario_file(
    const std::string& path);

/// As load_scenario_file, keeping document-level batch presets.
[[nodiscard]] ScenarioDocument load_scenario_document(
    const std::string& path);

/// Solver-choice names used by the schema ("auto", "lp",
/// "value-iteration", "policy-iteration").
[[nodiscard]] const char* to_string(core::SolverChoice solver);
[[nodiscard]] bool solver_from_string(const std::string& text,
                                      core::SolverChoice& out);

/// Arbiter names used by the schema ("fixed-priority", "round-robin",
/// "longest-queue", "weighted-random").
[[nodiscard]] const char* to_string(sim::ArbiterKind arbiter);
[[nodiscard]] bool arbiter_from_string(const std::string& text,
                                       sim::ArbiterKind& out);

}  // namespace socbuf::scenario
