#include "exec/executor.hpp"

namespace socbuf::exec {

Executor::Executor(std::size_t threads)
    : workers_(resolve_thread_count(threads)) {
    if (workers_ > 1) pool_ = std::make_unique<ThreadPool>(workers_);
}

void Executor::for_each(std::size_t n,
                        const std::function<void(std::size_t)>& body) {
    if (pool_ == nullptr) {
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }
    parallel_for_index(*pool_, n, body);
}

void Executor::for_ranges(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_chunk) {
    if (n == 0) return;
    if (pool_ == nullptr) {
        body(0, n);
        return;
    }
    parallel_for_ranges(*pool_, n, body, min_chunk);
}

}  // namespace socbuf::exec
