#include "exec/thread_pool.hpp"

#include "util/contracts.hpp"

#include <algorithm>
#include <utility>

namespace socbuf::exec {

std::size_t resolve_thread_count(std::size_t requested) {
    SOCBUF_REQUIRE_MSG(requested <= kMaxThreads,
                       "thread count exceeds exec::kMaxThreads");
    if (requested != 0) return requested;
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads, std::size_t aging_limit)
    : aging_limit_(aging_limit) {
    const std::size_t n = resolve_thread_count(threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    job_available_.notify_all();
    for (auto& w : workers_) w.join();
}

bool ThreadPool::queues_empty() const {
    for (const auto& queue : queues_)
        if (!queue.empty()) return false;
    return true;
}

void ThreadPool::submit(std::function<void()> job, Priority priority) {
    SOCBUF_REQUIRE_MSG(job != nullptr, "cannot submit an empty job");
    const auto level = static_cast<std::size_t>(priority);
    SOCBUF_REQUIRE_MSG(level < kPriorityLevels, "unknown job priority");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        SOCBUF_REQUIRE_MSG(!stopping_,
                           "cannot submit to a stopping thread pool");
        queues_[level].push_back(std::move(job));
    }
    job_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queues_empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            job_available_.wait(
                lock, [this] { return stopping_ || !queues_empty(); });
            // Claim the oldest job of the highest non-empty priority —
            // unless aging is on and a lower non-empty level has already
            // been passed over aging_limit_ times, in which case that
            // level (the highest-priority aged one) is claimed instead.
            std::size_t claim = kPriorityLevels;
            if (aging_limit_ > 0) {
                for (std::size_t l = 0; l < kPriorityLevels; ++l) {
                    if (!queues_[l].empty() && skipped_[l] >= aging_limit_) {
                        claim = l;
                        break;
                    }
                }
            }
            if (claim == kPriorityLevels) {
                for (std::size_t l = 0; l < kPriorityLevels; ++l) {
                    if (!queues_[l].empty()) {
                        claim = l;
                        break;
                    }
                }
            }
            if (claim == kPriorityLevels) return;  // stopping_, nothing left
            if (aging_limit_ > 0) {
                // Every non-empty level below the claimed one was passed
                // over by this claim; a level above it (possible only when
                // an aged level won) is about to be claimed next anyway
                // and never counts as starved.
                for (std::size_t l = claim + 1; l < kPriorityLevels; ++l)
                    if (!queues_[l].empty()) ++skipped_[l];
                skipped_[claim] = 0;
            }
            job = std::move(queues_[claim].front());
            queues_[claim].pop_front();
            ++active_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queues_empty() && active_ == 0) idle_.notify_all();
        }
    }
}

}  // namespace socbuf::exec
