#include "exec/thread_pool.hpp"

#include "util/contracts.hpp"

#include <algorithm>
#include <utility>

namespace socbuf::exec {

std::size_t resolve_thread_count(std::size_t requested) {
    if (requested != 0) return requested;
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
    const std::size_t n = resolve_thread_count(threads);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    job_available_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
    SOCBUF_REQUIRE_MSG(job != nullptr, "cannot submit an empty job");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        SOCBUF_REQUIRE_MSG(!stopping_,
                           "cannot submit to a stopping thread pool");
        queue_.push_back(std::move(job));
    }
    job_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            job_available_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and nothing left
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_.notify_all();
        }
    }
}

}  // namespace socbuf::exec
