#include "exec/task_graph.hpp"

#include "util/contracts.hpp"

#include <utility>

namespace socbuf::exec {

TaskGraph::TaskGraph(Executor& executor) : executor_(executor) {}

TaskGraph::~TaskGraph() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGraph::submit(std::function<void()> task, Priority priority) {
    SOCBUF_REQUIRE_MSG(task != nullptr, "cannot submit an empty task");
    if (executor_.serial()) {
        // Inline execution; nested submits recurse depth-first, so the
        // serial order is the reference order parallel runs must match.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++submitted_;
            if (cancelled_) return;
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (error_ == nullptr) error_ = std::current_exception();
            cancelled_ = true;
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++submitted_;
        ++pending_;
    }
    executor_.pool()->submit(
        [this, task = std::move(task)] { run_one(task); }, priority);
}

void TaskGraph::run_one(const std::function<void()>& task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (cancelled_) {
            finish_one();
            return;
        }
    }
    try {
        task();
    } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error_ == nullptr) error_ = std::current_exception();
        cancelled_ = true;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    finish_one();
}

void TaskGraph::finish_one() {
    // Caller holds mutex_ (or is in the cancelled branch, which does).
    if (--pending_ == 0) all_done_.notify_all();
}

void TaskGraph::wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
    if (error_ != nullptr) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        cancelled_ = false;  // reusable after the error is delivered
        std::rethrow_exception(error);
    }
}

std::size_t TaskGraph::submitted() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

}  // namespace socbuf::exec
