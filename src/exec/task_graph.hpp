// A completion-counted task fan-out on one Executor — the primitive that
// turns staged fork-join code into a pipelined task graph.
//
// submit() enqueues a task on the executor's pool (or runs it inline on a
// serial executor), and — crucially — tasks may submit follow-up tasks
// from inside their own bodies: the completion count covers every task
// ever submitted, so a parent that schedules continuations before it
// returns can never race wait() into an early wake-up. That is exactly
// the dependency-aware shape scenario::BatchRunner uses: every sizing job
// is submitted up front and each one submits its evaluation replications
// the moment it finishes, so stage-2 work overlaps the remaining stage-1
// work instead of idling behind a barrier.
//
// Scheduling: submit() takes an exec::Priority (default kDefault), which
// orders *claims* on the pool — a task submitted at Priority::kEvaluation
// jumps ahead of queued Priority::kSizing work, so a finished sizing
// job's evaluation replications run before still-pending sizing jobs.
// Priorities change only when tasks start, never what they compute: the
// bit-identical-results-for-any-thread-count contract holds for any
// priority labeling, because results live in index-addressed slots and
// the caller folds them in its own order. On a serial executor tasks run
// inline at submission, so priorities are accepted but moot there — the
// serial reference order is submission order either way.
//
// Error handling: the first exception a task throws is captured and
// rethrown by wait(); tasks that have not *started* by then are skipped
// (their slots still count down, so wait() always returns). Determinism
// is the submitter's job, same contract as parallel_map: tasks write to
// index-addressed slots and the caller folds them in its own order.
//
// Threading rules: submit() is safe from any thread, including from
// inside a running task. wait() must be called from the thread that owns
// the graph — never from inside a task — and the graph must outlive
// every task it runs (wait() or the destructor guarantees that).
#pragma once

#include "exec/executor.hpp"

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>

namespace socbuf::exec {

class TaskGraph {
public:
    explicit TaskGraph(Executor& executor);
    /// Blocks until every submitted task has drained (errors are kept for
    /// a later wait() call, not thrown from here).
    ~TaskGraph();

    TaskGraph(const TaskGraph&) = delete;
    TaskGraph& operator=(const TaskGraph&) = delete;

    /// Schedule one task. On a serial executor the task runs inline,
    /// right here (continuations therefore run depth-first, preserving
    /// the serial reference order); on a pooled executor it is enqueued
    /// at `priority` (higher levels are claimed before lower ones; same
    /// level runs FIFO). After a task has thrown, further tasks are
    /// skipped.
    void submit(std::function<void()> task,
                Priority priority = Priority::kDefault);

    /// Block until every task submitted so far — including tasks they
    /// submitted in turn — has finished, then rethrow the first captured
    /// exception, if any. The graph is reusable afterwards.
    void wait();

    /// Total tasks ever submitted to this graph (including skipped ones).
    [[nodiscard]] std::size_t submitted() const;

private:
    void run_one(const std::function<void()>& task);
    void finish_one();

    Executor& executor_;
    mutable std::mutex mutex_;
    std::condition_variable all_done_;
    std::size_t pending_ = 0;
    std::size_t submitted_ = 0;
    bool cancelled_ = false;  // a task threw; skip tasks not yet started
    std::exception_ptr error_;
};

}  // namespace socbuf::exec
