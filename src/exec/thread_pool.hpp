// A fixed-size thread pool: N workers draining one FIFO job queue.
// Deliberately work-stealing-free — jobs are pulled from a single shared
// queue, which keeps the pool small, predictable, and sufficient for the
// coarse-grained work socbuf parallelizes (CTMDP solves, whole simulation
// replications). Determinism is the job of exec::parallel_map, which
// addresses results by index; the pool itself only promises that every
// submitted job runs exactly once.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace socbuf::exec {

/// Resolve a user-facing `threads` knob: 0 means "use the hardware"
/// (std::thread::hardware_concurrency, at least 1), anything else is taken
/// literally.
[[nodiscard]] std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
public:
    /// Spawn `threads` workers (resolved via resolve_thread_count, so 0 =
    /// hardware concurrency). A 1-thread pool is valid and still runs jobs
    /// on its single worker.
    explicit ThreadPool(std::size_t threads = 0);

    /// Drains outstanding jobs, then joins every worker.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Enqueue a job. Jobs must not throw out of the callable; wrap your
    /// work and capture exceptions (parallel_map does this for you).
    void submit(std::function<void()> job);

    /// Block until the queue is empty and every worker is idle.
    void wait_idle();

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable job_available_;
    std::condition_variable idle_;
    std::size_t active_ = 0;
    bool stopping_ = false;
};

}  // namespace socbuf::exec
