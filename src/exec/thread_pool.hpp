// A fixed-size thread pool: N workers draining per-priority FIFO job
// queues. Deliberately work-stealing-free — jobs are pulled from shared
// queues, which keeps the pool small, predictable, and sufficient for the
// coarse-grained work socbuf parallelizes (CTMDP solves, whole simulation
// replications). Determinism is the job of exec::parallel_map, which
// addresses results by index; the pool itself only promises that every
// submitted job runs exactly once.
//
// Priorities order *claims*, never results: a worker looking for work
// always takes the oldest job of the highest non-empty priority level, so
// latency-critical jobs (a finished sizing run's evaluation replications)
// jump ahead of bulk work queued earlier (still-pending sizing jobs)
// without any preemption — running jobs are never interrupted. Because
// every socbuf fan-out writes index-addressed slots, reordering claims
// reorders only the schedule, not the folded results.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace socbuf::exec {

/// Claim-ordering levels for pool jobs, highest first. The set is small
/// and fixed on purpose: kEvaluation (a completed sizing job's evaluation
/// replications — finishing these first is what batch latency feels),
/// kSizing (queued sizing jobs, the bulk stage-1 work), and kDefault
/// (everything else: data-parallel helper jobs, ad-hoc tasks), which
/// preserves the pre-priority FIFO position of unlabeled work.
enum class Priority : std::size_t {
    kEvaluation = 0,  // claimed first
    kSizing = 1,
    kDefault = 2,  // claimed last
};

inline constexpr std::size_t kPriorityLevels = 3;

/// The largest worker count the pool accepts. A literal `threads` value
/// beyond this is a caller error (no machine this code targets has more
/// hardware threads, and a runaway value would otherwise die deep inside
/// std::vector with an unhelpful length error) — front ends should
/// validate against it and report a usage error instead.
inline constexpr std::size_t kMaxThreads = 4096;

/// Resolve a user-facing `threads` knob: 0 means "use the hardware"
/// (std::thread::hardware_concurrency, at least 1), anything else is taken
/// literally (must be <= kMaxThreads).
[[nodiscard]] std::size_t resolve_thread_count(std::size_t requested);

class ThreadPool {
public:
    /// Spawn `threads` workers (resolved via resolve_thread_count, so 0 =
    /// hardware concurrency). A 1-thread pool is valid and still runs jobs
    /// on its single worker.
    ///
    /// `aging_limit` is the opt-in starvation guard: 0 (the default)
    /// keeps strict priority claims; a positive limit bounds how many
    /// consecutive claims may pass over a non-empty lower-priority level
    /// before the next claim must take that level's oldest job — so a
    /// saturated kEvaluation stream cannot park queued kSizing/kDefault
    /// work forever. Aging moves only *claims* (the schedule): every
    /// socbuf fan-out folds index-addressed slots, so reports stay
    /// bit-identical for any limit.
    explicit ThreadPool(std::size_t threads = 0,
                        std::size_t aging_limit = 0);

    /// Drains outstanding jobs, then joins every worker.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Enqueue a job at `priority` (jobs of the same level run FIFO; a
    /// higher level is always claimed before a lower one). Jobs must not
    /// throw out of the callable; wrap your work and capture exceptions
    /// (parallel_map does this for you).
    void submit(std::function<void()> job,
                Priority priority = Priority::kDefault);

    /// Block until every queue is empty and every worker is idle.
    void wait_idle();

private:
    void worker_loop();
    [[nodiscard]] bool queues_empty() const;  // caller holds mutex_

    std::vector<std::thread> workers_;
    /// One FIFO per priority level, indexed by Priority's value; workers
    /// drain lower indices (higher priorities) first.
    std::array<std::deque<std::function<void()>>, kPriorityLevels> queues_;
    /// Starvation guard (see the constructor): 0 disables aging;
    /// skipped_[l] counts consecutive claims that passed over non-empty
    /// level l, reset when level l is claimed. Guarded by mutex_.
    std::size_t aging_limit_ = 0;
    std::array<std::size_t, kPriorityLevels> skipped_{};
    mutable std::mutex mutex_;
    std::condition_variable job_available_;
    std::condition_variable idle_;
    std::size_t active_ = 0;
    bool stopping_ = false;
};

}  // namespace socbuf::exec
