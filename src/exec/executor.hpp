// The shared execution context of a batch or experiment.
//
// An Executor owns exactly one ThreadPool (spawned lazily: a serial
// executor owns none) and is passed *down by reference* through the
// layers — BatchRunner -> experiment drivers -> BufferSizingEngine — so
// one set of workers serves an entire batch instead of every engine run
// constructing and tearing down its own pool. map() is the deterministic
// entry point: like exec::parallel_map it returns results in index order,
// bit-identical for any worker count, including 1.
//
// Nesting rule: map() may be called from *inside* a job that is itself
// running on this executor's workers. parallel_for_index makes its caller
// participate in the claim-and-run loop, so a nested fan-out always makes
// progress on the calling worker and recruits other workers only when
// they are free — no deadlock for any nesting depth. A BatchRunner sizing
// job therefore fans its subsystem solves on the same shared executor it
// runs on (the old rule — hand pool jobs a serial context — is gone).
// The one remaining restriction: blocking *waits* that only another
// worker can satisfy (exec::TaskGraph::wait) must stay off the workers;
// see task_graph.hpp.
#pragma once

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

namespace socbuf::exec {

class Executor {
public:
    /// `threads` as everywhere in socbuf: 0 = hardware concurrency,
    /// otherwise taken literally. workers() == 1 never spawns a thread.
    explicit Executor(std::size_t threads = 0);

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    [[nodiscard]] std::size_t workers() const { return workers_; }
    [[nodiscard]] bool serial() const { return pool_ == nullptr; }

    /// The underlying pool, or nullptr for a serial executor.
    [[nodiscard]] ThreadPool* pool() { return pool_.get(); }

    /// Map fn over [0, n) on this executor's workers; results in index
    /// order, bit-identical for any worker count. `priority` labels the
    /// fan-out's helper jobs (the insertion search submits its plan
    /// evaluations at Priority::kSizing so a saturated evaluation stream
    /// claims ahead of them); schedule-only, never part of the results.
    template <typename Fn>
    [[nodiscard]] auto map(std::size_t n, Fn&& fn,
                           Priority priority = Priority::kDefault) {
        if (pool_ == nullptr)
            return parallel_map(std::size_t{1}, n, std::forward<Fn>(fn));
        return parallel_map(*pool_, n, std::forward<Fn>(fn), priority);
    }

    /// Run body(i) for every i in [0, n); no result collection.
    void for_each(std::size_t n, const std::function<void(std::size_t)>& body);

    /// Chunked fan-out for tight per-index loops (a Bellman sweep, a CSR
    /// row gather): run body(lo, hi) over contiguous chunks of
    /// `min_chunk` indices, inline (one body(0, n) call, no locking) when
    /// the executor is serial or n < 2 * min_chunk. Chunk boundaries
    /// depend only on n and min_chunk, never on the worker count — see
    /// exec::parallel_for_ranges for the determinism contract.
    void for_ranges(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& body,
                    std::size_t min_chunk = 256);

private:
    std::size_t workers_ = 1;
    std::unique_ptr<ThreadPool> pool_;
};

}  // namespace socbuf::exec
