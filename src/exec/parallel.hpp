// Deterministic data-parallel helpers on top of exec::ThreadPool.
//
// parallel_map(pool, n, fn) evaluates fn(0..n-1) concurrently and returns
// the results in index order. Each fn(i) must be independent of every
// other index; under that contract the returned vector is **bit-identical
// for any pool size, including 1**, because results are addressed by index
// and the caller folds them in order. This is the backbone the sizing
// engine uses for per-subsystem CTMDP solves and the experiment drivers
// use for per-replication simulations (each replication already owns its
// own RNG substream: seed = base seed + replication index).
#pragma once

#include "exec/thread_pool.hpp"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <type_traits>
#include <vector>

namespace socbuf::exec {

/// Run body(i) for every i in [0, n) on the pool's workers and block until
/// all are done. Indices are claimed one at a time from a shared cursor
/// (dynamic load balancing, no stealing); the first exception thrown by
/// any body is rethrown here once every claimed index has finished.
///
/// The *caller participates*: it runs the same claim-and-run loop as the
/// pool's workers, so the call always makes progress even when every
/// worker is busy — which makes it safe to call from *inside* a job that
/// is itself running on the pool (a nested fan-out never deadlocks; at
/// worst the inner indices all run on the calling worker).
///
/// `priority` labels the helper jobs the fan-out submits (kDefault keeps
/// the classic claim order). Schedule-only, like every priority in the
/// pool: results are folded by index whatever the label.
void parallel_for_index(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t)>& body,
                        Priority priority = Priority::kDefault);

/// Split [0, n) into contiguous chunks of `min_chunk` indices (the last
/// chunk takes the remainder) and run body(lo, hi) for each chunk on the
/// pool's workers (caller participating, same nesting guarantee as
/// parallel_for_index). The chunk boundaries depend only on n and
/// min_chunk — never on the pool size or scheduling — so a body whose
/// chunk results land in index-addressed storage is bit-identical for any
/// worker count, and even per-chunk partial folds can be refolded in chunk
/// order deterministically. Runs body(0, n) inline when one chunk
/// suffices.
void parallel_for_ranges(ThreadPool& pool, std::size_t n,
                         const std::function<void(std::size_t, std::size_t)>&
                             body,
                         std::size_t min_chunk = 256);

/// Map fn over [0, n) and return results in index order. fn's result type
/// must be default-constructible and movable. Runs inline (no locking)
/// when the pool has a single worker or n <= 1.
template <typename Fn>
[[nodiscard]] auto parallel_map(ThreadPool& pool, std::size_t n, Fn&& fn,
                                Priority priority = Priority::kDefault)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
    using Result = std::decay_t<decltype(fn(std::size_t{}))>;
    std::vector<Result> out(n);
    if (n == 0) return out;
    if (pool.size() <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
        return out;
    }
    parallel_for_index(pool, n, [&](std::size_t i) { out[i] = fn(i); },
                       priority);
    return out;
}

/// Convenience overload: spin up a transient pool of `threads` workers
/// (0 = hardware concurrency) for one map. Prefer the pool overload when
/// mapping repeatedly.
template <typename Fn>
[[nodiscard]] auto parallel_map(std::size_t threads, std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>> {
    const std::size_t resolved = resolve_thread_count(threads);
    if (resolved <= 1 || n <= 1) {
        using Result = std::decay_t<decltype(fn(std::size_t{}))>;
        std::vector<Result> out(n);
        for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
        return out;
    }
    ThreadPool pool(std::min(resolved, n));  // never spawn idle workers
    return parallel_map(pool, n, std::forward<Fn>(fn));
}

}  // namespace socbuf::exec
