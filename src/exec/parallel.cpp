#include "exec/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

namespace socbuf::exec {

void parallel_for_index(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t)>& body) {
    if (n == 0) return;
    if (pool.size() <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }

    struct Shared {
        std::atomic<std::size_t> cursor{0};
        std::atomic<std::size_t> finished_workers{0};
        std::mutex mutex;
        std::condition_variable done;
        std::exception_ptr error;
        std::size_t worker_count = 0;
        bool all_done = false;
    } shared;
    shared.worker_count = std::min(pool.size(), n);

    const std::size_t total = n;
    auto drive = [&shared, &body, total] {
        for (;;) {
            const std::size_t i =
                shared.cursor.fetch_add(1, std::memory_order_relaxed);
            if (i >= total) break;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(shared.mutex);
                if (shared.error == nullptr)
                    shared.error = std::current_exception();
                // Stop claiming further indices everywhere.
                shared.cursor.store(total, std::memory_order_relaxed);
            }
        }
        std::lock_guard<std::mutex> lock(shared.mutex);
        if (++shared.finished_workers == shared.worker_count) {
            shared.all_done = true;
            shared.done.notify_all();
        }
    };
    for (std::size_t w = 0; w < shared.worker_count; ++w) pool.submit(drive);

    std::unique_lock<std::mutex> lock(shared.mutex);
    shared.done.wait(lock, [&shared] { return shared.all_done; });
    if (shared.error != nullptr) std::rethrow_exception(shared.error);
}

}  // namespace socbuf::exec
