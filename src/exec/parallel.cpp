#include "exec/parallel.hpp"

#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

namespace socbuf::exec {

namespace {

/// State of one parallel_for_index call. Heap-allocated and co-owned by
/// the helper jobs so stragglers dequeued after the call has returned
/// find an exhausted cursor instead of a dead stack frame; the body is
/// copied in for the same reason.
struct ForIndexState {
    std::function<void(std::size_t)> body;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t next = 0;       // next unclaimed index
    std::size_t total = 0;
    std::size_t in_flight = 0;  // claimed indices whose body is running
    bool abort = false;         // set by the first exception
    std::exception_ptr error;
};

/// Claim-and-run loop shared by the caller and every helper job: claim
/// one index at a time under the lock, run the body outside it. Exits
/// when the cursor is exhausted or a body threw; the last exiting driver
/// (in_flight back to zero) wakes the waiting caller.
void drive(ForIndexState& state) {
    std::unique_lock<std::mutex> lock(state.mutex);
    while (!state.abort && state.next < state.total) {
        const std::size_t i = state.next++;
        ++state.in_flight;
        lock.unlock();
        try {
            state.body(i);
            lock.lock();
        } catch (...) {
            lock.lock();
            if (state.error == nullptr)
                state.error = std::current_exception();
            state.abort = true;  // stop claiming further indices everywhere
        }
        --state.in_flight;
    }
    if (state.in_flight == 0) state.done.notify_all();
}

}  // namespace

void parallel_for_index(ThreadPool& pool, std::size_t n,
                        const std::function<void(std::size_t)>& body,
                        Priority priority) {
    if (n == 0) return;
    if (pool.size() <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i) body(i);
        return;
    }

    auto state = std::make_shared<ForIndexState>();
    state->body = body;
    state->total = n;

    // Helpers let idle workers join in; the caller drives its own loop
    // below, so completion never depends on a worker being free — which
    // is what makes this safe to call *from* one of the pool's workers
    // (the nested fan-out case). A straggler helper that only gets
    // dequeued after the call returned sees an exhausted cursor and
    // exits immediately.
    const std::size_t helpers = std::min(pool.size(), n);
    for (std::size_t w = 0; w < helpers; ++w)
        pool.submit([state] { drive(*state); }, priority);

    drive(*state);

    std::unique_lock<std::mutex> lock(state->mutex);
    state->done.wait(lock, [&] {
        return state->in_flight == 0 &&
               (state->abort || state->next >= state->total);
    });
    if (state->error != nullptr) std::rethrow_exception(state->error);
}

void parallel_for_ranges(
    ThreadPool& pool, std::size_t n,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_chunk) {
    if (n == 0) return;
    if (min_chunk == 0) min_chunk = 1;
    const std::size_t chunks = (n + min_chunk - 1) / min_chunk;
    if (pool.size() <= 1 || chunks <= 1) {
        body(0, n);
        return;
    }
    parallel_for_index(pool, chunks, [&](std::size_t c) {
        const std::size_t lo = c * min_chunk;
        body(lo, std::min(lo + min_chunk, n));
    });
}

}  // namespace socbuf::exec
