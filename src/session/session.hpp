// socbuf::Session — the one-object entry point to the scenario system.
//
// A Session owns the three pieces every consumer previously wired by hand:
//
//   * the exec::Executor (one worker pool for everything the session runs),
//   * the batch-wide ctmdp::SolveCache (cleared at the start of each run,
//     so two runs of the same workload produce bit-identical reports —
//     opt into cross-run reuse with SessionOptions::reuse_cache),
//   * the ScenarioRegistry (built-in presets plus whatever load_file adds).
//
// The experiment drivers (core::run_figure3 / run_table1), the benches and
// socbuf_cli are thin clients of this facade:
//
//     socbuf::Session session;
//     auto report = session.run("np-baseline");          // preset by name
//     auto suite  = session.run("paper-suite");          // batch preset
//     session.load_file("my_sweep.json");                // scenarios as data
//     auto custom = session.run("my-sweep");
//     auto catalog = session.export_catalog();           // everything, JSON
//
// Reports are bit-identical for any SessionOptions::threads value — the
// BatchRunner determinism contract, surfaced at the facade.
#pragma once

#include "ctmdp/solve_cache.hpp"
#include "exec/executor.hpp"
#include "scenario/batch_runner.hpp"
#include "scenario/scenario.hpp"
#include "util/json.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace socbuf {

struct SessionOptions {
    /// Worker threads (0 = hardware concurrency). Results are
    /// bit-identical for any value.
    std::size_t threads = 0;
    /// Memoize subsystem CTMDP solves across every engine run of a batch.
    bool use_solve_cache = true;
    /// Entry budget of the session's solve cache (0 = unlimited).
    std::size_t cache_capacity = 0;
    /// Approximate byte budget of the session's solve cache (0 =
    /// unlimited); LRU eviction until back under budget, composing with
    /// cache_capacity. See ctmdp::SolveCache.
    std::size_t cache_byte_budget = 0;
    /// Keep the solve cache warm *across* run() calls instead of clearing
    /// it per batch. Results never change; the per-report cache counters
    /// then accumulate session history (a repeated workload reports ~100%
    /// hits), so leave this off where per-batch counters matter.
    bool reuse_cache = false;
    /// Claim evaluation replications ahead of still-queued sizing jobs
    /// (exec::Priority levels in the batch task graph); off = plain FIFO
    /// claims. Reports are bit-identical either way — only the schedule
    /// (and BatchReport::first_eval_latency_s) moves.
    bool priority_scheduling = true;
    /// Warm-start PI/VI solves from the most recent structurally
    /// identical cached solution (nearest-fingerprint seeding in the
    /// session's solve cache). Cuts iterations on budget sweeps, but a
    /// seeded solve converges along a different trajectory: results agree
    /// to solver tolerance, not bit for bit, so the default stays off —
    /// the bit-identical-reports contract above holds only then.
    bool warm_start = false;
    /// Submit sizing jobs longest-estimated-first inside each batch.
    /// Schedule-only (results bit-identical); see
    /// scenario::BatchOptions::longest_first.
    bool longest_first = true;
    /// Force the red-black Gauss-Seidel VI sweep on every sizing job
    /// (scenario::BatchOptions::gauss_seidel). Fewer iterations on large
    /// models; tolerance-level, not bit-identical, results — default off
    /// like warm_start.
    bool gauss_seidel = false;
};

class Session {
public:
    explicit Session(SessionOptions options = {});

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    [[nodiscard]] scenario::ScenarioRegistry& registry() { return registry_; }
    [[nodiscard]] const scenario::ScenarioRegistry& registry() const {
        return registry_;
    }
    [[nodiscard]] exec::Executor& executor() { return executor_; }
    [[nodiscard]] std::size_t workers() const { return executor_.workers(); }
    [[nodiscard]] const ctmdp::SolveCache& solve_cache() const {
        return cache_;
    }

    /// Run a registered scenario — or batch preset — by name. Throws
    /// util::ContractViolation for unknown names.
    [[nodiscard]] scenario::BatchReport run(const std::string& name);
    /// Run an ad-hoc spec (validated by the runner).
    [[nodiscard]] scenario::BatchReport run(const scenario::ScenarioSpec& spec);
    /// Run ad-hoc specs as one batch.
    [[nodiscard]] scenario::BatchReport run(
        const std::vector<scenario::ScenarioSpec>& specs);
    /// Run several registered names (scenarios and/or batch presets) as
    /// one batch, expanded in argument order.
    [[nodiscard]] scenario::BatchReport run_batch(
        const std::vector<std::string>& names);

    /// Register every scenario in a scenario_io JSON file; returns how
    /// many were added. Throws scenario::ScenarioIoError (naming the JSON
    /// path or file) on malformed input.
    std::size_t load_file(const std::string& path);
    /// As load_file, on raw JSON text.
    std::size_t load_text(const std::string& text);

    /// One scenario (or batch preset, as a catalog document) as JSON —
    /// loadable back via load_file/load_text.
    [[nodiscard]] util::JsonValue export_scenario(
        const std::string& name) const;
    /// Every registered scenario as one catalog document
    /// {"scenarios": [...]}.
    [[nodiscard]] util::JsonValue export_catalog() const;

private:
    SessionOptions options_;
    exec::Executor executor_;
    ctmdp::SolveCache cache_;
    scenario::ScenarioRegistry registry_;
};

}  // namespace socbuf
