#include "session/session.hpp"

#include "scenario/scenario_io.hpp"

namespace socbuf {

Session::Session(SessionOptions options)
    : options_(options),
      executor_(options.threads),
      cache_(options.cache_capacity, options.warm_start,
             options.cache_byte_budget) {}

scenario::BatchReport Session::run(const std::string& name) {
    return run(registry_.expand(name));
}

scenario::BatchReport Session::run(const scenario::ScenarioSpec& spec) {
    return run(std::vector<scenario::ScenarioSpec>{spec});
}

scenario::BatchReport Session::run(
    const std::vector<scenario::ScenarioSpec>& specs) {
    // A fresh cache per batch keeps reports reproducible run over run;
    // reuse_cache trades that for cross-run memoization.
    if (!options_.reuse_cache) cache_.clear();
    scenario::BatchOptions batch;
    batch.use_solve_cache = options_.use_solve_cache;
    batch.cache_capacity = options_.cache_capacity;
    batch.cache_byte_budget = options_.cache_byte_budget;
    batch.shared_cache = &cache_;
    batch.priority_scheduling = options_.priority_scheduling;
    batch.warm_start = options_.warm_start;  // echoed; cache_ owns the flag
    batch.longest_first = options_.longest_first;
    batch.gauss_seidel = options_.gauss_seidel;
    scenario::BatchRunner runner(executor_, batch);
    return runner.run(specs);
}

scenario::BatchReport Session::run_batch(
    const std::vector<std::string>& names) {
    std::vector<scenario::ScenarioSpec> specs;
    for (const auto& name : names)
        for (auto& spec : registry_.expand(name))
            specs.push_back(std::move(spec));
    return run(specs);
}

std::size_t Session::load_file(const std::string& path) {
    return registry_.load_file(path);
}

std::size_t Session::load_text(const std::string& text) {
    return registry_.load_text(text);
}

util::JsonValue Session::export_scenario(const std::string& name) const {
    return scenario::export_json(registry_, name);
}

util::JsonValue Session::export_catalog() const {
    return scenario::catalog_to_json(registry_.specs());
}

}  // namespace socbuf
