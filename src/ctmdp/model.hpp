// Finite continuous-time Markov decision processes.
//
// A CTMDP here is: finite states, per-state finite action sets, exponential
// transition rates q(s'|s,a), a primary cost *rate* c(s,a) to be minimized
// in long-run average, and optional extra cost rates used as side
// constraints (Feinberg's constrained average-cost setting, which the paper
// builds on).
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace socbuf::ctmdp {

struct Transition {
    std::size_t target = 0;
    double rate = 0.0;
};

struct Action {
    std::string name;
    std::vector<Transition> transitions;
    double cost = 0.0;                // primary cost rate (minimized)
    std::vector<double> extra_costs;  // length must equal extra_cost_count()
};

class CtmdpModel {
public:
    /// Number of extra cost signals every action must carry (default 0).
    explicit CtmdpModel(std::size_t extra_cost_count = 0)
        : extra_cost_count_(extra_cost_count) {}

    // The lazy caches carry a mutex and atomic flags, so copies and moves
    // transfer only the model itself; the destination's caches start
    // dirty and rebuild on first use.
    CtmdpModel(const CtmdpModel& other)
        : states_(other.states_),
          extra_cost_count_(other.extra_cost_count_) {}
    CtmdpModel(CtmdpModel&& other) noexcept
        : states_(std::move(other.states_)),
          extra_cost_count_(other.extra_cost_count_) {}
    CtmdpModel& operator=(const CtmdpModel& other) {
        if (this != &other) {
            states_ = other.states_;
            extra_cost_count_ = other.extra_cost_count_;
            index_dirty_ = true;
            structure_dirty_ = true;
        }
        return *this;
    }
    CtmdpModel& operator=(CtmdpModel&& other) noexcept {
        if (this != &other) {
            states_ = std::move(other.states_);
            extra_cost_count_ = other.extra_cost_count_;
            index_dirty_ = true;
            structure_dirty_ = true;
        }
        return *this;
    }

    std::size_t add_state(std::string name = {});

    /// Attach an action to a state; returns the action's index within the
    /// state. Transitions to the same target are allowed and are summed by
    /// consumers.
    std::size_t add_action(std::size_t state, Action action);

    [[nodiscard]] std::size_t state_count() const { return states_.size(); }
    [[nodiscard]] std::size_t action_count(std::size_t state) const;
    [[nodiscard]] const Action& action(std::size_t state,
                                       std::size_t a) const;
    [[nodiscard]] const std::string& state_name(std::size_t state) const;
    [[nodiscard]] std::size_t extra_cost_count() const {
        return extra_cost_count_;
    }

    /// Total number of state-action pairs.
    [[nodiscard]] std::size_t pair_count() const;

    /// Flat index of (state, action) in [0, pair_count()); the inverse of
    /// pair_state()/pair_action().
    [[nodiscard]] std::size_t pair_index(std::size_t state,
                                         std::size_t a) const;
    [[nodiscard]] std::size_t pair_state(std::size_t pair) const;
    [[nodiscard]] std::size_t pair_action(std::size_t pair) const;

    /// Total exit rate of (s,a).
    [[nodiscard]] double exit_rate(std::size_t state, std::size_t a) const;

    /// Structural bandwidth: max |target - state| over every transition
    /// with a positive rate, any action (0 for a diagonal-only model).
    /// Subsystem models pack occupancy vectors with strides, so this is
    /// the largest stride — the banded policy-evaluation path keys off
    /// it. Lazily cached alongside the pair index.
    [[nodiscard]] std::size_t bandwidth() const;

    /// Total transition entries across every action — the model's
    /// structural non-zero count (sparsity diagnostic for the solvers).
    [[nodiscard]] std::size_t transition_count() const;

    /// Largest exit rate over all pairs (uniformization bound).
    [[nodiscard]] double max_exit_rate() const;

    /// Structural validation: every state has at least one action, targets
    /// in range, rates and extra-cost widths consistent. Throws ModelError.
    void validate() const;

private:
    struct StateEntry {
        std::string name;
        std::vector<Action> actions;
    };

    void ensure_pair_index() const;
    void ensure_structure() const;
    void rebuild_pair_index() const;
    void rebuild_structure() const;

    std::vector<StateEntry> states_;
    std::size_t extra_cost_count_;
    // Guards the lazy rebuilds below: const accessors on a shared model
    // are safe from any thread (double-checked on the atomic flags, so
    // the warm path is a single acquire load). Pure synchronization —
    // no result, iteration order or report byte depends on it.
    // socbuf-lint: allow(raw-thread) — serializes only the const-lazy cache rebuilds; results never observe it.
    mutable std::mutex cache_mutex_;
    // Lazily rebuilt flat indexing caches.
    mutable std::vector<std::size_t> pair_offset_;
    mutable std::vector<std::size_t> pair_to_state_;
    mutable std::atomic<bool> index_dirty_{true};
    // Lazily rebuilt structural summary (bandwidth / non-zero count).
    mutable std::size_t bandwidth_ = 0;
    mutable std::size_t transition_count_ = 0;
    mutable std::atomic<bool> structure_dirty_{true};
};

}  // namespace socbuf::ctmdp
