#include "ctmdp/occupation.hpp"

#include "ctmc/stationary.hpp"
#include "linalg/sparse.hpp"
#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>

namespace socbuf::ctmdp {

InducedUniformizedChain induced_uniformized_chain(
    const CtmdpModel& model, const RandomizedPolicy& policy) {
    const std::size_t n = model.state_count();
    InducedUniformizedChain chain;
    std::vector<linalg::SparseEntry> entries;
    entries.reserve(model.transition_count());
    chain.stay.assign(n, 1.0);
    double max_exit = 0.0;
    for (std::size_t s = 0; s < n; ++s)
        for (std::size_t a = 0; a < model.action_count(s); ++a)
            if (policy.probability(s, a) > 0.0)
                max_exit = std::max(max_exit, model.exit_rate(s, a));
    chain.lambda = std::max(max_exit, 1e-12) * 1.05 + 1e-9;
    for (std::size_t s = 0; s < n; ++s) {
        for (std::size_t a = 0; a < model.action_count(s); ++a) {
            const double pa = policy.probability(s, a);
            if (pa <= 0.0) continue;
            for (const auto& t : model.action(s, a).transitions) {
                if (t.target == s || t.rate <= 0.0) continue;
                const double prob = pa * t.rate / chain.lambda;
                entries.push_back({s, t.target, prob});
                chain.stay[s] -= prob;
            }
        }
    }
    // CSR keeps the (state, action, transition) append order within each
    // row, so the stationary iteration's transposed accumulation applies
    // the same additions in the same order as the old explicit jump list —
    // bit-identical — while streaming three flat arrays.
    chain.jumps = linalg::SparseMatrix::from_triplets(n, n, entries);
    return chain;
}

std::vector<double> occupation_of_policy(const CtmdpModel& model,
                                         const RandomizedPolicy& policy,
                                         exec::Executor* executor) {
    const InducedUniformizedChain chain =
        induced_uniformized_chain(model, policy);
    const linalg::Vector pi = ctmc::stationary_power_sparse(
        chain.jumps, chain.stay, 1e-11, 500000, executor);
    std::vector<double> x(model.pair_count(), 0.0);
    for (std::size_t p = 0; p < model.pair_count(); ++p) {
        const std::size_t s = model.pair_state(p);
        const std::size_t a = model.pair_action(p);
        x[p] = pi[s] * policy.probability(s, a);
    }
    return x;
}

std::vector<double> state_marginal(
    const linalg::Vector& pi,
    const std::function<std::size_t(std::size_t)>& feature,
    std::size_t feature_cardinality) {
    SOCBUF_REQUIRE_MSG(feature_cardinality > 0, "empty feature domain");
    std::vector<double> marginal(feature_cardinality, 0.0);
    for (std::size_t s = 0; s < pi.size(); ++s) {
        const std::size_t f = feature(s);
        SOCBUF_REQUIRE_MSG(f < feature_cardinality,
                           "feature value out of range");
        marginal[f] += pi[s];
    }
    return marginal;
}

double marginal_mean(const std::vector<double>& marginal) {
    double mean = 0.0;
    for (std::size_t k = 0; k < marginal.size(); ++k)
        mean += static_cast<double>(k) * marginal[k];
    return mean;
}

std::size_t marginal_quantile(const std::vector<double>& marginal,
                              double tail_mass) {
    SOCBUF_REQUIRE_MSG(!marginal.empty(), "empty marginal");
    SOCBUF_REQUIRE_MSG(tail_mass >= 0.0 && tail_mass <= 1.0,
                       "tail mass outside [0,1]");
    double tail = 0.0;
    for (double p : marginal) tail += p;
    // tail currently ~1; walk k upward removing P(X = k) until the
    // remaining strict-tail P(X > k) drops to tail_mass.
    for (std::size_t k = 0; k < marginal.size(); ++k) {
        tail -= marginal[k];
        if (tail <= tail_mass + 1e-15) return k;
    }
    return marginal.size() - 1;
}

}  // namespace socbuf::ctmdp
