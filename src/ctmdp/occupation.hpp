// Occupation-measure utilities: recover x(s,a) for an arbitrary stationary
// policy, and reduce state-level measures to per-coordinate marginals. The
// sizing engine's K-switching translation is built on these marginals.
#pragma once

#include "ctmdp/model.hpp"
#include "ctmdp/policy.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

#include <cstddef>
#include <functional>
#include <vector>

namespace socbuf::exec {
class Executor;
}  // namespace socbuf::exec

namespace socbuf::ctmdp {

/// The uniformized chain a stationary policy induces, in the sparse form
/// ctmc::stationary_power_sparse consumes: `jumps` holds the off-diagonal
/// transition probabilities (CSR, source-row-major, per-row entries in
/// (action, transition) append order), `stay` the strictly positive
/// self-loop probabilities, `lambda` the uniformization rate.
struct InducedUniformizedChain {
    linalg::SparseMatrix jumps;
    linalg::Vector stay;
    double lambda = 1.0;
};

/// Build the uniformized chain induced by `policy` (only policy-positive
/// actions contribute; lambda = 1.05 * max policy-positive exit rate plus
/// a margin, keeping every self-loop strictly positive / aperiodic).
[[nodiscard]] InducedUniformizedChain induced_uniformized_chain(
    const CtmdpModel& model, const RandomizedPolicy& policy);

/// Occupation measure x(s,a) = pi(s) * phi(a|s) of a stationary policy,
/// flat-indexed by the model's pair index. pi is computed from the induced
/// CTMC (power method; works for any finite unichain model). The sweep
/// fans over `executor` on large chains — schedule-only, bit-identical
/// for any worker count (see ctmc::stationary_power_sparse).
[[nodiscard]] std::vector<double> occupation_of_policy(
    const CtmdpModel& model, const RandomizedPolicy& policy,
    exec::Executor* executor = nullptr);

/// Marginal distribution of an integer feature of the state (e.g. "queue f
/// occupancy") under the state distribution pi. `feature(s)` must return a
/// value in [0, feature_cardinality).
[[nodiscard]] std::vector<double> state_marginal(
    const linalg::Vector& pi,
    const std::function<std::size_t(std::size_t)>& feature,
    std::size_t feature_cardinality);

/// Expected value of the marginal distribution.
[[nodiscard]] double marginal_mean(const std::vector<double>& marginal);

/// Smallest k with P(X > k) <= tail_mass (the quantile the K-switching
/// translation uses as a flow's buffer requirement). Returns the top of the
/// support if even that leaves more tail mass.
[[nodiscard]] std::size_t marginal_quantile(const std::vector<double>& marginal,
                                            double tail_mass);

}  // namespace socbuf::ctmdp
