// Occupation-measure utilities: recover x(s,a) for an arbitrary stationary
// policy, and reduce state-level measures to per-coordinate marginals. The
// sizing engine's K-switching translation is built on these marginals.
#pragma once

#include "ctmdp/model.hpp"
#include "ctmdp/policy.hpp"
#include "linalg/matrix.hpp"

#include <cstddef>
#include <functional>
#include <vector>

namespace socbuf::ctmdp {

/// Occupation measure x(s,a) = pi(s) * phi(a|s) of a stationary policy,
/// flat-indexed by the model's pair index. pi is computed from the induced
/// CTMC (power method; works for any finite unichain model).
[[nodiscard]] std::vector<double> occupation_of_policy(
    const CtmdpModel& model, const RandomizedPolicy& policy);

/// Marginal distribution of an integer feature of the state (e.g. "queue f
/// occupancy") under the state distribution pi. `feature(s)` must return a
/// value in [0, feature_cardinality).
[[nodiscard]] std::vector<double> state_marginal(
    const linalg::Vector& pi,
    const std::function<std::size_t(std::size_t)>& feature,
    std::size_t feature_cardinality);

/// Expected value of the marginal distribution.
[[nodiscard]] double marginal_mean(const std::vector<double>& marginal);

/// Smallest k with P(X > k) <= tail_mass (the quantile the K-switching
/// translation uses as a flow's buffer requirement). Returns the top of the
/// support if even that leaves more tail mass.
[[nodiscard]] std::size_t marginal_quantile(const std::vector<double>& marginal,
                                            double tail_mass);

}  // namespace socbuf::ctmdp
