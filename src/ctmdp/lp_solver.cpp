#include "ctmdp/lp_solver.hpp"

#include "util/contracts.hpp"
#include "util/log.hpp"

#include <cmath>

namespace socbuf::ctmdp {

LpSolveResult solve_average_cost_lp(const CtmdpModel& model,
                                    const std::vector<CostBound>& bounds,
                                    const LpSolverOptions& options) {
    model.validate();
    for (const auto& b : bounds)
        SOCBUF_REQUIRE_MSG(b.cost_index < model.extra_cost_count(),
                           "cost bound references unknown extra cost");

    const std::size_t n_states = model.state_count();
    const std::size_t n_pairs = model.pair_count();

    lp::LinearProgram program;
    program.set_sense(lp::Sense::kMinimize);
    for (std::size_t p = 0; p < n_pairs; ++p) {
        const std::size_t s = model.pair_state(p);
        const std::size_t a = model.pair_action(p);
        program.add_variable(model.action(s, a).cost,
                             "x(" + model.state_name(s) + "," +
                                 model.action(s, a).name + ")");
    }

    // Balance constraints: for each state s', sum_{s,a} q(s'|s,a) x(s,a) = 0.
    // The rows sum to zero over s', so one (state 0's) is redundant and
    // dropped; phase 1 of the simplex would otherwise carry a permanently
    // degenerate artificial for it.
    std::vector<lp::Constraint> balance(n_states);
    for (std::size_t sprime = 0; sprime < n_states; ++sprime) {
        balance[sprime].relation = lp::Relation::kEqual;
        balance[sprime].rhs = 0.0;
        balance[sprime].name = "balance(" + model.state_name(sprime) + ")";
    }
    for (std::size_t p = 0; p < n_pairs; ++p) {
        const std::size_t s = model.pair_state(p);
        const std::size_t a = model.pair_action(p);
        const Action& act = model.action(s, a);
        double exit = 0.0;
        for (const auto& t : act.transitions) {
            if (t.target == s || t.rate <= 0.0) continue;
            balance[t.target].terms.emplace_back(p, t.rate);
            exit += t.rate;
        }
        if (exit > 0.0) balance[s].terms.emplace_back(p, -exit);
    }
    for (std::size_t sprime = 1; sprime < n_states; ++sprime)
        program.add_constraint(std::move(balance[sprime]));

    // Normalization.
    {
        lp::Constraint norm;
        norm.relation = lp::Relation::kEqual;
        norm.rhs = 1.0;
        norm.name = "normalization";
        for (std::size_t p = 0; p < n_pairs; ++p)
            norm.terms.emplace_back(p, 1.0);
        program.add_constraint(std::move(norm));
    }

    // Side constraints on extra cost averages.
    for (const auto& b : bounds) {
        lp::Constraint c;
        c.relation = lp::Relation::kLessEqual;
        c.rhs = b.bound;
        c.name = "cost_bound(" + std::to_string(b.cost_index) + ")";
        for (std::size_t p = 0; p < n_pairs; ++p) {
            const std::size_t s = model.pair_state(p);
            const std::size_t a = model.pair_action(p);
            const double coeff =
                model.action(s, a).extra_costs[b.cost_index];
            if (coeff != 0.0) c.terms.emplace_back(p, coeff);
        }
        program.add_constraint(std::move(c));
    }

    const lp::Solution sol = lp::solve(program, options.simplex);

    LpSolveResult out;
    out.status = sol.status;
    out.simplex_iterations = sol.iterations;
    if (sol.status != lp::SolveStatus::kOptimal) {
        util::log(util::LogLevel::kWarn, "ctmdp LP terminated: ",
                  lp::to_string(sol.status));
        return out;
    }

    out.average_cost = sol.objective;
    out.occupation = sol.x;
    out.state_probability.assign(n_states, 0.0);
    for (std::size_t p = 0; p < n_pairs; ++p)
        out.state_probability[model.pair_state(p)] +=
            std::max(sol.x[p], 0.0);

    out.extra_cost_values.assign(model.extra_cost_count(), 0.0);
    for (std::size_t p = 0; p < n_pairs; ++p) {
        const std::size_t s = model.pair_state(p);
        const std::size_t a = model.pair_action(p);
        for (std::size_t k = 0; k < model.extra_cost_count(); ++k)
            out.extra_cost_values[k] +=
                model.action(s, a).extra_costs[k] * std::max(sol.x[p], 0.0);
    }

    // Policy extraction.
    std::vector<std::vector<double>> probs(n_states);
    for (std::size_t s = 0; s < n_states; ++s) {
        const std::size_t n_a = model.action_count(s);
        probs[s].assign(n_a, 0.0);
        const double mass = out.state_probability[s];
        if (mass > options.unvisited_state_tolerance) {
            for (std::size_t a = 0; a < n_a; ++a)
                probs[s][a] =
                    std::max(sol.x[model.pair_index(s, a)], 0.0) / mass;
        } else {
            // Unvisited under the optimal measure: any choice is
            // gain-optimal; pick uniform for determinism.
            for (std::size_t a = 0; a < n_a; ++a)
                probs[s][a] = 1.0 / static_cast<double>(n_a);
        }
        // Renormalize against round-off.
        double total = 0.0;
        for (double p : probs[s]) total += p;
        for (double& p : probs[s]) p /= total;
    }
    out.policy = RandomizedPolicy(std::move(probs));
    return out;
}

}  // namespace socbuf::ctmdp
