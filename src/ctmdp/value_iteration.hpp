// Relative value iteration for unconstrained average-cost CTMDPs via
// uniformization. This is the fast path the sizing engine uses when a
// subsystem's occupation-measure LP would be too large; on small models it
// must (and in tests does) agree with the LP gain.
#pragma once

#include "ctmdp/model.hpp"
#include "ctmdp/policy.hpp"
#include "linalg/matrix.hpp"

#include <cstddef>

namespace socbuf::ctmdp {

struct ViResult {
    double gain = 0.0;            // optimal long-run average cost (per time)
    linalg::Vector bias;          // relative value function (h(ref) = 0)
    DeterministicPolicy policy;   // greedy optimal policy
    std::size_t iterations = 0;
    double span_residual = 0.0;   // final span of the Bellman update delta
    bool converged = false;
};

struct ViOptions {
    double tolerance = 1e-10;        // on the per-step gain bounds
    std::size_t max_iterations = 500000;
    std::size_t reference_state = 0;
    /// Warm start: initial relative values (converged bias of a nearby
    /// model, injected by SolveCache's warm path). Empty — or any size
    /// other than the model's state count — starts from zeros, the
    /// classic cold iteration. A warm seed changes only the trajectory
    /// to the fixed point (fewer iterations), so the result agrees with
    /// the cold solve to the stopping tolerance, not bit for bit.
    linalg::Vector initial_values;
};

/// Minimize long-run average cost with relative value iteration on the
/// uniformized chain. The model must be validated, unichain, and have at
/// least one action everywhere.
[[nodiscard]] ViResult relative_value_iteration(const CtmdpModel& model,
                                                const ViOptions& options = {});

/// Long-run average cost of a fixed randomized policy (policy evaluation
/// via the induced CTMC's stationary distribution).
[[nodiscard]] double average_cost_of_policy(const CtmdpModel& model,
                                            const RandomizedPolicy& policy);

}  // namespace socbuf::ctmdp
