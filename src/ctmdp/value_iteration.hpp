// Relative value iteration for unconstrained average-cost CTMDPs via
// uniformization. This is the fast path the sizing engine uses when a
// subsystem's occupation-measure LP would be too large; on small models it
// must (and in tests does) agree with the LP gain.
#pragma once

#include "ctmdp/model.hpp"
#include "ctmdp/policy.hpp"
#include "linalg/matrix.hpp"

#include <cstddef>

namespace socbuf::exec {
class Executor;
}  // namespace socbuf::exec

namespace socbuf::ctmdp {

struct ViResult {
    double gain = 0.0;            // optimal long-run average cost (per time)
    linalg::Vector bias;          // relative value function (h(ref) = 0)
    DeterministicPolicy policy;   // greedy optimal policy
    std::size_t iterations = 0;
    double span_residual = 0.0;   // final span of the Bellman update delta
    bool converged = false;
};

/// Which sweep the iteration runs.
///
///   * kJacobi — the classic relative value iteration: th = T(h) reads
///     only the previous iterate, gain from the span bounds
///     (Puterman 8.5.5). The reference rung; its results are the
///     bit-identity contract every report pins against.
///   * kGaussSeidel — red-black accelerated sweep: states are split by
///     parity, the half containing the reference state updates first
///     from the old iterate, the other half then reads the *updated*
///     first half (and the old second half). Reusing fresh values within
///     a sweep roughly halves the iteration count on the birth-death-like
///     buffer chains, but follows a different trajectory — the gain
///     agrees with Jacobi to the stopping tolerance, not bit for bit, so
///     the knob is opt-in exactly like warm starts.
enum class ViSweep { kJacobi = 0, kGaussSeidel = 1 };

struct ViOptions {
    double tolerance = 1e-10;        // on the per-step gain bounds
    std::size_t max_iterations = 500000;
    std::size_t reference_state = 0;
    /// Warm start: initial relative values (converged bias of a nearby
    /// model, injected by SolveCache's warm path). Empty — or any size
    /// other than the model's state count — starts from zeros, the
    /// classic cold iteration. A warm seed changes only the trajectory
    /// to the fixed point (fewer iterations), so the result agrees with
    /// the cold solve to the stopping tolerance, not bit for bit.
    linalg::Vector initial_values;
    /// Sweep variant. kGaussSeidel changes result bits (within
    /// tolerance); everything below is schedule-only and never does.
    ViSweep sweep = ViSweep::kJacobi;
    /// Shared execution context for the Bellman sweeps, or nullptr for
    /// serial. Schedule-only: per-state results land in index-addressed
    /// slots and every fold is order-exact (min/max) or runs in state
    /// order, so results are bit-identical for any worker count.
    /// Excluded from SolveCache fingerprints, like warm seeds.
    exec::Executor* executor = nullptr;
    /// Don't fan sweeps below this state count — chunk bookkeeping beats
    /// the arithmetic on small models. Schedule-only.
    std::size_t parallel_min_states = 1024;
};

/// Minimize long-run average cost with relative value iteration on the
/// uniformized chain. The model must be validated, unichain, and have at
/// least one action everywhere.
[[nodiscard]] ViResult relative_value_iteration(const CtmdpModel& model,
                                                const ViOptions& options = {});

/// Long-run average cost of a fixed randomized policy (policy evaluation
/// via the induced CTMC's stationary distribution, sparse power
/// iteration). The sweep fans over `executor` on large chains —
/// schedule-only, bit-identical for any worker count.
[[nodiscard]] double average_cost_of_policy(const CtmdpModel& model,
                                            const RandomizedPolicy& policy,
                                            exec::Executor* executor =
                                                nullptr);

}  // namespace socbuf::ctmdp
