#include "ctmdp/solve_cache.hpp"

#include <cstdint>
#include <cstring>

namespace socbuf::ctmdp {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
    char bytes[sizeof(v)];
    std::memcpy(bytes, &v, sizeof(v));
    out.append(bytes, sizeof(v));
}

void append_size(std::string& out, std::size_t v) {
    append_u64(out, static_cast<std::uint64_t>(v));
}

/// Bit-exact double encoding: two rates that differ in the last ulp are
/// different models and must not share a cache entry.
void append_double(std::string& out, double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    append_u64(out, bits);
}

}  // namespace

std::string solve_fingerprint(const CtmdpModel& model,
                              const DispatchOptions& options) {
    std::string key;
    // Typical subsystem models are a few hundred pairs; reserve generously
    // once instead of growing through reallocations.
    key.reserve(64 + 32 * model.pair_count());

    key.push_back('M');
    append_size(key, model.state_count());
    append_size(key, model.extra_cost_count());
    for (std::size_t s = 0; s < model.state_count(); ++s) {
        append_size(key, model.action_count(s));
        for (std::size_t a = 0; a < model.action_count(s); ++a) {
            const Action& action = model.action(s, a);
            append_double(key, action.cost);
            append_size(key, action.extra_costs.size());
            for (const double c : action.extra_costs) append_double(key, c);
            append_size(key, action.transitions.size());
            for (const Transition& t : action.transitions) {
                append_size(key, t.target);
                append_double(key, t.rate);
            }
        }
    }

    key.push_back('D');
    append_size(key, static_cast<std::size_t>(options.choice));
    append_size(key, options.lp_pair_limit);
    append_size(key, options.pi_state_limit);
    const SolverOptions& so = options.solver;
    append_double(key, so.lp.unvisited_state_tolerance);
    append_double(key, so.lp.simplex.pivot_tolerance);
    append_double(key, so.lp.simplex.cost_tolerance);
    append_double(key, so.lp.simplex.feasibility_tolerance);
    append_size(key, so.lp.simplex.max_iterations);
    append_size(key, so.lp.simplex.stall_before_bland);
    append_double(key, so.lp.simplex.rhs_perturbation);
    append_double(key, so.vi.tolerance);
    append_size(key, so.vi.max_iterations);
    append_size(key, so.vi.reference_state);
    append_size(key, so.pi.max_policy_updates);
    append_size(key, so.pi.reference_state);
    append_double(key, so.pi.improvement_tolerance);
    // The banded evaluation is a different elimination order (tolerance-
    // level different bits), so it is part of the key. The warm-start
    // seeds (vi.initial_values, pi.initial_policy) deliberately are NOT:
    // the cache injects them *after* fingerprinting, and a seeded solve
    // must be able to serve later cold lookups of the same key.
    append_size(key, so.pi.banded_evaluation ? 1 : 0);
    // The sweep variant changes result bits (Gauss-Seidel follows a
    // different trajectory), so it is part of the key — but appended only
    // when non-default, keeping every pre-existing Jacobi key (and the
    // bytes_resident accounting derived from key sizes) byte-identical.
    // No collision is possible: untagged keys are 2 + 8k bytes long while
    // tagged keys are 11 + 8k, distinct residues mod 8. vi.executor and
    // vi.parallel_min_states are schedule-only — bit-identical results
    // for any worker count — and deliberately are not fingerprinted.
    if (so.vi.sweep != ViSweep::kJacobi) {
        key.push_back('G');
        append_size(key, static_cast<std::size_t>(so.vi.sweep));
    }
    return key;
}

std::string model_structure_fingerprint(const CtmdpModel& model) {
    std::string key;
    key.reserve(32 + 16 * model.pair_count());
    key.push_back('S');
    append_size(key, model.state_count());
    for (std::size_t s = 0; s < model.state_count(); ++s) {
        append_size(key, model.action_count(s));
        for (std::size_t a = 0; a < model.action_count(s); ++a) {
            const Action& action = model.action(s, a);
            append_size(key, action.transitions.size());
            for (const Transition& t : action.transitions)
                append_size(key, t.target);
        }
    }
    return key;
}

namespace {

/// Approximate resident footprint of one solved entry: both stored copies
/// of the key (list node + index), the structure key, the solution's
/// vectors, and fixed per-entry bookkeeping. An estimate, not an audit —
/// it ignores allocator slop — but it is a pure function of the entry's
/// contents, so the total is deterministic for a given resident set.
std::size_t approx_entry_bytes(const std::string& key,
                               const std::string& structure,
                               const SubsystemSolution& solution) {
    std::size_t bytes = 2 * key.size() + structure.size();
    bytes += sizeof(std::pair<const std::string, void*>) * 2;  // map nodes
    bytes += solution.stationary.size() * sizeof(double);
    bytes += solution.occupation.size() * sizeof(double);
    bytes += solution.bias.size() * sizeof(double);
    for (std::size_t s = 0; s < solution.policy.state_count(); ++s)
        bytes += solution.policy.distribution(s).size() * sizeof(double) +
                 sizeof(std::vector<double>);
    bytes += sizeof(SubsystemSolution);
    return bytes;
}

}  // namespace

SolveCache::SolveCache(std::size_t capacity, bool warm_start,
                       std::size_t byte_budget)
    : capacity_(capacity), byte_budget_(byte_budget),
      warm_start_(warm_start) {}

void SolveCache::touch(EntryIter pos) {
    entries_.splice(entries_.begin(), entries_, pos);
}

SolveCache::EntryIter SolveCache::drop_entry(EntryIter pos) {
    const Slot& slot = pos->second;
    if (!slot.structure.empty()) {
        const auto warm = warm_index_.find(slot.structure);
        if (warm != warm_index_.end() && warm->second == pos)
            warm_index_.erase(warm);
    }
    bytes_resident_ -= slot.bytes;
    index_.erase(pos->first);
    return entries_.erase(pos);
}

void SolveCache::evict_over_capacity() {
    if (capacity_ == 0 && byte_budget_ == 0) return;
    auto candidate = entries_.end();
    // Either budget being over triggers the same LRU walk; both use the
    // same pinning rules, so a byte budget composes with a capacity.
    while ((capacity_ != 0 && entries_.size() > capacity_) ||
           (byte_budget_ != 0 && bytes_resident_ > byte_budget_)) {
        if (candidate == entries_.begin()) break;
        --candidate;
        // The front entry is the one the completing solve just touched;
        // when pinned entries crowd the back the scan could otherwise
        // reach it, and every solve would self-evict at tight
        // capacities. Sparing it means residency can transiently exceed
        // the budget instead — the documented best-effort trade.
        if (candidate == entries_.begin()) break;
        const Slot& slot = candidate->second;
        // Only settled, unwatched entries may go; in-flight solves and
        // slots other threads hold references into are pinned.
        if (slot.state != Slot::kReady || slot.waiters != 0) continue;
        candidate = drop_entry(candidate);
        ++evictions_;
    }
}

SubsystemSolution SolveCache::solve(SolverRegistry& registry,
                                    const CtmdpModel& model,
                                    const DispatchOptions& options) {
    const std::string key = solve_fingerprint(model, options);
    std::unique_lock<std::mutex> lock(mutex_);
    auto mapped = index_.find(key);
    if (mapped == index_.end()) {
        entries_.emplace_front(key, Slot{});
        mapped = index_.emplace(key, entries_.begin()).first;
    }
    // The list iterator (and the Slot it points to) stays valid across
    // concurrent inserts and evictions of *other* entries, and this entry
    // is pinned below (kSolving or waiters > 0) whenever the lock is
    // dropped, so it can be held through the waits.
    const EntryIter pos = mapped->second;
    Slot& slot = pos->second;
    for (;;) {
        if (slot.state == Slot::kReady) {
            ++hits_;
            touch(pos);
            // Reclaim over-budget residue here too: when an eviction was
            // blocked by a slot that was pinned at the time (in-flight
            // solve, parked waiter, failed-slot husk), the residency
            // stays over budget until *some* bookkeeping event retries —
            // with eviction only on the insert path, a hit-only tail
            // would keep the stale entry resident forever.
            evict_over_capacity();
            return slot.solution;
        }
        if (slot.state == Slot::kUnsolved) break;  // ours to claim
        // Another thread is solving this key: wait and share its result
        // instead of duplicating the work. Every lookup counts exactly
        // one hit (served a solution) or one miss (claimed the solve), so
        // with an unlimited capacity the totals are independent of the
        // thread interleaving.
        ++slot.waiters;
        slot_ready_.wait(lock, [&] { return slot.state != Slot::kSolving; });
        --slot.waiters;
        // kReady: the loop returns it as a hit. kUnsolved: the solving
        // thread failed, so claim the key ourselves (failures propagate
        // from some requester either way).
    }
    slot.state = Slot::kSolving;
    ++misses_;

    // Nearest-fingerprint warm start: while still under the lock, copy the
    // seed (policy + bias + effort) out of the most recently solved entry
    // with the same model structure — the entry itself may be evicted the
    // moment the lock drops. The seed goes into a *copy* of the dispatch
    // options after the key was computed, so seeded and cold solves of
    // the same key stay interchangeable cache-wise.
    bool seeded = false;
    SolverKind seed_kind = SolverKind::kLp;
    std::size_t seed_iterations = 0;
    DispatchOptions effective = options;
    std::string structure;
    if (warm_start_) {
        structure = model_structure_fingerprint(model);
        const auto warm = warm_index_.find(structure);
        if (warm != warm_index_.end()) {
            const SubsystemSolution& seed = warm->second->second.solution;
            if (seed.converged) {
                effective.solver.pi.initial_policy =
                    seed.policy.mode().choices();
                effective.solver.vi.initial_values = seed.bias;
                seed_kind = seed.solved_by;
                seed_iterations = seed.iterations;
                seeded = true;
            }
        }
    }

    lock.unlock();
    try {
        SubsystemSolution solution = registry.solve(model, effective);
        lock.lock();
        slot.solution = solution;
        slot.structure = std::move(structure);
        slot.bytes = approx_entry_bytes(pos->first, slot.structure, solution);
        bytes_resident_ += slot.bytes;
        slot.state = Slot::kReady;
        if (warm_start_) warm_index_[slot.structure] = pos;
        if (seeded) {
            ++warm_hits_;
            // Iteration counts are only comparable within one algorithm;
            // clamp at zero so a warm solve that happened to take longer
            // does not wrap the counter.
            if (solution.solved_by == seed_kind &&
                seed_iterations > solution.iterations)
                iterations_saved_ += seed_iterations - solution.iterations;
        }
        touch(pos);
        evict_over_capacity();
        slot_ready_.notify_all();
        return solution;
    } catch (...) {
        lock.lock();
        slot.state = Slot::kUnsolved;
        if (slot.waiters == 0) {
            // Nobody is watching the failed slot: drop the husk so a
            // failed key costs no residency. Waiters, if any, re-claim
            // it instead (the slot must stay alive for them).
            slot.structure.clear();  // never entered the warm index
            drop_entry(pos);
        }
        // Same reclamation as the hit path: this failure may be the last
        // bookkeeping event of the batch, and entries an earlier
        // eviction had to skip (pinned then, settled now) must not
        // outlive the budget because of it.
        evict_over_capacity();
        slot_ready_.notify_all();
        throw;
    }
}

SolveCacheStats SolveCache::stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    SolveCacheStats out;
    out.hits = hits_;
    out.misses = misses_;
    out.evictions = evictions_;
    out.warm_hits = warm_hits_;
    out.iterations_saved = iterations_saved_;
    out.bytes_resident = bytes_resident_;
    return out;
}

std::size_t SolveCache::size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t ready = 0;
    for (const auto& entry : entries_)
        if (entry.second.state == Slot::kReady) ++ready;
    return ready;
}

void SolveCache::clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
    warm_index_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
    warm_hits_ = 0;
    iterations_saved_ = 0;
    bytes_resident_ = 0;
}

}  // namespace socbuf::ctmdp
