// Howard policy iteration for unconstrained average-cost CTMDPs
// (uniformized). Slower than value iteration per step but converges in a
// handful of policy updates; serves as an independent check of both the LP
// and the value-iteration solvers.
#pragma once

#include "ctmdp/model.hpp"
#include "ctmdp/policy.hpp"
#include "linalg/matrix.hpp"

#include <cstddef>

namespace socbuf::ctmdp {

struct PiResult {
    double gain = 0.0;
    linalg::Vector bias;
    DeterministicPolicy policy;
    std::size_t policy_updates = 0;
    bool converged = false;
};

struct PiOptions {
    std::size_t max_policy_updates = 1000;
    std::size_t reference_state = 0;
    double improvement_tolerance = 1e-10;
    /// Exploit the model's banded structure in policy evaluation: the
    /// gain column is eliminated by a bordered block solve and the
    /// remaining bias system is factorized with a banded LU — O(n·bw²)
    /// per update instead of the dense O(n³). Auto-gated: the dense path
    /// still runs when the model is small or its bandwidth is too close
    /// to n for the banded factorization to win. The bordered solve is a
    /// different (better-conditioned-size) elimination order, so gains
    /// and biases agree with the dense path to solver tolerance, not bit
    /// for bit — which is why this knob is part of the solve fingerprint.
    bool banded_evaluation = true;
    /// Warm start: the converged policy of a structurally identical model
    /// (injected by SolveCache's warm path). Empty — or any shape that
    /// does not match the model — starts from the all-zeros policy, the
    /// classic cold iteration. Tie-breaking keeps the incumbent action,
    /// so a warm seed can land on a different (equally optimal) policy
    /// than the cold solve: results are tolerance-pinned, not bit-pinned.
    std::vector<std::size_t> initial_policy;
};

/// Minimize long-run average cost by policy iteration. Requires a unichain
/// model (policy evaluation solves a linear system that is singular
/// otherwise).
[[nodiscard]] PiResult policy_iteration(const CtmdpModel& model,
                                        const PiOptions& options = {});

}  // namespace socbuf::ctmdp
