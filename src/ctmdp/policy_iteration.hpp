// Howard policy iteration for unconstrained average-cost CTMDPs
// (uniformized). Slower than value iteration per step but converges in a
// handful of policy updates; serves as an independent check of both the LP
// and the value-iteration solvers.
#pragma once

#include "ctmdp/model.hpp"
#include "ctmdp/policy.hpp"
#include "linalg/matrix.hpp"

#include <cstddef>

namespace socbuf::ctmdp {

struct PiResult {
    double gain = 0.0;
    linalg::Vector bias;
    DeterministicPolicy policy;
    std::size_t policy_updates = 0;
    bool converged = false;
};

struct PiOptions {
    std::size_t max_policy_updates = 1000;
    std::size_t reference_state = 0;
    double improvement_tolerance = 1e-10;
};

/// Minimize long-run average cost by policy iteration. Requires a unichain
/// model (policy evaluation solves a linear system that is singular
/// otherwise).
[[nodiscard]] PiResult policy_iteration(const CtmdpModel& model,
                                        const PiOptions& options = {});

}  // namespace socbuf::ctmdp
