#include "ctmdp/policy_iteration.hpp"

#include "linalg/banded.hpp"
#include "linalg/lu.hpp"
#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace socbuf::ctmdp {

namespace {

/// Evaluate a deterministic policy on the uniformized chain: solve
///   g + h(s) = c(s) + sum_{s'} P(s'|s) h(s'),  h(ref) = 0
/// for (g, h). Unknown vector z = [g, h(0..n-1) except ref].
struct Evaluation {
    double step_gain = 0.0;
    linalg::Vector bias;
};

Evaluation evaluate_dense(const CtmdpModel& model,
                          const DeterministicPolicy& pol, double lambda,
                          std::size_t ref) {
    const std::size_t n = model.state_count();
    // Column mapping: 0 -> g, 1.. -> h(s) for s != ref.
    std::vector<std::size_t> col_of(n, 0);
    {
        std::size_t next = 1;
        for (std::size_t s = 0; s < n; ++s)
            if (s != ref) col_of[s] = next++;
    }
    linalg::Matrix a(n, n);
    linalg::Vector b(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) {
        const Action& act = model.action(s, pol.action(s));
        // Row: g + h(s) - sum P(s'|s) h(s') = c_step(s).
        a(s, 0) = 1.0;
        double stay = 1.0;
        auto add_h = [&](std::size_t state, double coeff) {
            if (state == ref) return;  // h(ref) = 0
            a(s, col_of[state]) += coeff;
        };
        for (const auto& t : act.transitions) {
            if (t.target == s || t.rate <= 0.0) continue;
            const double p = t.rate / lambda;
            stay -= p;
            add_h(t.target, -p);
        }
        add_h(s, 1.0 - stay);
        b[s] = act.cost / lambda;
    }
    const linalg::Vector z = linalg::LuDecomposition(a).solve(b);
    Evaluation ev;
    ev.step_gain = z[0];
    ev.bias.assign(n, 0.0);
    for (std::size_t s = 0; s < n; ++s)
        if (s != ref) ev.bias[s] = z[col_of[s]];
    return ev;
}

/// Structure-exploiting variant of the same evaluation. Every row of the
/// dense system reads g + h(s) - sum P(s'|s) h(s') = c(s)/lambda with
/// h(ref) = 0; dropping the ref row and eliminating the gain column by a
/// bordered block solve leaves a banded (n-1)x(n-1) system B~ whose
/// bandwidth is at most the model's:
///   B~ u = b~,  B~ v = 1  =>  h = u - g v,
///   g = (b_ref - H_ref . u) / (1 - H_ref . v).
/// One banded LU factorization serves both right-hand sides, so a policy
/// update costs O(n.bw^2) instead of the dense O(n^3).
Evaluation evaluate_banded(const CtmdpModel& model,
                           const DeterministicPolicy& pol, double lambda,
                           std::size_t ref, std::size_t bandwidth) {
    const std::size_t n = model.state_count();
    const std::size_t m = n - 1;
    // Compact index over states != ref.
    const auto compact = [ref](std::size_t s) { return s < ref ? s : s - 1; };
    linalg::BandedMatrix bt(m, bandwidth, bandwidth);
    linalg::Vector b(m, 0.0);
    linalg::Vector ref_row(m, 0.0);  // H(ref, .) over compact columns
    double b_ref = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
        const Action& act = model.action(s, pol.action(s));
        const bool is_ref = (s == ref);
        double stay = 1.0;
        auto add_h = [&](std::size_t state, double coeff) {
            if (state == ref) return;  // h(ref) = 0
            if (is_ref)
                ref_row[compact(state)] += coeff;
            else
                bt.at(compact(s), compact(state)) += coeff;
        };
        for (const auto& t : act.transitions) {
            if (t.target == s || t.rate <= 0.0) continue;
            const double p = t.rate / lambda;
            stay -= p;
            add_h(t.target, -p);
        }
        add_h(s, 1.0 - stay);
        if (is_ref)
            b_ref = act.cost / lambda;
        else
            b[compact(s)] = act.cost / lambda;
    }
    const linalg::BandedLu lu(bt);
    const linalg::Vector u = lu.solve(b);
    const linalg::Vector v = lu.solve(linalg::Vector(m, 1.0));
    double num = b_ref;
    double den = 1.0;
    for (std::size_t j = 0; j < m; ++j) {
        num -= ref_row[j] * u[j];
        den -= ref_row[j] * v[j];
    }
    if (std::fabs(den) < 1e-12)
        throw util::NumericalError(
            "banded policy evaluation: bordered system is singular "
            "(model may not be unichain under this policy)");
    const double g = num / den;
    Evaluation ev;
    ev.step_gain = g;
    ev.bias.assign(n, 0.0);
    for (std::size_t s = 0; s < n; ++s)
        if (s != ref) ev.bias[s] = u[compact(s)] - g * v[compact(s)];
    return ev;
}

/// Deterministic gate: the banded path has to amortize ~3 banded solves'
/// worth of band arithmetic against one dense O(n^3/3) factorization, and
/// tiny models are better off dense (and keep their historical bits).
bool use_banded(const PiOptions& options, std::size_t n, std::size_t bw) {
    return options.banded_evaluation && n >= 40 &&
           3 * bw * (2 * bw + 1) < n * n;
}

Evaluation evaluate(const CtmdpModel& model, const DeterministicPolicy& pol,
                    double lambda, std::size_t ref, bool banded,
                    std::size_t bw) {
    return banded ? evaluate_banded(model, pol, lambda, ref, bw)
                  : evaluate_dense(model, pol, lambda, ref);
}

}  // namespace

PiResult policy_iteration(const CtmdpModel& model, const PiOptions& options) {
    model.validate();
    SOCBUF_REQUIRE_MSG(options.reference_state < model.state_count(),
                       "reference state out of range");
    const double lambda =
        std::max(model.max_exit_rate(), 1e-12) * 1.05 + 1e-9;
    const std::size_t n = model.state_count();
    const std::size_t bw = model.bandwidth();
    const bool banded = use_banded(options, n, bw);

    // Cold start from the all-zeros policy; a shape- and range-valid warm
    // seed (the converged policy of a structurally identical model) skips
    // most of the improvement ladder instead.
    std::vector<std::size_t> start(n, 0);
    if (options.initial_policy.size() == n) {
        bool in_range = true;
        for (std::size_t s = 0; s < n && in_range; ++s)
            in_range = options.initial_policy[s] < model.action_count(s);
        if (in_range) start = options.initial_policy;
    }
    DeterministicPolicy policy(std::move(start));
    PiResult out;
    for (std::size_t update = 0; update < options.max_policy_updates;
         ++update) {
        const Evaluation ev = evaluate(model, policy, lambda,
                                       options.reference_state, banded, bw);
        // Greedy improvement against the evaluated bias.
        std::vector<std::size_t> next(n, 0);
        for (std::size_t s = 0; s < n; ++s) {
            double best = std::numeric_limits<double>::infinity();
            std::size_t best_a = policy.action(s);
            for (std::size_t a = 0; a < model.action_count(s); ++a) {
                const Action& act = model.action(s, a);
                double stay = 1.0;
                double value = act.cost / lambda;
                for (const auto& t : act.transitions) {
                    if (t.target == s || t.rate <= 0.0) continue;
                    const double p = t.rate / lambda;
                    stay -= p;
                    value += p * ev.bias[t.target];
                }
                value += stay * ev.bias[s];
                if (value < best - options.improvement_tolerance) {
                    best = value;
                    best_a = a;
                }
            }
            next[s] = best_a;
        }
        out.policy_updates = update + 1;
        DeterministicPolicy next_policy(std::move(next));
        if (next_policy == policy) {
            out.gain = ev.step_gain * lambda;
            out.bias = ev.bias;
            out.policy = policy;
            out.converged = true;
            return out;
        }
        policy = std::move(next_policy);
    }
    const Evaluation ev = evaluate(model, policy, lambda,
                                   options.reference_state, banded, bw);
    out.gain = ev.step_gain * lambda;
    out.bias = ev.bias;
    out.policy = policy;
    out.converged = false;
    return out;
}

}  // namespace socbuf::ctmdp
