#include "ctmdp/policy_iteration.hpp"

#include "linalg/lu.hpp"
#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace socbuf::ctmdp {

namespace {

/// Evaluate a deterministic policy on the uniformized chain: solve
///   g + h(s) = c(s) + sum_{s'} P(s'|s) h(s'),  h(ref) = 0
/// for (g, h). Unknown vector z = [g, h(0..n-1) except ref].
struct Evaluation {
    double step_gain = 0.0;
    linalg::Vector bias;
};

Evaluation evaluate(const CtmdpModel& model, const DeterministicPolicy& pol,
                    double lambda, std::size_t ref) {
    const std::size_t n = model.state_count();
    // Column mapping: 0 -> g, 1.. -> h(s) for s != ref.
    std::vector<std::size_t> col_of(n, 0);
    {
        std::size_t next = 1;
        for (std::size_t s = 0; s < n; ++s)
            if (s != ref) col_of[s] = next++;
    }
    linalg::Matrix a(n, n);
    linalg::Vector b(n, 0.0);
    for (std::size_t s = 0; s < n; ++s) {
        const Action& act = model.action(s, pol.action(s));
        // Row: g + h(s) - sum P(s'|s) h(s') = c_step(s).
        a(s, 0) = 1.0;
        double stay = 1.0;
        auto add_h = [&](std::size_t state, double coeff) {
            if (state == ref) return;  // h(ref) = 0
            a(s, col_of[state]) += coeff;
        };
        for (const auto& t : act.transitions) {
            if (t.target == s || t.rate <= 0.0) continue;
            const double p = t.rate / lambda;
            stay -= p;
            add_h(t.target, -p);
        }
        add_h(s, 1.0 - stay);
        b[s] = act.cost / lambda;
    }
    const linalg::Vector z = linalg::LuDecomposition(a).solve(b);
    Evaluation ev;
    ev.step_gain = z[0];
    ev.bias.assign(n, 0.0);
    for (std::size_t s = 0; s < n; ++s)
        if (s != ref) ev.bias[s] = z[col_of[s]];
    return ev;
}

}  // namespace

PiResult policy_iteration(const CtmdpModel& model, const PiOptions& options) {
    model.validate();
    SOCBUF_REQUIRE_MSG(options.reference_state < model.state_count(),
                       "reference state out of range");
    const double lambda =
        std::max(model.max_exit_rate(), 1e-12) * 1.05 + 1e-9;
    const std::size_t n = model.state_count();

    DeterministicPolicy policy(std::vector<std::size_t>(n, 0));
    PiResult out;
    for (std::size_t update = 0; update < options.max_policy_updates;
         ++update) {
        const Evaluation ev =
            evaluate(model, policy, lambda, options.reference_state);
        // Greedy improvement against the evaluated bias.
        std::vector<std::size_t> next(n, 0);
        for (std::size_t s = 0; s < n; ++s) {
            double best = std::numeric_limits<double>::infinity();
            std::size_t best_a = policy.action(s);
            for (std::size_t a = 0; a < model.action_count(s); ++a) {
                const Action& act = model.action(s, a);
                double stay = 1.0;
                double value = act.cost / lambda;
                for (const auto& t : act.transitions) {
                    if (t.target == s || t.rate <= 0.0) continue;
                    const double p = t.rate / lambda;
                    stay -= p;
                    value += p * ev.bias[t.target];
                }
                value += stay * ev.bias[s];
                if (value < best - options.improvement_tolerance) {
                    best = value;
                    best_a = a;
                }
            }
            next[s] = best_a;
        }
        out.policy_updates = update + 1;
        DeterministicPolicy next_policy(std::move(next));
        if (next_policy == policy) {
            out.gain = ev.step_gain * lambda;
            out.bias = ev.bias;
            out.policy = policy;
            out.converged = true;
            return out;
        }
        policy = std::move(next_policy);
    }
    const Evaluation ev =
        evaluate(model, policy, lambda, options.reference_state);
    out.gain = ev.step_gain * lambda;
    out.bias = ev.bias;
    out.policy = policy;
    out.converged = false;
    return out;
}

}  // namespace socbuf::ctmdp
