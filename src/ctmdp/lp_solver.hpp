// The LP formulation of constrained average-cost CTMDPs over occupation
// measures — the solution method of Feinberg (2002) that the paper applies
// to each (linear) bus subsystem.
//
//   minimize    sum_{s,a} c(s,a) x(s,a)
//   subject to  sum_{s,a} q(s'|s,a) x(s,a) = 0           for every s'
//               sum_{s,a} x(s,a) = 1
//               sum_{s,a} c_k(s,a) x(s,a) <= b_k         for every side
//                                                         constraint k
//               x >= 0
//
// x(s,a) is the long-run fraction of time spent in state s while action a
// is in force; the optimal stationary (possibly randomized) policy is
// phi(a|s) = x(s,a) / sum_a' x(s,a').
#pragma once

#include "ctmdp/model.hpp"
#include "ctmdp/policy.hpp"
#include "lp/simplex.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::ctmdp {

/// One side constraint: long-run average of extra cost `cost_index`
/// must not exceed `bound`.
struct CostBound {
    std::size_t cost_index = 0;
    double bound = 0.0;
};

struct LpSolveResult {
    lp::SolveStatus status = lp::SolveStatus::kIterationLimit;
    double average_cost = 0.0;
    /// x(s,a) keyed by the model's flat pair index.
    std::vector<double> occupation;
    /// pi(s) = sum_a x(s,a).
    std::vector<double> state_probability;
    RandomizedPolicy policy;
    std::size_t simplex_iterations = 0;
    /// Long-run averages of each extra cost under the returned measure.
    std::vector<double> extra_cost_values;
};

struct LpSolverOptions {
    lp::SimplexOptions simplex;
    /// States with pi(s) below this are given a uniform action
    /// distribution (they are never visited under the optimal measure).
    double unvisited_state_tolerance = 1e-12;
};

/// Solve the constrained average-cost problem. The model must be validated
/// and should be unichain under every stationary policy (true for the
/// queueing models socbuf builds, which always allow draining to empty).
[[nodiscard]] LpSolveResult solve_average_cost_lp(
    const CtmdpModel& model, const std::vector<CostBound>& bounds = {},
    const LpSolverOptions& options = {});

}  // namespace socbuf::ctmdp
