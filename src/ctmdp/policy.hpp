// Stationary policies for CTMDPs. The constrained LP produces randomized
// policies; Feinberg's theory says they randomize ("switch") in at most as
// many states as there are side constraints — switching_state_count() makes
// that checkable.
#pragma once

#include "ctmc/generator.hpp"
#include "ctmdp/model.hpp"
#include "rng/engine.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::ctmdp {

/// A stationary deterministic policy: one action index per state.
class DeterministicPolicy {
public:
    DeterministicPolicy() = default;
    explicit DeterministicPolicy(std::vector<std::size_t> choice)
        : choice_(std::move(choice)) {}

    [[nodiscard]] std::size_t action(std::size_t state) const;
    [[nodiscard]] std::size_t state_count() const { return choice_.size(); }
    [[nodiscard]] const std::vector<std::size_t>& choices() const {
        return choice_;
    }

    bool operator==(const DeterministicPolicy& other) const {
        return choice_ == other.choice_;
    }
    bool operator!=(const DeterministicPolicy& other) const {
        return !(*this == other);
    }

private:
    std::vector<std::size_t> choice_;
};

/// A stationary randomized policy: per-state distribution over actions.
class RandomizedPolicy {
public:
    RandomizedPolicy() = default;
    explicit RandomizedPolicy(std::vector<std::vector<double>> probs);

    /// Degenerate (deterministic) policy lifting.
    static RandomizedPolicy from_deterministic(const DeterministicPolicy& d,
                                               const CtmdpModel& model);

    [[nodiscard]] std::size_t state_count() const { return probs_.size(); }
    [[nodiscard]] const std::vector<double>& distribution(
        std::size_t state) const;
    [[nodiscard]] double probability(std::size_t state,
                                     std::size_t action) const;

    /// Sample an action for `state`.
    [[nodiscard]] std::size_t sample(std::size_t state,
                                     rng::RandomEngine& engine) const;

    /// Number of states whose distribution puts mass > `tol` on more than
    /// one action — the "switching" states of the K-switching policy.
    [[nodiscard]] std::size_t switching_state_count(double tol = 1e-9) const;

    /// True when no state randomizes (up to `tol`).
    [[nodiscard]] bool is_deterministic(double tol = 1e-9) const {
        return switching_state_count(tol) == 0;
    }

    /// Most likely action in each state.
    [[nodiscard]] DeterministicPolicy mode() const;

private:
    std::vector<std::vector<double>> probs_;
};

/// The CTMC induced on `model` by following `policy`.
[[nodiscard]] ctmc::Generator induced_generator(const CtmdpModel& model,
                                                const RandomizedPolicy& policy);

}  // namespace socbuf::ctmdp
