// A memoizing cache over SolverRegistry::solve, shared across a batch.
//
// Budget sweeps and replicated scenario runs keep rebuilding *identical*
// subsystem CTMDPs — the engine's fixed point repeats its final round, a
// replication re-sizes the same (system, budget), and sweep variants share
// subsystems — and every one of those re-solves an LP / value iteration
// that was already solved. The cache keys solutions by a canonical
// fingerprint of (model, dispatch options): an exact byte-level encoding
// of every state, action, cost and transition rate plus every
// solve-relevant knob, so two keys collide only when the solves would be
// bit-identical anyway. That makes a cache hit indistinguishable from a
// fresh solve, which is what keeps BatchRunner's determinism contract
// intact when many threads share one cache.
//
// Each key is solved exactly once while it is resident: the first
// requester claims it and solves *outside* the lock while later
// requesters wait on the in-flight solve and share its result. No work is
// duplicated, and with an unlimited capacity the counters are
// scheduling-independent — for a fixed set of lookups, misses always
// equal the number of distinct keys and hits the remainder, whatever the
// thread interleaving (which is why batch reports can include them and
// stay bit-identical across worker counts).
//
// Size budget: construct with a positive `capacity` to bound the number
// of resident entries; least-recently-used unpinned entries are evicted
// whenever a lookup's bookkeeping settles over budget — on solve
// completion, on a hit, and on the failure path alike (entries another
// thread is solving or waiting on are pinned, and the most-recently-used
// entry — the one the finishing lookup just touched — is never the
// victim, so residency can exceed the budget transiently rather than
// thrash; retrying on every settling event is what keeps the excess
// transient even when an eviction scan had to skip a then-pinned entry).
// Eviction never changes *results* — a re-solve of an evicted key
// returns identical bits — but under concurrency it makes the
// hit/miss/eviction split depend on which entry completed first, so
// counter determinism is only guaranteed when capacity is 0 (unlimited)
// or at least the number of distinct keys.
#pragma once

#include "ctmdp/solver.hpp"

#include <condition_variable>
#include <cstddef>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

namespace socbuf::ctmdp {

/// Canonical byte encoding of everything that determines a solve's result:
/// the full model (states, actions, costs, transitions, rates — doubles
/// encoded bit-exactly) and the dispatch/solver options. Equal fingerprints
/// <=> registry.solve would return identical bits.
[[nodiscard]] std::string solve_fingerprint(const CtmdpModel& model,
                                            const DispatchOptions& options);

/// Topology-only fingerprint: state count, per-state action counts, and
/// every transition target — but no rates, costs, or solver options. Two
/// models with equal structure fingerprints pose the "same" decision
/// problem under different numbers, which is exactly when a converged
/// policy/bias of one is a good warm seed for the other (budget sweeps
/// rebuild identical graphs with scaled costs).
[[nodiscard]] std::string model_structure_fingerprint(const CtmdpModel& model);

struct SolveCacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;  // 0 unless a capacity is set
    /// Misses that ran with a warm seed from a structurally identical,
    /// previously solved entry (warm starts enabled only).
    std::size_t warm_hits = 0;
    /// Sum over warm-seeded solves of (seed's iteration count - warm
    /// solve's iteration count), clamped at zero per solve and only
    /// counted when both solves used the same algorithm — a proxy for
    /// the work the seeds avoided.
    std::size_t iterations_saved = 0;
    /// Approximate bytes held by resident (solved) entries: keys, result
    /// vectors, and per-entry bookkeeping. Deterministic given the set of
    /// resident entries (exact at capacity 0).
    std::size_t bytes_resident = 0;
    [[nodiscard]] std::size_t lookups() const { return hits + misses; }
    [[nodiscard]] double hit_rate() const {
        return lookups() == 0
                   ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(lookups());
    }
};

/// Thread-safe memo table over a SolverRegistry. One instance is meant to
/// live as long as a batch and be shared by every engine run in it.
class SolveCache {
public:
    /// `capacity` bounds the number of resident entries (LRU eviction);
    /// 0 means unlimited, the default and the only setting under which
    /// the hit/miss counters are scheduling-independent for every
    /// workload (see the header comment).
    ///
    /// `warm_start` enables nearest-fingerprint seeding: a miss whose
    /// model *structure* matches an already-solved entry (same topology,
    /// different costs/rates — the budget-sweep shape) injects that
    /// entry's converged policy and bias as PI/VI warm seeds before
    /// solving. Warm-seeded solves converge to the same tolerances but
    /// along a different trajectory, so they are NOT bit-identical to
    /// cold solves — which is why this is opt-in and default off:
    /// BatchRunner's bit-determinism contract holds whenever it is off.
    /// `byte_budget` bounds the *approximate* resident bytes
    /// (stats().bytes_resident) the same way `capacity` bounds the entry
    /// count: least-recently-used unpinned entries are evicted until the
    /// residency is back under budget, with the same pinning rules and
    /// the same best-effort transients. 0 means unlimited. The two
    /// budgets compose — whichever is exceeded triggers the LRU walk.
    explicit SolveCache(std::size_t capacity = 0, bool warm_start = false,
                        std::size_t byte_budget = 0);

    /// Whether nearest-fingerprint warm seeding is enabled.
    [[nodiscard]] bool warm_start() const { return warm_start_; }

    /// Return the cached solution for (model, options) or solve through
    /// `registry` and remember the result. Registry counters only advance
    /// on misses, so a SizingReport's lp/vi/pi counts reflect actual work.
    /// A solver failure propagates to the claiming requester and leaves
    /// the slot reclaimable: concurrent waiters retry the solve instead
    /// of hanging, and the counters stay consistent (every lookup is
    /// exactly one hit or one miss).
    [[nodiscard]] SubsystemSolution solve(SolverRegistry& registry,
                                          const CtmdpModel& model,
                                          const DispatchOptions& options);

    [[nodiscard]] SolveCacheStats stats() const;
    /// Number of solved entries held.
    [[nodiscard]] std::size_t size() const;
    /// The entry budget this cache was constructed with (0 = unlimited).
    [[nodiscard]] std::size_t capacity() const { return capacity_; }
    /// The byte budget this cache was constructed with (0 = unlimited).
    [[nodiscard]] std::size_t byte_budget() const { return byte_budget_; }
    /// Drop every entry and reset the counters. Must not race in-flight
    /// solve() calls (call it between batches, not during one).
    void clear();

private:
    struct Slot {
        enum State { kUnsolved, kSolving, kReady };
        State state = kUnsolved;
        /// Threads blocked on this slot's in-flight solve; a slot with
        /// waiters (or in kSolving) is pinned against eviction, so every
        /// held reference stays valid — std::list storage keeps it
        /// stable across unrelated inserts and evictions.
        std::size_t waiters = 0;
        /// Structure fingerprint (warm starts only; empty otherwise).
        std::string structure;
        /// Approximate resident footprint, set when the slot turns kReady.
        std::size_t bytes = 0;
        SubsystemSolution solution;
    };
    using Entry = std::pair<std::string, Slot>;
    using EntryIter = std::list<Entry>::iterator;

    /// Move `pos` to the front of the recency list. Caller holds mutex_.
    void touch(EntryIter pos);
    /// Evict LRU unpinned entries until within capacity (best effort —
    /// pinned entries are skipped). Caller holds mutex_.
    void evict_over_capacity();
    /// Drop one entry: index, warm index, byte accounting. Caller holds
    /// mutex_. Returns the iterator past the erased entry.
    EntryIter drop_entry(EntryIter pos);

    mutable std::mutex mutex_;
    std::condition_variable slot_ready_;
    std::list<Entry> entries_;  // front = most recently used
    // Lookup-only indexes: find/emplace/erase by exact fingerprint, never
    // iterated — recency (and therefore eviction order) lives in the
    // entries_ list, so hash order cannot reach results or reports.
    // socbuf-lint: allow(unordered-container) — keyed lookups only; eviction order comes from entries_.
    std::unordered_map<std::string, EntryIter> index_;
    /// structure fingerprint -> most recently solved entry with it.
    // socbuf-lint: allow(unordered-container) — keyed lookups only; warm seeding picks one exact entry.
    std::unordered_map<std::string, EntryIter> warm_index_;
    std::size_t capacity_ = 0;
    std::size_t byte_budget_ = 0;
    bool warm_start_ = false;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
    std::size_t warm_hits_ = 0;
    std::size_t iterations_saved_ = 0;
    std::size_t bytes_resident_ = 0;
};

}  // namespace socbuf::ctmdp
