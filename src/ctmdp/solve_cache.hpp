// A memoizing cache over SolverRegistry::solve, shared across a batch.
//
// Budget sweeps and replicated scenario runs keep rebuilding *identical*
// subsystem CTMDPs — the engine's fixed point repeats its final round, a
// replication re-sizes the same (system, budget), and sweep variants share
// subsystems — and every one of those re-solves an LP / value iteration
// that was already solved. The cache keys solutions by a canonical
// fingerprint of (model, dispatch options): an exact byte-level encoding
// of every state, action, cost and transition rate plus every
// solve-relevant knob, so two keys collide only when the solves would be
// bit-identical anyway. That makes a cache hit indistinguishable from a
// fresh solve, which is what keeps BatchRunner's determinism contract
// intact when many threads share one cache.
//
// Each key is solved exactly once: the first requester claims it and
// solves *outside* the lock while later requesters wait on the in-flight
// solve and share its result. No work is duplicated, and the counters are
// scheduling-independent — for a fixed set of lookups, misses always
// equal the number of distinct keys and hits the remainder, whatever the
// thread interleaving (which is why batch reports can include them and
// stay bit-identical across worker counts).
#pragma once

#include "ctmdp/solver.hpp"

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <string>
#include <unordered_map>

namespace socbuf::ctmdp {

/// Canonical byte encoding of everything that determines a solve's result:
/// the full model (states, actions, costs, transitions, rates — doubles
/// encoded bit-exactly) and the dispatch/solver options. Equal fingerprints
/// <=> registry.solve would return identical bits.
[[nodiscard]] std::string solve_fingerprint(const CtmdpModel& model,
                                            const DispatchOptions& options);

struct SolveCacheStats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    [[nodiscard]] std::size_t lookups() const { return hits + misses; }
    [[nodiscard]] double hit_rate() const {
        return lookups() == 0
                   ? 0.0
                   : static_cast<double>(hits) / static_cast<double>(lookups());
    }
};

/// Thread-safe memo table over a SolverRegistry. One instance is meant to
/// live as long as a batch and be shared by every engine run in it.
class SolveCache {
public:
    /// Return the cached solution for (model, options) or solve through
    /// `registry` and remember the result. Registry counters only advance
    /// on misses, so a SizingReport's lp/vi/pi counts reflect actual work.
    [[nodiscard]] SubsystemSolution solve(SolverRegistry& registry,
                                          const CtmdpModel& model,
                                          const DispatchOptions& options);

    [[nodiscard]] SolveCacheStats stats() const;
    /// Number of solved entries held.
    [[nodiscard]] std::size_t size() const;
    /// Drop every entry and reset the counters. Must not race in-flight
    /// solve() calls (call it between batches, not during one).
    void clear();

private:
    struct Slot {
        enum State { kUnsolved, kSolving, kReady };
        State state = kUnsolved;
        SubsystemSolution solution;
    };

    mutable std::mutex mutex_;
    std::condition_variable slot_ready_;
    std::unordered_map<std::string, Slot> entries_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
};

}  // namespace socbuf::ctmdp
