#include "ctmdp/model.hpp"

#include "util/contracts.hpp"

#include <algorithm>

namespace socbuf::ctmdp {

std::size_t CtmdpModel::add_state(std::string name) {
    if (name.empty()) name = "s" + std::to_string(states_.size());
    states_.push_back(StateEntry{std::move(name), {}});
    index_dirty_ = true;
    structure_dirty_ = true;
    return states_.size() - 1;
}

std::size_t CtmdpModel::add_action(std::size_t state, Action action) {
    SOCBUF_REQUIRE_MSG(state < states_.size(), "unknown state");
    SOCBUF_REQUIRE_MSG(action.extra_costs.size() == extra_cost_count_,
                       "extra cost width mismatch");
    for (const auto& t : action.transitions) {
        SOCBUF_REQUIRE_MSG(t.rate >= 0.0, "negative transition rate");
    }
    if (action.name.empty())
        action.name = "a" + std::to_string(states_[state].actions.size());
    states_[state].actions.push_back(std::move(action));
    index_dirty_ = true;
    structure_dirty_ = true;
    return states_[state].actions.size() - 1;
}

std::size_t CtmdpModel::action_count(std::size_t state) const {
    SOCBUF_REQUIRE_MSG(state < states_.size(), "unknown state");
    return states_[state].actions.size();
}

const Action& CtmdpModel::action(std::size_t state, std::size_t a) const {
    SOCBUF_REQUIRE_MSG(state < states_.size(), "unknown state");
    SOCBUF_REQUIRE_MSG(a < states_[state].actions.size(), "unknown action");
    return states_[state].actions[a];
}

const std::string& CtmdpModel::state_name(std::size_t state) const {
    SOCBUF_REQUIRE_MSG(state < states_.size(), "unknown state");
    return states_[state].name;
}

// Double-checked entry to the lazy rebuild: concurrent const accessors on
// a shared model only pay an acquire load once the index is built, and
// exactly one thread rebuilds after an invalidation. The release store in
// rebuild_pair_index() publishes the rebuilt vectors to later acquirers.
void CtmdpModel::ensure_pair_index() const {
    if (!index_dirty_.load(std::memory_order_acquire)) return;
    const std::scoped_lock lock(cache_mutex_);
    if (index_dirty_.load(std::memory_order_relaxed)) rebuild_pair_index();
}

void CtmdpModel::rebuild_pair_index() const {
    pair_offset_.assign(states_.size() + 1, 0);
    pair_to_state_.clear();
    for (std::size_t s = 0; s < states_.size(); ++s) {
        pair_offset_[s + 1] = pair_offset_[s] + states_[s].actions.size();
        for (std::size_t a = 0; a < states_[s].actions.size(); ++a)
            pair_to_state_.push_back(s);
    }
    index_dirty_.store(false, std::memory_order_release);
}

std::size_t CtmdpModel::pair_count() const {
    ensure_pair_index();
    return pair_to_state_.size();
}

std::size_t CtmdpModel::pair_index(std::size_t state, std::size_t a) const {
    ensure_pair_index();
    SOCBUF_REQUIRE_MSG(state < states_.size(), "unknown state");
    SOCBUF_REQUIRE_MSG(a < states_[state].actions.size(), "unknown action");
    return pair_offset_[state] + a;
}

std::size_t CtmdpModel::pair_state(std::size_t pair) const {
    ensure_pair_index();
    SOCBUF_REQUIRE_MSG(pair < pair_to_state_.size(), "pair out of range");
    return pair_to_state_[pair];
}

std::size_t CtmdpModel::pair_action(std::size_t pair) const {
    ensure_pair_index();
    SOCBUF_REQUIRE_MSG(pair < pair_to_state_.size(), "pair out of range");
    return pair - pair_offset_[pair_to_state_[pair]];
}

void CtmdpModel::ensure_structure() const {
    if (!structure_dirty_.load(std::memory_order_acquire)) return;
    const std::scoped_lock lock(cache_mutex_);
    if (structure_dirty_.load(std::memory_order_relaxed))
        rebuild_structure();
}

void CtmdpModel::rebuild_structure() const {
    bandwidth_ = 0;
    transition_count_ = 0;
    for (std::size_t s = 0; s < states_.size(); ++s) {
        for (const auto& act : states_[s].actions) {
            transition_count_ += act.transitions.size();
            for (const auto& t : act.transitions) {
                if (t.rate <= 0.0) continue;
                const std::size_t dist =
                    t.target >= s ? t.target - s : s - t.target;
                bandwidth_ = std::max(bandwidth_, dist);
            }
        }
    }
    structure_dirty_.store(false, std::memory_order_release);
}

std::size_t CtmdpModel::bandwidth() const {
    ensure_structure();
    return bandwidth_;
}

std::size_t CtmdpModel::transition_count() const {
    ensure_structure();
    return transition_count_;
}

double CtmdpModel::exit_rate(std::size_t state, std::size_t a) const {
    const Action& act = action(state, a);
    double total = 0.0;
    for (const auto& t : act.transitions)
        if (t.target != state) total += t.rate;
    return total;
}

double CtmdpModel::max_exit_rate() const {
    double best = 0.0;
    for (std::size_t s = 0; s < states_.size(); ++s)
        for (std::size_t a = 0; a < states_[s].actions.size(); ++a)
            best = std::max(best, exit_rate(s, a));
    return best;
}

void CtmdpModel::validate() const {
    if (states_.empty()) throw util::ModelError("CTMDP has no states");
    for (std::size_t s = 0; s < states_.size(); ++s) {
        if (states_[s].actions.empty())
            throw util::ModelError("state " + states_[s].name +
                                   " has no actions");
        for (const auto& act : states_[s].actions) {
            if (act.extra_costs.size() != extra_cost_count_)
                throw util::ModelError("action " + act.name + " of state " +
                                       states_[s].name +
                                       " has wrong extra-cost width");
            for (const auto& t : act.transitions) {
                if (t.target >= states_.size())
                    throw util::ModelError(
                        "action " + act.name + " of state " +
                        states_[s].name + " targets unknown state " +
                        std::to_string(t.target));
                if (t.rate < 0.0)
                    throw util::ModelError("negative rate in action " +
                                           act.name);
            }
        }
    }
}

}  // namespace socbuf::ctmdp
