#include "ctmdp/solver.hpp"

#include "ctmdp/occupation.hpp"
#include "util/contracts.hpp"
#include "util/log.hpp"

#include <string>
#include <utility>

namespace socbuf::ctmdp {

const char* to_string(SolverKind kind) {
    switch (kind) {
        case SolverKind::kLp: return "lp";
        case SolverKind::kValueIteration: return "value-iteration";
        case SolverKind::kPolicyIteration: return "policy-iteration";
    }
    return "?";
}

namespace {

constexpr double kSwitchingTolerance = 1e-9;

/// Shared tail of the two deterministic-policy solvers: lift the policy,
/// recover the occupation measure and the stationary distribution it
/// implies. The occupation recovery's stationary sweep fans over
/// `executor` (the shared context ViOptions carries) on large chains —
/// schedule-only, bit-identical for any worker count.
SubsystemSolution from_deterministic(const CtmdpModel& model,
                                     const DeterministicPolicy& policy,
                                     double gain, linalg::Vector bias,
                                     std::size_t iterations, bool converged,
                                     SolverKind kind,
                                     exec::Executor* executor) {
    SubsystemSolution out;
    out.gain = gain;
    out.bias = std::move(bias);
    out.iterations = iterations;
    out.policy = RandomizedPolicy::from_deterministic(policy, model);
    out.occupation = occupation_of_policy(model, out.policy, executor);
    out.stationary.assign(model.state_count(), 0.0);
    for (std::size_t p = 0; p < out.occupation.size(); ++p)
        out.stationary[model.pair_state(p)] += out.occupation[p];
    out.switching_states = 0;  // deterministic policies never randomize
    out.solved_by = kind;
    out.converged = converged;
    return out;
}

class LpSolver final : public AverageCostSolver {
public:
    [[nodiscard]] SolverKind kind() const override { return SolverKind::kLp; }
    [[nodiscard]] const char* name() const override {
        return "occupation-measure LP (Feinberg)";
    }
    [[nodiscard]] SubsystemSolution solve(
        const CtmdpModel& model,
        const SolverOptions& options) const override {
        const auto r = solve_average_cost_lp(model, {}, options.lp);
        if (r.status != lp::SolveStatus::kOptimal)
            throw util::NumericalError(
                "subsystem LP did not reach optimality: " +
                std::string(lp::to_string(r.status)));
        SubsystemSolution out;
        out.gain = r.average_cost;
        out.stationary.assign(r.state_probability.begin(),
                              r.state_probability.end());
        out.occupation = r.occupation;
        out.policy = r.policy;
        out.switching_states =
            r.policy.switching_state_count(kSwitchingTolerance);
        out.iterations = r.simplex_iterations;
        out.solved_by = SolverKind::kLp;
        out.converged = true;
        return out;
    }
};

class ValueIterationSolver final : public AverageCostSolver {
public:
    [[nodiscard]] SolverKind kind() const override {
        return SolverKind::kValueIteration;
    }
    [[nodiscard]] const char* name() const override {
        return "relative value iteration";
    }
    [[nodiscard]] SubsystemSolution solve(
        const CtmdpModel& model,
        const SolverOptions& options) const override {
        const auto vi = relative_value_iteration(model, options.vi);
        if (!vi.converged)
            util::log(util::LogLevel::kWarn,
                      "value iteration hit the iteration limit (span ",
                      vi.span_residual, "); using the last policy");
        return from_deterministic(model, vi.policy, vi.gain, vi.bias,
                                  vi.iterations, vi.converged,
                                  SolverKind::kValueIteration,
                                  options.vi.executor);
    }
};

class PolicyIterationSolver final : public AverageCostSolver {
public:
    [[nodiscard]] SolverKind kind() const override {
        return SolverKind::kPolicyIteration;
    }
    [[nodiscard]] const char* name() const override {
        return "Howard policy iteration";
    }
    [[nodiscard]] SubsystemSolution solve(
        const CtmdpModel& model,
        const SolverOptions& options) const override {
        const auto pi = policy_iteration(model, options.pi);
        if (!pi.converged)
            util::log(util::LogLevel::kWarn,
                      "policy iteration hit the update limit; using the ",
                      "last policy");
        return from_deterministic(model, pi.policy, pi.gain, pi.bias,
                                  pi.policy_updates, pi.converged,
                                  SolverKind::kPolicyIteration,
                                  options.vi.executor);
    }
};

/// The kAuto escalation order; also the failure-fallback chain.
constexpr SolverKind kEscalation[] = {SolverKind::kLp,
                                      SolverKind::kPolicyIteration,
                                      SolverKind::kValueIteration};

}  // namespace

std::unique_ptr<AverageCostSolver> make_solver(SolverKind kind) {
    switch (kind) {
        case SolverKind::kLp: return std::make_unique<LpSolver>();
        case SolverKind::kValueIteration:
            return std::make_unique<ValueIterationSolver>();
        case SolverKind::kPolicyIteration:
            return std::make_unique<PolicyIterationSolver>();
    }
    throw util::ContractViolation("unknown solver kind");
}

SolverRegistry::SolverRegistry() {
    for (const auto kind :
         {SolverKind::kLp, SolverKind::kValueIteration,
          SolverKind::kPolicyIteration})
        solvers_[static_cast<std::size_t>(kind)] = make_solver(kind);
}

const AverageCostSolver& SolverRegistry::get(SolverKind kind) const {
    return *solvers_[static_cast<std::size_t>(kind)];
}

SolverKind SolverRegistry::select(const CtmdpModel& model,
                                  const DispatchOptions& options) const {
    switch (options.choice) {
        case SolverChoice::kLp: return SolverKind::kLp;
        case SolverChoice::kValueIteration:
            return SolverKind::kValueIteration;
        case SolverChoice::kPolicyIteration:
            return SolverKind::kPolicyIteration;
        case SolverChoice::kAuto: break;
    }
    if (model.pair_count() <= options.lp_pair_limit) return SolverKind::kLp;
    if (model.state_count() <= options.pi_state_limit)
        return SolverKind::kPolicyIteration;
    return SolverKind::kValueIteration;
}

SubsystemSolution SolverRegistry::solve(const CtmdpModel& model,
                                        const DispatchOptions& options) {
    const SolverKind first = select(model, options);
    if (options.choice != SolverChoice::kAuto) {
        // Forced choice: no fallback, errors propagate to the caller.
        SubsystemSolution out = get(first).solve(model, options.solver);
        record(out);
        return out;
    }
    // kAuto: walk the LP -> PI -> VI chain starting at the selected rung;
    // a failed or unconverged rung escalates to the next one.
    std::size_t rung = 0;
    while (kEscalation[rung] != first) ++rung;
    constexpr std::size_t kLast =
        sizeof(kEscalation) / sizeof(kEscalation[0]) - 1;
    for (;; ++rung) {
        const AverageCostSolver& solver = get(kEscalation[rung]);
        try {
            SubsystemSolution out = solver.solve(model, options.solver);
            if (out.converged || rung == kLast) {
                record(out);
                return out;
            }
            util::log(util::LogLevel::kWarn, solver.name(),
                      " did not converge; escalating to ",
                      get(kEscalation[rung + 1]).name());
        } catch (const util::NumericalError& error) {
            if (rung == kLast) throw;
            util::log(util::LogLevel::kWarn, solver.name(), " failed (",
                      error.what(), "); escalating to ",
                      get(kEscalation[rung + 1]).name());
        }
    }
}

SolverStatsSnapshot SolverRegistry::stats() const {
    SolverStatsSnapshot out;
    out.lp_solves = lp_solves_.load();
    out.vi_solves = vi_solves_.load();
    out.pi_solves = pi_solves_.load();
    out.switching_states = switching_states_.load();
    return out;
}

void SolverRegistry::reset_stats() {
    lp_solves_.store(0);
    vi_solves_.store(0);
    pi_solves_.store(0);
    switching_states_.store(0);
}

void SolverRegistry::record(const SubsystemSolution& solution) {
    switch (solution.solved_by) {
        case SolverKind::kLp: ++lp_solves_; break;
        case SolverKind::kValueIteration: ++vi_solves_; break;
        case SolverKind::kPolicyIteration: ++pi_solves_; break;
    }
    switching_states_ += solution.switching_states;
}

}  // namespace socbuf::ctmdp
