#include "ctmdp/policy.hpp"

#include "util/contracts.hpp"

#include <cmath>

namespace socbuf::ctmdp {

std::size_t DeterministicPolicy::action(std::size_t state) const {
    SOCBUF_REQUIRE_MSG(state < choice_.size(), "state out of range");
    return choice_[state];
}

RandomizedPolicy::RandomizedPolicy(std::vector<std::vector<double>> probs)
    : probs_(std::move(probs)) {
    for (auto& dist : probs_) {
        SOCBUF_REQUIRE_MSG(!dist.empty(), "state with empty distribution");
        double total = 0.0;
        for (double p : dist) {
            SOCBUF_REQUIRE_MSG(p >= -1e-12, "negative action probability");
            total += p;
        }
        SOCBUF_REQUIRE_MSG(std::fabs(total - 1.0) < 1e-6,
                           "action distribution does not sum to 1");
        for (double& p : dist) p = std::max(p, 0.0) / total;
    }
}

RandomizedPolicy RandomizedPolicy::from_deterministic(
    const DeterministicPolicy& d, const CtmdpModel& model) {
    SOCBUF_REQUIRE(d.state_count() == model.state_count());
    std::vector<std::vector<double>> probs(model.state_count());
    for (std::size_t s = 0; s < model.state_count(); ++s) {
        probs[s].assign(model.action_count(s), 0.0);
        SOCBUF_REQUIRE_MSG(d.action(s) < probs[s].size(),
                           "policy action out of range");
        probs[s][d.action(s)] = 1.0;
    }
    return RandomizedPolicy(std::move(probs));
}

const std::vector<double>& RandomizedPolicy::distribution(
    std::size_t state) const {
    SOCBUF_REQUIRE_MSG(state < probs_.size(), "state out of range");
    return probs_[state];
}

double RandomizedPolicy::probability(std::size_t state,
                                     std::size_t action) const {
    const auto& dist = distribution(state);
    SOCBUF_REQUIRE_MSG(action < dist.size(), "action out of range");
    return dist[action];
}

std::size_t RandomizedPolicy::sample(std::size_t state,
                                     rng::RandomEngine& engine) const {
    return engine.discrete(distribution(state));
}

std::size_t RandomizedPolicy::switching_state_count(double tol) const {
    std::size_t count = 0;
    for (const auto& dist : probs_) {
        std::size_t support = 0;
        for (double p : dist)
            if (p > tol) ++support;
        if (support > 1) ++count;
    }
    return count;
}

DeterministicPolicy RandomizedPolicy::mode() const {
    std::vector<std::size_t> choice(probs_.size(), 0);
    for (std::size_t s = 0; s < probs_.size(); ++s) {
        double best = -1.0;
        for (std::size_t a = 0; a < probs_[s].size(); ++a) {
            if (probs_[s][a] > best) {
                best = probs_[s][a];
                choice[s] = a;
            }
        }
    }
    return DeterministicPolicy(std::move(choice));
}

ctmc::Generator induced_generator(const CtmdpModel& model,
                                  const RandomizedPolicy& policy) {
    SOCBUF_REQUIRE_MSG(policy.state_count() == model.state_count(),
                       "policy/model state count mismatch");
    ctmc::Generator gen(model.state_count());
    for (std::size_t s = 0; s < model.state_count(); ++s) {
        const auto& dist = policy.distribution(s);
        SOCBUF_REQUIRE_MSG(dist.size() == model.action_count(s),
                           "policy/model action count mismatch");
        for (std::size_t a = 0; a < dist.size(); ++a) {
            if (dist[a] <= 0.0) continue;
            for (const auto& t : model.action(s, a).transitions) {
                if (t.target == s || t.rate <= 0.0) continue;
                gen.add_rate(s, t.target, dist[a] * t.rate);
            }
        }
    }
    return gen;
}

}  // namespace socbuf::ctmdp
