#include "ctmdp/value_iteration.hpp"

#include "ctmc/stationary.hpp"
#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace socbuf::ctmdp {

namespace {

/// Precomputed uniformized model: per pair, per-step cost, stay
/// probability, and the jump probabilities in compressed-row (CSR) form —
/// one flat target/probability array indexed by per-pair offsets. The
/// flat arrays keep the per-pair append order of the old nested vectors,
/// so the Bellman fold below visits identical values in identical order
/// (bit-identical results) while the sweep streams three contiguous
/// arrays instead of chasing a vector-of-vectors.
struct Uniformized {
    double lambda = 1.0;
    std::vector<double> step_cost;
    std::vector<double> stay;
    // CSR over pairs: entries [jump_offset[p], jump_offset[p + 1]).
    std::vector<std::size_t> jump_offset;
    std::vector<std::size_t> jump_target;
    std::vector<double> jump_prob;
};

Uniformized uniformize(const CtmdpModel& model) {
    Uniformized u;
    // A margin keeps every self-loop probability strictly positive, which
    // makes the uniformized chain aperiodic (required for RVI convergence).
    u.lambda = std::max(model.max_exit_rate(), 1e-12) * 1.05 + 1e-9;
    const std::size_t n_pairs = model.pair_count();
    u.step_cost.resize(n_pairs);
    u.stay.resize(n_pairs);
    u.jump_offset.assign(n_pairs + 1, 0);
    u.jump_target.reserve(model.transition_count());
    u.jump_prob.reserve(model.transition_count());
    for (std::size_t p = 0; p < n_pairs; ++p) {
        const std::size_t s = model.pair_state(p);
        const std::size_t a = model.pair_action(p);
        const Action& act = model.action(s, a);
        u.step_cost[p] = act.cost / u.lambda;
        double move = 0.0;
        for (const auto& t : act.transitions) {
            if (t.target == s || t.rate <= 0.0) continue;
            u.jump_target.push_back(t.target);
            u.jump_prob.push_back(t.rate / u.lambda);
            move += t.rate / u.lambda;
        }
        u.jump_offset[p + 1] = u.jump_target.size();
        u.stay[p] = 1.0 - move;
        SOCBUF_ASSERT(u.stay[p] > 0.0);
    }
    return u;
}

}  // namespace

ViResult relative_value_iteration(const CtmdpModel& model,
                                  const ViOptions& options) {
    model.validate();
    SOCBUF_REQUIRE_MSG(options.reference_state < model.state_count(),
                       "reference state out of range");
    const Uniformized u = uniformize(model);
    const std::size_t n = model.state_count();

    // Cold start from zeros; a size-matched warm seed (the converged bias
    // of a structurally identical model) starts the iteration near the
    // fixed point instead.
    linalg::Vector h(n, 0.0);
    if (options.initial_values.size() == n) h = options.initial_values;
    linalg::Vector th(n, 0.0);
    std::vector<std::size_t> greedy(n, 0);

    ViResult out;
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
        for (std::size_t s = 0; s < n; ++s) {
            double best = std::numeric_limits<double>::infinity();
            std::size_t best_a = 0;
            for (std::size_t a = 0; a < model.action_count(s); ++a) {
                const std::size_t p = model.pair_index(s, a);
                double value = u.step_cost[p] + u.stay[p] * h[s];
                for (std::size_t k = u.jump_offset[p];
                     k < u.jump_offset[p + 1]; ++k)
                    value += u.jump_prob[k] * h[u.jump_target[k]];
                if (value < best) {
                    best = value;
                    best_a = a;
                }
            }
            th[s] = best;
            greedy[s] = best_a;
        }
        // Span of the update delta bounds the gain error (Puterman 8.5.5).
        double lo = std::numeric_limits<double>::infinity();
        double hi = -lo;
        for (std::size_t s = 0; s < n; ++s) {
            const double d = th[s] - h[s];
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
        out.span_residual = hi - lo;
        out.iterations = it + 1;
        if (out.span_residual < options.tolerance) {
            out.gain = 0.5 * (hi + lo) * u.lambda;
            out.converged = true;
            break;
        }
        // Relative normalization keeps h bounded.
        const double ref = th[options.reference_state];
        for (std::size_t s = 0; s < n; ++s) h[s] = th[s] - ref;
    }
    if (!out.converged) {
        // Best estimate anyway; the caller can inspect `converged`.
        double lo = std::numeric_limits<double>::infinity();
        double hi = -lo;
        for (std::size_t s = 0; s < n; ++s) {
            const double d = th[s] - h[s];
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
        out.gain = 0.5 * (hi + lo) * u.lambda;
    }
    out.bias = h;
    out.policy = DeterministicPolicy(std::move(greedy));
    return out;
}

double average_cost_of_policy(const CtmdpModel& model,
                              const RandomizedPolicy& policy) {
    model.validate();
    const ctmc::Generator gen = induced_generator(model, policy);
    const linalg::Vector pi = ctmc::stationary_power(gen);
    double cost = 0.0;
    for (std::size_t s = 0; s < model.state_count(); ++s) {
        const auto& dist = policy.distribution(s);
        for (std::size_t a = 0; a < dist.size(); ++a)
            cost += pi[s] * dist[a] * model.action(s, a).cost;
    }
    return cost;
}

}  // namespace socbuf::ctmdp
