#include "ctmdp/value_iteration.hpp"

#include "ctmc/stationary.hpp"
#include "ctmdp/occupation.hpp"
#include "exec/executor.hpp"
#include "util/contracts.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace socbuf::ctmdp {

namespace {

/// Precomputed uniformized model: per pair, per-step cost, stay
/// probability, and the jump probabilities in compressed-row (CSR) form —
/// one flat target/probability array indexed by per-pair offsets. The
/// flat arrays keep the per-pair append order of the old nested vectors,
/// so the Bellman fold below visits identical values in identical order
/// (bit-identical results) while the sweep streams three contiguous
/// arrays.
struct Uniformized {
    double lambda = 1.0;
    std::vector<double> step_cost;
    std::vector<double> stay;
    // CSR over pairs: entries [jump_offset[p], jump_offset[p + 1]).
    std::vector<std::size_t> jump_offset;
    std::vector<std::size_t> jump_target;
    std::vector<double> jump_prob;
};

Uniformized uniformize(const CtmdpModel& model) {
    Uniformized u;
    // A margin keeps every self-loop probability strictly positive, which
    // makes the uniformized chain aperiodic (required for RVI convergence).
    u.lambda = std::max(model.max_exit_rate(), 1e-12) * 1.05 + 1e-9;
    const std::size_t n_pairs = model.pair_count();
    u.step_cost.resize(n_pairs);
    u.stay.resize(n_pairs);
    u.jump_offset.assign(n_pairs + 1, 0);
    u.jump_target.reserve(model.transition_count());
    u.jump_prob.reserve(model.transition_count());
    for (std::size_t p = 0; p < n_pairs; ++p) {
        const std::size_t s = model.pair_state(p);
        const std::size_t a = model.pair_action(p);
        const Action& act = model.action(s, a);
        u.step_cost[p] = act.cost / u.lambda;
        double move = 0.0;
        for (const auto& t : act.transitions) {
            if (t.target == s || t.rate <= 0.0) continue;
            u.jump_target.push_back(t.target);
            u.jump_prob.push_back(t.rate / u.lambda);
            move += t.rate / u.lambda;
        }
        u.jump_offset[p + 1] = u.jump_target.size();
        u.stay[p] = 1.0 - move;
        SOCBUF_ASSERT(u.stay[p] > 0.0);
    }
    return u;
}

/// One state's Bellman minimization over the values in `h`. The action
/// scan and jump fold run in the model's pair order — the fold order every
/// sweep variant and thread count shares.
inline void bellman_min(const CtmdpModel& model, const Uniformized& u,
                        const linalg::Vector& h, std::size_t s,
                        double& best_out, std::size_t& action_out) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_a = 0;
    for (std::size_t a = 0; a < model.action_count(s); ++a) {
        const std::size_t p = model.pair_index(s, a);
        double value = u.step_cost[p] + u.stay[p] * h[s];
        for (std::size_t k = u.jump_offset[p]; k < u.jump_offset[p + 1]; ++k)
            value += u.jump_prob[k] * h[u.jump_target[k]];
        if (value < best) {
            best = value;
            best_a = a;
        }
    }
    best_out = best;
    action_out = best_a;
}

/// Bellman minimization with the action's self-loop solved out — the
/// Gauss–Seidel step of Puterman §8.5.4, in candidate-bias form. For a
/// gain estimate g, each action's optimality equation
///     g + h(s) = c/L + stay * h(s) + sum_{t != s} P(t|s,a) v(t)
/// is solved exactly for h(s):
///     h_a = (c/L + sum_{t != s} P(t|s,a) v(t) - g) / (1 - stay)
/// — the value a plain sweep only reaches in the stay-probability limit.
/// Since th_a = h_a + g, the minimization is over the same ordering as
/// the explicit update's around the fixed point: h_a is the explicit
/// residual scaled by 1/(1 - stay) > 0, so the argmin set and the fixed
/// point are unchanged; only the approach is faster. The uniformization
/// margin makes `stay` large exactly for low-exit states, which is where
/// the acceleration pays. Degenerate all-self-loop actions (stay == 1)
/// fall back to the explicit update. Returns h_a, not th_a.
inline void bellman_min_implicit(const CtmdpModel& model,
                                 const Uniformized& u,
                                 const linalg::Vector& h, std::size_t s,
                                 double g, double& best_out,
                                 std::size_t& action_out) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_a = 0;
    for (std::size_t a = 0; a < model.action_count(s); ++a) {
        const std::size_t p = model.pair_index(s, a);
        double value = u.step_cost[p];
        for (std::size_t k = u.jump_offset[p]; k < u.jump_offset[p + 1]; ++k)
            value += u.jump_prob[k] * h[u.jump_target[k]];
        const double move = 1.0 - u.stay[p];
        value = move > 1e-12 ? (value - g) / move
                             : value + u.stay[p] * h[s] - g;
        if (value < best) {
            best = value;
            best_a = a;
        }
    }
    best_out = best;
    action_out = best_a;
}

/// Fixed chunk width of every fan-out below. Chunk boundaries depend only
/// on the index range (exec::parallel_for_ranges), so the per-chunk
/// min/max partials land in fixed slots and their refold — an order-exact
/// operation — is bit-identical for any worker count, including the
/// serial body(0, whole-range) call that writes slot 0 only.
constexpr std::size_t kSweepChunk = 256;

ViResult jacobi_rvi(const CtmdpModel& model, const Uniformized& u,
                    const ViOptions& options, exec::Executor* executor) {
    const std::size_t n = model.state_count();

    // Cold start from zeros; a size-matched warm seed (the converged bias
    // of a structurally identical model) starts the iteration near the
    // fixed point instead.
    linalg::Vector h(n, 0.0);
    if (options.initial_values.size() == n) h = options.initial_values;
    linalg::Vector th(n, 0.0);
    std::vector<std::size_t> greedy(n, 0);

    const std::size_t chunks = (n + kSweepChunk - 1) / kSweepChunk;
    std::vector<double> chunk_lo(chunks), chunk_hi(chunks);
    const auto sweep = [&](std::size_t lo_s, std::size_t hi_s) {
        double lo = std::numeric_limits<double>::infinity();
        double hi = -lo;
        for (std::size_t s = lo_s; s < hi_s; ++s) {
            bellman_min(model, u, h, s, th[s], greedy[s]);
            const double d = th[s] - h[s];
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
        chunk_lo[lo_s / kSweepChunk] = lo;
        chunk_hi[lo_s / kSweepChunk] = hi;
    };

    ViResult out;
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
        std::fill(chunk_lo.begin(), chunk_lo.end(),
                  std::numeric_limits<double>::infinity());
        std::fill(chunk_hi.begin(), chunk_hi.end(),
                  -std::numeric_limits<double>::infinity());
        if (executor != nullptr)
            executor->for_ranges(n, sweep, kSweepChunk);
        else
            sweep(0, n);
        // Span of the update delta bounds the gain error (Puterman 8.5.5).
        double lo = std::numeric_limits<double>::infinity();
        double hi = -lo;
        for (std::size_t c = 0; c < chunks; ++c) {
            lo = std::min(lo, chunk_lo[c]);
            hi = std::max(hi, chunk_hi[c]);
        }
        out.span_residual = hi - lo;
        out.iterations = it + 1;
        if (out.span_residual < options.tolerance) {
            out.gain = 0.5 * (hi + lo) * u.lambda;
            out.converged = true;
            break;
        }
        // Relative normalization keeps h bounded.
        const double ref = th[options.reference_state];
        const auto normalize = [&](std::size_t lo_s, std::size_t hi_s) {
            for (std::size_t s = lo_s; s < hi_s; ++s) h[s] = th[s] - ref;
        };
        if (executor != nullptr)
            executor->for_ranges(n, normalize, kSweepChunk);
        else
            normalize(0, n);
    }
    if (!out.converged) {
        // Best estimate anyway; the caller can inspect `converged`.
        double lo = std::numeric_limits<double>::infinity();
        double hi = -lo;
        for (std::size_t s = 0; s < n; ++s) {
            const double d = th[s] - h[s];
            lo = std::min(lo, d);
            hi = std::max(hi, d);
        }
        out.gain = 0.5 * (hi + lo) * u.lambda;
    }
    out.bias = h;
    out.policy = DeterministicPolicy(std::move(greedy));
    return out;
}

/// Red-black Gauss–Seidel relative value iteration, reference-pinned.
///
/// Naively normalizing a Gauss–Seidel sweep the way the Jacobi loop does
/// (subtract th[ref] at the end) converges to a fixed point whose gain is
/// NOT the optimal average cost — mixing old and new values shifts the
/// invariant. The correct scheme pins h(ref) = 0 and subtracts the gain
/// estimate inside the sweep (White's relative method):
///
///   g = min_a [ c(ref,a)/L + sum_t P(t|ref,a) h_old(t) ]
///       — the explicit Bellman value at the pinned reference state
///       (h_old(ref) = 0), fixed for the whole sweep *before* any state
///       updates: feeding g through ref's own implicit update would
///       amplify the gain error by stay/(1 - stay) > 1 and oscillate
///   phase 1 (states with the reference state's parity, ref included):
///       h_new(s) = min_a implicit(s, a, h_old, g)   — see
///               bellman_min_implicit: the self-loop is solved out; at
///               ref the minimizing numerator is g - g = 0 bit-exactly,
///               so h_new(ref) = 0 exactly, every sweep
///   phase 2 (the other parity):
///       h_new(s) = min_a implicit(s, a, v, g),
///           v(t) = phase-1 parity ? h_new(t) : h_old(t)
///
/// At a fixed point h = h_new, both phases reduce to T(h) = h + g — the
/// average-cost optimality equation — so g * lambda is the optimal gain
/// and h the bias with h(ref) = 0.
///
/// Parity is *not* a two-coloring of these models (same-parity jumps
/// exist), so each phase is Jacobi within itself: compute every th from a
/// pre-phase snapshot, then write. That makes the sweep deterministic for
/// any worker count — the in-place speedup comes only from phase 2
/// reading phase 1's results.
ViResult gauss_seidel_rvi(const CtmdpModel& model, const Uniformized& u,
                          const ViOptions& options,
                          exec::Executor* executor) {
    const std::size_t n = model.state_count();
    const std::size_t ref = options.reference_state;
    const std::size_t ref_parity = ref % 2;

    std::vector<std::size_t> phase1;
    std::vector<std::size_t> phase2;
    phase1.reserve((n + 1) / 2);
    phase2.reserve(n / 2);
    for (std::size_t s = 0; s < n; ++s)
        (s % 2 == ref_parity ? phase1 : phase2).push_back(s);

    linalg::Vector h(n, 0.0);
    if (options.initial_values.size() == n) {
        h = options.initial_values;
        // Re-pin the seed to the h(ref) = 0 convention.
        const double shift = h[ref];
        for (double& v : h) v -= shift;
    }
    linalg::Vector th(n, 0.0);
    std::vector<std::size_t> greedy(n, 0);

    const std::size_t max_phase = std::max(phase1.size(), phase2.size());
    const std::size_t chunks =
        max_phase == 0 ? 1 : (max_phase + kSweepChunk - 1) / kSweepChunk;
    std::vector<double> chunk_delta(chunks, 0.0);
    const auto fan = [&](std::size_t count,
                         const std::function<void(std::size_t, std::size_t)>&
                             body) {
        if (executor != nullptr)
            executor->for_ranges(count, body, kSweepChunk);
        else if (count > 0)
            body(0, count);
    };

    ViResult out;
    double g = 0.0;
    double g_prev = std::numeric_limits<double>::infinity();
    for (std::size_t it = 0; it < options.max_iterations; ++it) {
        // The sweep's gain estimate: the explicit Bellman value at the
        // pinned reference state, from the pre-sweep h alone.
        std::size_t ref_action = 0;
        bellman_min(model, u, h, ref, g, ref_action);
        // Phase 1 Bellman: reads only the pre-sweep h and g; th holds
        // the candidate bias (bellman_min_implicit returns h_a directly).
        fan(phase1.size(), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const std::size_t s = phase1[i];
                bellman_min_implicit(model, u, h, s, g, th[s], greedy[s]);
            }
        });
        // Phase 1 write-back: h(s) <- candidate, tracking the sup-norm
        // step per chunk (max folds are order-exact).
        std::fill(chunk_delta.begin(), chunk_delta.end(), 0.0);
        fan(phase1.size(), [&](std::size_t lo, std::size_t hi) {
            double local = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
                const std::size_t s = phase1[i];
                local = std::max(local, std::fabs(th[s] - h[s]));
                h[s] = th[s];
            }
            chunk_delta[lo / kSweepChunk] =
                std::max(chunk_delta[lo / kSweepChunk], local);
        });
        double delta = 0.0;
        for (const double d : chunk_delta) delta = std::max(delta, d);
        // Phase 2 Bellman: h now mixes updated phase-1 and old phase-2
        // values — the Gauss–Seidel read — and is constant through the
        // phase (phase 2 writes only after its own barrier).
        fan(phase2.size(), [&](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const std::size_t s = phase2[i];
                bellman_min_implicit(model, u, h, s, g, th[s], greedy[s]);
            }
        });
        std::fill(chunk_delta.begin(), chunk_delta.end(), 0.0);
        fan(phase2.size(), [&](std::size_t lo, std::size_t hi) {
            double local = 0.0;
            for (std::size_t i = lo; i < hi; ++i) {
                const std::size_t s = phase2[i];
                local = std::max(local, std::fabs(th[s] - h[s]));
                h[s] = th[s];
            }
            chunk_delta[lo / kSweepChunk] =
                std::max(chunk_delta[lo / kSweepChunk], local);
        });
        for (const double d : chunk_delta) delta = std::max(delta, d);

        delta = std::max(delta, std::fabs(g - g_prev));
        g_prev = g;
        out.span_residual = delta;
        out.iterations = it + 1;
        if (delta < options.tolerance) {
            out.converged = true;
            break;
        }
    }
    out.gain = g * u.lambda;
    out.bias = h;  // h(ref) = 0 exactly: th(ref) - g == 0 by construction
    out.policy = DeterministicPolicy(std::move(greedy));
    return out;
}

}  // namespace

ViResult relative_value_iteration(const CtmdpModel& model,
                                  const ViOptions& options) {
    model.validate();
    SOCBUF_REQUIRE_MSG(options.reference_state < model.state_count(),
                       "reference state out of range");
    const Uniformized u = uniformize(model);
    // The fan gate: a serial executor or a small model runs the exact
    // serial loop (one chunk), so "no executor" and "executor with one
    // worker" share the code path with any-width runs byte for byte.
    exec::Executor* executor =
        (options.executor != nullptr && !options.executor->serial() &&
         model.state_count() >= options.parallel_min_states)
            ? options.executor
            : nullptr;
    if (options.sweep == ViSweep::kGaussSeidel)
        return gauss_seidel_rvi(model, u, options, executor);
    return jacobi_rvi(model, u, options, executor);
}

double average_cost_of_policy(const CtmdpModel& model,
                              const RandomizedPolicy& policy,
                              exec::Executor* executor) {
    model.validate();
    const InducedUniformizedChain chain =
        induced_uniformized_chain(model, policy);
    const linalg::Vector pi = ctmc::stationary_power_sparse(
        chain.jumps, chain.stay, 1e-12, 500000, executor);
    double cost = 0.0;
    for (std::size_t s = 0; s < model.state_count(); ++s) {
        const auto& dist = policy.distribution(s);
        for (std::size_t a = 0; a < dist.size(); ++a)
            cost += pi[s] * dist[a] * model.action(s, a).cost;
    }
    return cost;
}

}  // namespace socbuf::ctmdp
