// The unified average-cost CTMDP solver layer.
//
// Three algorithms can solve a subsystem's average-cost problem — the
// Feinberg occupation-measure LP (lp_solver.hpp), relative value iteration
// (value_iteration.hpp) and Howard policy iteration (policy_iteration.hpp).
// They trade off very differently: the LP is exact and handles side
// constraints but its tableau grows with the pair count; policy iteration
// converges in a handful of updates but each one solves a dense linear
// system (O(states^3)); value iteration is matrix-free and scales furthest.
//
// This header erases that choice behind one interface:
//
//   * AverageCostSolver — strategy interface; solve() returns a
//     SubsystemSolution (gain + stationary distribution + occupation
//     measure + policy) whatever the algorithm,
//   * SolverRegistry — owns one instance of each algorithm, dispatches a
//     SolverChoice (kAuto escalates LP -> PI -> VI by model size), and
//     keeps thread-safe per-algorithm solve counts so callers running
//     solves in parallel (core::BufferSizingEngine via exec::parallel_map)
//     can report lp_solves/pi_solves/vi_solves without hand-kept counters.
#pragma once

#include "ctmdp/lp_solver.hpp"
#include "ctmdp/model.hpp"
#include "ctmdp/policy.hpp"
#include "ctmdp/policy_iteration.hpp"
#include "ctmdp/value_iteration.hpp"
#include "linalg/matrix.hpp"

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace socbuf::ctmdp {

/// Which algorithm produced (or should produce) a solution.
enum class SolverKind { kLp = 0, kValueIteration = 1, kPolicyIteration = 2 };

[[nodiscard]] const char* to_string(SolverKind kind);

/// How a caller asks for a solver. Distinct from SolverKind: kAuto is a
/// selection policy, not an algorithm.
enum class SolverChoice {
    kAuto,             // size-based escalation: LP -> PI -> VI
    kLp,               // force the occupation-measure LP
    kValueIteration,   // force relative value iteration
    kPolicyIteration,  // force Howard policy iteration
};

/// Everything a consumer (the K-switching translation, benches, tests)
/// needs from an average-cost solve, whichever algorithm ran.
struct SubsystemSolution {
    double gain = 0.0;               // optimal long-run average cost
    linalg::Vector stationary;       // pi(s) under the returned policy
    std::vector<double> occupation;  // x(s,a), flat pair-indexed
    RandomizedPolicy policy;
    /// Relative value function h (h(ref) = 0) for PI/VI solves; empty for
    /// LP solves. SolveCache feeds this back as a VI warm seed.
    linalg::Vector bias;
    /// Algorithm-specific effort: simplex pivots, VI sweeps, or PI policy
    /// updates. Comparable only between solves of the same solved_by.
    std::size_t iterations = 0;
    std::size_t switching_states = 0;  // states where the policy randomizes
    SolverKind solved_by = SolverKind::kLp;
    bool converged = false;
};

/// Per-algorithm tuning knobs, shared by every dispatch path.
struct SolverOptions {
    LpSolverOptions lp;
    ViOptions vi;
    PiOptions pi;
};

/// Strategy interface: one average-cost algorithm.
class AverageCostSolver {
public:
    virtual ~AverageCostSolver() = default;
    [[nodiscard]] virtual SolverKind kind() const = 0;
    [[nodiscard]] virtual const char* name() const = 0;
    /// Solve `model` (validated, unichain). Throws util::NumericalError
    /// when the algorithm fails outright (e.g. an infeasible LP).
    [[nodiscard]] virtual SubsystemSolution solve(
        const CtmdpModel& model, const SolverOptions& options) const = 0;
};

/// Build a standalone solver of the given kind (no registry needed).
[[nodiscard]] std::unique_ptr<AverageCostSolver> make_solver(SolverKind kind);

/// Canonical kAuto escalation thresholds. One definition shared by every
/// consumer (DispatchOptions below, core::SizingOptions, CLI help text) so
/// a retune lands everywhere at once. The LP rung is unchanged from the
/// banded-PI retune: banded PI beats the LP ~13x already at ~300 pairs.
/// The PI/VI boundary was re-measured with the scaled VI rung in place
/// (executor-fanned Jacobi sweeps plus the opt-in Gauss–Seidel sweep; see
/// the vi_scaling block of BENCH_ctmdp_solvers.json), on the figure-1
/// bus-b family (narrow band, bw ~ n^(2/3)) and the np-cluster-scaling
/// ingress buses at pe >= 6 (wide band, bw = n/4): PI still wins at 729
/// states on the narrow-band family (35 ms vs 41 ms serial Jacobi, ~15%)
/// but serial VI already ties it at 1000 states (47 ms vs 49 ms), beats
/// it 3.4x at 1024 states on the wide-band np buses (30 ms vs 103 ms),
/// and the Gauss–Seidel sweep wins from 729 up (29 ms vs 35 ms) — so the
/// former crossover band (768, 1000] now belongs to the VI rung, while
/// 768 keeps the measured 729-state PI win on the PI rung.
inline constexpr std::size_t kDefaultLpPairLimit = 320;
inline constexpr std::size_t kDefaultPiStateLimit = 768;

/// Dispatch policy: how kAuto escalates, and the forced choice.
struct DispatchOptions {
    SolverChoice choice = SolverChoice::kAuto;
    /// kAuto uses the LP while pair_count() <= lp_pair_limit ...
    std::size_t lp_pair_limit = kDefaultLpPairLimit;
    /// ... then policy iteration while state_count() <= pi_state_limit
    /// (each PI update solves a banded or dense states x states system) ...
    std::size_t pi_state_limit = kDefaultPiStateLimit;
    /// ... and value iteration beyond that.
    SolverOptions solver;
};

/// Snapshot of a registry's counters (plain values, safe to copy around).
struct SolverStatsSnapshot {
    std::size_t lp_solves = 0;
    std::size_t vi_solves = 0;
    std::size_t pi_solves = 0;
    std::size_t switching_states = 0;  // summed over all solutions
    [[nodiscard]] std::size_t total_solves() const {
        return lp_solves + vi_solves + pi_solves;
    }
};

/// Owns the three algorithms, dispatches choices, and counts solves.
/// solve() is safe to call from multiple threads concurrently.
class SolverRegistry {
public:
    SolverRegistry();

    [[nodiscard]] const AverageCostSolver& get(SolverKind kind) const;

    /// The algorithm dispatch() would run for `model` under `options`
    /// before any failure fallback.
    [[nodiscard]] SolverKind select(const CtmdpModel& model,
                                    const DispatchOptions& options) const;

    /// Solve `model` per `options`, recording stats. kAuto escalates by
    /// size and falls through to the next algorithm in the LP -> PI -> VI
    /// chain if the chosen one fails or does not converge; a forced choice
    /// that fails propagates its error instead.
    [[nodiscard]] SubsystemSolution solve(const CtmdpModel& model,
                                          const DispatchOptions& options);

    [[nodiscard]] SolverStatsSnapshot stats() const;
    void reset_stats();

private:
    void record(const SubsystemSolution& solution);

    std::unique_ptr<AverageCostSolver> solvers_[3];
    std::atomic<std::size_t> lp_solves_{0};
    std::atomic<std::size_t> vi_solves_{0};
    std::atomic<std::size_t> pi_solves_{0};
    std::atomic<std::size_t> switching_states_{0};
};

}  // namespace socbuf::ctmdp
