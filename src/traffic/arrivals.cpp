#include "traffic/arrivals.hpp"

#include "util/contracts.hpp"

namespace socbuf::traffic {

PoissonProcess::PoissonProcess(double rate) : rate_(rate) {
    SOCBUF_REQUIRE_MSG(rate > 0.0, "Poisson rate must be positive");
}

double PoissonProcess::next_interarrival(rng::RandomEngine& engine) {
    return engine.exponential(rate_);
}

OnOffProcess::OnOffProcess(double peak_rate, double on_time, double off_time)
    : peak_rate_(peak_rate), on_time_(on_time), off_time_(off_time) {
    SOCBUF_REQUIRE_MSG(peak_rate > 0.0, "peak rate must be positive");
    SOCBUF_REQUIRE_MSG(on_time > 0.0 && off_time > 0.0,
                       "ON/OFF phase means must be positive");
}

double OnOffProcess::mean_rate() const {
    return peak_rate_ * on_time_ / (on_time_ + off_time_);
}

double OnOffProcess::next_interarrival(rng::RandomEngine& engine) {
    // Walk ON windows until an arrival lands inside one; silent OFF gaps
    // accumulate into the returned inter-arrival time.
    double gap = 0.0;
    for (;;) {
        if (remaining_on_ <= 0.0) {
            gap += engine.exponential(1.0 / off_time_);
            remaining_on_ = engine.exponential(1.0 / on_time_);
        }
        const double candidate = engine.exponential(peak_rate_);
        if (candidate <= remaining_on_) {
            remaining_on_ -= candidate;
            return gap + candidate;
        }
        gap += remaining_on_;
        remaining_on_ = 0.0;
    }
}

std::unique_ptr<ArrivalProcess> make_arrival_process(
    const arch::FlowSpec& spec) {
    SOCBUF_REQUIRE_MSG(spec.rate > 0.0, "flow rate must be positive");
    if (!spec.bursty()) return std::make_unique<PoissonProcess>(spec.rate);
    const double duty = spec.on_time / (spec.on_time + spec.off_time);
    return std::make_unique<OnOffProcess>(spec.rate / duty, spec.on_time,
                                          spec.off_time);
}

}  // namespace socbuf::traffic
