#include "traffic/routing.hpp"

#include "util/contracts.hpp"

#include <algorithm>

namespace socbuf::traffic {

std::vector<FlowRoute> compute_routes(const arch::TestSystem& system) {
    const arch::Architecture& a = system.architecture;
    std::vector<FlowRoute> routes;
    routes.reserve(system.flows.size());
    for (std::size_t id = 0; id < system.flows.size(); ++id) {
        const auto& flow = system.flows[id];
        SOCBUF_REQUIRE_MSG(flow.source != flow.destination,
                           "flow endpoints must differ");
        FlowRoute r;
        r.flow_id = id;
        r.sites.push_back(arch::processor_site(a, flow.source));
        const auto src_bus = a.processor(flow.source).bus;
        const auto dst_bus = a.processor(flow.destination).bus;
        arch::BusId cursor = src_bus;
        for (const auto bridge : a.route(src_bus, dst_bus)) {
            r.sites.push_back(arch::bridge_site(a, bridge, cursor));
            cursor = a.bridge_peer(bridge, cursor);
        }
        routes.push_back(std::move(r));
    }
    return routes;
}

std::vector<double> offered_rate_per_site(const arch::TestSystem& system,
                                          const std::vector<FlowRoute>& routes,
                                          std::size_t site_count) {
    std::vector<double> rates(site_count, 0.0);
    for (const auto& r : routes) {
        const double rate = system.flows[r.flow_id].rate;
        for (const auto site : r.sites) {
            SOCBUF_REQUIRE_MSG(site < site_count, "route site out of range");
            rates[site] += rate;
        }
    }
    return rates;
}

std::vector<double> weight_per_site(const arch::TestSystem& system,
                                    const std::vector<FlowRoute>& routes,
                                    std::size_t site_count) {
    std::vector<double> weights(site_count, 0.0);
    for (const auto& r : routes) {
        const double w = system.flows[r.flow_id].weight;
        for (const auto site : r.sites)
            weights[site] = std::max(weights[site], w);
    }
    return weights;
}

}  // namespace socbuf::traffic
