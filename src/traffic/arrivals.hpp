// Arrival processes driving the simulator: Poisson for smooth flows and
// exponential ON/OFF (an MMPP(2) with a silent phase) for the bursty
// flows whose buffer demand uniform sizing underestimates.
#pragma once

#include "arch/presets.hpp"
#include "rng/engine.hpp"

#include <memory>

namespace socbuf::traffic {

/// A stationary point process generating packet inter-arrival times.
class ArrivalProcess {
public:
    virtual ~ArrivalProcess() = default;

    /// Time from the previous arrival to the next one.
    virtual double next_interarrival(rng::RandomEngine& engine) = 0;

    /// Long-run arrival rate.
    [[nodiscard]] virtual double mean_rate() const = 0;
};

/// Poisson arrivals at a fixed rate.
class PoissonProcess final : public ArrivalProcess {
public:
    explicit PoissonProcess(double rate);
    double next_interarrival(rng::RandomEngine& engine) override;
    [[nodiscard]] double mean_rate() const override { return rate_; }

private:
    double rate_;
};

/// Exponential ON/OFF source: while ON (mean length `on_time`) it emits
/// Poisson arrivals at `peak_rate`; OFF phases (mean `off_time`) are
/// silent. Long-run rate = peak_rate * on_time / (on_time + off_time).
class OnOffProcess final : public ArrivalProcess {
public:
    OnOffProcess(double peak_rate, double on_time, double off_time);
    double next_interarrival(rng::RandomEngine& engine) override;
    [[nodiscard]] double mean_rate() const override;
    [[nodiscard]] double peak_rate() const { return peak_rate_; }

private:
    double peak_rate_;
    double on_time_;
    double off_time_;
    double remaining_on_ = 0.0;  // unconsumed ON time carried across calls
};

/// Build the process described by a FlowSpec: Poisson unless the spec is
/// bursty, in which case the ON/OFF peak rate is chosen to preserve the
/// spec's long-run rate.
[[nodiscard]] std::unique_ptr<ArrivalProcess> make_arrival_process(
    const arch::FlowSpec& spec);

}  // namespace socbuf::traffic
