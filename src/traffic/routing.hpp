// Flow routing: expand each FlowSpec into its sequence of buffer sites.
// A packet occupies exactly one site at a time; being served on the final
// bus delivers it to the destination processor.
#pragma once

#include "arch/presets.hpp"
#include "arch/sites.hpp"

#include <cstddef>
#include <vector>

namespace socbuf::traffic {

/// The materialized path of one flow: `sites[0]` is the source processor's
/// outbound queue, subsequent entries are bridge buffers; the packet is
/// delivered after service on sites.back()'s bus.
struct FlowRoute {
    std::size_t flow_id = 0;
    std::vector<arch::SiteId> sites;
};

/// Expand every flow of `system` into its route. Throws ModelError when a
/// flow's endpoint buses are not bridge-connected.
[[nodiscard]] std::vector<FlowRoute> compute_routes(
    const arch::TestSystem& system);

/// First-order per-site offered rates: every site on a flow's route is
/// offered the flow's full rate (loss-free upstream approximation; the
/// sizing loop later replaces these with measured rates).
[[nodiscard]] std::vector<double> offered_rate_per_site(
    const arch::TestSystem& system, const std::vector<FlowRoute>& routes,
    std::size_t site_count);

/// Aggregate loss weight per site: the maximum weight among flows through
/// the site (a buffer shared by several flows inherits the most critical
/// one). Sites carrying no flow get weight 0.
[[nodiscard]] std::vector<double> weight_per_site(
    const arch::TestSystem& system, const std::vector<FlowRoute>& routes,
    std::size_t site_count);

}  // namespace socbuf::traffic
