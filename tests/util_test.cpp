#include "util/contracts.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/numeric.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cstdint>
#include <cstring>
#include <limits>
#include <numeric>

namespace su = socbuf::util;

TEST(Contracts, RequireThrowsWithLocation) {
    try {
        SOCBUF_REQUIRE_MSG(1 == 2, "impossible arithmetic");
        FAIL() << "expected ContractViolation";
    } catch (const su::ContractViolation& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("impossible arithmetic"), std::string::npos);
        EXPECT_NE(what.find("util_test.cpp"), std::string::npos);
    }
}

TEST(Contracts, RequirePassesSilently) {
    EXPECT_NO_THROW(SOCBUF_REQUIRE(2 + 2 == 4));
}

TEST(Log, ThresholdFiltersMessages) {
    const su::LogLevel old = su::log_level();
    su::set_log_level(su::LogLevel::kError);
    EXPECT_EQ(su::log_level(), su::LogLevel::kError);
    // Below threshold: must not crash and must be cheap.
    su::log(su::LogLevel::kDebug, "invisible ", 42);
    su::set_log_level(old);
}

TEST(Strings, JoinHandlesEmptyAndMany) {
    EXPECT_EQ(su::join({}, ","), "");
    EXPECT_EQ(su::join({"a"}, ","), "a");
    EXPECT_EQ(su::join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(Strings, FormatFixed) {
    EXPECT_EQ(su::format_fixed(3.14159, 2), "3.14");
    EXPECT_EQ(su::format_fixed(-0.5, 1), "-0.5");
    EXPECT_EQ(su::format_fixed(2.0, 0), "2");
}

TEST(Strings, FormatCompactIntegersStayIntegers) {
    EXPECT_EQ(su::format_compact(42.0), "42");
    EXPECT_EQ(su::format_compact(1.5), "1.500");
}

TEST(Strings, Padding) {
    EXPECT_EQ(su::pad_left("ab", 4), "  ab");
    EXPECT_EQ(su::pad_right("ab", 4), "ab  ");
    EXPECT_EQ(su::pad_left("abcdef", 4), "abcdef");
}

TEST(Strings, StartsWith) {
    EXPECT_TRUE(su::starts_with("balance(x)", "balance"));
    EXPECT_FALSE(su::starts_with("bal", "balance"));
}

TEST(Numeric, ApproxEqual) {
    EXPECT_TRUE(su::approx_equal(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(su::approx_equal(1.0, 1.1));
    EXPECT_TRUE(su::approx_equal(1e9, 1e9 + 1.0, 0.0, 1e-8));
}

TEST(Numeric, StableSumBeatsNaiveOnCancellation) {
    std::vector<double> values;
    values.push_back(1.0);
    for (int i = 0; i < 1000; ++i) values.push_back(1e-16);
    const double s = su::stable_sum(values);
    EXPECT_NEAR(s, 1.0 + 1000e-16, 1e-18);
}

TEST(Numeric, MeanAndStddev) {
    EXPECT_DOUBLE_EQ(su::mean({}), 0.0);
    EXPECT_DOUBLE_EQ(su::mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_DOUBLE_EQ(su::sample_stddev({5.0}), 0.0);
    EXPECT_NEAR(su::sample_stddev({2.0, 4.0, 6.0}), 2.0, 1e-12);
}

TEST(Numeric, ApportionExactTotal) {
    const auto out = su::apportion_largest_remainder(10, {1.0, 1.0, 1.0});
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0L), 10);
    // 10/3: two entries get 3, one gets 4 (first by remainder order).
    EXPECT_EQ(out[0], 4);
    EXPECT_EQ(out[1], 3);
    EXPECT_EQ(out[2], 3);
}

TEST(Numeric, ApportionRespectsFloors) {
    const auto out =
        su::apportion_largest_remainder(9, {0.0, 0.0, 100.0}, 1);
    EXPECT_EQ(out[0], 1);
    EXPECT_EQ(out[1], 1);
    EXPECT_EQ(out[2], 7);
}

TEST(Numeric, ApportionProportionality) {
    const auto out = su::apportion_largest_remainder(100, {1.0, 3.0});
    EXPECT_EQ(out[0], 25);
    EXPECT_EQ(out[1], 75);
}

TEST(Numeric, ApportionZeroWeightsSpreadEvenly) {
    const auto out = su::apportion_largest_remainder(5, {0.0, 0.0});
    EXPECT_EQ(out[0] + out[1], 5);
    EXPECT_LE(std::abs(out[0] - out[1]), 1);
}

TEST(Numeric, ApportionRejectsBadInput) {
    EXPECT_THROW(su::apportion_largest_remainder(1, {}),
                 su::ContractViolation);
    EXPECT_THROW(su::apportion_largest_remainder(1, {1.0, 1.0}, 1),
                 su::ContractViolation);
    EXPECT_THROW(su::apportion_largest_remainder(3, {-1.0, 1.0}),
                 su::ContractViolation);
}

class ApportionPropertyTest : public ::testing::TestWithParam<long> {};

TEST_P(ApportionPropertyTest, SumsToTotalAndStaysNearProportional) {
    const long total = GetParam();
    const std::vector<double> weights{0.5, 2.5, 3.0, 1.0, 7.7};
    const auto out = su::apportion_largest_remainder(total, weights, 1);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0L), total);
    const double wsum = 14.7;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        const double exact =
            static_cast<double>(total - 5) * weights[i] / wsum + 1.0;
        // Hamilton apportionment never strays more than 1 unit from the
        // exact share (plus the floor).
        EXPECT_NEAR(static_cast<double>(out[i]), exact, 1.0 + 1e-9)
            << "entry " << i << " for total " << total;
    }
}

INSTANTIATE_TEST_SUITE_P(Totals, ApportionPropertyTest,
                         ::testing::Values(5L, 6L, 13L, 40L, 160L, 320L, 640L,
                                           1000L));

TEST(Numeric, Argmax) {
    EXPECT_EQ(su::argmax({1.0, 5.0, 3.0}), 1u);
    EXPECT_EQ(su::argmax({7.0, 7.0}), 0u);  // first on ties
    EXPECT_THROW((void)su::argmax({}), su::ContractViolation);
}

TEST(Numeric, LowerBoundIndex) {
    const std::vector<double> cum{0.1, 0.4, 0.9, 1.0};
    EXPECT_EQ(su::lower_bound_index(cum, 0.05), 0u);
    EXPECT_EQ(su::lower_bound_index(cum, 0.4), 1u);
    EXPECT_EQ(su::lower_bound_index(cum, 0.95), 3u);
    EXPECT_EQ(su::lower_bound_index(cum, 2.0), 3u);  // clamps
}

TEST(Table, RendersAlignedColumns) {
    su::Table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("-----"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, NumericRowFormatsValues) {
    su::Table t({"proc", "pre", "post"});
    t.add_numeric_row("p1", {70.0, 83.0}, 0);
    EXPECT_NE(t.to_string().find("83"), std::string::npos);
}

TEST(Table, CsvOutput) {
    su::Table t({"a", "b"});
    t.add_row({"1", "2"});
    EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, RejectsMismatchedRow) {
    su::Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), su::ContractViolation);
}

TEST(Table, CsvEscapesCommasQuotesAndNewlinesPerRfc4180) {
    // Regression: cells with commas used to be emitted unquoted, silently
    // shifting every following column.
    su::Table t({"name", "note"});
    t.add_row({"np-load-sweep", "load 0.8, 1.0, 1.25"});
    t.add_row({"quoted", "he said \"go\""});
    t.add_row({"multiline", "a\nb"});
    EXPECT_EQ(t.to_csv(),
              "name,note\n"
              "np-load-sweep,\"load 0.8, 1.0, 1.25\"\n"
              "quoted,\"he said \"\"go\"\"\"\n"
              "multiline,\"a\nb\"\n");
}

TEST(Table, JsonEmissionKeepsHeadersAndCells) {
    su::Table t({"a", "b"});
    t.add_row({"x,y", "2"});
    const auto parsed = su::JsonValue::parse(t.to_json());
    EXPECT_EQ(parsed.at("headers").at(1).as_string(), "b");
    EXPECT_EQ(parsed.at("rows").at(0).at(0).as_string(), "x,y");
}

TEST(Json, DumpParseRoundTripIsAFixedPoint) {
    su::JsonValue root = su::JsonValue::object();
    root.set("name", "np-baseline");
    root.set("ok", true);
    root.set("nothing", su::JsonValue());
    root.set("pi", 3.141592653589793);
    root.set("tiny", 4.9e-324);
    root.set("count", std::size_t{640});
    su::JsonValue arr = su::JsonValue::array();
    arr.push_back(-1.5);
    arr.push_back("quote \" backslash \\ newline \n tab \t");
    arr.push_back(su::JsonValue::array());
    root.set("items", std::move(arr));

    const std::string compact = root.dump();
    const su::JsonValue reparsed = su::JsonValue::parse(compact);
    EXPECT_EQ(reparsed, root);
    EXPECT_EQ(reparsed.dump(), compact);
    // Pretty output parses back to the same value too.
    EXPECT_EQ(su::JsonValue::parse(root.dump(2)), root);
}

TEST(Json, NumbersSurviveWithFullPrecision) {
    const double v = 0.1 + 0.2;  // not representable as a short decimal
    su::JsonValue n(v);
    EXPECT_EQ(su::JsonValue::parse(n.dump()).as_number(), v);
}

TEST(Json, ArbitraryFiniteDoublesRoundTripBitExactly) {
    // Shortest-round-trip emission is contractual for *every* finite
    // double, not just preset-friendly decimals: subnormals, values a
    // hair off a representable boundary, huge and tiny magnitudes, and
    // negative zero must all reparse to the identical bits (and the
    // emitted text must be a fixed point of dump -> parse -> dump).
    const double cases[] = {
        0.1 + 0.2,
        1.0 / 3.0,
        -1.0 / 3.0,
        2.0 / 3.0,
        4000.0 * (1.0 + 1e-15),
        1e-300,
        -1e-300,
        4.9e-324,                    // smallest subnormal
        2.2250738585072014e-308,     // smallest normal
        1.7976931348623157e308,      // largest finite
        -1.7976931348623157e308,
        123456789.123456789,
        -0.0,
        9007199254740993.0,          // 2^53 + 1 rounds to 2^53
        3.141592653589793,
    };
    for (const double v : cases) {
        const std::string emitted = su::JsonValue(v).dump();
        const double reparsed = su::JsonValue::parse(emitted).as_number();
        std::uint64_t want = 0;
        std::uint64_t got = 0;
        std::memcpy(&want, &v, sizeof(want));
        std::memcpy(&got, &reparsed, sizeof(got));
        EXPECT_EQ(got, want) << "value " << emitted;
        EXPECT_EQ(su::JsonValue(reparsed).dump(), emitted);
    }
    // Non-finite numbers have no JSON representation and must refuse to
    // serialize rather than emit garbage.
    EXPECT_THROW((void)su::JsonValue(std::numeric_limits<double>::infinity())
                     .dump(),
                 su::JsonError);
    EXPECT_THROW(
        (void)su::JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(),
        su::JsonError);
}

TEST(Json, ObjectKeepsInsertionOrderAndSupportsLookup) {
    su::JsonValue o = su::JsonValue::object();
    o.set("z", 1);
    o.set("a", 2);
    o.set("z", 3);  // assign keeps the original slot
    EXPECT_EQ(o.size(), 2u);
    EXPECT_EQ(o.members()[0].first, "z");
    EXPECT_EQ(o.at("z").as_number(), 3.0);
    EXPECT_TRUE(o.contains("a"));
    EXPECT_FALSE(o.contains("b"));
    EXPECT_THROW((void)o.at("missing"), su::JsonError);
}

TEST(Json, NumbersAreLocaleIndependent) {
    // A comma-decimal locale must not leak into emission or parsing
    // (to_chars/from_chars ignore LC_NUMERIC; printf/strtod would not).
    const char* previous = std::setlocale(LC_NUMERIC, nullptr);
    const std::string saved = previous != nullptr ? previous : "C";
    if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr)
        GTEST_SKIP() << "no comma-decimal locale installed";
    const su::JsonValue n(1.5);
    const std::string emitted = n.dump();
    const double parsed = su::JsonValue::parse("2.25").as_number();
    std::setlocale(LC_NUMERIC, saved.c_str());
    EXPECT_EQ(emitted, "1.5");
    EXPECT_EQ(parsed, 2.25);
}

TEST(Json, ParserRejectsMalformedDocuments) {
    EXPECT_THROW((void)su::JsonValue::parse(""), su::JsonError);
    EXPECT_THROW((void)su::JsonValue::parse("{\"a\":1"), su::JsonError);
    EXPECT_THROW((void)su::JsonValue::parse("[1,2] trailing"), su::JsonError);
    EXPECT_THROW((void)su::JsonValue::parse("\"unterminated"), su::JsonError);
    EXPECT_THROW((void)su::JsonValue::parse("1.2.3"), su::JsonError);
    EXPECT_THROW((void)su::JsonValue::parse("nul"), su::JsonError);
}
