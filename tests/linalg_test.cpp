#include "linalg/banded.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace sl = socbuf::linalg;

TEST(Matrix, ConstructionAndAccess) {
    sl::Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 0) = -2.0;
    EXPECT_DOUBLE_EQ(m.at(0, 0), -2.0);
    EXPECT_THROW(m.at(2, 0), socbuf::util::ContractViolation);
}

TEST(Matrix, FromRowsValidatesShape) {
    const auto m = sl::Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW(sl::Matrix::from_rows({{1.0}, {1.0, 2.0}}),
                 socbuf::util::ContractViolation);
}

TEST(Matrix, IdentityMultiplyIsNoOp) {
    const auto id = sl::Matrix::identity(3);
    const sl::Vector x{1.0, -2.0, 0.5};
    EXPECT_EQ(id.multiply(x), x);
}

TEST(Matrix, MultiplyKnownValues) {
    const auto a = sl::Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    const auto y = a.multiply(sl::Vector{1.0, 1.0});
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MultiplyTransposedMatchesExplicitTranspose) {
    const auto a =
        sl::Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
    const sl::Vector x{2.0, -1.0};
    const auto fast = a.multiply_transposed(x);
    const auto slow = a.transposed().multiply(x);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i)
        EXPECT_NEAR(fast[i], slow[i], 1e-14);
}

TEST(Matrix, MatrixMatrixProduct) {
    const auto a = sl::Matrix::from_rows({{1.0, 2.0}, {0.0, 1.0}});
    const auto b = sl::Matrix::from_rows({{3.0, 0.0}, {1.0, 1.0}});
    const auto c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 1.0);
}

TEST(Matrix, NormsAndScaling) {
    const auto a = sl::Matrix::from_rows({{1.0, -2.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(a.infinity_norm(), 7.0);
    EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
    EXPECT_DOUBLE_EQ(a.scaled(2.0)(1, 1), 8.0);
    EXPECT_DOUBLE_EQ(a.add(a)(0, 1), -4.0);
}

TEST(VectorOps, Arithmetic) {
    const sl::Vector a{1.0, 2.0};
    const sl::Vector b{3.0, -1.0};
    EXPECT_EQ(sl::add(a, b), (sl::Vector{4.0, 1.0}));
    EXPECT_EQ(sl::subtract(a, b), (sl::Vector{-2.0, 3.0}));
    EXPECT_EQ(sl::scale(a, 2.0), (sl::Vector{2.0, 4.0}));
    EXPECT_DOUBLE_EQ(sl::dot(a, b), 1.0);
    EXPECT_DOUBLE_EQ(sl::norm2({3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(sl::norm_inf(b), 3.0);
    EXPECT_DOUBLE_EQ(sl::sum(a), 3.0);
    EXPECT_DOUBLE_EQ(sl::max_abs_diff(a, b), 3.0);
    EXPECT_DOUBLE_EQ(sl::span({1.0, 5.0, -2.0}), 7.0);
}

TEST(Lu, SolvesKnownSystem) {
    // x + y = 3; 2x - y = 0  =>  x = 1, y = 2.
    const auto a = sl::Matrix::from_rows({{1.0, 1.0}, {2.0, -1.0}});
    const auto x = sl::solve_linear_system(a, {3.0, 0.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DeterminantWithPivoting) {
    // Requires a row swap; det = -2.
    const auto a = sl::Matrix::from_rows({{0.0, 1.0}, {2.0, 0.0}});
    sl::LuDecomposition lu(a);
    EXPECT_NEAR(lu.determinant(), -2.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
    const auto a = sl::Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
    EXPECT_THROW(sl::LuDecomposition{a}, socbuf::util::NumericalError);
}

TEST(Lu, TransposedSolveMatchesExplicitTranspose) {
    const auto a = sl::Matrix::from_rows(
        {{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}});
    const sl::Vector b{1.0, -2.0, 0.5};
    sl::LuDecomposition lu(a);
    const auto x1 = lu.solve_transposed(b);
    const auto x2 = sl::LuDecomposition(a.transposed()).solve(b);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-12);
}

class LuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LuPropertyTest, RandomSystemsHaveTinyResiduals) {
    const int n = GetParam();
    std::mt19937_64 gen(12345u + static_cast<unsigned>(n));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    sl::Matrix a(n, n);
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) a(r, c) = dist(gen);
        a(r, r) += static_cast<double>(n);  // diagonal dominance
    }
    sl::Vector b(n);
    for (int i = 0; i < n; ++i) b[i] = dist(gen);
    const auto x = sl::solve_linear_system(a, b);
    EXPECT_LT(sl::residual_inf(a, x, b), 1e-9);
    // Transposed solve: residual of A^T y = b.
    const auto y = sl::LuDecomposition(a).solve_transposed(b);
    EXPECT_LT(sl::residual_inf(a.transposed(), y, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60, 120));

namespace {

/// Random banded diagonally-dominant system: entries in |c - r| <= bw,
/// deterministic per (n, bw).
sl::Matrix random_banded(int n, int bw, unsigned salt) {
    std::mt19937_64 gen(777u + salt);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    sl::Matrix a(n, n);
    for (int r = 0; r < n; ++r) {
        for (int c = std::max(0, r - bw); c <= std::min(n - 1, r + bw); ++c)
            a(r, c) = dist(gen);
        a(r, r) += static_cast<double>(n);
    }
    return a;
}

}  // namespace

TEST(Sparse, FromTripletsKeepsOrderAndDuplicates) {
    // Duplicates stay as repeated terms; within-row order is preserved.
    const std::vector<sl::SparseEntry> entries{
        {0, 1, 2.0}, {0, 1, 3.0}, {1, 0, -1.0}, {2, 2, 4.0}};
    const auto m = sl::SparseMatrix::from_triplets(3, 3, entries);
    EXPECT_EQ(m.nnz(), 4u);
    EXPECT_EQ(m.row_begin(0), 0u);
    EXPECT_EQ(m.row_end(0), 2u);
    EXPECT_DOUBLE_EQ(m.value(0), 2.0);
    EXPECT_DOUBLE_EQ(m.value(1), 3.0);
    const auto y = m.multiply({1.0, 1.0, 1.0});
    EXPECT_DOUBLE_EQ(y[0], 5.0);  // 2 + 3 accumulate
    EXPECT_DOUBLE_EQ(y[1], -1.0);
    EXPECT_DOUBLE_EQ(y[2], 4.0);
    EXPECT_THROW(sl::SparseMatrix::from_triplets(
                     2, 2, {{1, 0, 1.0}, {0, 0, 1.0}}),  // rows decrease
                 socbuf::util::ContractViolation);
}

TEST(Sparse, RoundTripThroughDense) {
    const auto dense = random_banded(12, 3, 1u);
    const auto sparse = sl::SparseMatrix::from_dense(dense);
    const auto back = sparse.to_dense();
    for (std::size_t r = 0; r < 12; ++r)
        for (std::size_t c = 0; c < 12; ++c)
            EXPECT_EQ(back(r, c), dense(r, c));
    EXPECT_LT(sparse.density(), 1.0);
}

TEST(Sparse, MultiplyBitIdenticalToDenseOnBandedSystems) {
    // The CSR fold visits the same non-zeros in the same order the dense
    // row walk does; skipped entries are exact zeros, so the sums carry
    // identical intermediate values: bitwise equality, not just closeness.
    for (const int n : {5, 23, 60}) {
        const auto dense = random_banded(n, 4, static_cast<unsigned>(n));
        const auto sparse = sl::SparseMatrix::from_dense(dense);
        std::mt19937_64 gen(9000u + static_cast<unsigned>(n));
        std::uniform_real_distribution<double> dist(-1.0, 1.0);
        sl::Vector x(n);
        for (int i = 0; i < n; ++i) x[i] = dist(gen);
        EXPECT_EQ(sparse.multiply(x), dense.multiply(x));
        EXPECT_EQ(sparse.multiply_transposed(x),
                  dense.multiply_transposed(x));
    }
}

TEST(Banded, BandwidthsOfDetectsBands) {
    const auto a = sl::Matrix::from_rows(
        {{1.0, 2.0, 0.0}, {0.0, 3.0, 4.0}, {5.0, 0.0, 6.0}});
    const auto bw = sl::bandwidths_of(a);
    EXPECT_EQ(bw.lower, 2u);  // a(2,0)
    EXPECT_EQ(bw.upper, 1u);  // a(0,1), a(1,2)
}

TEST(Banded, MatrixStorageRoundTrip) {
    sl::BandedMatrix b(4, 1, 1);
    b.at(0, 0) = 1.0;
    b.at(0, 1) = 2.0;
    b.at(2, 1) = -3.0;
    EXPECT_DOUBLE_EQ(b.get(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(b.get(0, 2), 0.0);  // out of band reads as zero
    EXPECT_THROW(static_cast<void>(b.at(0, 2)),
                 socbuf::util::ContractViolation);
    const auto dense = b.to_dense();
    EXPECT_DOUBLE_EQ(dense(2, 1), -3.0);
    EXPECT_DOUBLE_EQ(dense(3, 3), 0.0);
}

TEST(Banded, SingularMatrixThrows) {
    sl::BandedMatrix b(2, 1, 1);
    b.at(0, 0) = 1.0;
    b.at(0, 1) = 2.0;
    b.at(1, 0) = 0.5;
    b.at(1, 1) = 1.0;  // row 1 = 0.5 * row 0: singular
    EXPECT_THROW(sl::BandedLu{b}, socbuf::util::NumericalError);
}

class BandedLuPropertyTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BandedLuPropertyTest, SolveBitIdenticalToDenseLu) {
    // The headline contract: on banded input, the banded LU makes the
    // same pivot choices and performs the same arithmetic as the dense
    // factorization, so the solutions match bit for bit (EXPECT_EQ on
    // doubles, no tolerance).
    const auto [n, bw] = GetParam();
    const auto dense = random_banded(n, bw, static_cast<unsigned>(n * bw));
    sl::BandedMatrix banded(n, bw, bw);
    for (int r = 0; r < n; ++r)
        for (int c = std::max(0, r - bw); c <= std::min(n - 1, r + bw); ++c)
            banded.at(r, c) = dense(r, c);
    std::mt19937_64 gen(31u + static_cast<unsigned>(n));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    sl::Vector b(n);
    for (int i = 0; i < n; ++i) b[i] = dist(gen);
    const auto x_banded = sl::solve_banded_system(banded, b);
    const auto x_dense = sl::solve_linear_system(dense, b);
    ASSERT_EQ(x_banded.size(), x_dense.size());
    for (int i = 0; i < n; ++i) EXPECT_EQ(x_banded[i], x_dense[i]);
    EXPECT_LT(sl::residual_inf(dense, x_banded, b), 1e-9);
}

TEST_P(BandedLuPropertyTest, PivotingSystemsStayBitIdentical) {
    // Force row interchanges: build a diagonally dominant system with
    // band bw - 1, then swap each adjacent row pair. The swapped matrix
    // is exactly as well conditioned but fits band bw, and every even
    // column's dominant entry now sits one row below the diagonal, so
    // partial pivoting must interchange at every even step.
    const auto [n, bw] = GetParam();
    if (bw == 0) return;  // band 0 leaves no room for the swapped rows
    const int inner = bw - 1;
    sl::Matrix dense(n, n);
    std::mt19937_64 gen(555u + static_cast<unsigned>(n));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    for (int r = 0; r < n; ++r)
        for (int c = std::max(0, r - inner); c <= std::min(n - 1, r + inner);
             ++c)
            dense(r, c) = dist(gen);
    for (int r = 0; r < n; ++r) dense(r, r) += 10.0 * n;
    for (int r = 0; r + 1 < n; r += 2)
        for (int c = 0; c < n; ++c) std::swap(dense(r, c), dense(r + 1, c));
    sl::BandedMatrix banded(n, bw, bw);
    for (int r = 0; r < n; ++r)
        for (int c = std::max(0, r - bw); c <= std::min(n - 1, r + bw); ++c)
            banded.at(r, c) = dense(r, c);
    sl::Vector b(n);
    for (int i = 0; i < n; ++i) b[i] = dist(gen);
    const auto x_banded = sl::solve_banded_system(banded, b);
    const auto x_dense = sl::solve_linear_system(dense, b);
    for (int i = 0; i < n; ++i) EXPECT_EQ(x_banded[i], x_dense[i]);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndBands, BandedLuPropertyTest,
    ::testing::Values(std::pair<int, int>{1, 0}, std::pair<int, int>{4, 1},
                      std::pair<int, int>{10, 2}, std::pair<int, int>{25, 3},
                      std::pair<int, int>{60, 5},
                      std::pair<int, int>{120, 16}));
