#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace sl = socbuf::linalg;

TEST(Matrix, ConstructionAndAccess) {
    sl::Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 0) = -2.0;
    EXPECT_DOUBLE_EQ(m.at(0, 0), -2.0);
    EXPECT_THROW(m.at(2, 0), socbuf::util::ContractViolation);
}

TEST(Matrix, FromRowsValidatesShape) {
    const auto m = sl::Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW(sl::Matrix::from_rows({{1.0}, {1.0, 2.0}}),
                 socbuf::util::ContractViolation);
}

TEST(Matrix, IdentityMultiplyIsNoOp) {
    const auto id = sl::Matrix::identity(3);
    const sl::Vector x{1.0, -2.0, 0.5};
    EXPECT_EQ(id.multiply(x), x);
}

TEST(Matrix, MultiplyKnownValues) {
    const auto a = sl::Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
    const auto y = a.multiply(sl::Vector{1.0, 1.0});
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MultiplyTransposedMatchesExplicitTranspose) {
    const auto a =
        sl::Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
    const sl::Vector x{2.0, -1.0};
    const auto fast = a.multiply_transposed(x);
    const auto slow = a.transposed().multiply(x);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i)
        EXPECT_NEAR(fast[i], slow[i], 1e-14);
}

TEST(Matrix, MatrixMatrixProduct) {
    const auto a = sl::Matrix::from_rows({{1.0, 2.0}, {0.0, 1.0}});
    const auto b = sl::Matrix::from_rows({{3.0, 0.0}, {1.0, 1.0}});
    const auto c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 5.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 1.0);
}

TEST(Matrix, NormsAndScaling) {
    const auto a = sl::Matrix::from_rows({{1.0, -2.0}, {3.0, 4.0}});
    EXPECT_DOUBLE_EQ(a.infinity_norm(), 7.0);
    EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
    EXPECT_DOUBLE_EQ(a.scaled(2.0)(1, 1), 8.0);
    EXPECT_DOUBLE_EQ(a.add(a)(0, 1), -4.0);
}

TEST(VectorOps, Arithmetic) {
    const sl::Vector a{1.0, 2.0};
    const sl::Vector b{3.0, -1.0};
    EXPECT_EQ(sl::add(a, b), (sl::Vector{4.0, 1.0}));
    EXPECT_EQ(sl::subtract(a, b), (sl::Vector{-2.0, 3.0}));
    EXPECT_EQ(sl::scale(a, 2.0), (sl::Vector{2.0, 4.0}));
    EXPECT_DOUBLE_EQ(sl::dot(a, b), 1.0);
    EXPECT_DOUBLE_EQ(sl::norm2({3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(sl::norm_inf(b), 3.0);
    EXPECT_DOUBLE_EQ(sl::sum(a), 3.0);
    EXPECT_DOUBLE_EQ(sl::max_abs_diff(a, b), 3.0);
    EXPECT_DOUBLE_EQ(sl::span({1.0, 5.0, -2.0}), 7.0);
}

TEST(Lu, SolvesKnownSystem) {
    // x + y = 3; 2x - y = 0  =>  x = 1, y = 2.
    const auto a = sl::Matrix::from_rows({{1.0, 1.0}, {2.0, -1.0}});
    const auto x = sl::solve_linear_system(a, {3.0, 0.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DeterminantWithPivoting) {
    // Requires a row swap; det = -2.
    const auto a = sl::Matrix::from_rows({{0.0, 1.0}, {2.0, 0.0}});
    sl::LuDecomposition lu(a);
    EXPECT_NEAR(lu.determinant(), -2.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
    const auto a = sl::Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
    EXPECT_THROW(sl::LuDecomposition{a}, socbuf::util::NumericalError);
}

TEST(Lu, TransposedSolveMatchesExplicitTranspose) {
    const auto a = sl::Matrix::from_rows(
        {{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}});
    const sl::Vector b{1.0, -2.0, 0.5};
    sl::LuDecomposition lu(a);
    const auto x1 = lu.solve_transposed(b);
    const auto x2 = sl::LuDecomposition(a.transposed()).solve(b);
    for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-12);
}

class LuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LuPropertyTest, RandomSystemsHaveTinyResiduals) {
    const int n = GetParam();
    std::mt19937_64 gen(12345u + static_cast<unsigned>(n));
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    sl::Matrix a(n, n);
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < n; ++c) a(r, c) = dist(gen);
        a(r, r) += static_cast<double>(n);  // diagonal dominance
    }
    sl::Vector b(n);
    for (int i = 0; i < n; ++i) b[i] = dist(gen);
    const auto x = sl::solve_linear_system(a, b);
    EXPECT_LT(sl::residual_inf(a, x, b), 1e-9);
    // Transposed solve: residual of A^T y = b.
    const auto y = sl::LuDecomposition(a).solve_transposed(b);
    EXPECT_LT(sl::residual_inf(a.transposed(), y, b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60, 120));
