#include "arch/architecture.hpp"
#include "arch/presets.hpp"
#include "arch/sites.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <map>

namespace sa = socbuf::arch;

namespace {

/// Three buses in a line: x -- y -- z, one processor each.
sa::Architecture line_arch() {
    sa::Architecture a;
    const auto x = a.add_bus("x", 1.0);
    const auto y = a.add_bus("y", 1.0);
    const auto z = a.add_bus("z", 1.0);
    a.add_processor("px", x);
    a.add_processor("py", y);
    a.add_processor("pz", z);
    a.add_bridge("xy", x, y);
    a.add_bridge("yz", y, z);
    return a;
}

}  // namespace

TEST(Architecture, BuilderAndAccessors) {
    const auto a = line_arch();
    EXPECT_EQ(a.bus_count(), 3u);
    EXPECT_EQ(a.processor_count(), 3u);
    EXPECT_EQ(a.bridge_count(), 2u);
    EXPECT_EQ(a.bus(0).name, "x");
    EXPECT_EQ(a.processor(1).name, "py");
    EXPECT_NO_THROW(a.validate());
}

TEST(Architecture, RejectsBadConstruction) {
    sa::Architecture a;
    EXPECT_THROW(a.add_bus("bad", 0.0), socbuf::util::ContractViolation);
    const auto b = a.add_bus("b", 1.0);
    EXPECT_THROW(a.add_processor("p", 99), socbuf::util::ContractViolation);
    EXPECT_THROW(a.add_bridge("self", b, b),
                 socbuf::util::ContractViolation);
}

TEST(Architecture, ProcessorsOnBus) {
    const auto a = line_arch();
    const auto on_y = a.processors_on_bus(1);
    ASSERT_EQ(on_y.size(), 1u);
    EXPECT_EQ(a.processor(on_y[0]).name, "py");
}

TEST(Architecture, BridgeQueries) {
    const auto a = line_arch();
    EXPECT_EQ(a.bridge_peer(0, 0), 1u);
    EXPECT_EQ(a.bridge_peer(0, 1), 0u);
    EXPECT_THROW((void)a.bridge_peer(0, 2), socbuf::util::ContractViolation);
    ASSERT_TRUE(a.bridge_between(0, 1).has_value());
    EXPECT_FALSE(a.bridge_between(0, 2).has_value());
}

TEST(Architecture, RoutesAreShortest) {
    const auto a = line_arch();
    EXPECT_TRUE(a.route(1, 1).empty());
    const auto direct = a.route(0, 1);
    ASSERT_EQ(direct.size(), 1u);
    EXPECT_EQ(direct[0], 0u);
    const auto two_hop = a.route(0, 2);
    ASSERT_EQ(two_hop.size(), 2u);
    EXPECT_EQ(two_hop[0], 0u);
    EXPECT_EQ(two_hop[1], 1u);
}

TEST(Architecture, DisconnectedBusesDetected) {
    sa::Architecture a;
    const auto x = a.add_bus("x", 1.0);
    const auto y = a.add_bus("y", 1.0);
    a.add_processor("px", x);
    a.add_processor("py", y);
    EXPECT_FALSE(a.bus_graph_connected());
    EXPECT_THROW(a.route(x, y), socbuf::util::ModelError);
    a.add_bridge("xy", x, y);
    EXPECT_TRUE(a.bus_graph_connected());
}

TEST(Sites, EnumerationOrderAndContent) {
    const auto a = line_arch();
    const auto sites = sa::enumerate_buffer_sites(a);
    // 3 processors + 2 bridges * 2 directions.
    ASSERT_EQ(sites.size(), 7u);
    for (std::size_t p = 0; p < 3; ++p) {
        EXPECT_EQ(sites[p].kind, sa::SiteKind::kProcessor);
        EXPECT_EQ(sites[p].owner, p);
        EXPECT_EQ(sites[p].bus, a.processor(p).bus);
    }
    // Bridge xy, direction x->y contends on y.
    const auto s_xy = sa::bridge_site(a, 0, 0);
    EXPECT_EQ(sites[s_xy].kind, sa::SiteKind::kBridge);
    EXPECT_EQ(sites[s_xy].bus, 1u);
    EXPECT_EQ(sites[s_xy].from_bus, 0u);
    // Reverse direction contends on x.
    const auto s_yx = sa::bridge_site(a, 0, 1);
    EXPECT_EQ(sites[s_yx].bus, 0u);
}

TEST(Sites, SiteLookupsAgreeWithEnumeration) {
    const auto a = line_arch();
    const auto sites = sa::enumerate_buffer_sites(a);
    for (std::size_t p = 0; p < a.processor_count(); ++p)
        EXPECT_EQ(sa::processor_site(a, p), p);
    for (std::size_t b = 0; b < a.bridge_count(); ++b) {
        const auto& br = a.bridge(b);
        const auto ab = sa::bridge_site(a, b, br.bus_a);
        const auto ba = sa::bridge_site(a, b, br.bus_b);
        EXPECT_NE(ab, ba);
        EXPECT_EQ(sites[ab].owner, b);
        EXPECT_EQ(sites[ba].owner, b);
    }
}

TEST(Sites, SitesOnBusPartitionTheSites) {
    const auto a = line_arch();
    const auto sites = sa::enumerate_buffer_sites(a);
    std::size_t total = 0;
    for (sa::BusId b = 0; b < a.bus_count(); ++b)
        total += sa::sites_on_bus(sites, b).size();
    EXPECT_EQ(total, sites.size());
}

TEST(Sites, CostModelStampsPerKindUnitCosts) {
    const auto a = line_arch();
    // The default model leaves the enumeration identical to the
    // cost-free overload: every site priced at 1.0.
    const auto plain = sa::enumerate_buffer_sites(a);
    const auto defaulted = sa::enumerate_buffer_sites(a, sa::SiteCostModel{});
    ASSERT_EQ(plain.size(), defaulted.size());
    for (std::size_t s = 0; s < plain.size(); ++s) {
        EXPECT_EQ(plain[s].unit_cost, 1.0);
        EXPECT_EQ(defaulted[s].unit_cost, 1.0);
        EXPECT_EQ(plain[s].name, defaulted[s].name);
    }
    // A heterogeneous model prices by kind.
    sa::SiteCostModel model;
    model.processor_cost = 0.5;
    model.bridge_cost = 3.0;
    EXPECT_EQ(model.cost_of(sa::SiteKind::kProcessor), 0.5);
    EXPECT_EQ(model.cost_of(sa::SiteKind::kBridge), 3.0);
    const auto priced = sa::enumerate_buffer_sites(a, model);
    for (const auto& site : priced)
        EXPECT_EQ(site.unit_cost,
                  site.kind == sa::SiteKind::kBridge ? 3.0 : 0.5)
            << site.name;
}

TEST(Sites, CandidateBridgeSitesAreTheBridgeSitesInOrder) {
    const auto a = line_arch();
    const auto sites = sa::enumerate_buffer_sites(a);
    const auto candidates = sa::candidate_bridge_sites(sites);
    // Exactly the bridge sites (2 bridges x 2 directions), strictly
    // ascending — the order the insertion search's masks index.
    ASSERT_EQ(candidates.size(), 4u);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        EXPECT_EQ(sites[candidates[i]].kind, sa::SiteKind::kBridge);
        if (i > 0) EXPECT_LT(candidates[i - 1], candidates[i]);
    }
    // No processor site is ever a candidate.
    std::size_t bridge_sites = 0;
    for (const auto& site : sites)
        if (site.kind == sa::SiteKind::kBridge) ++bridge_sites;
    EXPECT_EQ(candidates.size(), bridge_sites);
}

TEST(Figure1, MatchesPaperStructure) {
    const auto sys = sa::figure1_system();
    const auto& a = sys.architecture;
    EXPECT_NO_THROW(a.validate());
    EXPECT_EQ(a.processor_count(), 5u);
    EXPECT_EQ(a.bus_count(), 4u);   // a, b, f, g
    EXPECT_EQ(a.bridge_count(), 2u);  // b<->f, f<->g
    // Four directional bridge buffers will be inserted by the split —
    // the b1..b4 of Figure 2.
    EXPECT_EQ(sa::enumerate_buffer_sites(a).size(), 5u + 4u);
    // Bus "a" is processor-only (no bridges).
    EXPECT_TRUE(a.bridges_of_bus(0).empty());
    // Buses b, f, g talk to each other.
    EXPECT_TRUE(a.bus_graph_connected() ||
                a.bridges_of_bus(0).empty());  // a may be isolated
    EXPECT_FALSE(a.bridges_of_bus(1).empty());
    EXPECT_FALSE(a.bridges_of_bus(2).empty());
    EXPECT_FALSE(a.bridges_of_bus(3).empty());
}

TEST(Figure1, FlowsCrossTheBridges) {
    const auto sys = sa::figure1_system();
    const auto& a = sys.architecture;
    bool multi_hop = false;
    for (const auto& f : sys.flows) {
        ASSERT_LT(f.source, a.processor_count());
        ASSERT_LT(f.destination, a.processor_count());
        ASSERT_GT(f.rate, 0.0);
        const auto route = a.route(a.processor(f.source).bus,
                                   a.processor(f.destination).bus);
        multi_hop |= route.size() >= 2;
    }
    EXPECT_TRUE(multi_hop) << "figure-1 traffic must cross two bridges";
}

TEST(NetworkProcessor, SeventeenProcessorsFiveBuses) {
    const auto sys = sa::network_processor_system();
    const auto& a = sys.architecture;
    EXPECT_NO_THROW(a.validate());
    EXPECT_EQ(a.processor_count(), 17u);  // 16 PEs + control processor
    EXPECT_EQ(a.bus_count(), 5u);
    EXPECT_EQ(a.bridge_count(), 4u);
    EXPECT_TRUE(a.bus_graph_connected());
    EXPECT_EQ(sa::enumerate_buffer_sites(a).size(), 17u + 8u);
}

TEST(NetworkProcessor, EveryBusIsStableInTheLongRun) {
    // Long-run offered load on each bus (local flows + bridge transits)
    // must stay below its service rate, otherwise no buffer allocation can
    // ever drive losses to zero (Table 1 reaches zero at budget 640).
    const auto sys = sa::network_processor_system();
    const auto& a = sys.architecture;
    std::map<sa::BusId, double> load;
    for (const auto& f : sys.flows) {
        const auto src_bus = a.processor(f.source).bus;
        const auto dst_bus = a.processor(f.destination).bus;
        load[src_bus] += f.rate;
        sa::BusId cursor = src_bus;
        for (const auto br : a.route(src_bus, dst_bus)) {
            const auto next = a.bridge_peer(br, cursor);
            load[next] += f.rate;
            cursor = next;
        }
    }
    for (const auto& [bus, rho] : load) {
        EXPECT_LT(rho, a.bus(bus).service_rate)
            << "bus " << a.bus(bus).name << " is overloaded";
        EXPECT_GT(rho, 0.3 * a.bus(bus).service_rate)
            << "bus " << a.bus(bus).name
            << " is too idle to ever lose packets";
    }
}

TEST(NetworkProcessor, AsymmetricTrafficForHotEgress) {
    const auto sys = sa::network_processor_system();
    const auto rates = sa::offered_rate_per_processor(sys);
    ASSERT_EQ(rates.size(), 17u);
    // Display processors 15 and 16 (ids 14, 15) are the schedulers whose
    // outbound load dominates — the paper's big winners after resizing.
    double hottest = 0.0;
    for (double r : rates) hottest = std::max(hottest, r);
    EXPECT_DOUBLE_EQ(rates[15], hottest);
    EXPECT_GT(rates[14], rates[0]);
    // Every processor originates some traffic (Figure 3 has a bar for
    // every processor).
    for (std::size_t p = 0; p < rates.size(); ++p)
        EXPECT_GT(rates[p], 0.0) << "processor " << p + 1;
}

TEST(NetworkProcessor, LoadScaleScalesEveryFlow) {
    const auto base = sa::network_processor_system();
    sa::NetworkProcessorParams params;
    params.load_scale = 2.0;
    const auto scaled = sa::network_processor_system(params);
    ASSERT_EQ(base.flows.size(), scaled.flows.size());
    for (std::size_t i = 0; i < base.flows.size(); ++i)
        EXPECT_NEAR(scaled.flows[i].rate, 2.0 * base.flows[i].rate, 1e-12);
}

TEST(NetworkProcessor, ParameterValidation) {
    sa::NetworkProcessorParams bad;
    bad.pe_per_cluster = 1;
    EXPECT_THROW(sa::network_processor_system(bad),
                 socbuf::util::ContractViolation);
    sa::NetworkProcessorParams bad2;
    bad2.load_scale = 0.0;
    EXPECT_THROW(sa::network_processor_system(bad2),
                 socbuf::util::ContractViolation);
}
