#include "rng/engine.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sr = socbuf::rng;

TEST(Rng, DeterministicAcrossInstances) {
    sr::RandomEngine a(42);
    sr::RandomEngine b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
    sr::RandomEngine a(1);
    sr::RandomEngine b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.uniform() == b.uniform()) ++equal;
    EXPECT_LT(equal, 4);
}

TEST(Rng, SpawnIsStableAndDecorrelated) {
    sr::RandomEngine parent(7);
    sr::RandomEngine c1 = parent.spawn(3);
    sr::RandomEngine c2 = parent.spawn(3);
    sr::RandomEngine c3 = parent.spawn(4);
    EXPECT_DOUBLE_EQ(c1.uniform(), c2.uniform());
    // Stream 4 should not track stream 3.
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (c1.uniform() == c3.uniform()) ++equal;
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformStaysInOpenInterval) {
    sr::RandomEngine e(11);
    for (int i = 0; i < 10000; ++i) {
        const double u = e.uniform();
        EXPECT_GT(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRange) {
    sr::RandomEngine e(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = e.uniform(5.0, 6.0);
        EXPECT_GT(u, 5.0);
        EXPECT_LT(u, 6.0);
    }
    EXPECT_THROW(e.uniform(2.0, 1.0), socbuf::util::ContractViolation);
}

TEST(Rng, ExponentialMeanMatchesRate) {
    sr::RandomEngine e(17);
    const double rate = 2.5;
    double total = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) total += e.exponential(rate);
    const double mean = total / n;
    EXPECT_NEAR(mean, 1.0 / rate, 0.01);
    EXPECT_THROW(e.exponential(0.0), socbuf::util::ContractViolation);
}

TEST(Rng, ExponentialMemorylessTail) {
    // P(X > t) = exp(-rate t): check at one point.
    sr::RandomEngine e(19);
    const double rate = 1.0;
    int exceed = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (e.exponential(rate) > 1.0) ++exceed;
    EXPECT_NEAR(static_cast<double>(exceed) / n, std::exp(-1.0), 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
    sr::RandomEngine e(23);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const long v = e.uniform_int(-1, 1);
        EXPECT_GE(v, -1);
        EXPECT_LE(v, 1);
        saw_lo |= (v == -1);
        saw_hi |= (v == 1);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
    sr::RandomEngine e(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (e.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
    EXPECT_THROW(e.bernoulli(1.5), socbuf::util::ContractViolation);
}

TEST(Rng, DiscreteFollowsWeights) {
    sr::RandomEngine e(31);
    const std::vector<double> w{1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[e.discrete(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.01);
    EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.01);
    EXPECT_THROW(e.discrete({0.0, 0.0}), socbuf::util::ContractViolation);
    EXPECT_THROW(e.discrete({}), socbuf::util::ContractViolation);
}

TEST(Rng, SplitMix64KnownToBeNonTrivial) {
    std::uint64_t s = 0;
    const auto a = sr::splitmix64(s);
    const auto b = sr::splitmix64(s);
    EXPECT_NE(a, b);
    EXPECT_NE(a, 0u);
}
