// insertion::search_placements: exhaustive and pruned placement search
// over synthetic plan evaluators — the optimum-preservation property of
// dominance pruning (exhaustive cross-check), the beats-or-matches-preset
// guarantee, and bit-identical results for any executor width.
#include "insertion/search.hpp"

#include "exec/executor.hpp"
#include "split/splitter.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace si = socbuf::insertion;
namespace se = socbuf::exec;
namespace ss = socbuf::split;

namespace {

/// Candidate-index mask of a placement (bit i = candidate i selected) —
/// the inverse of the search's internal plan encoding, recovered through
/// the public Placement surface.
std::uint64_t mask_of(const ss::Placement& placement,
                      const std::vector<socbuf::arch::SiteId>& candidates) {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i)
        if (placement.site_selected(candidates[i]))
            mask |= std::uint64_t{1} << i;
    return mask;
}

/// Deterministic per-candidate loss contributions from a tiny LCG —
/// additive families keep dominance pruning provably optimum-preserving
/// (each stage's minimal-completion prefix extends to a global optimum),
/// which is exactly the property the cross-check below pins.
struct AdditiveLoss {
    std::vector<double> when_selected;
    std::vector<double> when_deselected;

    AdditiveLoss(std::size_t n, std::uint64_t seed) {
        std::uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        const auto next = [&state] {
            state = state * 6364136223846793005ULL + 1442695040888963407ULL;
            return static_cast<double>((state >> 33) % 1000U) / 100.0;
        };
        for (std::size_t i = 0; i < n; ++i) {
            when_selected.push_back(next());
            when_deselected.push_back(next());
        }
    }

    [[nodiscard]] double loss(std::uint64_t mask) const {
        double total = 0.0;
        for (std::size_t i = 0; i < when_selected.size(); ++i)
            total += (((mask >> i) & 1U) != 0U) ? when_selected[i]
                                                : when_deselected[i];
        return total;
    }
};

std::vector<socbuf::arch::SiteId> make_candidates(std::size_t n) {
    std::vector<socbuf::arch::SiteId> candidates;
    for (std::size_t i = 0; i < n; ++i) candidates.push_back(2 * i + 1);
    return candidates;
}

}  // namespace

TEST(InsertionSearch, ExhaustiveFindsTheKnownOptimum) {
    const auto candidates = make_candidates(3);
    const std::vector<double> costs{1.0, 1.0, 2.0};
    // Loss by mask, minimized uniquely at 0b101.
    const std::vector<double> losses{9.0, 7.0, 8.0, 6.0, 5.0, 2.0, 4.0, 3.0};
    se::Executor executor(1);
    const si::SearchResult result = si::search_placements(
        candidates, costs,
        [&](const ss::Placement& p) { return losses[mask_of(p, candidates)]; },
        executor);
    EXPECT_TRUE(result.exhaustive);
    EXPECT_EQ(result.plans_evaluated, 8u);
    EXPECT_EQ(result.plans_pruned, 0u);
    EXPECT_EQ(result.best_mask, 0b101u);
    EXPECT_DOUBLE_EQ(result.best_loss, 2.0);
    EXPECT_DOUBLE_EQ(result.best_cost, 3.0);
    EXPECT_DOUBLE_EQ(result.preset_loss, 3.0);
    EXPECT_TRUE(result.best.site_selected(candidates[0]));
    EXPECT_FALSE(result.best.site_selected(candidates[1]));
    EXPECT_TRUE(result.best.site_selected(candidates[2]));
    // Evaluated plans listed mask-ascending.
    ASSERT_EQ(result.evaluated.size(), 8u);
    for (std::size_t m = 0; m < 8; ++m) {
        EXPECT_EQ(result.evaluated[m].mask, m);
        EXPECT_DOUBLE_EQ(result.evaluated[m].loss, losses[m]);
    }
}

TEST(InsertionSearch, PrunedNeverRemovesTheOptimumOnAdditiveFamilies) {
    // Property cross-check: for a family of additive loss functions the
    // pruned search must reach the exhaustive optimum's loss while
    // evaluating strictly fewer plans. 6 candidates = 64 plans; the
    // exhaustive_limit knob forces each path.
    const std::size_t n = 6;
    const auto candidates = make_candidates(n);
    const std::vector<double> costs(n, 1.0);
    se::Executor executor(1);
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const AdditiveLoss family(n, seed);
        const auto evaluate = [&](const ss::Placement& p) {
            return family.loss(mask_of(p, candidates));
        };
        si::SearchOptions exhaustive_options;
        exhaustive_options.exhaustive_limit = si::kMaxCandidates;
        const si::SearchResult exhaustive = si::search_placements(
            candidates, costs, evaluate, executor, exhaustive_options);
        si::SearchOptions pruned_options;
        pruned_options.exhaustive_limit = 0;
        const si::SearchResult pruned = si::search_placements(
            candidates, costs, evaluate, executor, pruned_options);
        EXPECT_TRUE(exhaustive.exhaustive);
        EXPECT_FALSE(pruned.exhaustive);
        EXPECT_DOUBLE_EQ(pruned.best_loss, exhaustive.best_loss)
            << "seed " << seed;
        EXPECT_LT(pruned.plans_evaluated, exhaustive.plans_evaluated)
            << "seed " << seed;
        EXPECT_GT(pruned.plans_pruned, 0u) << "seed " << seed;
    }
}

TEST(InsertionSearch, PrunedNeverLosesToThePresetOnCoupledLosses) {
    // On arbitrary (non-additive) loss surfaces the pruning is a
    // heuristic — but the all-selected preset is always evaluated, so
    // the search can never return a worse plan than the preset.
    const std::size_t n = 7;
    const auto candidates = make_candidates(n);
    const std::vector<double> costs(n, 1.0);
    se::Executor executor(1);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const auto evaluate = [&](const ss::Placement& p) {
            // A coupled, deliberately jagged surface: popcount parity and
            // pairwise terms keyed off the seed.
            const std::uint64_t mask = mask_of(p, candidates);
            std::uint64_t h = (mask + seed) * 0x9E3779B97F4A7C15ULL;
            return static_cast<double>((h >> 40) % 1000U);
        };
        const si::SearchResult pruned = si::search_placements(
            candidates, costs, evaluate, executor);
        EXPECT_FALSE(pruned.exhaustive);
        EXPECT_LE(pruned.best_loss, pruned.preset_loss) << "seed " << seed;
        // The preset plan itself is in the evaluated listing.
        bool preset_listed = false;
        for (const auto& plan : pruned.evaluated)
            preset_listed |= plan.placement.all_selected();
        EXPECT_TRUE(preset_listed) << "seed " << seed;
    }
}

TEST(InsertionSearch, ResultsAreIdenticalForAnyExecutorWidth) {
    const std::size_t n = 6;
    const auto candidates = make_candidates(n);
    std::vector<double> costs;
    for (std::size_t i = 0; i < n; ++i)
        costs.push_back(1.0 + 0.5 * static_cast<double>(i % 3));
    const AdditiveLoss family(n, 7);
    const auto evaluate = [&](const ss::Placement& p) {
        return family.loss(mask_of(p, candidates));
    };
    se::Executor serial(1);
    se::Executor wide(4);
    const si::SearchResult a =
        si::search_placements(candidates, costs, evaluate, serial);
    const si::SearchResult b =
        si::search_placements(candidates, costs, evaluate, wide);
    EXPECT_EQ(a.best_mask, b.best_mask);
    EXPECT_EQ(a.best_loss, b.best_loss);
    EXPECT_EQ(a.best_cost, b.best_cost);
    EXPECT_EQ(a.preset_loss, b.preset_loss);
    EXPECT_EQ(a.plans_evaluated, b.plans_evaluated);
    EXPECT_EQ(a.plans_pruned, b.plans_pruned);
    ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
    for (std::size_t i = 0; i < a.evaluated.size(); ++i) {
        EXPECT_EQ(a.evaluated[i].mask, b.evaluated[i].mask);
        EXPECT_EQ(a.evaluated[i].loss, b.evaluated[i].loss);
        EXPECT_EQ(a.evaluated[i].cost, b.evaluated[i].cost);
    }
}

TEST(InsertionSearch, TieBreaksPreferTheCheaperPlan) {
    // A flat loss surface: every plan scores the same, so the cheapest
    // mask (nothing selected, cost 0) must win on the cost tie-break.
    const auto candidates = make_candidates(3);
    const std::vector<double> costs{1.0, 2.0, 4.0};
    se::Executor executor(1);
    const si::SearchResult result = si::search_placements(
        candidates, costs, [](const ss::Placement&) { return 5.0; },
        executor);
    EXPECT_EQ(result.best_mask, 0u);
    EXPECT_DOUBLE_EQ(result.best_cost, 0.0);
    EXPECT_DOUBLE_EQ(result.best_loss, 5.0);
    EXPECT_DOUBLE_EQ(result.preset_loss, 5.0);
}

TEST(InsertionSearch, EmptyCandidateSetEvaluatesThePresetOnly) {
    se::Executor executor(1);
    const si::SearchResult result = si::search_placements(
        {}, {}, [](const ss::Placement&) { return 3.5; }, executor);
    EXPECT_TRUE(result.exhaustive);
    EXPECT_EQ(result.plans_evaluated, 1u);
    EXPECT_TRUE(result.best.all_selected());
    EXPECT_DOUBLE_EQ(result.best_loss, 3.5);
    EXPECT_DOUBLE_EQ(result.preset_loss, 3.5);
}

TEST(InsertionSearch, RejectsMalformedCandidateLists) {
    se::Executor executor(1);
    const auto evaluate = [](const ss::Placement&) { return 0.0; };
    // Misaligned costs.
    EXPECT_THROW((void)si::search_placements({1, 2}, {1.0}, evaluate,
                                             executor),
                 socbuf::util::ContractViolation);
    // Not strictly increasing.
    EXPECT_THROW((void)si::search_placements({2, 1}, {1.0, 1.0}, evaluate,
                                             executor),
                 socbuf::util::ContractViolation);
    EXPECT_THROW((void)si::search_placements({1, 1}, {1.0, 1.0}, evaluate,
                                             executor),
                 socbuf::util::ContractViolation);
}
