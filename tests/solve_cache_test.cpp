#include "ctmdp/model.hpp"
#include "ctmdp/solve_cache.hpp"
#include "ctmdp/solver.hpp"
#include "exec/executor.hpp"
#include "exec/thread_pool.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>

namespace sm = socbuf::ctmdp;

namespace {

/// Small controlled queue: serve fast (cost 3) or slow (cost 1); the
/// optimum is size-dependent enough that solvers do real work.
sm::CtmdpModel queue_model(std::size_t cap, double lambda) {
    sm::CtmdpModel m;
    for (std::size_t i = 0; i <= cap; ++i)
        m.add_state("q" + std::to_string(i));
    for (std::size_t i = 0; i <= cap; ++i) {
        sm::Action slow;
        slow.name = "slow";
        if (i < cap) slow.transitions.push_back({i + 1, lambda});
        if (i > 0) slow.transitions.push_back({i - 1, 1.0});
        slow.cost = static_cast<double>(i) + (i == cap ? lambda : 0.0);
        m.add_action(i, slow);
        sm::Action fast;
        fast.name = "fast";
        if (i < cap) fast.transitions.push_back({i + 1, lambda});
        if (i > 0) fast.transitions.push_back({i - 1, 3.0});
        fast.cost = static_cast<double>(i) + 2.0 + (i == cap ? lambda : 0.0);
        m.add_action(i, fast);
    }
    return m;
}

}  // namespace

TEST(SolveFingerprint, IdenticalModelsShareAKey) {
    const auto a = queue_model(4, 0.8);
    const auto b = queue_model(4, 0.8);
    const sm::DispatchOptions opts;
    EXPECT_EQ(sm::solve_fingerprint(a, opts), sm::solve_fingerprint(b, opts));
}

TEST(SolveFingerprint, RateAndOptionChangesChangeTheKey) {
    const auto base = queue_model(4, 0.8);
    const sm::DispatchOptions opts;
    const std::string key = sm::solve_fingerprint(base, opts);

    // A one-ulp rate change is a different model.
    const auto nudged = queue_model(4, 0.8 + 1e-16);
    EXPECT_NE(sm::solve_fingerprint(nudged, opts), key);

    // A different size is a different model.
    EXPECT_NE(sm::solve_fingerprint(queue_model(5, 0.8), opts), key);

    // Solve-relevant options are part of the key...
    sm::DispatchOptions forced = opts;
    forced.choice = sm::SolverChoice::kValueIteration;
    EXPECT_NE(sm::solve_fingerprint(base, forced), key);
    sm::DispatchOptions tighter = opts;
    tighter.solver.vi.tolerance = 1e-8;
    EXPECT_NE(sm::solve_fingerprint(base, tighter), key);
}

TEST(SolveCache, CountsHitsAndMissesAndReturnsIdenticalBits) {
    sm::SolverRegistry registry;
    sm::SolveCache cache;
    const sm::DispatchOptions opts;
    const auto model = queue_model(5, 0.9);

    const auto direct = registry.solve(model, opts);
    const auto first = cache.solve(registry, model, opts);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.size(), 1u);

    const auto second = cache.solve(registry, model, opts);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);

    // The cached copy is bit-identical to both the first pass and a direct
    // registry solve — a hit is indistinguishable from solving.
    EXPECT_EQ(second.gain, first.gain);
    EXPECT_EQ(second.gain, direct.gain);
    EXPECT_EQ(second.stationary, first.stationary);
    EXPECT_EQ(second.occupation, first.occupation);
    EXPECT_EQ(second.solved_by, first.solved_by);

    // Registry counters advanced once for the direct solve and once for
    // the miss; the hit did no solver work.
    EXPECT_EQ(registry.stats().total_solves(), 2u);
}

TEST(SolveCache, DistinctModelsGetDistinctEntries) {
    sm::SolverRegistry registry;
    sm::SolveCache cache;
    const sm::DispatchOptions opts;
    const auto a = cache.solve(registry, queue_model(4, 0.7), opts);
    const auto b = cache.solve(registry, queue_model(4, 1.4), opts);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(a.gain, b.gain);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().lookups(), 0u);
}

namespace {

/// A model every solver rejects (a state with no actions fails
/// CtmdpModel::validate inside each algorithm) — the cache's view of a
/// "solver that throws".
sm::CtmdpModel unsolvable_model() {
    sm::CtmdpModel m;
    m.add_state("dead-end");
    return m;
}

}  // namespace

TEST(SolveCache, EvictsLeastRecentlyUsedBeyondCapacity) {
    sm::SolverRegistry registry;
    sm::SolveCache cache(2);
    EXPECT_EQ(cache.capacity(), 2u);
    const sm::DispatchOptions opts;
    const auto model_a = queue_model(3, 0.7);
    const auto model_b = queue_model(4, 0.7);
    const auto model_c = queue_model(5, 0.7);

    (void)cache.solve(registry, model_a, opts);  // A
    (void)cache.solve(registry, model_b, opts);  // B A — at capacity
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 0u);

    (void)cache.solve(registry, model_a, opts);  // touch: A B
    (void)cache.solve(registry, model_c, opts);  // C A — evicts B
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);

    // A survived (hit, no new registry work); B was the victim (re-miss).
    const std::size_t solves_before = registry.stats().total_solves();
    (void)cache.solve(registry, model_a, opts);
    EXPECT_EQ(registry.stats().total_solves(), solves_before);
    (void)cache.solve(registry, model_b, opts);
    EXPECT_EQ(registry.stats().total_solves(), solves_before + 1);
    // Serial access keeps the counters exact: 3 compulsory misses + 1
    // eviction re-miss, hits for the touch and the surviving-A lookup.
    EXPECT_EQ(cache.stats().misses, 4u);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().evictions, 2u);  // B again displaced A or C
}

TEST(SolveCache, JustSolvedEntryIsNeverTheEvictionVictim) {
    // At the tightest budget the freshly completed entry must stay
    // resident (the LRU victim is taken from the back, never the front),
    // otherwise every solve would evict itself and the cache could never
    // serve a hit.
    sm::SolverRegistry registry;
    sm::SolveCache cache(1);
    const sm::DispatchOptions opts;
    (void)cache.solve(registry, queue_model(3, 0.7), opts);
    (void)cache.solve(registry, queue_model(4, 0.7), opts);  // evicts first
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    const std::size_t solves = registry.stats().total_solves();
    (void)cache.solve(registry, queue_model(4, 0.7), opts);  // resident: hit
    EXPECT_EQ(registry.stats().total_solves(), solves);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SolveCache, CapacityCoveringAllKeysKeepsCountersSchedulingIndependent) {
    // With capacity >= distinct keys nothing is ever evicted, so the
    // unlimited-cache counter contract holds unchanged under concurrency.
    sm::SolverRegistry registry;
    sm::SolveCache cache(8);
    const sm::DispatchOptions opts;
    socbuf::exec::Executor exec(4);
    const auto gains = exec.map(32, [&](std::size_t i) {
        const auto model = queue_model(3 + i % 8, 0.8);
        return cache.solve(registry, model, opts).gain;
    });
    EXPECT_EQ(cache.size(), 8u);
    EXPECT_EQ(cache.stats().misses, 8u);
    EXPECT_EQ(cache.stats().hits, 24u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    for (std::size_t i = 8; i < 32; ++i) EXPECT_EQ(gains[i], gains[i % 8]);
}

TEST(SolveCache, FailedSolveLeavesTheSlotReclaimable) {
    sm::SolverRegistry registry;
    sm::SolveCache cache;
    const sm::DispatchOptions opts;
    const auto bad = unsolvable_model();

    EXPECT_THROW((void)cache.solve(registry, bad, opts), std::exception);
    // The failed slot is gone, not wedged: no ready entry, and the next
    // requester re-claims (a fresh miss) instead of hanging or reading a
    // stale solution.
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_THROW((void)cache.solve(registry, bad, opts), std::exception);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);

    // A failure never poisons the cache for solvable keys.
    const auto good = queue_model(4, 0.8);
    EXPECT_NO_THROW((void)cache.solve(registry, good, opts));
    EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCache, ConcurrentFailuresAllPropagateWithoutHangingWaiters) {
    // Many pool jobs race on one unsolvable key: whoever claims the slot
    // fails and must wake the waiters, who re-claim and fail in turn —
    // every lookup ends in an exception (a miss), nobody hangs, and the
    // counters stay consistent.
    sm::SolverRegistry registry;
    sm::SolveCache cache;
    const sm::DispatchOptions opts;
    const auto bad = unsolvable_model();
    constexpr std::size_t kLookups = 16;

    std::atomic<std::size_t> threw{0};
    socbuf::exec::ThreadPool pool(4);
    for (std::size_t i = 0; i < kLookups; ++i) {
        pool.submit([&] {
            try {
                (void)cache.solve(registry, bad, opts);
            } catch (const std::exception&) {
                ++threw;
            }
        });
    }
    pool.wait_idle();

    EXPECT_EQ(threw.load(), kLookups);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().misses, kLookups);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(SolveCache, CapacityOneCountersStayConsistentUnderFailuresAndWaiters) {
    // The nastiest corner the counters have: capacity == 1 (every
    // completing solve tries to evict), a key every solver rejects (the
    // failure path runs constantly, with waiters pinning the failed
    // slot), and solvable keys churning through the single budgeted
    // entry. Whatever the interleaving, the accounting invariants must
    // hold exactly: every lookup is one hit or one miss (never zero,
    // never two), every exception was a miss, and an eviction can only
    // follow a successful insert.
    sm::SolverRegistry registry;
    sm::SolveCache cache(1);
    const sm::DispatchOptions opts;
    const auto bad = unsolvable_model();
    const auto good_a = queue_model(3, 0.8);
    const auto good_b = queue_model(4, 0.8);
    constexpr std::size_t kPerKind = 48;

    std::atomic<std::size_t> threw{0};
    std::atomic<std::size_t> returned{0};
    {
        socbuf::exec::ThreadPool pool(4);
        for (std::size_t i = 0; i < kPerKind; ++i) {
            for (const auto* model : {&bad, &good_a, &good_b}) {
                pool.submit([&, model] {
                    try {
                        (void)cache.solve(registry, *model, opts);
                        ++returned;
                    } catch (const std::exception&) {
                        ++threw;
                    }
                });
            }
        }
        pool.wait_idle();
    }

    constexpr std::size_t kLookups = 3 * kPerKind;
    const sm::SolveCacheStats stats = cache.stats();
    EXPECT_EQ(threw.load() + returned.load(), kLookups);
    EXPECT_EQ(returned.load(), 2 * kPerKind);  // every good lookup returned
    EXPECT_EQ(stats.lookups(), kLookups);
    EXPECT_EQ(stats.hits + stats.misses, kLookups);
    // Every exception was counted as exactly one miss, and only
    // successful inserts (misses that returned) can have evicted.
    EXPECT_GE(stats.misses, threw.load());
    EXPECT_LE(stats.evictions, stats.misses - threw.load());
    // No husk left behind: the failed key holds no residency, the single
    // budgeted slot serves the last solvable key.
    EXPECT_LE(cache.size(), 1u);

    // The cache is fully functional afterwards: a serial lookup of a
    // solvable key is one more exact hit or miss.
    const std::size_t before = stats.lookups();
    (void)cache.solve(registry, good_a, opts);
    EXPECT_EQ(cache.stats().lookups(), before + 1);
}

TEST(SolveCache, IsSafeToShareAcrossWorkers) {
    sm::SolverRegistry registry;
    sm::SolveCache cache;
    const sm::DispatchOptions opts;
    // Eight distinct models, each solved from four concurrent lookups.
    socbuf::exec::Executor exec(4);
    const auto gains = exec.map(32, [&](std::size_t i) {
        const auto model = queue_model(3 + i % 8, 0.8);
        return cache.solve(registry, model, opts).gain;
    });
    EXPECT_EQ(cache.size(), 8u);
    // Each key is solved exactly once (concurrent requesters wait and
    // share the in-flight solve), so the counters are exact whatever the
    // interleaving: 8 misses, 24 hits.
    EXPECT_EQ(cache.stats().lookups(), 32u);
    EXPECT_EQ(cache.stats().misses, 8u);
    EXPECT_EQ(cache.stats().hits, 24u);
    EXPECT_EQ(registry.stats().total_solves(), 8u);
    for (std::size_t i = 8; i < 32; ++i) EXPECT_EQ(gains[i], gains[i % 8]);
}

TEST(ModelStructureFingerprint, IgnoresRatesAndCostsButNotTopology) {
    // Rate/cost changes keep the structure key (that is what makes a
    // budget sweep warm-startable); topology changes break it.
    const std::string key = sm::model_structure_fingerprint(queue_model(4, 0.8));
    EXPECT_EQ(sm::model_structure_fingerprint(queue_model(4, 1.6)), key);
    EXPECT_NE(sm::model_structure_fingerprint(queue_model(5, 0.8)), key);

    auto rewired = queue_model(4, 0.8);
    rewired.add_state("extra");
    EXPECT_NE(sm::model_structure_fingerprint(rewired), key);
}

TEST(SolveCache, WarmStartSeedsStructurallyIdenticalSolves) {
    sm::SolverRegistry registry;
    sm::SolveCache cache(0, /*warm_start=*/true);
    EXPECT_TRUE(cache.warm_start());
    sm::DispatchOptions opts;
    opts.choice = sm::SolverChoice::kPolicyIteration;

    // Two different rates, one structure: the second solve is a cache
    // miss (different fingerprint) but a warm hit (same structure), and
    // the seeded solve still lands on the reference answer.
    const auto cold = cache.solve(registry, queue_model(6, 0.8), opts);
    EXPECT_EQ(cache.stats().warm_hits, 0u);
    const auto warm = cache.solve(registry, queue_model(6, 0.82), opts);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().warm_hits, 1u);

    sm::SolverRegistry fresh;
    const auto direct = fresh.solve(queue_model(6, 0.82), opts);
    EXPECT_NEAR(warm.gain, direct.gain, 1e-9);
    EXPECT_EQ(warm.policy.mode().choices(), direct.policy.mode().choices());

    // Neighbouring rates share the optimal policy here, so the seeded PI
    // run converges with fewer updates than the cold reference run.
    EXPECT_LE(warm.iterations, direct.iterations);
    EXPECT_EQ(cache.stats().iterations_saved,
              direct.iterations - warm.iterations);
}

TEST(SolveCache, WarmStartOffNeverCountsWarmHits) {
    sm::SolverRegistry registry;
    sm::SolveCache cache;  // default: warm starts off
    EXPECT_FALSE(cache.warm_start());
    const sm::DispatchOptions opts;
    (void)cache.solve(registry, queue_model(6, 0.8), opts);
    (void)cache.solve(registry, queue_model(6, 0.82), opts);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().warm_hits, 0u);
    EXPECT_EQ(cache.stats().iterations_saved, 0u);
}

TEST(SolveCache, BytesResidentTracksEntriesAcrossEvictionAndClear) {
    sm::SolverRegistry registry;
    sm::SolveCache cache(2);
    const sm::DispatchOptions opts;
    EXPECT_EQ(cache.stats().bytes_resident, 0u);

    (void)cache.solve(registry, queue_model(3, 0.7), opts);
    const std::size_t one = cache.stats().bytes_resident;
    EXPECT_GT(one, 0u);

    // A bigger model's entry costs more bytes.
    (void)cache.solve(registry, queue_model(9, 0.7), opts);
    const std::size_t two = cache.stats().bytes_resident;
    EXPECT_GT(two - one, one);

    // Hits do not change residency.
    (void)cache.solve(registry, queue_model(3, 0.7), opts);
    EXPECT_EQ(cache.stats().bytes_resident, two);

    // Eviction at capacity releases the victim's bytes.
    (void)cache.solve(registry, queue_model(4, 0.7), opts);
    EXPECT_EQ(cache.stats().evictions, 1u);
    const std::size_t after_evict = cache.stats().bytes_resident;
    EXPECT_LT(after_evict, two + (two - one));
    EXPECT_GT(after_evict, 0u);

    // A failed solve leaves no husk bytes behind.
    EXPECT_THROW((void)cache.solve(registry, unsolvable_model(), opts),
                 socbuf::util::ModelError);
    EXPECT_EQ(cache.stats().bytes_resident, after_evict);

    cache.clear();
    EXPECT_EQ(cache.stats().bytes_resident, 0u);
    EXPECT_EQ(cache.stats().warm_hits, 0u);
    EXPECT_EQ(cache.stats().iterations_saved, 0u);
}

TEST(SolveCache, ByteBudgetEvictsLruUntilBackUnderBudget) {
    // Calibrate: one entry's approximate footprint, from an unbudgeted
    // cache (the accounting is a pure function of the entry contents).
    sm::SolverRegistry registry;
    const sm::DispatchOptions opts;
    std::size_t one_entry = 0;
    {
        sm::SolveCache probe;
        (void)probe.solve(registry, queue_model(4, 0.7), opts);
        one_entry = probe.stats().bytes_resident;
        ASSERT_GT(one_entry, 0u);
    }

    // A budget that fits one same-sized entry comfortably but never two:
    // the second insert must push the first (LRU) one out.
    sm::SolveCache cache(0, false, one_entry + one_entry / 2);
    EXPECT_EQ(cache.byte_budget(), one_entry + one_entry / 2);
    EXPECT_EQ(cache.capacity(), 0u);  // entry-count budget stays unlimited
    (void)cache.solve(registry, queue_model(4, 0.7), opts);
    EXPECT_EQ(cache.stats().evictions, 0u);
    (void)cache.solve(registry, queue_model(4, 0.9), opts);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_LE(cache.stats().bytes_resident, cache.byte_budget());

    // The survivor is the recent key (hit, no new registry work); the
    // victim was the older one (re-miss).
    const std::size_t solves = registry.stats().total_solves();
    (void)cache.solve(registry, queue_model(4, 0.9), opts);
    EXPECT_EQ(registry.stats().total_solves(), solves);
    (void)cache.solve(registry, queue_model(4, 0.7), opts);
    EXPECT_EQ(registry.stats().total_solves(), solves + 1);
}

TEST(SolveCache, ByteBudgetSparesTheJustSolvedEntry) {
    // A budget too small for even one entry must behave like the
    // capacity-1 rule: the freshly completed entry stays resident
    // (residency transiently exceeds the budget — the documented
    // best-effort trade) so the cache can still serve hits.
    sm::SolverRegistry registry;
    const sm::DispatchOptions opts;
    sm::SolveCache cache(0, false, 1);  // one byte: nothing "fits"
    (void)cache.solve(registry, queue_model(4, 0.7), opts);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_GT(cache.stats().bytes_resident, cache.byte_budget());
    const std::size_t solves = registry.stats().total_solves();
    (void)cache.solve(registry, queue_model(4, 0.7), opts);
    EXPECT_EQ(registry.stats().total_solves(), solves);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(SolveCache, ByteBudgetComposesWithEntryCapacity) {
    // Either budget being over triggers eviction: a roomy byte budget
    // with capacity 1 still evicts by count, and both accessors report
    // their own limit.
    sm::SolverRegistry registry;
    const sm::DispatchOptions opts;
    sm::SolveCache cache(1, false, 1 << 30);
    EXPECT_EQ(cache.capacity(), 1u);
    EXPECT_EQ(cache.byte_budget(), std::size_t{1} << 30);
    (void)cache.solve(registry, queue_model(3, 0.7), opts);
    (void)cache.solve(registry, queue_model(4, 0.7), opts);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}
