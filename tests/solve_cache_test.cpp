#include "ctmdp/model.hpp"
#include "ctmdp/solve_cache.hpp"
#include "ctmdp/solver.hpp"
#include "exec/executor.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

namespace sm = socbuf::ctmdp;

namespace {

/// Small controlled queue: serve fast (cost 3) or slow (cost 1); the
/// optimum is size-dependent enough that solvers do real work.
sm::CtmdpModel queue_model(std::size_t cap, double lambda) {
    sm::CtmdpModel m;
    for (std::size_t i = 0; i <= cap; ++i)
        m.add_state("q" + std::to_string(i));
    for (std::size_t i = 0; i <= cap; ++i) {
        sm::Action slow;
        slow.name = "slow";
        if (i < cap) slow.transitions.push_back({i + 1, lambda});
        if (i > 0) slow.transitions.push_back({i - 1, 1.0});
        slow.cost = static_cast<double>(i) + (i == cap ? lambda : 0.0);
        m.add_action(i, slow);
        sm::Action fast;
        fast.name = "fast";
        if (i < cap) fast.transitions.push_back({i + 1, lambda});
        if (i > 0) fast.transitions.push_back({i - 1, 3.0});
        fast.cost = static_cast<double>(i) + 2.0 + (i == cap ? lambda : 0.0);
        m.add_action(i, fast);
    }
    return m;
}

}  // namespace

TEST(SolveFingerprint, IdenticalModelsShareAKey) {
    const auto a = queue_model(4, 0.8);
    const auto b = queue_model(4, 0.8);
    const sm::DispatchOptions opts;
    EXPECT_EQ(sm::solve_fingerprint(a, opts), sm::solve_fingerprint(b, opts));
}

TEST(SolveFingerprint, RateAndOptionChangesChangeTheKey) {
    const auto base = queue_model(4, 0.8);
    const sm::DispatchOptions opts;
    const std::string key = sm::solve_fingerprint(base, opts);

    // A one-ulp rate change is a different model.
    const auto nudged = queue_model(4, 0.8 + 1e-16);
    EXPECT_NE(sm::solve_fingerprint(nudged, opts), key);

    // A different size is a different model.
    EXPECT_NE(sm::solve_fingerprint(queue_model(5, 0.8), opts), key);

    // Solve-relevant options are part of the key...
    sm::DispatchOptions forced = opts;
    forced.choice = sm::SolverChoice::kValueIteration;
    EXPECT_NE(sm::solve_fingerprint(base, forced), key);
    sm::DispatchOptions tighter = opts;
    tighter.solver.vi.tolerance = 1e-8;
    EXPECT_NE(sm::solve_fingerprint(base, tighter), key);
}

TEST(SolveCache, CountsHitsAndMissesAndReturnsIdenticalBits) {
    sm::SolverRegistry registry;
    sm::SolveCache cache;
    const sm::DispatchOptions opts;
    const auto model = queue_model(5, 0.9);

    const auto direct = registry.solve(model, opts);
    const auto first = cache.solve(registry, model, opts);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.size(), 1u);

    const auto second = cache.solve(registry, model, opts);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);

    // The cached copy is bit-identical to both the first pass and a direct
    // registry solve — a hit is indistinguishable from solving.
    EXPECT_EQ(second.gain, first.gain);
    EXPECT_EQ(second.gain, direct.gain);
    EXPECT_EQ(second.stationary, first.stationary);
    EXPECT_EQ(second.occupation, first.occupation);
    EXPECT_EQ(second.solved_by, first.solved_by);

    // Registry counters advanced once for the direct solve and once for
    // the miss; the hit did no solver work.
    EXPECT_EQ(registry.stats().total_solves(), 2u);
}

TEST(SolveCache, DistinctModelsGetDistinctEntries) {
    sm::SolverRegistry registry;
    sm::SolveCache cache;
    const sm::DispatchOptions opts;
    const auto a = cache.solve(registry, queue_model(4, 0.7), opts);
    const auto b = cache.solve(registry, queue_model(4, 1.4), opts);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_NE(a.gain, b.gain);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().lookups(), 0u);
}

TEST(SolveCache, IsSafeToShareAcrossWorkers) {
    sm::SolverRegistry registry;
    sm::SolveCache cache;
    const sm::DispatchOptions opts;
    // Eight distinct models, each solved from four concurrent lookups.
    socbuf::exec::Executor exec(4);
    const auto gains = exec.map(32, [&](std::size_t i) {
        const auto model = queue_model(3 + i % 8, 0.8);
        return cache.solve(registry, model, opts).gain;
    });
    EXPECT_EQ(cache.size(), 8u);
    // Each key is solved exactly once (concurrent requesters wait and
    // share the in-flight solve), so the counters are exact whatever the
    // interleaving: 8 misses, 24 hits.
    EXPECT_EQ(cache.stats().lookups(), 32u);
    EXPECT_EQ(cache.stats().misses, 8u);
    EXPECT_EQ(cache.stats().hits, 24u);
    EXPECT_EQ(registry.stats().total_solves(), 8u);
    for (std::size_t i = 8; i < 32; ++i) EXPECT_EQ(gains[i], gains[i % 8]);
}
