#include "core/experiments.hpp"
#include "exec/executor.hpp"
#include "scenario/batch_runner.hpp"
#include "scenario/scenario.hpp"
#include "sim/simulator.hpp"
#include "traffic/routing.hpp"
#include "util/contracts.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace ss = socbuf::scenario;

namespace {

/// A fast two-run scenario on the Figure 1 sample (tiny system, short
/// horizon) for the determinism and cache tests.
ss::ScenarioSpec small_figure1() {
    ss::ScenarioSpec spec;
    spec.name = "figure1-small";
    spec.testbench = ss::Testbench::kFigure1;
    spec.budgets = {12, 18};
    spec.replications = 2;
    spec.sizing_iterations = 3;
    spec.sim.horizon = 600.0;
    spec.sim.warmup = 60.0;
    spec.sim.seed = 7;
    return spec;
}

void expect_identical(const ss::BatchReport& a, const ss::BatchReport& b) {
    ASSERT_EQ(a.runs.size(), b.runs.size());
    for (std::size_t i = 0; i < a.runs.size(); ++i) {
        const auto& ra = a.runs[i];
        const auto& rb = b.runs[i];
        EXPECT_EQ(ra.scenario, rb.scenario) << "run " << i;
        EXPECT_EQ(ra.variant, rb.variant) << "run " << i;
        EXPECT_EQ(ra.budget, rb.budget) << "run " << i;
        EXPECT_EQ(ra.constant_alloc, rb.constant_alloc) << "run " << i;
        EXPECT_EQ(ra.resized_alloc, rb.resized_alloc) << "run " << i;
        EXPECT_EQ(ra.pre_loss, rb.pre_loss) << "run " << i;
        EXPECT_EQ(ra.post_loss, rb.post_loss) << "run " << i;
        EXPECT_EQ(ra.pre_total, rb.pre_total) << "run " << i;
        EXPECT_EQ(ra.post_total, rb.post_total) << "run " << i;
        EXPECT_EQ(ra.engine_rounds, rb.engine_rounds) << "run " << i;
        EXPECT_EQ(ra.lp_solves, rb.lp_solves) << "run " << i;
        EXPECT_EQ(ra.vi_solves, rb.vi_solves) << "run " << i;
        EXPECT_EQ(ra.pi_solves, rb.pi_solves) << "run " << i;
    }
}

}  // namespace

TEST(ScenarioRegistry, OffersTheNamedPresets) {
    const ss::ScenarioRegistry registry;
    for (const char* name :
         {"figure1", "np-baseline", "np-load-sweep", "np-bus-speed-sweep",
          "np-cluster-scaling", "np-cluster-asymmetry", "np-bursty-heavy",
          "insertion-figure1", "insertion-np-search"}) {
        EXPECT_TRUE(registry.contains(name)) << name;
        const auto& spec = registry.get(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_FALSE(spec.description.empty()) << name;
        EXPECT_NO_THROW(spec.validate()) << name;
    }
    EXPECT_EQ(registry.size(), 9u);
    // The insertion presets are the only ones with the search enabled.
    EXPECT_TRUE(registry.get("insertion-figure1").insertion.search);
    EXPECT_TRUE(registry.get("insertion-np-search").insertion.search);
    EXPECT_FALSE(registry.get("figure1").insertion.search);
    EXPECT_FALSE(registry.contains("no-such-scenario"));
    EXPECT_THROW((void)registry.get("no-such-scenario"),
                 socbuf::util::ContractViolation);
}

TEST(ScenarioRegistry, SweepPresetsExpandToTheRightJobCounts) {
    const ss::ScenarioRegistry registry;
    const auto& load = registry.get("np-load-sweep");
    EXPECT_EQ(load.variants.size(), 3u);
    EXPECT_EQ(load.run_count(), 3u);
    EXPECT_EQ(load.job_count(), 15u);
    const auto& baseline = registry.get("np-baseline");
    EXPECT_EQ(baseline.run_count(), 3u);  // three budgets
    const auto& bursty = registry.get("np-bursty-heavy");
    EXPECT_TRUE(bursty.use_modulated_models);
}

TEST(ScenarioRegistry, AddReplacesByName) {
    ss::ScenarioRegistry registry;
    const std::size_t presets = registry.size();
    ss::ScenarioSpec custom = small_figure1();
    registry.add(custom);
    EXPECT_EQ(registry.size(), presets + 1);
    custom.replications = 9;
    registry.add(custom);
    EXPECT_EQ(registry.size(), presets + 1);
    EXPECT_EQ(registry.get("figure1-small").replications, 9u);
}

TEST(ScenarioSpec, BuildsVariantSystems) {
    const ss::ScenarioRegistry registry;
    const auto& scaling = registry.get("np-cluster-scaling");
    const auto small = scaling.build_system(0);   // pe=2
    const auto medium = scaling.build_system(1);  // pe=4
    EXPECT_EQ(small.architecture.processor_count(), 9u);
    EXPECT_EQ(medium.architecture.processor_count(), 17u);
    EXPECT_NE(small.name.find("pe=2"), std::string::npos);
    EXPECT_THROW((void)scaling.build_system(99),
                 socbuf::util::ContractViolation);
}

TEST(ScenarioSpec, EveryClusterScalingVariantIsRoutable) {
    // pe=2 once produced out-of-range chatter endpoints and egress
    // self-flows (which traffic routing rejects) — every preset variant
    // must expand into a fully routable flow set.
    const ss::ScenarioRegistry registry;
    const auto& scaling = registry.get("np-cluster-scaling");
    for (std::size_t v = 0; v < scaling.variants.size(); ++v) {
        const auto system = scaling.build_system(v);
        std::vector<socbuf::traffic::FlowRoute> routes;
        EXPECT_NO_THROW(routes = socbuf::traffic::compute_routes(system))
            << scaling.variants[v].label;
        EXPECT_EQ(routes.size(), system.flows.size())
            << scaling.variants[v].label;
    }
}

TEST(ScenarioRegistry, OffersThePaperSuiteBatch) {
    // The mixed-testbench batch in the CLI defaults: figure1 plus
    // np-baseline expand — in member order — into one runnable batch.
    const ss::ScenarioRegistry registry;
    ASSERT_TRUE(registry.contains_batch("paper-suite"));
    const auto& batch = registry.get_batch("paper-suite");
    EXPECT_FALSE(batch.description.empty());
    const auto specs = registry.expand("paper-suite");
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].testbench, ss::Testbench::kFigure1);
    EXPECT_EQ(specs[1].testbench, ss::Testbench::kNetworkProcessor);
    // A plain scenario expands to itself.
    const auto single = registry.expand("figure1");
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(single[0].name, "figure1");
    EXPECT_THROW((void)registry.get_batch("no-such-batch"),
                 socbuf::util::ContractViolation);
    ss::ScenarioRegistry broken;
    EXPECT_THROW(broken.add_batch({"bad", "", {"no-such-scenario"}}),
                 socbuf::util::ContractViolation);
}

TEST(ScenarioSpec, EveryClusterAsymmetryVariantIsRoutable) {
    // The topology sweep bends the testbench hardest: a dropped crypto
    // cluster (three bridges) and asymmetric per-cluster PE counts must
    // still expand into fully routable flow sets.
    const ss::ScenarioRegistry registry;
    const auto& asymmetry = registry.get("np-cluster-asymmetry");
    ASSERT_EQ(asymmetry.variants.size(), 4u);
    for (std::size_t v = 0; v < asymmetry.variants.size(); ++v) {
        const auto system = asymmetry.build_system(v);
        std::vector<socbuf::traffic::FlowRoute> routes;
        EXPECT_NO_THROW(routes = socbuf::traffic::compute_routes(system))
            << asymmetry.variants[v].label;
        EXPECT_EQ(routes.size(), system.flows.size())
            << asymmetry.variants[v].label;
    }
    // bridges=3 really drops a bridge; the asymmetric variants really
    // change the processor count.
    const auto nominal = asymmetry.build_system(0);
    const auto dropped = asymmetry.build_system(1);
    EXPECT_EQ(dropped.architecture.bridge_count(),
              nominal.architecture.bridge_count() - 1);
    const auto ingress_heavy = asymmetry.build_system(2);
    EXPECT_EQ(ingress_heavy.architecture.processor_count(), 17u);  // 6+4+2+4+cp
    EXPECT_NE(ingress_heavy.architecture.bus_count(), 0u);
}

TEST(ScenarioSpec, ValidateRejectsBrokenSpecs) {
    ss::ScenarioSpec spec = small_figure1();
    spec.budgets = {};
    EXPECT_THROW(spec.validate(), socbuf::util::ContractViolation);
    spec = small_figure1();
    spec.replications = 0;
    EXPECT_THROW(spec.validate(), socbuf::util::ContractViolation);
    spec = small_figure1();
    spec.variants[0].np.load_scale = 0.0;
    EXPECT_THROW(spec.validate(), socbuf::util::ContractViolation);
    spec = small_figure1();
    spec.insertion.bridge_site_cost = 0.0;
    EXPECT_THROW(spec.validate(), socbuf::util::ContractViolation);
    spec = small_figure1();
    spec.insertion.candidates = {""};
    EXPECT_THROW(spec.validate(), socbuf::util::ContractViolation);
}

TEST(BatchRunner, InsertionSearchBeatsOrMatchesPresetAtAnyWorkerCount) {
    // The tentpole contract end to end: a searched placement is never
    // worse than the all-selected preset at the same budget, the report
    // carries the search evidence, and the chosen placement (with the
    // whole report) is bit-identical at threads 1, 2 and 4.
    ss::ScenarioSpec spec = small_figure1();
    spec.name = "figure1-insertion";
    spec.budgets = {14};
    spec.replications = 1;
    spec.sizing_iterations = 2;
    spec.sim.horizon = 300.0;
    spec.sim.warmup = 30.0;
    spec.insertion.search = true;  // all four directional bridge sites

    socbuf::exec::Executor serial(1);
    ss::BatchRunner runner(serial);
    const ss::BatchReport reference = runner.run(spec);
    ASSERT_EQ(reference.runs.size(), 1u);
    const auto& run = reference.runs[0];
    EXPECT_TRUE(run.insertion.searched);
    EXPECT_TRUE(run.insertion.exhaustive);  // 4 candidates, 16 plans
    EXPECT_EQ(run.insertion.plans_evaluated, 16u);
    EXPECT_LE(run.insertion.searched_loss, run.insertion.preset_loss);
    EXPECT_EQ(run.insertion.selected_sites.size() +
                  run.insertion.deselected_sites.size(),
              4u);

    for (const std::size_t threads : {2UL, 4UL}) {
        socbuf::exec::Executor exec(threads);
        ss::BatchRunner parallel(exec);
        ss::BatchReport got = parallel.run(spec);
        got.workers = reference.workers;
        EXPECT_EQ(got.to_json(), reference.to_json())
            << "threads=" << threads;
    }
}

TEST(BatchRunner, InsertionCandidatesResolveByNameAndRejectUnknowns) {
    ss::ScenarioSpec spec = small_figure1();
    spec.name = "figure1-insertion-subset";
    spec.budgets = {14};
    spec.replications = 1;
    spec.sizing_iterations = 2;
    spec.sim.horizon = 300.0;
    spec.sim.warmup = 30.0;
    spec.insertion.search = true;
    spec.insertion.candidates = {"bf:b>f", "fg:f>g"};

    socbuf::exec::Executor serial(1);
    ss::BatchRunner runner(serial);
    const ss::BatchReport report = runner.run(spec);
    ASSERT_EQ(report.runs.size(), 1u);
    // Only the named pair is searched: 2 candidates = 4 plans; the other
    // two directional sites stay selected in every plan.
    EXPECT_EQ(report.runs[0].insertion.plans_evaluated, 4u);
    EXPECT_EQ(report.runs[0].insertion.selected_sites.size() +
                  report.runs[0].insertion.deselected_sites.size(),
              2u);

    ss::ScenarioSpec unknown = spec;
    unknown.insertion.candidates = {"no-such-site"};
    ss::BatchRunner reject(serial);
    EXPECT_THROW((void)reject.run(unknown),
                 socbuf::util::ContractViolation);
}

TEST(BatchRunner, MixedSpecBatchBitIdenticalForAnyWorkerCount) {
    // The pipelined task graph must fold identically however the sizing
    // and evaluation jobs interleave: a mixed batch with *different*
    // replication counts, budgets and per-round engine replications per
    // spec, compared as full JSON (everything serialized, cache counters
    // included) across worker counts.
    ss::ScenarioSpec a = small_figure1();
    a.name = "mixed-a";
    a.budgets = {12, 18};
    a.replications = 2;
    ss::ScenarioSpec b = small_figure1();
    b.name = "mixed-b";
    b.budgets = {16};
    b.replications = 3;
    b.sizing_eval_replications = 2;  // engine fans its round sims too
    const std::vector<ss::ScenarioSpec> specs{a, b};

    socbuf::exec::Executor serial(1);
    ss::BatchRunner runner(serial);
    ss::BatchReport reference = runner.run(specs);
    ASSERT_EQ(reference.runs.size(), 3u);
    for (const std::size_t threads : {2UL, 4UL}) {
        socbuf::exec::Executor exec(threads);
        ss::BatchRunner parallel(exec);
        ss::BatchReport got = parallel.run(specs);
        EXPECT_EQ(got.workers, threads);
        got.workers = reference.workers;  // the one width-reflecting field
        EXPECT_EQ(got.to_json(), reference.to_json())
            << "threads=" << threads;
    }
}

TEST(BatchRunner, PipelinedEvaluationOverlapsSizing) {
    // Six sizing jobs on four workers: the first finisher's evaluation
    // replications are queued (and start) while later sizing jobs are
    // still in flight — the stage barrier is gone. Serial execution, by
    // contrast, never has a sizing run in flight when an eval starts.
    ss::ScenarioSpec spec = small_figure1();
    spec.budgets = {10, 12, 14, 16, 18, 20};
    spec.replications = 4;

    socbuf::exec::Executor serial(1);
    ss::BatchRunner serial_runner(serial);
    const auto serial_report = serial_runner.run(spec);
    EXPECT_EQ(serial_report.eval_overlap, 0u);

    socbuf::exec::Executor exec(4);
    ss::BatchRunner parallel_runner(exec);
    const auto parallel_report = parallel_runner.run(spec);
    EXPECT_GT(parallel_report.eval_overlap, 0u);
    // Overlap is a diagnostic, never part of the serialized report.
    ss::BatchReport normalized = parallel_report;
    normalized.workers = serial_report.workers;
    normalized.eval_overlap = serial_report.eval_overlap;
    EXPECT_EQ(normalized.to_json(), serial_report.to_json());
}

TEST(BatchRunner, PriorityScheduledBatchesMatchFifoBitForBitAtAnyWidth) {
    // The tentpole contract: priority scheduling (evaluations claimed
    // ahead of still-queued sizing jobs) moves only the schedule, never
    // the report. A mixed batch — including a spec that evaluates the
    // timeout policy with *fanned* calibration sims — must produce
    // byte-identical JSON under FIFO and priority claims at threads
    // 1, 2 and 4.
    ss::ScenarioSpec plain = small_figure1();
    plain.name = "prio-plain";
    plain.budgets = {12, 16, 20};
    plain.replications = 3;
    ss::ScenarioSpec timeout = small_figure1();
    timeout.name = "prio-timeout";
    timeout.budgets = {14};
    timeout.replications = 2;
    timeout.evaluate_timeout_policy = true;
    timeout.calibration_replications = 3;  // fans inside the sizing job
    const std::vector<ss::ScenarioSpec> specs{plain, timeout};

    ss::BatchOptions fifo_options;
    fifo_options.priority_scheduling = false;
    socbuf::exec::Executor serial(1);
    ss::BatchRunner serial_runner(serial, fifo_options);
    const ss::BatchReport reference = serial_runner.run(specs);
    EXPECT_GT(reference.runs[3].timeout_total, 0.0);

    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        socbuf::exec::Executor fifo_exec(threads);
        ss::BatchRunner fifo_runner(fifo_exec, fifo_options);
        ss::BatchReport fifo = fifo_runner.run(specs);

        socbuf::exec::Executor prio_exec(threads);
        ss::BatchRunner prio_runner(prio_exec);  // priorities on (default)
        ss::BatchReport prio = prio_runner.run(specs);

        // Both evaluated something, so the latency diagnostic is set.
        EXPECT_GE(fifo.first_eval_latency_s, 0.0) << "threads=" << threads;
        EXPECT_GE(prio.first_eval_latency_s, 0.0) << "threads=" << threads;

        fifo.workers = reference.workers;
        prio.workers = reference.workers;
        EXPECT_EQ(fifo.to_json(), reference.to_json())
            << "fifo threads=" << threads;
        EXPECT_EQ(prio.to_json(), reference.to_json())
            << "priority threads=" << threads;
    }
}

TEST(BatchRunner, FannedCalibrationMatchesTheSerialCalibrationPath) {
    // One calibration replication (the default) must keep the timeout
    // columns bit-identical to the pre-fan-out path: the thresholds the
    // runner stores are exactly scale * calibrate_timeout_threshold and
    // calibrate_site_timeout_thresholds of the constant allocation.
    ss::ScenarioSpec spec = small_figure1();
    spec.name = "calib-serial";
    spec.budgets = {14};
    spec.replications = 1;
    spec.evaluate_timeout_policy = true;

    socbuf::exec::Executor serial(1);
    ss::BatchRunner runner(serial);
    const ss::BatchReport report = runner.run(spec);
    ASSERT_EQ(report.runs.size(), 1u);

    const auto system = spec.build_system(0);
    const auto options = spec.sizing_options(spec.budgets[0]);
    const double expected =
        spec.timeout_threshold_scale *
        socbuf::sim::calibrate_timeout_threshold(
            system, report.runs[0].constant_alloc, options.sim);
    EXPECT_EQ(report.runs[0].timeout_threshold, expected);
}

TEST(BatchRunner, CacheCapacityBoundsEntriesWithoutChangingResults) {
    const ss::ScenarioSpec spec = small_figure1();
    socbuf::exec::Executor serial(1);

    ss::BatchRunner unlimited(serial);
    const auto reference = unlimited.run(spec);
    // Precondition for the eviction claim below: the batch has more
    // distinct subsystem models than the tight capacity.
    ASSERT_GT(reference.cache.misses, 2u);
    EXPECT_EQ(reference.cache.evictions, 0u);
    EXPECT_EQ(reference.cache_capacity, 0u);

    ss::BatchOptions tight;
    tight.cache_capacity = 2;
    ss::BatchRunner bounded(serial, tight);
    const auto got = bounded.run(spec);
    EXPECT_EQ(got.cache_capacity, 2u);
    EXPECT_GT(got.cache.evictions, 0u);
    // Eviction costs extra solves, never different answers.
    EXPECT_GE(got.cache.misses, reference.cache.misses);
    expect_identical(got, reference);
}

TEST(BatchReport, CacheDisabledIsMarkedInJson) {
    socbuf::exec::Executor serial(1);

    ss::BatchRunner cached(serial);
    const auto with_cache = cached.run(small_figure1());
    const auto enabled_json =
        socbuf::util::JsonValue::parse(with_cache.to_json());
    EXPECT_TRUE(enabled_json.at("solve_cache").at("enabled").as_bool());
    EXPECT_TRUE(enabled_json.at("solve_cache").contains("hit_rate"));
    EXPECT_TRUE(enabled_json.at("solve_cache").contains("evictions"));

    ss::BatchOptions options;
    options.use_solve_cache = false;
    ss::BatchRunner uncached(serial, options);
    const auto without_cache = uncached.run(small_figure1());
    EXPECT_FALSE(without_cache.cache_enabled);
    const auto disabled_json =
        socbuf::util::JsonValue::parse(without_cache.to_json());
    // "disabled" must not masquerade as "enabled but cold".
    EXPECT_FALSE(disabled_json.at("solve_cache").at("enabled").as_bool());
    EXPECT_FALSE(disabled_json.at("solve_cache").contains("hits"));
    EXPECT_FALSE(disabled_json.at("solve_cache").contains("hit_rate"));
}

TEST(BatchRunner, BitIdenticalForAnyWorkerCount) {
    socbuf::exec::Executor serial(1);
    ss::BatchRunner runner(serial);
    const auto reference = runner.run(small_figure1());
    ASSERT_EQ(reference.runs.size(), 2u);
    for (const std::size_t threads : {2UL, 4UL}) {
        socbuf::exec::Executor exec(threads);
        ss::BatchRunner parallel(exec);
        const auto got = parallel.run(small_figure1());
        EXPECT_EQ(got.workers, threads);
        expect_identical(got, reference);
        // The cache counters are part of the contract too: one solve per
        // distinct key, whatever the interleaving.
        EXPECT_EQ(got.cache.hits, reference.cache.hits);
        EXPECT_EQ(got.cache.misses, reference.cache.misses);
    }
}

TEST(BatchRunner, SharedSolveCacheHitsWithoutChangingResults) {
    // Two scenarios whose (testbench, budget, sim) coincide produce
    // identical subsystem CTMDPs; the batch-wide cache must solve each
    // once and serve the second scenario entirely from memory.
    ss::ScenarioSpec first = small_figure1();
    ss::ScenarioSpec second = small_figure1();
    second.name = "figure1-small-again";

    socbuf::exec::Executor serial(1);
    ss::BatchRunner cached(serial);
    const auto with_cache = cached.run({first, second});
    ASSERT_EQ(with_cache.runs.size(), 4u);
    EXPECT_GT(with_cache.cache.hits, 0u);
    EXPECT_GT(with_cache.cache.misses, 0u);
    EXPECT_GT(with_cache.cache.hit_rate(), 0.0);
    EXPECT_LT(with_cache.cache.hit_rate(), 1.0);
    // Twin scenarios, twin results.
    EXPECT_EQ(with_cache.runs[0].resized_alloc,
              with_cache.runs[2].resized_alloc);

    ss::BatchOptions no_cache;
    no_cache.use_solve_cache = false;
    ss::BatchRunner uncached(serial, no_cache);
    const auto without_cache = uncached.run({first, second});
    EXPECT_EQ(without_cache.cache.lookups(), 0u);
    expect_identical(with_cache, without_cache);
}

TEST(BatchRunner, RunsMultipleSpecsInExpansionOrder) {
    ss::ScenarioSpec a = small_figure1();
    a.name = "a";
    a.budgets = {10};
    ss::ScenarioSpec b = small_figure1();
    b.name = "b";
    b.budgets = {14, 16};
    socbuf::exec::Executor exec(2);
    ss::BatchRunner runner(exec);
    const auto report = runner.run({a, b});
    ASSERT_EQ(report.runs.size(), 3u);
    EXPECT_EQ(report.runs[0].scenario, "a");
    EXPECT_EQ(report.runs[0].budget, 10);
    EXPECT_EQ(report.runs[1].scenario, "b");
    EXPECT_EQ(report.runs[1].budget, 14);
    EXPECT_EQ(report.runs[2].budget, 16);
    // Every run carries a full evaluation.
    for (const auto& run : report.runs) {
        EXPECT_EQ(run.replications, 2u);
        EXPECT_FALSE(run.pre_loss.empty());
        EXPECT_EQ(run.pre_loss.size(), run.post_loss.size());
        EXPECT_GT(run.engine_rounds, 0u);
        EXPECT_GT(run.lp_solves + run.vi_solves + run.pi_solves, 0u);
    }
}

TEST(BatchReport, SerializesToJsonAndCsv) {
    socbuf::exec::Executor serial(1);
    ss::BatchRunner runner(serial);
    const auto report = runner.run(small_figure1());

    const auto parsed = socbuf::util::JsonValue::parse(report.to_json());
    EXPECT_EQ(parsed.at("workers").as_number(), 1.0);
    EXPECT_EQ(parsed.at("runs").size(), 2u);
    const auto& first = parsed.at("runs").at(0);
    EXPECT_EQ(first.at("scenario").as_string(), "figure1-small");
    EXPECT_EQ(first.at("budget").as_number(), 12.0);
    EXPECT_EQ(first.at("pre_total").as_number(),
              report.runs[0].pre_total);
    EXPECT_EQ(first.at("pre_loss").size(), report.runs[0].pre_loss.size());
    EXPECT_TRUE(parsed.at("solve_cache").contains("hit_rate"));

    const std::string csv = report.to_csv();
    EXPECT_NE(csv.find("scenario,variant,budget"), std::string::npos);
    EXPECT_NE(csv.find("figure1-small"), std::string::npos);
    // Two runs + header = three lines.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
}

TEST(BatchRunner, LongestFirstSubmissionMatchesFifoBitForBit) {
    // Longest-first ordering moves only the submission schedule; the
    // index-addressed report slots make the serialized report identical
    // bit for bit, at any width.
    ss::ScenarioSpec a = small_figure1();
    a.name = "order-a";
    a.budgets = {12, 18};
    ss::ScenarioSpec b = small_figure1();
    b.name = "order-b";
    b.budgets = {16};
    // A costlier job (bigger testbench), so the orderings genuinely
    // differ: FIFO submits it last, longest-first submits it first.
    b.testbench = ss::Testbench::kNetworkProcessor;
    b.budgets = {160};
    const std::vector<ss::ScenarioSpec> specs{a, b};

    for (const std::size_t threads : {1UL, 4UL}) {
        socbuf::exec::Executor exec(threads);
        ss::BatchOptions fifo;
        fifo.longest_first = false;
        ss::BatchRunner fifo_runner(exec, fifo);
        ss::BatchReport fifo_report = fifo_runner.run(specs);

        ss::BatchOptions longest;
        longest.longest_first = true;
        ss::BatchRunner longest_runner(exec, longest);
        ss::BatchReport longest_report = longest_runner.run(specs);

        // Overlap is schedule-reflecting; everything serialized must
        // agree exactly.
        longest_report.eval_overlap = fifo_report.eval_overlap;
        EXPECT_EQ(longest_report.to_json(), fifo_report.to_json())
            << "threads=" << threads;
    }
}

TEST(BatchRunner, WarmStartCountsSeedsWithoutChangingAnswers) {
    // A budget sweep re-solves structurally identical subsystem CTMDPs
    // with shifted costs; warm starts must seed those solves (counted in
    // the report) while landing on the same allocations and losses.
    ss::ScenarioSpec sweep = small_figure1();
    sweep.budgets = {12, 14, 16, 18};

    socbuf::exec::Executor serial(1);
    ss::BatchRunner cold_runner(serial);
    const auto cold = cold_runner.run(sweep);

    ss::BatchOptions options;
    options.warm_start = true;
    ss::BatchRunner warm_runner(serial, options);
    const auto warm = warm_runner.run(sweep);

    EXPECT_GT(warm.cache.warm_hits, 0u);
    expect_identical(warm, cold);

    const auto json = socbuf::util::JsonValue::parse(warm.to_json());
    EXPECT_TRUE(json.at("solve_cache").contains("warm_hits"));
    EXPECT_TRUE(json.at("solve_cache").contains("iterations_saved"));
    EXPECT_TRUE(json.at("solve_cache").contains("bytes_resident"));
    EXPECT_GT(json.at("solve_cache").at("bytes_resident").as_number(), 0.0);

    // Cold reports never count warm activity.
    EXPECT_EQ(cold.cache.warm_hits, 0u);
    EXPECT_EQ(cold.cache.iterations_saved, 0u);
}
