// socbuf::Session — the facade contract: one object behind run /
// run_batch / load_file / export_catalog, reports bit-identical for any
// thread count, and a file-loaded spec indistinguishable from the
// compiled preset.
#include "session/session.hpp"

#include "scenario/builder.hpp"
#include "scenario/scenario_io.hpp"
#include "util/contracts.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace ss = socbuf::scenario;
using socbuf::Session;
using socbuf::SessionOptions;
using socbuf::util::JsonValue;

namespace {

/// A fast two-run scenario on the Figure 1 sample (tiny system, short
/// horizon), as in scenario_test.
ss::ScenarioSpec small_figure1(const std::string& name = "figure1-small") {
    return ss::ScenarioBuilder(name)
        .testbench(ss::Testbench::kFigure1)
        .budgets({12, 18})
        .replications(2)
        .sizing_iterations(3)
        .horizon(600.0, 60.0)
        .seed(7)
        .build();
}

/// A network-processor scenario whose ingress-bus CTMDP lands on the VI
/// rung past the fan gate: the default pe_per_cluster = 4 and
/// model_cap = 3 give (3 + 1)^(4 + 1) = 1024 states, which is past
/// kDefaultPiStateLimit (768) *and* meets the default
/// parallel_min_states (1024) — so a multi-thread session actually runs
/// the executor-fanned Jacobi sweep on it.
ss::ScenarioSpec vi_rung_np(const std::string& name = "np-vi-rung") {
    return ss::ScenarioBuilder(name)
        .testbench(ss::Testbench::kNetworkProcessor)
        .budgets({160})
        .replications(2)
        .sizing_iterations(2)
        .horizon(400.0, 40.0)
        .seed(11)
        .build();
}

}  // namespace

TEST(Session, RunByNameEqualsRunBySpec) {
    const ss::ScenarioSpec spec = small_figure1();
    Session session({1});
    session.registry().add(spec);
    const auto by_name = session.run("figure1-small");
    const auto by_spec = session.run(spec);
    EXPECT_EQ(by_name.to_json(), by_spec.to_json());
    EXPECT_THROW((void)session.run("no-such-scenario"),
                 socbuf::util::ContractViolation);
}

TEST(Session, FileLoadedSpecReproducesTheCompiledReport) {
    // The acceptance criterion: a spec exported to JSON, loaded from the
    // file and run must produce a BatchReport identical to the compiled
    // spec's — at every thread count.
    const ss::ScenarioSpec compiled = small_figure1("file-roundtrip");
    const std::string path = "session_test_tmp.json";
    {
        std::ofstream out(path);
        out << ss::to_json(compiled).dump(2) << "\n";
    }
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        Session compiled_session({threads});
        const auto want = compiled_session.run(compiled);

        Session file_session({threads});
        ASSERT_EQ(file_session.load_file(path), 1u);
        const auto got = file_session.run("file-roundtrip");
        EXPECT_EQ(got.to_json(), want.to_json()) << "threads=" << threads;
    }
    std::remove(path.c_str());
}

TEST(Session, ReportsBitIdenticalForAnyThreadCount) {
    const ss::ScenarioSpec spec = small_figure1();
    Session serial({1});
    const auto reference = serial.run(spec);
    ASSERT_EQ(reference.runs.size(), 2u);
    for (const std::size_t threads : {2UL, 4UL}) {
        Session parallel({threads});
        auto got = parallel.run(spec);
        EXPECT_EQ(got.workers, threads);
        got.workers = reference.workers;  // the one width-reflecting field
        got.eval_overlap = reference.eval_overlap;  // diagnostic
        EXPECT_EQ(got.to_json(), reference.to_json())
            << "threads=" << threads;
    }
}

TEST(Session, FifoSchedulingOptionMatchesPriorityReports) {
    // The facade surfaces the scheduling knob; like the thread count it
    // must never show up in the results.
    const ss::ScenarioSpec spec = small_figure1();
    Session priority({4});
    const auto reference = priority.run(spec);

    SessionOptions fifo_options;
    fifo_options.threads = 4;
    fifo_options.priority_scheduling = false;
    Session fifo(fifo_options);
    auto got = fifo.run(spec);
    got.eval_overlap = reference.eval_overlap;  // diagnostics
    got.first_eval_latency_s = reference.first_eval_latency_s;
    EXPECT_EQ(got.to_json(), reference.to_json());
}

TEST(Session, RunBatchExpandsBatchPresetsInOrder) {
    Session session({1});
    session.registry().add(small_figure1("batch-a"));
    session.registry().add(small_figure1("batch-b"));
    session.registry().add_batch(
        {"small-suite", "both small scenarios", {"batch-a", "batch-b"}});

    const auto suite = session.run("small-suite");
    ASSERT_EQ(suite.runs.size(), 4u);  // two scenarios x two budgets
    EXPECT_EQ(suite.runs[0].scenario, "batch-a");
    EXPECT_EQ(suite.runs[2].scenario, "batch-b");

    // run_batch with explicit names matches the batch preset.
    const auto by_names = session.run_batch({"batch-a", "batch-b"});
    EXPECT_EQ(by_names.to_json(), suite.to_json());
}

TEST(Session, FreshCachePerRunKeepsReportsReproducible) {
    const ss::ScenarioSpec spec = small_figure1();
    Session session({1});
    const auto first = session.run(spec);
    const auto second = session.run(spec);
    // Identical workload, identical report — counters included, because
    // the session clears its cache per batch.
    EXPECT_EQ(first.to_json(), second.to_json());
    EXPECT_GT(second.cache.misses, 0u);

    // reuse_cache keeps the memo warm: the repeat run is served from
    // cache (no new misses), with identical results.
    SessionOptions warm_options;
    warm_options.threads = 1;
    warm_options.reuse_cache = true;
    Session warm(warm_options);
    const auto cold_run = warm.run(spec);
    const auto warm_run = warm.run(spec);
    EXPECT_EQ(warm_run.cache.misses, cold_run.cache.misses);
    EXPECT_GT(warm_run.cache.hits, cold_run.cache.hits);
    ASSERT_EQ(warm_run.runs.size(), cold_run.runs.size());
    for (std::size_t i = 0; i < warm_run.runs.size(); ++i) {
        EXPECT_EQ(warm_run.runs[i].post_total, cold_run.runs[i].post_total);
        EXPECT_EQ(warm_run.runs[i].resized_alloc,
                  cold_run.runs[i].resized_alloc);
    }
}

TEST(Session, ExportCatalogRoundTripsEveryPreset) {
    const Session session;
    const auto catalog = session.export_catalog();
    const auto specs = ss::specs_from_json(catalog);
    ASSERT_EQ(specs.size(), session.registry().size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        EXPECT_TRUE(specs[i] == session.registry().specs()[i])
            << specs[i].name;

    // A batch preset exports as a catalog document of its members.
    const auto suite = session.export_scenario("paper-suite");
    const auto members = ss::specs_from_json(suite);
    ASSERT_EQ(members.size(), 2u);
    EXPECT_EQ(members[0].name, "figure1");
    EXPECT_EQ(members[1].name, "np-baseline");

    // And loads back: a fresh registry fed the exported catalog contains
    // byte-equal specs.
    Session loaded;
    EXPECT_EQ(loaded.load_text(catalog.dump()), specs.size());
}

TEST(Session, DisabledCacheIsHonored) {
    SessionOptions options;
    options.threads = 1;
    options.use_solve_cache = false;
    Session session(options);
    const auto report = session.run(small_figure1());
    EXPECT_FALSE(report.cache_enabled);
    EXPECT_EQ(report.cache.lookups(), 0u);
}

TEST(Session, WarmStartAndLongestFirstOptionsReachTheBatch) {
    ss::ScenarioSpec sweep = small_figure1("session-sweep");
    sweep.budgets = {12, 14, 16, 18};

    SessionOptions cold_options;
    cold_options.threads = 1;
    Session cold_session(cold_options);
    const auto cold = cold_session.run(sweep);
    EXPECT_EQ(cold.cache.warm_hits, 0u);

    SessionOptions warm_options;
    warm_options.threads = 1;
    warm_options.warm_start = true;
    warm_options.longest_first = false;
    Session warm_session(warm_options);
    const auto warm = warm_session.run(sweep);
    EXPECT_GT(warm.cache.warm_hits, 0u);

    // Seeded solves land on the same allocations and losses here.
    ASSERT_EQ(warm.runs.size(), cold.runs.size());
    for (std::size_t i = 0; i < warm.runs.size(); ++i) {
        EXPECT_EQ(warm.runs[i].resized_alloc, cold.runs[i].resized_alloc);
        EXPECT_EQ(warm.runs[i].post_loss, cold.runs[i].post_loss);
    }
}

TEST(Session, MixedBatchWithViRungModelsIsThreadInvariant) {
    // The batch determinism contract must survive the scaled VI rung: a
    // mixed batch — a tiny figure-1 spec plus an np spec whose 1024-state
    // ingress-bus CTMDP takes the executor-fanned Jacobi path on
    // multi-thread sessions — reports bit-identically at every width.
    Session serial({1});
    serial.registry().add(small_figure1("mixed-fig1"));
    serial.registry().add(vi_rung_np("mixed-np"));
    const auto reference = serial.run_batch({"mixed-fig1", "mixed-np"});
    ASSERT_EQ(reference.runs.size(), 3u);  // two budgets + one
    EXPECT_GT(reference.runs[2].vi_solves, 0u);  // np spec hit the VI rung
    for (const std::size_t threads : {2UL, 4UL}) {
        Session parallel({threads});
        parallel.registry().add(small_figure1("mixed-fig1"));
        parallel.registry().add(vi_rung_np("mixed-np"));
        auto got = parallel.run_batch({"mixed-fig1", "mixed-np"});
        got.workers = reference.workers;  // the one width-reflecting field
        got.eval_overlap = reference.eval_overlap;  // diagnostics
        got.first_eval_latency_s = reference.first_eval_latency_s;
        EXPECT_EQ(got.to_json(), reference.to_json())
            << "threads=" << threads;
    }
}

TEST(Session, GaussSeidelSessionIsThreadInvariant) {
    // The session-level Gauss–Seidel opt-in: a different sweep (and a
    // different report trajectory is allowed vs the default), but the
    // red-black phases keep the determinism contract, so the GS report
    // too must be bit-identical at every thread count.
    SessionOptions gs_serial;
    gs_serial.threads = 1;
    gs_serial.gauss_seidel = true;
    Session serial(gs_serial);
    serial.registry().add(vi_rung_np());
    const auto reference = serial.run("np-vi-rung");
    ASSERT_EQ(reference.runs.size(), 1u);
    EXPECT_GT(reference.runs[0].vi_solves, 0u);
    for (const std::size_t threads : {2UL, 4UL}) {
        SessionOptions gs_options;
        gs_options.threads = threads;
        gs_options.gauss_seidel = true;
        Session parallel(gs_options);
        parallel.registry().add(vi_rung_np());
        auto got = parallel.run("np-vi-rung");
        got.workers = reference.workers;
        got.eval_overlap = reference.eval_overlap;
        got.first_eval_latency_s = reference.first_eval_latency_s;
        EXPECT_EQ(got.to_json(), reference.to_json())
            << "threads=" << threads;
    }
}
